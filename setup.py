"""Setup shim: enables legacy editable installs in offline environments
where the `wheel` package (needed for PEP 660 builds) is unavailable.

Packages are declared explicitly (src layout) so every subpackage —
including the newer layers like ``repro.sweep`` and ``repro.trace`` — ships
in installs; the version is read from ``repro.__init__`` without importing
the package (imports would require the runtime dependencies at build time).
"""

import re
from pathlib import Path

from setuptools import find_packages, setup

_INIT = Path(__file__).parent / "src" / "repro" / "__init__.py"
_VERSION = re.search(r'__version__ = "([^"]+)"', _INIT.read_text()).group(1)

setup(
    name="repro",
    version=_VERSION,
    description="Reproduction of Korman & Vacus (PODC 2022): self-stabilizing "
    "information spread using passive communication",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
)
