"""Tests for the multi-source sweep and the worst-case search."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.multisource import sweep_sources
from repro.experiments.worst_case import search_worst_start
from repro.protocols.fet import ell_for


class TestSweepSources:
    def test_all_source_counts_converge(self):
        n = 800
        rows = sweep_sources(
            n,
            ell_for(n),
            [1, 2, 8, n // 8],
            trials=4,
            max_rounds=3000,
            seed=0,
        )
        assert [row.num_sources for row in rows] == [1, 2, 8, 100]
        for row in rows:
            assert row.stats.successes == row.stats.trials

    def test_many_sources_at_least_as_fast(self):
        """A constant fraction of sources cannot be slower than one source."""
        n = 800
        rows = sweep_sources(
            n,
            ell_for(n),
            [1, n // 8],
            trials=6,
            max_rounds=3000,
            seed=1,
        )
        single = rows[0].stats.time_summary().median
        many = rows[1].stats.time_summary().median
        assert many <= single + 2  # allow tie plus noise

    def test_rejects_bad_source_count(self):
        with pytest.raises(ValueError):
            sweep_sources(100, 10, [0], trials=1, max_rounds=10, seed=0)
        with pytest.raises(ValueError):
            sweep_sources(100, 10, [100], trials=1, max_rounds=10, seed=0)


class TestWorstCaseSearch:
    def test_search_runs_and_converges(self):
        n = 400
        result = search_worst_start(
            n,
            ell_for(n),
            coarse=4,
            refine_steps=1,
            runs_per_candidate=2,
            budget=5000,
            seed=0,
        )
        assert result.all_converged
        assert result.evaluations == 4 * 4 * 2
        assert 0.0 <= result.x_prev <= 1.0
        assert 0.0 <= result.x_now <= 1.0
        assert result.mean_rounds >= 1.0
        assert result.max_rounds_seen >= result.mean_rounds - 1e-9

    def test_deterministic_given_seed(self):
        kwargs = dict(coarse=3, refine_steps=0, runs_per_candidate=2, budget=3000, seed=7)
        a = search_worst_start(300, 40, **kwargs)
        b = search_worst_start(300, 40, **kwargs)
        assert a == b

    def test_rejects_tiny_grid(self):
        with pytest.raises(ValueError):
            search_worst_start(100, 10, coarse=1)

    def test_worst_found_is_slower_than_benign(self):
        """The search must find something at least as bad as an easy start."""
        n = 400
        result = search_worst_start(
            n,
            ell_for(n),
            coarse=4,
            refine_steps=0,
            runs_per_candidate=2,
            budget=5000,
            seed=3,
        )
        # The (0.1 -> 0.9) start converges in ~1-2 rounds; the worst found
        # must be no better than that.
        assert result.mean_rounds >= 2.0
