"""Tests for the observation-noise extension."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.engine import SynchronousEngine
from repro.core.noise import NoisyCountSampler, noisy_fraction
from repro.core.population import make_population
from repro.core.rng import make_rng
from repro.experiments.robustness import sweep_noise
from repro.initializers.standard import AllWrong
from repro.protocols.fet import FETProtocol, ell_for


class TestNoisyFraction:
    def test_zero_noise_identity(self):
        assert noisy_fraction(0.3, 0.0) == 0.3

    def test_max_noise_flattens(self):
        assert noisy_fraction(0.0, 0.5) == pytest.approx(0.5)
        assert noisy_fraction(1.0, 0.5) == pytest.approx(0.5)

    def test_symmetric(self):
        eps = 0.1
        assert noisy_fraction(0.3, eps) + noisy_fraction(0.7, eps) == pytest.approx(1.0)

    def test_pulls_toward_half(self):
        assert 0.2 < noisy_fraction(0.2, 0.1) < 0.5
        assert 0.5 < noisy_fraction(0.8, 0.1) < 0.8

    def test_rejects_bad_epsilon(self):
        with pytest.raises(ValueError):
            noisy_fraction(0.5, 0.6)


class TestNoisyCountSampler:
    def test_zero_eps_matches_clean_distribution(self):
        pop = make_population(4000, 1)
        opinions = np.zeros(4000, dtype=np.uint8)
        opinions[:1200] = 1
        pop.adversarial_opinions(opinions)
        counts = NoisyCountSampler(0.0).counts(pop, 20, make_rng(0))
        assert counts.mean() / 20 == pytest.approx(pop.fraction_ones(), abs=0.02)

    def test_noise_biases_toward_half(self):
        pop = make_population(4000, 1)  # x ~ 1/4000: nearly all zeros
        counts = NoisyCountSampler(0.2).counts(pop, 20, make_rng(1))
        assert counts.mean() / 20 == pytest.approx(0.2, abs=0.02)

    def test_blocks_shape(self):
        pop = make_population(100, 1)
        blocks = NoisyCountSampler(0.1).count_blocks(pop, 8, 2, make_rng(2))
        assert blocks.shape == (2, 100)

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            NoisyCountSampler(0.7)
        pop = make_population(10, 1)
        with pytest.raises(ValueError):
            NoisyCountSampler(0.1).counts(pop, -1, make_rng(0))


class TestNoisyFET:
    def test_consensus_not_absorbing_under_noise(self):
        """With ℓ·ε ≳ 1, consensus breaks into sustained oscillation.

        FET amplifies the spurious trends that noisy counters create at
        consensus — the reach-vs-retain split documented in E-noise.
        """
        n = 1000
        proto = FETProtocol(30)
        pop = make_population(n, 1)
        pop.set_opinions(np.ones(n, dtype=np.uint8))
        state = {"prev_count": np.full(n, 30, dtype=np.int64)}
        engine = SynchronousEngine(
            proto, pop, sampler=NoisyCountSampler(0.2), rng=make_rng(3), state=state
        )
        fractions = []
        for _ in range(50):
            engine.step()
            fractions.append(pop.fraction_ones())
        assert min(fractions) < 0.5  # consensus collapsed at least once
        assert max(fractions) > 0.9  # ... and was re-approached: oscillation

    def test_consensus_is_a_knife_edge(self):
        """Even ε = 1e-5 eventually topples consensus: a single noisy
        observation reads as a downward trend, and the trend rule amplifies
        it into a cascade. FET's absorbing state has no restoring margin —
        only *exact* unanimity ties every comparison."""
        n = 1000
        ell = 30
        proto = FETProtocol(ell)
        pop = make_population(n, 1)
        pop.set_opinions(np.ones(n, dtype=np.uint8))
        state = {"prev_count": np.full(n, ell, dtype=np.int64)}
        engine = SynchronousEngine(
            proto, pop, sampler=NoisyCountSampler(1e-5), rng=make_rng(4), state=state
        )
        fractions = []
        for _ in range(50):
            engine.step()
            fractions.append(pop.nonsource_correct_fraction())
        assert min(fractions) < 0.9  # collapsed at least once
        assert max(fractions) > 0.95  # and recovered: oscillation, not death

    def test_theta_reached_despite_noise(self):
        """Noise does not stop FET from *reaching* near-consensus quickly."""
        n = 1500
        rows = sweep_noise(
            n,
            ell_for(n),
            [0.0, 0.05],
            trials=4,
            max_rounds=5000,
            seed=0,
        )
        for row in rows:
            assert row.reached_theta == row.trials
        # Noiseless settles at exactly 1; real noise cannot hold the level.
        assert rows[0].mean_settle_level == pytest.approx(1.0, abs=1e-6)
        assert rows[1].mean_settle_level < 1.0


class TestNoiseBaselineRows:
    def test_sweep_noise_protocol_axis(self):
        """Baseline rows share the noise grid and run batched by default."""
        n = 128
        rows = sweep_noise(
            n,
            8,
            [0.0],
            trials=3,
            max_rounds=800,
            seed=5,
            theta=0.9,
            settle_window=4,
            protocols=[{"name": "fet", "ell": 8}, {"name": "clock-sync", "ell": 8}],
        )
        assert len(rows) == 2
        names = [row.protocol for row in rows]
        assert names[0].startswith("fet")
        assert names[1].startswith("clock-sync")
        for row in rows:
            assert row.reached_theta == row.trials

    def test_clock_sync_rows_are_not_noise_inert(self):
        """Regression: clock-sync ignores the count samplers, so its noise
        rows used to simulate eps=0 silently; it now applies the per-bit
        flip model to the opinion bits it reads. The settle window must span
        a zero-subphase (> subphase_len) for the damage to be visible."""
        rows = sweep_noise(
            256, 8, [0.0, 0.05],
            trials=3, max_rounds=1500, seed=2, theta=0.9, settle_window=40,
            protocols=[{"name": "clock-sync", "ell": 16}],
        )
        clean, noisy = rows
        assert clean.epsilon == 0.0 and noisy.epsilon == 0.05
        assert clean.mean_settle_level > 0.99
        assert noisy.mean_settle_level < 0.9
