"""Tests for the PULL sampling substrate."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.population import make_population
from repro.core.rng import make_rng
from repro.core.sampling import BinomialCountSampler, IndexSampler


def population_with_fraction(n: int, x: float):
    pop = make_population(n, 1)
    opinions = np.zeros(n, dtype=np.uint8)
    opinions[: int(round(x * n))] = 1
    pop.adversarial_opinions(opinions)
    return pop


class TestBinomialCountSampler:
    def test_counts_shape(self):
        pop = population_with_fraction(100, 0.3)
        counts = BinomialCountSampler().counts(pop, 10, make_rng(0))
        assert counts.shape == (100,)

    def test_counts_range(self):
        pop = population_with_fraction(100, 0.3)
        counts = BinomialCountSampler().counts(pop, 10, make_rng(0))
        assert counts.min() >= 0 and counts.max() <= 10

    def test_zero_ell(self):
        pop = population_with_fraction(100, 0.3)
        counts = BinomialCountSampler().counts(pop, 0, make_rng(0))
        assert (counts == 0).all()

    def test_negative_ell_rejected(self):
        pop = population_with_fraction(10, 0.3)
        with pytest.raises(ValueError):
            BinomialCountSampler().counts(pop, -1, make_rng(0))

    def test_all_ones_population(self):
        pop = population_with_fraction(50, 1.0)
        counts = BinomialCountSampler().counts(pop, 7, make_rng(0))
        assert (counts == 7).all()

    def test_mean_matches_fraction(self):
        pop = population_with_fraction(4000, 0.4)
        counts = BinomialCountSampler().counts(pop, 20, make_rng(1))
        assert counts.mean() / 20 == pytest.approx(0.4, abs=0.02)

    def test_blocks_shape(self):
        pop = population_with_fraction(100, 0.3)
        blocks = BinomialCountSampler().count_blocks(pop, 10, 2, make_rng(0))
        assert blocks.shape == (2, 100)

    def test_blocks_are_not_identical(self):
        pop = population_with_fraction(500, 0.5)
        blocks = BinomialCountSampler().count_blocks(pop, 10, 2, make_rng(0))
        assert not np.array_equal(blocks[0], blocks[1])

    def test_no_indices(self):
        pop = population_with_fraction(10, 0.3)
        with pytest.raises(NotImplementedError):
            BinomialCountSampler().indices(pop, 2, make_rng(0))


class TestIndexSampler:
    def test_indices_shape_and_range(self):
        pop = population_with_fraction(30, 0.5)
        idx = IndexSampler().indices(pop, 5, make_rng(0))
        assert idx.shape == (30, 5)
        assert idx.min() >= 0 and idx.max() < 30

    def test_exclude_self(self):
        pop = population_with_fraction(20, 0.5)
        sampler = IndexSampler(exclude_self=True)
        for seed in range(5):
            idx = sampler.indices(pop, 8, make_rng(seed))
            own = np.arange(20)[:, None]
            assert (idx != own).all()

    def test_exclude_self_covers_all_others(self):
        pop = population_with_fraction(5, 0.5)
        idx = IndexSampler(exclude_self=True).indices(pop, 2000, make_rng(3))
        for agent in range(5):
            others = set(range(5)) - {agent}
            assert set(np.unique(idx[agent])) == others

    def test_counts_match_indices(self):
        pop = population_with_fraction(40, 0.25)
        counts = IndexSampler().counts(pop, 6, make_rng(2))
        assert counts.shape == (40,)
        assert counts.min() >= 0 and counts.max() <= 6

    def test_zero_ell_counts(self):
        pop = population_with_fraction(40, 0.25)
        counts = IndexSampler().counts(pop, 0, make_rng(2))
        assert (counts == 0).all()

    def test_negative_ell_rejected(self):
        pop = population_with_fraction(10, 0.3)
        with pytest.raises(ValueError):
            IndexSampler().indices(pop, -2, make_rng(0))


class TestDistributionalAgreement:
    """The fast sampler must match the literal sampler in distribution."""

    def test_count_means_agree(self):
        pop = population_with_fraction(2000, 0.3)
        ell = 15
        fast = BinomialCountSampler().counts(pop, ell, make_rng(10))
        literal = IndexSampler().counts(pop, ell, make_rng(11))
        # Means of 2000 Binomial(15, 0.3) draws: sd of mean ~ 0.04.
        assert fast.mean() == pytest.approx(literal.mean(), abs=0.25)

    def test_count_variances_agree(self):
        pop = population_with_fraction(2000, 0.3)
        ell = 15
        fast = BinomialCountSampler().counts(pop, ell, make_rng(12))
        literal = IndexSampler().counts(pop, ell, make_rng(13))
        assert fast.var() == pytest.approx(literal.var(), rel=0.2)

    def test_histograms_agree(self):
        pop = population_with_fraction(5000, 0.5)
        ell = 8
        fast = BinomialCountSampler().counts(pop, ell, make_rng(14))
        literal = IndexSampler().counts(pop, ell, make_rng(15))
        hist_fast = np.bincount(fast, minlength=ell + 1) / fast.size
        hist_lit = np.bincount(literal, minlength=ell + 1) / literal.size
        assert np.abs(hist_fast - hist_lit).max() < 0.03


class TestSparseDrawTier:
    """The geometric-gap generator must agree with the histogram tier (and
    the reference generator) in distribution across the extreme-x band."""

    def _draws(self, method, x_rows, ell=56, blocks=2, n=30000, seed=0):
        from repro.core.sampling import batched_binomial_counts

        return batched_binomial_counts(
            make_rng(seed), ell, np.asarray(x_rows, dtype=float), blocks, n, method
        )

    @pytest.mark.parametrize("x", [1 / 1000, 0.002, 0.0045, 1 - 1 / 1000, 1 - 0.0045])
    def test_matches_histogram_tier(self, x):
        from scipy import stats as scipy_stats

        ell = 56
        sparse = self._draws("sparse", [x], seed=1)[:, 0, :].ravel()
        hist = self._draws("histogram", [x], seed=2)[:, 0, :].ravel()
        assert sparse.min() >= 0 and sparse.max() <= ell
        assert scipy_stats.ks_2samp(sparse, hist).pvalue > 1e-4

    def test_moments_match_theory_deep_band(self):
        ell, n = 74, 200000
        for x in (1e-4, 5e-4, 1 - 1e-4):
            counts = self._draws("sparse", [x], ell=ell, blocks=1, n=n, seed=3)[0, 0]
            assert counts.mean() == pytest.approx(ell * x, rel=0.1, abs=5e-3)
            assert counts.var() == pytest.approx(ell * x * (1 - x), rel=0.15, abs=5e-3)

    def test_single_q_and_heterogeneous_paths_agree(self):
        from scipy import stats as scipy_stats

        # identical rows ride the concatenated-line path, distinct rows the
        # per-lane path; both must produce the same law for the same x
        x = 0.003
        single = self._draws("sparse", [x, x, x], seed=4)
        hetero = self._draws("sparse", [x, 0.001, 0.004], seed=5)
        assert (
            scipy_stats.ks_2samp(single[:, 0, :].ravel(), hetero[:, 0, :].ravel()).pvalue
            > 1e-4
        )

    def test_mirrored_rows_share_single_q_path(self):
        # x and 1-x have equal q; the mixed batch must mirror counts per row
        ell = 40
        out = self._draws("sparse", [0.002, 0.998], ell=ell, seed=6)
        low, high = out[:, 0, :], out[:, 1, :]
        assert low.mean() == pytest.approx(ell - high.mean(), abs=0.05)

    def test_consensus_rows_are_deterministic_fills(self):
        ell = 10
        out = self._draws("sparse", [0.0, 1.0], ell=ell, n=500, seed=7)
        assert (out[:, 0, :] == 0).all()
        assert (out[:, 1, :] == ell).all()

    def test_mid_range_forced_sparse_still_exact(self):
        from scipy import stats as scipy_stats

        # far outside the auto band the generator degrades to dense but must
        # stay exact — forcing guards against silent tier-boundary bugs
        sparse = self._draws("sparse", [0.5], ell=20, blocks=1, seed=8)[0, 0]
        ref = self._draws("binomial", [0.5], ell=20, blocks=1, seed=9)[0, 0]
        assert scipy_stats.ks_2samp(sparse, ref).pvalue > 1e-4

    def test_ell_one_and_tiny_n(self):
        out = self._draws("sparse", [0.01, 0.99], ell=1, n=7, seed=10)
        assert set(np.unique(out)) <= {0, 1}

    def test_auto_routes_sparse_band(self):
        from scipy import stats as scipy_stats

        # an auto call keyed on a deep-band fraction must match the reference
        auto = self._draws("auto", [0.001], seed=11)[:, 0, :].ravel()
        ref = self._draws("binomial", [0.001], seed=12)[:, 0, :].ravel()
        assert scipy_stats.ks_2samp(auto, ref).pvalue > 1e-4

    def test_sampler_accepts_sparse_method(self):
        from repro.core.sampling import BatchedBinomialSampler

        assert BatchedBinomialSampler("sparse").method == "sparse"
        with pytest.raises(ValueError):
            BatchedBinomialSampler("gaps")

    def test_denormal_x_terminates_and_returns_modal_fill(self):
        # Regression: x tiny enough that ln(U)/ln(1-q) overflows float64 used
        # to saturate the int64 cast negative and spin the placement loop
        # forever; the gap clamp keeps it finite. P(nonzero) ~ 1e-309 per
        # element, so the draw is the modal fill for any practical size.
        for xs in ([1e-310], [1e-310, 2e-310], [1 - 1e-16]):
            out = self._draws("sparse", xs, ell=10, blocks=1, n=200, seed=13)
            assert out.shape == (1, len(xs), 200)
