"""Tests for the PULL sampling substrate."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.population import make_population
from repro.core.rng import make_rng
from repro.core.sampling import BinomialCountSampler, IndexSampler


def population_with_fraction(n: int, x: float):
    pop = make_population(n, 1)
    opinions = np.zeros(n, dtype=np.uint8)
    opinions[: int(round(x * n))] = 1
    pop.adversarial_opinions(opinions)
    return pop


class TestBinomialCountSampler:
    def test_counts_shape(self):
        pop = population_with_fraction(100, 0.3)
        counts = BinomialCountSampler().counts(pop, 10, make_rng(0))
        assert counts.shape == (100,)

    def test_counts_range(self):
        pop = population_with_fraction(100, 0.3)
        counts = BinomialCountSampler().counts(pop, 10, make_rng(0))
        assert counts.min() >= 0 and counts.max() <= 10

    def test_zero_ell(self):
        pop = population_with_fraction(100, 0.3)
        counts = BinomialCountSampler().counts(pop, 0, make_rng(0))
        assert (counts == 0).all()

    def test_negative_ell_rejected(self):
        pop = population_with_fraction(10, 0.3)
        with pytest.raises(ValueError):
            BinomialCountSampler().counts(pop, -1, make_rng(0))

    def test_all_ones_population(self):
        pop = population_with_fraction(50, 1.0)
        counts = BinomialCountSampler().counts(pop, 7, make_rng(0))
        assert (counts == 7).all()

    def test_mean_matches_fraction(self):
        pop = population_with_fraction(4000, 0.4)
        counts = BinomialCountSampler().counts(pop, 20, make_rng(1))
        assert counts.mean() / 20 == pytest.approx(0.4, abs=0.02)

    def test_blocks_shape(self):
        pop = population_with_fraction(100, 0.3)
        blocks = BinomialCountSampler().count_blocks(pop, 10, 2, make_rng(0))
        assert blocks.shape == (2, 100)

    def test_blocks_are_not_identical(self):
        pop = population_with_fraction(500, 0.5)
        blocks = BinomialCountSampler().count_blocks(pop, 10, 2, make_rng(0))
        assert not np.array_equal(blocks[0], blocks[1])

    def test_no_indices(self):
        pop = population_with_fraction(10, 0.3)
        with pytest.raises(NotImplementedError):
            BinomialCountSampler().indices(pop, 2, make_rng(0))


class TestIndexSampler:
    def test_indices_shape_and_range(self):
        pop = population_with_fraction(30, 0.5)
        idx = IndexSampler().indices(pop, 5, make_rng(0))
        assert idx.shape == (30, 5)
        assert idx.min() >= 0 and idx.max() < 30

    def test_exclude_self(self):
        pop = population_with_fraction(20, 0.5)
        sampler = IndexSampler(exclude_self=True)
        for seed in range(5):
            idx = sampler.indices(pop, 8, make_rng(seed))
            own = np.arange(20)[:, None]
            assert (idx != own).all()

    def test_exclude_self_covers_all_others(self):
        pop = population_with_fraction(5, 0.5)
        idx = IndexSampler(exclude_self=True).indices(pop, 2000, make_rng(3))
        for agent in range(5):
            others = set(range(5)) - {agent}
            assert set(np.unique(idx[agent])) == others

    def test_counts_match_indices(self):
        pop = population_with_fraction(40, 0.25)
        counts = IndexSampler().counts(pop, 6, make_rng(2))
        assert counts.shape == (40,)
        assert counts.min() >= 0 and counts.max() <= 6

    def test_zero_ell_counts(self):
        pop = population_with_fraction(40, 0.25)
        counts = IndexSampler().counts(pop, 0, make_rng(2))
        assert (counts == 0).all()

    def test_negative_ell_rejected(self):
        pop = population_with_fraction(10, 0.3)
        with pytest.raises(ValueError):
            IndexSampler().indices(pop, -2, make_rng(0))


class TestDistributionalAgreement:
    """The fast sampler must match the literal sampler in distribution."""

    def test_count_means_agree(self):
        pop = population_with_fraction(2000, 0.3)
        ell = 15
        fast = BinomialCountSampler().counts(pop, ell, make_rng(10))
        literal = IndexSampler().counts(pop, ell, make_rng(11))
        # Means of 2000 Binomial(15, 0.3) draws: sd of mean ~ 0.04.
        assert fast.mean() == pytest.approx(literal.mean(), abs=0.25)

    def test_count_variances_agree(self):
        pop = population_with_fraction(2000, 0.3)
        ell = 15
        fast = BinomialCountSampler().counts(pop, ell, make_rng(12))
        literal = IndexSampler().counts(pop, ell, make_rng(13))
        assert fast.var() == pytest.approx(literal.var(), rel=0.2)

    def test_histograms_agree(self):
        pop = population_with_fraction(5000, 0.5)
        ell = 8
        fast = BinomialCountSampler().counts(pop, ell, make_rng(14))
        literal = IndexSampler().counts(pop, ell, make_rng(15))
        hist_fast = np.bincount(fast, minlength=ell + 1) / fast.size
        hist_lit = np.bincount(literal, minlength=ell + 1) / literal.size
        assert np.abs(hist_fast - hist_lit).max() < 0.03
