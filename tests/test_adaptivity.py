"""Tests for the changing-environment (adaptivity) experiment."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.adaptivity import run_changing_environment
from repro.protocols.fet import ell_for


class TestValidation:
    def test_rejects_bad_period(self):
        with pytest.raises(ValueError):
            run_changing_environment(100, 10, period=0, flips=1, seed=0)

    def test_rejects_bad_flips(self):
        with pytest.raises(ValueError):
            run_changing_environment(100, 10, period=10, flips=0, seed=0)


class TestAdaptation:
    def test_tracks_every_flip(self):
        n = 1500
        result = run_changing_environment(
            n, ell_for(n), period=80, flips=8, seed=1
        )
        assert result.missed == 0
        assert len(result.lags) == 8

    def test_lag_is_cyan_bounce_scale(self):
        """Each flip is an all-wrong-consensus episode: lags stay tiny."""
        n = 1500
        result = run_changing_environment(
            n, ell_for(n), period=80, flips=8, seed=2
        )
        assert result.max_lag <= 15
        assert result.mean_lag <= 10

    def test_no_degradation_over_flips(self):
        """Repeated changes do not accumulate damage (self-stabilization)."""
        n = 1500
        result = run_changing_environment(
            n, ell_for(n), period=80, flips=10, seed=3
        )
        first_half = np.mean(result.lags[:5])
        second_half = np.mean(result.lags[5:])
        assert second_half <= first_half + 3

    def test_mostly_correct_with_long_period(self):
        n = 1500
        result = run_changing_environment(
            n, ell_for(n), period=120, flips=5, seed=4
        )
        assert result.correct_time_fraction > 0.9

    def test_short_period_degrades_correct_fraction(self):
        """If the world flips faster than the bounce, correctness drops."""
        n = 1500
        fast = run_changing_environment(n, ell_for(n), period=4, flips=20, seed=5)
        slow = run_changing_environment(n, ell_for(n), period=120, flips=5, seed=5)
        assert fast.correct_time_fraction < slow.correct_time_fraction

    def test_deterministic(self):
        a = run_changing_environment(800, 40, period=50, flips=4, seed=9)
        b = run_changing_environment(800, 40, period=50, flips=4, seed=9)
        assert a.lags == b.lags
        assert a.correct_time_fraction == b.correct_time_fraction
