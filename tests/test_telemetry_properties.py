"""Property tests for snapshot merge algebra and the exposition format.

Randomized (seeded, not flaky) checks of two load-bearing contracts:

* :meth:`MetricsSnapshot.merge` is associative, commutative, and has the
  empty snapshot as identity — the algebra that makes the orchestrator's
  ordered fold produce byte-identical aggregates at any worker count.
  Random values are drawn from the dyadic rationals (``k / 256``) so
  every partial sum is exactly representable and the laws hold *exactly*,
  not merely approximately; the non-finite corners (NaN, ±Inf) are
  checked through JSON text equality, where NaN compares equal to itself.

* :func:`render_prometheus` output always passes
  :func:`validate_exposition` with a predictable sample count, including
  NaN/±Inf values and label values exercising every escape rule
  (backslash, double quote, newline).
"""

from __future__ import annotations

import json
import math
import random

import pytest

from repro.telemetry import (
    MetricsRegistry,
    MetricsSnapshot,
    render_prometheus,
    validate_exposition,
)

#: Family schema shared by every randomized registry: merge requires kinds
#: (and histogram bucket layouts) to agree family-by-family, exactly as
#: real worker snapshots agree because they run the same instrumentation.
FAMILIES = (
    ("cells_total", "counter"),
    ("retries_total", "counter"),
    ("inflight", "gauge"),
    ("run_seconds", "histogram"),
)
BUCKETS = (0.5, 4.0, 64.0)
LABEL_SETS = (
    {},
    {"tier": "a"},
    {"tier": "b"},
    {"tier": "a", "mode": "x"},
    {"tier": "b", "mode": "y"},
)


def dyadic(rng: random.Random) -> float:
    """An exactly-representable value: k/256 with k < 2**20."""
    return rng.randrange(1 << 20) / 256.0


def random_snapshot(rng: random.Random) -> MetricsSnapshot:
    """A registry snapshot with random series over the shared schema."""
    registry = MetricsRegistry()
    for name, kind in FAMILIES:
        for labels in LABEL_SETS:
            if rng.random() < 0.4:
                continue
            if kind == "counter":
                registry.counter(name, "r.", **labels).inc(dyadic(rng))
            elif kind == "gauge":
                registry.gauge(name, "r.", **labels).set(dyadic(rng))
            else:
                child = registry.histogram(name, "r.", buckets=BUCKETS, **labels)
                for _ in range(rng.randrange(1, 6)):
                    child.observe(dyadic(rng) / 16.0)
    return registry.snapshot()


def as_text(snapshot: MetricsSnapshot) -> str:
    """Canonical JSON text; NaN serializes as ``NaN`` so it self-compares."""
    return json.dumps(snapshot.to_dict(), sort_keys=True)


def expected_samples(snapshot: MetricsSnapshot) -> int:
    """Sample lines render_prometheus must emit for ``snapshot``."""
    total = 0
    for metric in snapshot.metrics.values():
        if metric["kind"] == "histogram":
            # one _bucket line per bound, +Inf bucket, _sum, _count
            total += len(metric["series"]) * (len(metric["buckets"]) + 3)
        else:
            total += len(metric["series"])
    return total


SEEDS = range(25)


class TestMergeAlgebra:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_associative(self, seed):
        rng = random.Random(seed)
        a, b, c = (random_snapshot(rng) for _ in range(3))
        assert as_text(a.merge(b).merge(c)) == as_text(a.merge(b.merge(c)))

    @pytest.mark.parametrize("seed", SEEDS)
    def test_commutative(self, seed):
        rng = random.Random(1000 + seed)
        a, b = random_snapshot(rng), random_snapshot(rng)
        assert as_text(a.merge(b)) == as_text(b.merge(a))

    @pytest.mark.parametrize("seed", SEEDS)
    def test_empty_is_identity(self, seed):
        rng = random.Random(2000 + seed)
        a = random_snapshot(rng)
        empty = MetricsSnapshot()
        assert as_text(a.merge(empty)) == as_text(a)
        assert as_text(empty.merge(a)) == as_text(a)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_merge_does_not_mutate_operands(self, seed):
        rng = random.Random(3000 + seed)
        a, b = random_snapshot(rng), random_snapshot(rng)
        before_a, before_b = as_text(a), as_text(b)
        a.merge(b)
        assert as_text(a) == before_a
        assert as_text(b) == before_b

    @pytest.mark.parametrize("seed", SEEDS)
    def test_fold_order_independent(self, seed):
        """The orchestrator's left fold equals any parenthesization."""
        rng = random.Random(4000 + seed)
        parts = [random_snapshot(rng) for _ in range(4)]
        left = parts[0]
        for part in parts[1:]:
            left = left.merge(part)
        right = parts[0].merge(parts[1].merge(parts[2].merge(parts[3])))
        assert as_text(left) == as_text(right)

    def test_non_finite_values_still_associative(self):
        def gauge_snapshot(value: float) -> MetricsSnapshot:
            registry = MetricsRegistry()
            registry.gauge("weird", "n.").set(value)
            return registry.snapshot()

        a = gauge_snapshot(float("inf"))
        b = gauge_snapshot(float("-inf"))
        c = gauge_snapshot(1.0)
        merged = a.merge(b)
        assert math.isnan(merged.value("weird"))  # Inf + -Inf = NaN
        # textual equality treats NaN as equal to itself
        assert as_text(a.merge(b).merge(c)) == as_text(a.merge(b.merge(c)))
        assert as_text(a.merge(c)).find("Infinity") >= 0

    def test_kind_mismatch_raises(self):
        counter_reg, gauge_reg = MetricsRegistry(), MetricsRegistry()
        counter_reg.counter("x", "h.").inc()
        gauge_reg.gauge("x", "h.").set(1)
        with pytest.raises(ValueError, match="counter vs gauge"):
            counter_reg.snapshot().merge(gauge_reg.snapshot())

    def test_histogram_bucket_count_mismatch_raises(self):
        narrow, wide = MetricsRegistry(), MetricsRegistry()
        narrow.histogram("h", buckets=(1.0,)).observe(0.5)
        wide.histogram("h", buckets=(1.0, 2.0)).observe(0.5)
        with pytest.raises(ValueError, match="bucket count"):
            narrow.snapshot().merge(wide.snapshot())

    def test_histogram_merge_is_bucketwise(self):
        left, right = MetricsRegistry(), MetricsRegistry()
        for value in (0.25, 3.0):
            left.histogram("h", buckets=BUCKETS).observe(value)
        for value in (0.25, 100.0):
            right.histogram("h", buckets=BUCKETS).observe(value)
        merged = left.snapshot().merge(right.snapshot())
        (data,) = merged.metrics["h"]["series"].values()
        assert data.counts == [2, 1, 0, 1]
        assert data.count == 4
        assert data.sum == pytest.approx(103.5)


class TestExpositionRoundTrip:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_random_snapshot_renders_valid_exposition(self, seed):
        snapshot = random_snapshot(random.Random(5000 + seed))
        text = render_prometheus(snapshot)
        assert validate_exposition(text) == expected_samples(snapshot)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_merge_then_render_stays_valid(self, seed):
        rng = random.Random(6000 + seed)
        merged = random_snapshot(rng).merge(random_snapshot(rng))
        text = render_prometheus(merged)
        assert validate_exposition(text) == expected_samples(merged)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_json_round_trip_preserves_rendering(self, seed):
        snapshot = random_snapshot(random.Random(7000 + seed))
        rebuilt = MetricsSnapshot.from_dict(
            json.loads(json.dumps(snapshot.to_dict()))
        )
        assert render_prometheus(rebuilt) == render_prometheus(snapshot)

    def test_insertion_order_never_changes_rendering(self):
        forward, backward = MetricsRegistry(), MetricsRegistry()
        series = [("b_total", {"tier": "z"}), ("b_total", {"tier": "a"}), ("a_total", {})]
        for name, labels in series:
            forward.counter(name, "h.", **labels).inc()
        for name, labels in reversed(series):
            backward.counter(name, "h.", **labels).inc()
        assert render_prometheus(forward) == render_prometheus(backward)

    @pytest.mark.parametrize(
        "value, rendered",
        [
            (float("nan"), "NaN"),
            (float("inf"), "+Inf"),
            (float("-inf"), "-Inf"),
            (-0.5, "-0.5"),
            (3.0, "3"),
        ],
    )
    def test_special_values_render_and_validate(self, value, rendered):
        registry = MetricsRegistry()
        registry.gauge("weird", "n.").set(value)
        text = render_prometheus(registry.snapshot())
        assert f"weird {rendered}" in text
        assert validate_exposition(text) == 1

    def test_label_escaping_corners(self):
        corners = {
            "backslash": "a\\b",
            "quote": 'say "hi"',
            "newline": "line1\nline2",
            "empty": "",
            "unicode": "π ≈ 3.14159",
            "mixed": 'both \\ and " and \n here',
        }
        registry = MetricsRegistry()
        for case, value in corners.items():
            registry.counter("corner_total", "c.", case=case, v=value).inc()
        text = render_prometheus(registry.snapshot())
        assert validate_exposition(text) == len(corners)
        assert r'v="a\\b"' in text
        assert r'v="say \"hi\""' in text
        assert r'v="line1\nline2"' in text
        assert 'v=""' in text
        assert 'v="π ≈ 3.14159"' in text
        # escaping kept every sample on its own line
        assert len(text.splitlines()) == len(corners) + 2  # + HELP/TYPE

    def test_help_text_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "line1\nline2 with \\ slash").inc()
        text = render_prometheus(registry.snapshot())
        assert r"# HELP c_total line1\nline2 with \\ slash" in text
        assert validate_exposition(text) == 1

    @pytest.mark.parametrize("seed", SEEDS)
    def test_mid_sweep_partial_merges_always_render_valid(self, seed):
        """Any prefix of the orchestrator's fold yields a scrapeable page."""
        rng = random.Random(8000 + seed)
        folded = MetricsSnapshot()
        for _ in range(3):
            folded = folded.merge(random_snapshot(rng))
            text = render_prometheus(folded)
            assert validate_exposition(text) == expected_samples(folded)
