"""Tests for the exact pair Markov chain (Observation 1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.drift import drift_g
from repro.analysis.markov import ExactPairChain, next_count_distribution
from repro.core.engine import SynchronousEngine
from repro.core.population import make_population
from repro.core.rng import spawn_rngs
from repro.protocols.fet import FETProtocol


class TestNextCountDistribution:
    def test_sums_to_one(self):
        dist = next_count_distribution(10, 3, 5, 4)
        assert dist.sum() == pytest.approx(1.0)

    def test_source_floor(self):
        dist = next_count_distribution(10, 3, 5, 4)
        assert dist[0] == 0.0  # the pinned source guarantees k >= 1

    def test_all_ones_absorbing(self):
        n = 8
        dist = next_count_distribution(n, n, n, 4)
        assert dist[n] == pytest.approx(1.0)

    def test_mean_matches_drift_g(self):
        """The chain's conditional mean must equal n·g(x, y) (Observation 1)."""
        n, ell = 20, 5
        for i, j in [(1, 1), (5, 8), (12, 10), (19, 20)]:
            dist = next_count_distribution(n, i, j, ell)
            mean = float((np.arange(n + 1) * dist).sum())
            assert mean / n == pytest.approx(drift_g(i / n, j / n, ell, n), abs=1e-10)

    def test_rejects_zero_count(self):
        with pytest.raises(ValueError):
            next_count_distribution(10, 0, 5, 4)


class TestExactPairChain:
    def test_validation(self):
        with pytest.raises(ValueError):
            ExactPairChain(n=1, ell=2)
        with pytest.raises(ValueError):
            ExactPairChain(n=10, ell=0)
        with pytest.raises(ValueError):
            ExactPairChain(n=100, ell=2)  # too large for the dense solver

    def test_state_indexing_roundtrip(self):
        chain = ExactPairChain(n=7, ell=3)
        for i in range(1, 8):
            for j in range(1, 8):
                s = chain.state_index(i, j)
                assert chain.state_of(s) == (i, j)

    def test_transition_matrix_stochastic(self):
        chain = ExactPairChain(n=8, ell=3)
        matrix = chain.transition_matrix()
        assert matrix.shape == (64, 64)
        assert matrix.sum(axis=1) == pytest.approx(np.ones(64))

    def test_absorbing_state(self):
        chain = ExactPairChain(n=8, ell=3)
        assert chain.is_absorbing()
        matrix = chain.transition_matrix()
        row = matrix[chain.absorbing_index]
        assert row[chain.absorbing_index] == pytest.approx(1.0)

    def test_pair_structure(self):
        """From (i, j) the chain only reaches states of the form (j, k)."""
        chain = ExactPairChain(n=6, ell=3)
        matrix = chain.transition_matrix()
        for i in range(1, 7):
            for j in range(1, 7):
                row = matrix[chain.state_index(i, j)]
                for s in np.nonzero(row)[0]:
                    assert chain.state_of(int(s))[0] == j

    def test_absorption_times_positive(self):
        chain = ExactPairChain(n=8, ell=3)
        times = chain.expected_absorption_times()
        assert times[chain.absorbing_index] == 0.0
        transient = np.delete(times, chain.absorbing_index)
        assert (transient > 0).all()

    def test_near_absorbing_states_are_fast(self):
        chain = ExactPairChain(n=10, ell=4)
        near = chain.expected_time_from(9, 10)  # strong upward trend
        far = chain.expected_time_from(1, 1)
        assert near < far


class TestChainMatchesSimulation:
    def test_expected_time_matches_simulated_mean(self):
        """Ground truth: the engine must reproduce the exact chain's E[T]."""
        n, ell = 10, 4
        chain = ExactPairChain(n=n, ell=ell)
        exact = chain.expected_time_from_all_wrong()

        trials = 600
        total = 0.0
        for rng in spawn_rngs(2024, trials):
            proto = FETProtocol(ell)
            pop = make_population(n, 1)
            # All-wrong with counters matching x_{t-1} = 1/n, i.e. the (1, 1)
            # chain state: prev_count ~ Binomial(ell, 1/n).
            state = {"prev_count": rng.binomial(ell, 1 / n, size=n).astype(np.int64)}
            engine = SynchronousEngine(proto, pop, rng=rng, state=state)
            rounds = 0
            # Absorption at (n, n): two consecutive all-ones rounds.
            prev_all_ones = pop.at_correct_consensus()
            while rounds < 3000:
                engine.step()
                rounds += 1
                now_all_ones = pop.at_correct_consensus()
                if prev_all_ones and now_all_ones:
                    break
                prev_all_ones = now_all_ones
            total += rounds
        mean = total / trials
        # The exact chain counts steps of the pair process; the simulated
        # count reaches (n, n) one pair-transition at a time. Allow 10%
        # Monte-Carlo tolerance plus a one-round offset ambiguity.
        assert mean == pytest.approx(exact + 1, rel=0.12, abs=1.0)
