"""Tests for PopulationState and the population factories."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.population import (
    PopulationState,
    make_majority_population,
    make_population,
)


class TestMakePopulation:
    def test_basic_shape(self):
        pop = make_population(10, 1)
        assert pop.n == 10
        assert pop.num_sources == 1
        assert pop.correct_opinion == 1

    def test_source_starts_correct(self):
        pop = make_population(10, 1)
        assert pop.opinions[pop.source_mask].tolist() == [1]

    def test_nonsources_start_wrong(self):
        pop = make_population(10, 1)
        assert (pop.opinions[~pop.source_mask] == 0).all()

    def test_correct_zero(self):
        pop = make_population(10, 0)
        assert pop.opinions[pop.source_mask].tolist() == [0]
        assert (pop.opinions[~pop.source_mask] == 1).all()

    def test_multiple_sources(self):
        pop = make_population(10, 1, num_sources=3)
        assert pop.num_sources == 3
        assert (pop.source_preferences[pop.source_mask] == 1).all()

    def test_custom_source_indices(self):
        pop = make_population(10, 1, source_indices=[4, 7])
        assert pop.source_mask[4] and pop.source_mask[7]
        assert pop.num_sources == 2

    def test_rejects_bad_num_sources(self):
        with pytest.raises(ValueError):
            make_population(5, 1, num_sources=0)
        with pytest.raises(ValueError):
            make_population(5, 1, num_sources=5)

    def test_rejects_tiny_population(self):
        with pytest.raises(ValueError):
            make_population(1, 1)

    def test_rejects_bad_opinion(self):
        with pytest.raises(ValueError):
            make_population(5, 2)


class TestFractions:
    def test_fraction_ones_initial(self):
        pop = make_population(10, 1)
        assert pop.fraction_ones() == pytest.approx(0.1)

    def test_count_ones(self):
        pop = make_population(10, 1)
        assert pop.count_ones() == 1

    def test_nonsource_correct_fraction(self):
        pop = make_population(10, 1)
        assert pop.nonsource_correct_fraction() == 0.0
        pop.set_opinions(np.ones(10, dtype=np.uint8))
        assert pop.nonsource_correct_fraction() == 1.0


class TestSetOpinions:
    def test_pins_source(self):
        pop = make_population(10, 1)
        pop.set_opinions(np.zeros(10, dtype=np.uint8))
        assert pop.opinions[0] == 1  # source re-pinned

    def test_shape_mismatch_rejected(self):
        pop = make_population(10, 1)
        with pytest.raises(ValueError):
            pop.set_opinions(np.zeros(9, dtype=np.uint8))

    def test_no_pin_when_disabled(self):
        pop = make_majority_population(10, k0=2, k1=1)
        pop.set_opinions(np.ones(10, dtype=np.uint8))
        # k0 sources prefer 0 but are not pinned in the majority variant.
        assert (pop.opinions == 1).all()


class TestAdversarialOpinions:
    def test_copies_input(self):
        pop = make_population(10, 1)
        arr = np.ones(10, dtype=np.uint8)
        pop.adversarial_opinions(arr)
        arr[5] = 0
        assert pop.opinions[5] == 1

    def test_pins_by_default(self):
        pop = make_population(10, 1)
        pop.adversarial_opinions(np.zeros(10, dtype=np.uint8))
        assert pop.opinions[0] == 1

    def test_unpinned_mode(self):
        pop = make_majority_population(10, k0=2, k1=1)
        pop.adversarial_opinions(np.ones(10, dtype=np.uint8), pin_sources=False)
        assert (pop.opinions == 1).all()

    def test_rejects_non_binary(self):
        pop = make_population(10, 1)
        with pytest.raises(ValueError):
            pop.adversarial_opinions(np.full(10, 3, dtype=np.uint8))


class TestPredicates:
    def test_at_consensus_false_initially(self):
        assert not make_population(10, 1).at_consensus()

    def test_at_correct_consensus(self):
        pop = make_population(10, 1)
        pop.set_opinions(np.ones(10, dtype=np.uint8))
        assert pop.at_consensus()
        assert pop.at_correct_consensus()

    def test_wrong_consensus_detected(self):
        pop = make_majority_population(10, k0=2, k1=1)
        pop.set_opinions(np.ones(10, dtype=np.uint8))
        assert pop.at_consensus()
        assert not pop.at_correct_consensus()  # correct is 0 (k0 majority)


class TestCopy:
    def test_independent_copy(self):
        pop = make_population(10, 1)
        clone = pop.copy()
        clone.opinions[5] = 1
        assert pop.opinions[5] == 0

    def test_copy_preserves_fields(self):
        pop = make_majority_population(12, k0=3, k1=1)
        clone = pop.copy()
        assert clone.correct_opinion == 0
        assert clone.num_sources == 4
        assert clone.pin_each_round == pop.pin_each_round


class TestMajorityPopulation:
    def test_majority_decides_correct(self):
        assert make_majority_population(20, k0=4, k1=2).correct_opinion == 0
        assert make_majority_population(20, k0=2, k1=4).correct_opinion == 1

    def test_tie_rejected(self):
        with pytest.raises(ValueError):
            make_majority_population(20, k0=3, k1=3)

    def test_too_many_sources_rejected(self):
        with pytest.raises(ValueError):
            make_majority_population(5, k0=3, k1=2)

    def test_no_sources_rejected(self):
        with pytest.raises(ValueError):
            make_majority_population(5, k0=0, k1=0)

    def test_sources_unpinned(self):
        assert make_majority_population(20, k0=4, k1=2).pin_each_round is False


class TestValidation:
    def test_requires_source(self):
        with pytest.raises(ValueError):
            PopulationState(
                opinions=np.zeros(5, dtype=np.uint8),
                source_mask=np.zeros(5, dtype=bool),
                source_preferences=np.zeros(5, dtype=np.uint8),
                correct_opinion=0,
            )

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            PopulationState(
                opinions=np.zeros(5, dtype=np.uint8),
                source_mask=np.zeros(4, dtype=bool),
                source_preferences=np.zeros(5, dtype=np.uint8),
                correct_opinion=0,
            )

    def test_rejects_non_binary_opinions(self):
        mask = np.zeros(5, dtype=bool)
        mask[0] = True
        with pytest.raises(ValueError):
            PopulationState(
                opinions=np.full(5, 2, dtype=np.uint8),
                source_mask=mask,
                source_preferences=np.zeros(5, dtype=np.uint8),
                correct_opinion=0,
            )
