"""Tests for the Figure 1a / Figure 2 domain partitions."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.domains import DEFAULT_DELTA, Domain, DomainPartition, YellowArea


@pytest.fixture
def part():
    return DomainPartition(n=1000, delta=0.05)


class TestConstruction:
    def test_rejects_bad_delta(self):
        with pytest.raises(ValueError):
            DomainPartition(n=100, delta=0.5)
        with pytest.raises(ValueError):
            DomainPartition(n=100, delta=0.0)

    def test_rejects_tiny_n(self):
        with pytest.raises(ValueError):
            DomainPartition(n=2)

    def test_thresholds(self, part):
        assert part.inv_log_n == pytest.approx(1 / np.log(1000))
        assert part.lambda_n == pytest.approx(1 / np.log(1000) ** 0.55)

    def test_default_delta(self):
        assert DomainPartition(n=100).delta == DEFAULT_DELTA


class TestSide1Membership:
    def test_green1(self, part):
        assert part.classify(0.3, 0.5) is Domain.GREEN1

    def test_green0(self, part):
        assert part.classify(0.5, 0.3) is Domain.GREEN0

    def test_yellow_center(self, part):
        assert part.classify(0.5, 0.5) is Domain.YELLOW

    def test_yellow_offset(self, part):
        assert part.classify(0.52, 0.55) is Domain.YELLOW

    def test_cyan1_near_zero(self, part):
        assert part.classify(0.01, 0.02) is Domain.CYAN1

    def test_cyan0_near_one(self, part):
        assert part.classify(0.99, 0.98) is Domain.CYAN0

    def test_purple1(self, part):
        # x in [1/log n, 1/2 - 3delta), y inside ((1 - lambda)x, x + delta).
        assert part.classify(0.3, 0.28) is Domain.PURPLE1

    def test_red1_needs_large_n(self):
        """Red1 is non-empty only once λ_n·x < δ — around n ≈ 10⁶ for δ=0.05.

        At n = 1000 the paper's λ_n ≈ 0.35 makes Red1 empty (a finite-size
        artifact of the asymptotic partition, documented in EXPERIMENTS.md).
        """
        big = DomainPartition(n=10**6, delta=0.05)
        assert big.classify(0.105, 0.075) is Domain.RED1

    def test_red1_empty_at_moderate_n(self, part):
        xs = np.linspace(0.0, 1.0, 101)
        labels = {
            part.classify(float(x), float(y)) for x in xs for y in xs
        }
        assert Domain.RED1 not in labels

    def test_purple0_red0_by_symmetry(self):
        big = DomainPartition(n=10**6, delta=0.05)
        assert big.classify(1 - 0.3, 1 - 0.28) is Domain.PURPLE0
        assert big.classify(1 - 0.105, 1 - 0.075) is Domain.RED0

    def test_interior_fully_covered(self, part):
        """Away from boundary lines the partition covers the whole square.

        (The only NONE points found numerically sit within float epsilon of
        the y = x ± δ frontier; random points avoid them almost surely.)
        """
        rng = np.random.default_rng(123)
        for _ in range(1000):
            x, y = rng.random(2)
            assert part.classify(float(x), float(y)) is not Domain.NONE

    def test_out_of_square_rejected(self, part):
        with pytest.raises(ValueError):
            part.classify(1.2, 0.5)


class TestSymmetry:
    def test_point_reflection_swaps_sides(self, part):
        rng = np.random.default_rng(0)
        swap = {
            Domain.GREEN1: Domain.GREEN0,
            Domain.GREEN0: Domain.GREEN1,
            Domain.PURPLE1: Domain.PURPLE0,
            Domain.PURPLE0: Domain.PURPLE1,
            Domain.RED1: Domain.RED0,
            Domain.RED0: Domain.RED1,
            Domain.CYAN1: Domain.CYAN0,
            Domain.CYAN0: Domain.CYAN1,
            Domain.YELLOW: Domain.YELLOW,
            Domain.NONE: Domain.NONE,
        }
        for _ in range(500):
            x, y = rng.random(2)
            a = part.classify(float(x), float(y))
            b = part.classify(float(1 - x), float(1 - y))
            assert swap[a] is b


class TestFamilies:
    def test_family_names(self):
        assert Domain.GREEN1.family == "Green"
        assert Domain.CYAN0.family == "Cyan"
        assert Domain.YELLOW.family == "Yellow"
        assert Domain.NONE.family == "None"

    def test_classify_pairs(self, part):
        pairs = np.array([[0.3, 0.5], [0.5, 0.5]])
        labels = part.classify_pairs(pairs)
        assert labels == [Domain.GREEN1, Domain.YELLOW]


class TestDomainGeometry:
    """Structural facts the proof relies on."""

    def test_green_has_high_speed(self, part):
        rng = np.random.default_rng(1)
        for _ in range(300):
            x, y = rng.random(2)
            if part.classify(float(x), float(y)) in (Domain.GREEN1, Domain.GREEN0):
                assert part.speed(float(x), float(y)) >= part.delta

    def test_yellow_has_low_speed(self, part):
        rng = np.random.default_rng(2)
        for _ in range(300):
            x, y = rng.random(2)
            if part.classify(float(x), float(y)) is Domain.YELLOW:
                assert part.speed(float(x), float(y)) < part.delta

    def test_cyan_is_near_a_wrong_consensus(self, part):
        rng = np.random.default_rng(3)
        for _ in range(300):
            x, y = rng.random(2)
            if part.classify(float(x), float(y)) is Domain.CYAN1:
                assert min(x, y) < part.inv_log_n

    def test_red1_contracts(self, part):
        """In Red1 the fraction decays by the (1 - lambda) factor."""
        rng = np.random.default_rng(4)
        for _ in range(500):
            x, y = rng.random(2)
            if part.classify(float(x), float(y)) is Domain.RED1:
                assert y < (1 - part.lambda_n) * x


class TestYellowPrime:
    def test_square_bounds(self, part):
        assert part.yellow_prime_lo == pytest.approx(0.3)
        assert part.yellow_prime_hi == pytest.approx(0.7)

    def test_yellow_subset_of_yellow_prime(self, part):
        rng = np.random.default_rng(5)
        for _ in range(500):
            x, y = rng.random(2)
            if part.classify(float(x), float(y)) is Domain.YELLOW:
                assert part.in_yellow_prime(float(x), float(y))

    def test_outside_label(self, part):
        assert part.classify_yellow_area(0.1, 0.1) is YellowArea.OUTSIDE

    def test_a1_membership(self, part):
        assert part.classify_yellow_area(0.5, 0.6) is YellowArea.A1

    def test_b1_membership(self, part):
        # y >= x, slow climb: y - x < x - 1/2.
        assert part.classify_yellow_area(0.6, 0.62) is YellowArea.B1

    def test_c1_membership(self, part):
        assert part.classify_yellow_area(0.4, 0.45) is YellowArea.C1

    def test_side0_by_symmetry(self, part):
        assert part.classify_yellow_area(0.5, 0.4) is YellowArea.A0
        assert part.classify_yellow_area(0.4, 0.38) is YellowArea.B0
        assert part.classify_yellow_area(0.6, 0.55) is YellowArea.C0

    def test_full_coverage(self, part):
        """Every point of Yellow' belongs to one of the six areas."""
        grid = np.linspace(part.yellow_prime_lo, part.yellow_prime_hi, 60)
        for x in grid:
            for y in grid:
                area = part.classify_yellow_area(float(x), float(y))
                assert area is not YellowArea.OUTSIDE

    def test_family_names(self):
        assert YellowArea.A1.family == "A"
        assert YellowArea.OUTSIDE.family == "outside"


class TestGridLabels:
    def test_shapes(self, part):
        xs, ys, labels = part.grid_labels(21)
        assert xs.shape == (21,)
        assert len(labels) == 21
        assert len(labels[0]) == 21

    def test_corner_labels(self, part):
        xs, ys, labels = part.grid_labels(11)
        assert labels[10][0] is Domain.GREEN1  # (x=0, y=1)
        assert labels[0][10] is Domain.GREEN0  # (x=1, y=0)
        assert labels[0][0] is Domain.CYAN1  # (0, 0)
        assert labels[10][10] is Domain.CYAN0  # (1, 1)
