"""Shared fixtures and deterministic helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.population import make_population
from repro.core.rng import make_rng
from repro.core.sampling import Sampler


class ScriptedCountSampler(Sampler):
    """Sampler returning pre-scripted per-agent counts.

    Each call to :meth:`counts` (or each block of :meth:`count_blocks`) pops
    the next scripted vector. Lets protocol-semantics tests drive FET's
    comparisons deterministically.
    """

    def __init__(self, scripted: list[np.ndarray]) -> None:
        self.scripted = [np.asarray(v, dtype=np.int64) for v in scripted]
        self.cursor = 0

    def counts(self, population, ell, rng):
        if self.cursor >= len(self.scripted):
            raise AssertionError("scripted sampler exhausted")
        out = self.scripted[self.cursor]
        self.cursor += 1
        if out.shape != (population.n,):
            raise AssertionError("scripted vector has wrong shape")
        return out


@pytest.fixture
def rng():
    return make_rng(12345)


@pytest.fixture
def small_population():
    return make_population(50, correct_opinion=1)


def scripted_sampler(*vectors) -> ScriptedCountSampler:
    return ScriptedCountSampler(list(vectors))


def pytest_configure(config):
    # The chaos/watchdog tests mark themselves with per-test timeouts that
    # pytest-timeout enforces in CI; locally (plugin absent) the mark must
    # still be registered so it does not warn.
    config.addinivalue_line(
        "markers",
        "timeout(seconds): per-test wall-clock budget (enforced when the "
        "pytest-timeout plugin is installed, as in CI)",
    )
    config.addinivalue_line(
        "markers",
        "metrics_smoke: end-to-end telemetry smoke (CI runs these "
        "separately with `pytest -m metrics_smoke` after the demo sweep)",
    )
