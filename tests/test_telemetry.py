"""Telemetry subsystem: registry, exposition, snapshots, instrumentation.

The acceptance contract (ISSUE 7): sweep counter aggregates are
byte-identical between ``jobs=1`` and ``jobs=4``; a fault-injected grid's
``repro_sweep_retries_total`` / ``repro_sweep_worker_crashes_total`` /
``repro_cells_failed_total`` match the injected :class:`FaultPlan` exactly;
the Prometheus exposition parses; telemetry off means no registry is ever
consulted beyond one ``None`` check.
"""

from __future__ import annotations

import io
import json
import math
import threading
import time
from pathlib import Path

import pytest

from repro import cli
from repro.sweep import (
    CellTimeoutError,
    FailedItem,
    FaultInjector,
    FaultPlan,
    FaultPolicy,
    ResultsStore,
    SerialDispatcher,
    SweepSpec,
    execute_cell,
    run_sweep,
)
from repro.sweep.runner import RESULT_COLUMNS, CellResult, MeteredCell
from repro.telemetry import (
    MetricsRegistry,
    MetricsSnapshot,
    ProgressLine,
    current_registry,
    render_prometheus,
    use_registry,
    validate_exposition,
)


def small_grid(seed: int = 7, **overrides) -> SweepSpec:
    """Six fast FET cells: 3 sizes x 2 starts."""
    settings = dict(
        name="telemetry-grid",
        seed=seed,
        trials=2,
        axes={
            "protocol": [{"name": "fet", "ell": 8}],
            "n": [60, 90, 120],
            "initializer": ["all-wrong", {"name": "bernoulli", "p": 0.5}],
        },
        max_rounds=120,
    )
    settings.update(overrides)
    return SweepSpec(**settings)


def record_policy(**overrides) -> FaultPolicy:
    settings = dict(max_retries=2, backoff_base=0.0, jitter=0.0, on_failure="record")
    settings.update(overrides)
    return FaultPolicy(**settings)


def counters_dict(snapshot: MetricsSnapshot) -> dict:
    """The deterministic (non-histogram) slice of a snapshot, as JSON text.

    Wall-clock histograms legitimately differ between runs; every counter
    and gauge must not.
    """
    return snapshot.select(lambda name, kind: kind != "histogram").to_dict()


# --------------------------------------------------------------- registry


class TestRegistry:
    def test_counter_accumulates_and_rejects_negative(self):
        reg = MetricsRegistry()
        c = reg.counter("hits_total", "Hits.")
        c.inc()
        c.inc(2.5)
        assert reg.value("hits_total") == 3.5
        with pytest.raises(ValueError, match=">= 0"):
            c.inc(-1)

    def test_gauge_set_inc_dec(self):
        reg = MetricsRegistry()
        g = reg.gauge("depth", "Depth.")
        g.set(5)
        g.inc(2)
        g.dec(3)
        assert reg.value("depth") == 4

    def test_histogram_bucket_placement_is_le_inclusive(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(0.1, 1.0))
        for v in (0.05, 0.1, 0.5, 1.0, 2.0):
            h.observe(v)
        # bisect_left: an observation exactly at a bound lands in that
        # bucket, matching Prometheus `le` (less-or-equal) semantics.
        assert h.counts == [2, 2, 1]
        assert h.count == 5

    def test_timer_observes_elapsed(self):
        reg = MetricsRegistry()
        with reg.timer("span_seconds", "Spans."):
            time.sleep(0.01)
        h = reg.histogram("span_seconds")
        assert h.count == 1
        assert h.sum >= 0.01

    def test_labels_create_distinct_series_and_total_sums_them(self):
        reg = MetricsRegistry()
        reg.counter("cells_total", tier="a").inc(2)
        reg.counter("cells_total", tier="b").inc(3)
        assert reg.value("cells_total", tier="a") == 2
        assert reg.value("cells_total", tier="b") == 3
        assert reg.total("cells_total") == 5

    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x_total")
        with pytest.raises(ValueError, match="already registered as counter"):
            reg.gauge("x_total")

    def test_bucket_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.histogram("h", buckets=(1.0, 2.0))
        with pytest.raises(ValueError, match="different buckets"):
            reg.histogram("h", buckets=(1.0, 3.0))

    def test_invalid_names_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError, match="invalid metric name"):
            reg.counter("bad-name")
        with pytest.raises(ValueError, match="invalid label name"):
            reg.counter("fine", **{"__reserved": "x"})

    def test_misshapen_buckets_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError, match="strictly increasing"):
            reg.histogram("h", buckets=(2.0, 1.0))
        with pytest.raises(ValueError, match="strictly increasing"):
            reg.histogram("h2", buckets=())


# ------------------------------------------------------- ambient registry


class TestAmbientRegistry:
    def test_off_by_default(self):
        assert current_registry() is None

    def test_use_registry_installs_and_resets(self):
        reg = MetricsRegistry()
        with use_registry(reg):
            assert current_registry() is reg
        assert current_registry() is None

    def test_new_threads_start_clean(self):
        """Helper threads must not inherit (or corrupt) the parent registry:
        the serial watchdog abandons threads that may write metrics later."""
        reg = MetricsRegistry()
        seen: list = []
        with use_registry(reg):
            thread = threading.Thread(target=lambda: seen.append(current_registry()))
            thread.start()
            thread.join()
            assert current_registry() is reg
        assert seen == [None]


# ------------------------------------------------------------- exposition


class TestExposition:
    def golden_registry(self) -> MetricsRegistry:
        reg = MetricsRegistry()
        reg.counter("demo_jobs_total", "Jobs processed.", queue='a"b\\c\nd').inc(3)
        reg.gauge("demo_temperature", "Degrees.\nSecond line.").set(1.5)
        h = reg.histogram("demo_latency_seconds", "Latency.", buckets=(0.1, 1.0))
        for v in (0.5, 0.25, 5.0):
            h.observe(v)
        return reg

    def test_golden_exposition(self):
        expected = "\n".join(
            [
                "# HELP demo_jobs_total Jobs processed.",
                "# TYPE demo_jobs_total counter",
                r'demo_jobs_total{queue="a\"b\\c\nd"} 3',
                "# HELP demo_latency_seconds Latency.",
                "# TYPE demo_latency_seconds histogram",
                'demo_latency_seconds_bucket{le="0.1"} 0',
                'demo_latency_seconds_bucket{le="1"} 2',
                'demo_latency_seconds_bucket{le="+Inf"} 3',
                "demo_latency_seconds_sum 5.75",
                "demo_latency_seconds_count 3",
                r"# HELP demo_temperature Degrees.\nSecond line.",
                "# TYPE demo_temperature gauge",
                "demo_temperature 1.5",
                "",
            ]
        )
        assert render_prometheus(self.golden_registry()) == expected

    def test_golden_validates(self):
        assert validate_exposition(render_prometheus(self.golden_registry())) == 7

    def test_rendering_is_insertion_order_independent(self):
        a = MetricsRegistry()
        a.counter("one_total").inc()
        a.counter("two_total", side="l").inc()
        a.counter("two_total", side="r").inc(2)
        b = MetricsRegistry()
        b.counter("two_total", side="r").inc(2)
        b.counter("two_total", side="l").inc()
        b.counter("one_total").inc()
        assert render_prometheus(a) == render_prometheus(b)

    def test_nan_and_inf_render(self):
        reg = MetricsRegistry()
        reg.gauge("g_nan").set(float("nan"))
        reg.gauge("g_inf").set(math.inf)
        text = render_prometheus(reg)
        assert "g_nan NaN" in text
        assert "g_inf +Inf" in text
        validate_exposition(text)

    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry()) == ""
        assert validate_exposition("") == 0

    def test_validator_rejects_malformed(self):
        with pytest.raises(ValueError, match="no preceding # TYPE"):
            validate_exposition("orphan_total 3\n")
        with pytest.raises(ValueError, match="malformed sample"):
            validate_exposition("# TYPE x counter\nx three\n")
        with pytest.raises(ValueError, match="duplicate TYPE"):
            validate_exposition("# TYPE x counter\n# TYPE x gauge\n")
        with pytest.raises(ValueError, match="malformed comment"):
            validate_exposition("# TYPE x summary2\n")

    def test_validator_resolves_histogram_suffixes(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="+Inf"} 1\n'
            "h_sum 0.5\n"
            "h_count 1\n"
        )
        assert validate_exposition(text) == 3
        with pytest.raises(ValueError, match="no preceding # TYPE"):
            validate_exposition("# TYPE h counter\nh_bucket 1\n")


# ---------------------------------------------------------------- snapshot


class TestSnapshot:
    def populated(self) -> MetricsRegistry:
        reg = MetricsRegistry()
        reg.counter("c_total", "C.", tier="x").inc(2)
        reg.gauge("g").set(1.5)
        reg.histogram("h", buckets=(0.5, 1.0)).observe(0.75)
        return reg

    def test_to_dict_round_trip(self):
        snap = self.populated().snapshot()
        data = snap.to_dict()
        assert data["schema"] == 1
        again = MetricsSnapshot.from_dict(json.loads(json.dumps(data)))
        assert again.to_dict() == data

    def test_from_dict_rejects_unknown_schema(self):
        with pytest.raises(ValueError, match="schema"):
            MetricsSnapshot.from_dict({"schema": 99, "metrics": []})

    def test_merge_adds(self):
        snap = self.populated().snapshot()
        merged = snap.merge(snap)
        assert merged.value("c_total", tier="x") == 4
        assert merged.value("g") == 3.0
        # original untouched
        assert snap.value("c_total", tier="x") == 2

    def test_merge_associative_on_exact_values(self):
        # Binary-exact values: associativity holds exactly. (For arbitrary
        # floats only a canonical merge ORDER gives byte identity, which is
        # what the orchestrator does.)
        regs = []
        for inc, obs in ((1, 0.5), (2, 0.25), (4, 2.0)):
            reg = MetricsRegistry()
            reg.counter("c_total").inc(inc)
            reg.histogram("h", buckets=(1.0,)).observe(obs)
            regs.append(reg.snapshot())
        a, b, c = regs
        left = a.merge(b).merge(c)
        right = a.merge(b.merge(c))
        assert left.to_dict() == right.to_dict()

    def test_merge_snapshot_into_registry(self):
        reg = self.populated()
        reg.merge_snapshot(self.populated().snapshot())
        assert reg.value("c_total", tier="x") == 4
        assert reg.histogram("h", buckets=(0.5, 1.0)).count == 2

    def test_merge_mismatched_buckets_rejected(self):
        reg = MetricsRegistry()
        reg.histogram("h", buckets=(1.0,)).observe(0.5)
        other = MetricsRegistry()
        other.histogram("h", buckets=(1.0, 2.0)).observe(0.5)
        with pytest.raises(ValueError):
            reg.merge_snapshot(other.snapshot())

    def test_select_filters_families(self):
        snap = self.populated().snapshot()
        counters = snap.select(lambda name, kind: kind == "counter")
        names = {m["name"] for m in counters.to_dict()["metrics"]}
        assert names == {"c_total"}


# ------------------------------------------------- engine instrumentation


class TestEngineInstrumentation:
    def test_execute_cell_reports_engine_and_tier_counters(self):
        cell = small_grid().expand()[0]
        reg = MetricsRegistry()
        with use_registry(reg):
            result = execute_cell(cell)
        assert not result.failed
        assert reg.total("repro_engine_rounds_total") > 0
        assert reg.total("repro_engine_replicas_retired_total") == 2  # trials
        assert reg.total("repro_sampler_tier_rows_total") > 0
        assert reg.histogram("repro_engine_run_seconds", engine="batched").count >= 1

    def test_metered_cell_ships_snapshot_by_value(self):
        cell = small_grid().expand()[0]
        result = MeteredCell(execute_cell)(cell)
        assert result.metrics is not None
        snap = MetricsSnapshot.from_dict(result.metrics)
        assert snap.total("repro_engine_replicas_retired_total") == 2
        # ... without touching any ambient registry.
        assert current_registry() is None

    def test_telemetry_off_attaches_nothing(self):
        cell = small_grid().expand()[0]
        result = execute_cell(cell)
        assert result.metrics is None
        assert result.elapsed_s is not None and result.elapsed_s > 0


# ----------------------------------------------------- sweep instrumentation


class TestSweepTelemetry:
    def test_counters_byte_identical_across_job_counts(self, tmp_path):
        spec = small_grid()
        cells = spec.expand()
        plan = FaultPlan(faults={0: {0: "raise"}, 2: {0: "raise", 1: "raise", 2: "raise"}})
        snapshots = {}
        for jobs in (1, 4):
            inj = FaultInjector(execute_cell, plan, cells, tmp_path / f"j{jobs}")
            result = run_sweep(
                spec, jobs=jobs, metrics=MetricsRegistry(), policy=record_policy(),
                work_fn=inj,
            )
            snapshots[jobs] = result.metrics
        left = json.dumps(counters_dict(snapshots[1]), sort_keys=True)
        right = json.dumps(counters_dict(snapshots[4]), sort_keys=True)
        assert left == right

    def test_fault_counters_match_plan_exactly(self, tmp_path):
        spec = small_grid()
        cells = spec.expand()
        # Cell 0: one raise then clean; cell 2: raises through every attempt.
        plan = FaultPlan(faults={0: {0: "raise"}, 2: {0: "raise", 1: "raise", 2: "raise"}})
        inj = FaultInjector(execute_cell, plan, cells, tmp_path / "counters")
        result = run_sweep(
            spec, jobs=1, metrics=MetricsRegistry(), policy=record_policy(), work_fn=inj
        )
        snap = result.metrics
        assert snap.total("repro_sweep_retries_total") == 3  # 1 + 2 granted
        assert snap.total("repro_cells_failed_total") == 1
        assert snap.total("repro_cells_completed_total") == 5
        assert snap.total("repro_sweep_worker_crashes_total") == 0
        assert snap.total("repro_sweep_watchdog_expiries_total") == 0
        assert snap.total("repro_sweep_inflight_cells") == 0

    @pytest.mark.timeout(120)
    def test_worker_kill_counts_one_crash_event(self, tmp_path):
        spec = small_grid()
        cells = spec.expand()
        plan = FaultPlan(faults={1: {0: "kill"}})
        inj = FaultInjector(execute_cell, plan, cells, tmp_path / "counters")
        result = run_sweep(
            spec, jobs=2, metrics=MetricsRegistry(), policy=record_policy(), work_fn=inj
        )
        snap = result.metrics
        # One planned kill = one pool-breakage event, however many innocent
        # in-flight cells it charged alongside the victim.
        assert snap.total("repro_sweep_worker_crashes_total") == 1
        assert snap.total("repro_cells_failed_total") == 0
        assert snap.total("repro_cells_completed_total") == 6
        assert snap.total("repro_sweep_retries_total") >= 1

    def test_results_identical_with_and_without_telemetry(self):
        spec = small_grid()
        plain = run_sweep(spec)
        metered = run_sweep(spec, metrics=MetricsRegistry())
        assert [r.payload for r in plain.results] == [r.payload for r in metered.results]
        assert plain.metrics is None
        assert metered.metrics is not None

    def test_sweep_result_snapshot_renders_and_validates(self):
        result = run_sweep(small_grid(), metrics=MetricsRegistry())
        text = render_prometheus(result.metrics)
        assert validate_exposition(text) > 0
        assert "repro_cells_completed_total 6" in text

    def test_cache_hit_and_miss_counters(self, tmp_path):
        spec = small_grid()
        store = tmp_path / "store.jsonl"
        first = run_sweep(spec, store=store, durable=False, metrics=MetricsRegistry())
        assert first.metrics.total("repro_store_cache_misses_total") == 6
        assert first.metrics.total("repro_store_cache_hits_total") == 0
        assert first.metrics.total("repro_store_appends_total") == 6
        second = run_sweep(spec, store=store, durable=False, metrics=MetricsRegistry())
        assert second.metrics.total("repro_store_cache_hits_total") == 6
        assert second.metrics.total("repro_cells_cached_total") == 6
        assert second.metrics.total("repro_cells_completed_total") == 0
        assert second.cached == 6


# -------------------------------------------------------- serial watchdog


class _HangFirstAttempt:
    """Sleeps long on the first call for the marked item, clean after."""

    def __init__(self, victim: int, sleep: float = 10.0) -> None:
        self.victim = victim
        self.sleep = sleep
        self.calls: dict[int, int] = {}

    def __call__(self, item: int) -> int:
        attempt = self.calls.get(item, 0)
        self.calls[item] = attempt + 1
        if item == self.victim and attempt == 0:
            time.sleep(self.sleep)
        return item * 10


class TestSerialWatchdog:
    @pytest.mark.timeout(60)
    def test_hung_cell_is_abandoned_and_retried(self):
        reg = MetricsRegistry()
        start = time.monotonic()
        with use_registry(reg):
            results = SerialDispatcher().map(
                _HangFirstAttempt(victim=1),
                [0, 1, 2],
                policy=record_policy(max_retries=1, timeout=0.3),
            )
        assert results == [0, 10, 20]
        assert time.monotonic() - start < 5.0  # did not sit out the sleep
        assert reg.total("repro_sweep_watchdog_expiries_total") == 1
        assert reg.total("repro_sweep_retries_total") == 1
        assert reg.total("repro_sweep_inflight_cells") == 0

    @pytest.mark.timeout(60)
    def test_timeout_exhaustion_recorded(self):
        results = SerialDispatcher().map(
            _HangFirstAttempt(victim=0, sleep=60.0),
            [0],
            policy=record_policy(max_retries=0, timeout=0.2),
        )
        (failed,) = results
        assert isinstance(failed, FailedItem)
        assert failed.error_type == "CellTimeoutError"
        assert [entry["kind"] for entry in failed.attempts] == ["timeout"]

    @pytest.mark.timeout(60)
    def test_timeout_raises_by_default(self):
        class _AlwaysHang:
            def __call__(self, item):
                time.sleep(60)

        with pytest.raises(CellTimeoutError, match="0.2s per-cell timeout"):
            SerialDispatcher().map(
                _AlwaysHang(), [0], policy=FaultPolicy(timeout=0.2)
            )

    def test_no_timeout_runs_truly_inline(self):
        """Without a timeout the watchdog thread stays out of the way."""
        main_thread = threading.current_thread()
        seen = []
        SerialDispatcher().map(
            lambda item: seen.append(threading.current_thread() is main_thread),
            [0],
        )
        assert seen == [True]


# --------------------------------------------------------------- elapsed_s


class TestElapsedSeconds:
    def test_row_carries_elapsed_only_when_present(self):
        cell = small_grid().expand()[0]
        result = execute_cell(cell)
        assert result.elapsed_s is not None
        assert result.row()["elapsed_s"] == result.elapsed_s
        bare = CellResult(key="k", cell=result.cell, payload=result.payload)
        assert "elapsed_s" not in bare.row()
        assert "elapsed_s" not in RESULT_COLUMNS

    def test_store_round_trip_preserves_elapsed(self, tmp_path):
        spec = small_grid()
        store_path = tmp_path / "store.jsonl"
        run_sweep(spec, store=store_path, durable=False)
        store = ResultsStore(store_path)
        for key in store.keys():
            stamp = store.get(key)["provenance"]
            assert stamp["elapsed_s"] > 0
        resumed = run_sweep(spec, store=store_path, durable=False)
        assert all(r.cached and r.elapsed_s is not None for r in resumed.results)

    def test_legacy_records_load_without_elapsed(self, tmp_path):
        spec = small_grid()
        cell = spec.expand()[0]
        store_path = tmp_path / "store.jsonl"
        fresh = execute_cell(cell)
        legacy = ResultsStore(store_path)
        legacy.put(cell.key(), {"cell": fresh.cell, "payload": fresh.payload})
        record = ResultsStore(store_path).get(cell.key())
        assert "elapsed_s" not in record["provenance"]
        result = run_sweep(spec, store=store_path, durable=False)
        served = {r.key: r for r in result.results}
        assert served[cell.key()].cached
        assert served[cell.key()].elapsed_s is None

    def test_csv_bytes_unchanged_by_telemetry(self, tmp_path):
        spec = small_grid()
        run_sweep(spec).write_csv(tmp_path / "plain.csv")
        run_sweep(spec, metrics=MetricsRegistry()).write_csv(tmp_path / "metered.csv")
        assert (tmp_path / "plain.csv").read_bytes() == (
            tmp_path / "metered.csv"
        ).read_bytes()


# ------------------------------------------------------------ store counters


class TestStoreCounters:
    def test_checksum_failure_counted(self, tmp_path):
        path = tmp_path / "store.jsonl"
        store = ResultsStore(path)
        store.put("k1", {"cell": {}, "payload": {"x": 1}})
        lines = path.read_text().splitlines()
        record = json.loads(lines[0])
        record["payload"]["x"] = 999  # silent tamper: checksum now stale
        path.write_text(json.dumps(record, sort_keys=True) + "\n")
        reg = MetricsRegistry()
        with use_registry(reg):
            tampered = ResultsStore(path)
        assert tampered.get("k1") is None
        assert tampered.checksum_failures == 1
        assert reg.total("repro_store_checksum_failures_total") == 1

    def test_compact_drop_reasons_counted(self, tmp_path):
        path = tmp_path / "store.jsonl"
        store = ResultsStore(path)
        store.put("k1", {"cell": {}, "payload": {"x": 1}})
        store.put("k1", {"cell": {}, "payload": {"x": 2}})  # supersedes
        with path.open("a") as handle:
            handle.write("{torn json\n")
        reg = MetricsRegistry()
        with use_registry(reg):
            summary = ResultsStore(path).compact()
        assert summary == {
            "lines_before": 2,
            "corrupt_lines": 1,
            "checksum_failures": 0,
            "records": 1,
        }
        assert reg.value("repro_store_compact_dropped_total", reason="superseded") == 1
        assert reg.value("repro_store_compact_dropped_total", reason="corrupt") == 1
        assert reg.value("repro_store_compact_dropped_total", reason="checksum") == 0


# ------------------------------------------------------------ progress line


class TestProgressLine:
    def make(self, total: int = 6, **kwargs):
        reg = MetricsRegistry()
        stream = io.StringIO()
        line = ProgressLine(total, reg, stream=stream, **kwargs)
        return reg, stream, line

    def test_pipe_mode_emits_newline_lines(self):
        reg, stream, line = self.make(min_interval=0.0)
        line.update(force=True)
        reg.counter("repro_cells_completed_total").inc(3)
        line.update(force=True)
        reg.counter("repro_cells_failed_total").inc()
        reg.counter("repro_sweep_retries_total").inc(2)
        line.update(force=True)
        out = stream.getvalue().splitlines()
        assert out[0].startswith("sweep 0/6 cells")
        assert "eta --" in out[0]
        assert out[1].startswith("sweep 3/6 cells")
        assert "eta " in out[1]
        assert "sweep 4/6 cells | 1 failed | 2 retries" in out[2]
        assert "\r" not in stream.getvalue()  # no tty tricks under a pipe

    def test_done_line_and_cached_segment(self):
        reg, stream, line = self.make(total=4)
        reg.counter("repro_cells_cached_total").inc(4)
        line.close()
        final = stream.getvalue().splitlines()[-1]
        assert final.startswith("sweep 4/4 cells | 4 cached")
        assert "done in" in final

    def test_rate_limit_suppresses_floods(self):
        reg, stream, line = self.make(min_interval=3600.0)
        line.update(force=True)
        for _ in range(50):
            line.update()
        assert len(stream.getvalue().splitlines()) == 1  # only the forced one

    def test_rate_measured_from_execution_epoch(self):
        # 4 cells served from cache during a slow store load, then 3
        # executed in the last 2 seconds: the rate must reflect the 2s of
        # actual execution, not the 100s since construction.
        reg, _, line = self.make(total=10)
        reg.counter("repro_cells_cached_total").inc(4)
        reg.counter("repro_cells_completed_total").inc(3)
        now = line._start + 100.0
        line.begin_execution()
        line._exec_start = line._start + 98.0
        stats = line.stats(now)
        assert stats["executed"] == 3  # cached cells never count as executed
        assert stats["done"] == 7
        assert stats["rate_cells_per_s"] == pytest.approx(1.5)
        assert stats["eta_s"] == pytest.approx((10 - 7) / 1.5)

    def test_begin_execution_is_idempotent(self):
        _, _, line = self.make()
        line.begin_execution()
        first = line._exec_start
        line.begin_execution()
        assert line._exec_start == first

    def test_eta_unknown_when_only_cached(self):
        # A resume that served everything-so-far from cache has no
        # execution rate yet; the ETA must say so rather than extrapolate.
        reg, _, line = self.make(total=6)
        reg.counter("repro_cells_cached_total").inc(4)
        stats = line.stats(line._start + 50.0)
        assert stats["rate_cells_per_s"] == 0.0
        assert stats["eta_s"] is None
        assert "eta --" in line.render(line._start + 50.0)

    def test_stats_is_the_progress_json_contract(self):
        reg, _, line = self.make(total=6)
        reg.counter("repro_cells_completed_total").inc(2)
        reg.counter("repro_cells_failed_total").inc()
        reg.counter("repro_sweep_retries_total").inc(3)
        stats = line.stats()
        assert set(stats) == {
            "total", "done", "completed", "failed", "cached", "retries",
            "executed", "elapsed_s", "rate_cells_per_s", "eta_s",
        }
        assert stats["completed"] == 2
        assert stats["failed"] == 1
        assert stats["retries"] == 3
        assert stats["done"] == 3
        assert json.dumps(stats)  # JSON-serializable as served by /progress

    def test_failed_segment_absent_when_zero(self):
        reg, _, line = self.make(total=6)
        reg.counter("repro_cells_completed_total").inc(2)
        rendered = line.render()
        assert "failed" not in rendered
        assert "retries" not in rendered
        assert "cached" not in rendered

    def test_run_sweep_progress_writes_to_stream(self, capsys):
        result = run_sweep(small_grid(), progress=True)
        err = capsys.readouterr().err
        assert "sweep 6/6 cells" in err
        assert "done in" in err
        assert result.metrics is not None  # progress forces a registry


# -------------------------------------------------------------------- CLI


class TestCLI:
    def test_sweep_flag_defaults(self):
        args = cli.build_parser().parse_args(["sweep"])
        assert args.durable is True
        assert args.progress is False
        assert args.metrics_out is None

    def test_no_durable_parses(self):
        args = cli.build_parser().parse_args(["sweep", "--no-durable"])
        assert args.durable is False

    def test_write_metrics_sibling_roles(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("c_total").inc()
        prom, jsn = cli._write_metrics(reg.snapshot(), str(tmp_path / "m.prom"))
        assert (prom.name, jsn.name) == ("m.prom", "m.json")
        prom2, jsn2 = cli._write_metrics(reg.snapshot(), str(tmp_path / "n.json"))
        assert (prom2.name, jsn2.name) == ("n.prom", "n.json")
        assert validate_exposition(prom.read_text()) == 1
        assert json.loads(jsn.read_text())["schema"] == 1

    def test_metrics_command_prints_exposition(self, capsys):
        assert cli.main(["metrics"]) == 0
        out = capsys.readouterr().out
        assert validate_exposition(out) > 0
        assert "repro_cells_completed_total 6" in out

    @pytest.mark.metrics_smoke
    @pytest.mark.timeout(300)
    def test_sweep_metrics_out_and_progress_end_to_end(self, tmp_path, capsys):
        """The CI smoke: demo grid + --progress + --metrics-out, .prom parses."""
        prom_path = tmp_path / "metrics.prom"
        code = cli.main(
            [
                "sweep",
                "--jobs", "2",
                "--store", str(tmp_path / "store.jsonl"),
                "--no-durable",
                "--progress",
                "--metrics-out", str(prom_path),
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert prom_path.exists()
        assert validate_exposition(prom_path.read_text()) > 0
        snapshot = json.loads(prom_path.with_suffix(".json").read_text())
        assert snapshot["schema"] == 1
        assert "sweep 6/6 cells" in captured.err
        assert f"wrote {prom_path}" in captured.out
