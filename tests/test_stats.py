"""Tests for the statistics helpers (summaries and scaling fits)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.stats.fitting import fit_log_power
from repro.stats.summary import describe_times, wilson_interval


class TestWilsonInterval:
    def test_contains_point_estimate(self):
        lo, hi = wilson_interval(80, 100)
        assert lo < 0.8 < hi

    def test_perfect_rate_below_one(self):
        lo, hi = wilson_interval(100, 100)
        assert hi == pytest.approx(1.0)
        assert lo < 1.0  # finite evidence cannot certify probability 1

    def test_zero_rate(self):
        lo, hi = wilson_interval(0, 100)
        assert lo == 0.0
        assert hi > 0.0

    def test_narrows_with_trials(self):
        lo1, hi1 = wilson_interval(8, 10)
        lo2, hi2 = wilson_interval(800, 1000)
        assert (hi2 - lo2) < (hi1 - lo1)

    def test_validation(self):
        with pytest.raises(ValueError):
            wilson_interval(5, 0)
        with pytest.raises(ValueError):
            wilson_interval(11, 10)

    def test_bounds_in_unit_interval(self):
        for s, t in [(1, 3), (2, 2), (0, 7)]:
            lo, hi = wilson_interval(s, t)
            assert 0.0 <= lo <= hi <= 1.0


class TestDescribeTimes:
    def test_empty(self):
        summary = describe_times([])
        assert summary.count == 0
        assert np.isnan(summary.mean)

    def test_single_value(self):
        summary = describe_times([7.0])
        assert summary.count == 1
        assert summary.mean == summary.median == summary.p95 == 7.0

    def test_statistics(self):
        data = np.arange(1, 101, dtype=float)
        summary = describe_times(data)
        assert summary.mean == pytest.approx(50.5)
        assert summary.median == pytest.approx(50.5)
        assert summary.p95 == pytest.approx(np.quantile(data, 0.95))
        assert summary.maximum == 100.0
        assert summary.minimum == 1.0

    def test_as_dict_keys(self):
        d = describe_times([1.0, 2.0]).as_dict()
        assert set(d) == {"count", "mean", "median", "p95", "max", "min"}


class TestFitLogPower:
    def test_recovers_known_exponent(self):
        ns = np.array([2**k for k in range(6, 16)])
        times = 3.0 * np.log(ns) ** 2.5
        fit = fit_log_power(ns, times)
        assert fit.b == pytest.approx(2.5, abs=1e-9)
        assert fit.a == pytest.approx(3.0, rel=1e-9)
        assert fit.r_squared == pytest.approx(1.0)

    def test_recovers_under_noise(self):
        rng = np.random.default_rng(0)
        ns = np.array([2**k for k in range(6, 18)])
        times = 2.0 * np.log(ns) ** 1.5 * rng.uniform(0.9, 1.1, size=ns.size)
        fit = fit_log_power(ns, times)
        assert fit.b == pytest.approx(1.5, abs=0.35)
        assert fit.r_squared > 0.9

    def test_predict(self):
        ns = np.array([100, 1000, 10_000, 100_000])
        times = 5.0 * np.log(ns) ** 2
        fit = fit_log_power(ns, times)
        assert fit.predict(1_000_000) == pytest.approx(5.0 * np.log(1e6) ** 2, rel=1e-6)

    def test_validation(self):
        with pytest.raises(ValueError):
            fit_log_power([10, 100], [1.0, 2.0])  # too few points
        with pytest.raises(ValueError):
            fit_log_power([2, 10, 100], [1.0, 2.0, 3.0])  # n <= e
        with pytest.raises(ValueError):
            fit_log_power([10, 100, 1000], [1.0, -2.0, 3.0])  # negative time
        with pytest.raises(ValueError):
            fit_log_power([10, 10, 10], [1.0, 1.0, 1.0])  # clustered n

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            fit_log_power([10, 100, 1000], [1.0, 2.0])
