"""Property-based tests (hypothesis) on the core invariants.

These probe the analytical layer and the simulation substrate with randomly
generated inputs: probability identities of coin competitions, classification
invariants of the domain partitions, conservation laws of the engine.
"""

from __future__ import annotations

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.coins import compare_binomials
from repro.analysis.domains import Domain, DomainPartition, YellowArea
from repro.analysis.drift import drift_g
from repro.core.engine import SynchronousEngine
from repro.core.population import make_population
from repro.core.rng import make_rng
from repro.protocols.fet import FETProtocol

probabilities = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
unit_interior = st.floats(min_value=0.001, max_value=0.999, allow_nan=False)
sample_sizes = st.integers(min_value=1, max_value=40)


class TestCoinProperties:
    @given(k=sample_sizes, p=probabilities, q=probabilities)
    @settings(max_examples=60, deadline=None)
    def test_outcomes_partition_unity(self, k, p, q):
        cmp_ = compare_binomials(k, p, q)
        assert cmp_.total == math.isclose(cmp_.total, 1.0, abs_tol=1e-9) or abs(cmp_.total - 1.0) < 1e-9
        assert cmp_.p_first_wins >= 0 and cmp_.p_tie >= 0 and cmp_.p_second_wins >= 0

    @given(k=sample_sizes, p=probabilities, q=probabilities)
    @settings(max_examples=60, deadline=None)
    def test_swap_symmetry(self, k, p, q):
        a = compare_binomials(k, p, q)
        b = compare_binomials(k, q, p)
        assert math.isclose(a.p_first_wins, b.p_second_wins, abs_tol=1e-9)
        assert math.isclose(a.p_tie, b.p_tie, abs_tol=1e-9)

    @given(k=sample_sizes, p=probabilities)
    @settings(max_examples=40, deadline=None)
    def test_identical_coins_are_fair(self, k, p):
        cmp_ = compare_binomials(k, p, p)
        assert math.isclose(cmp_.p_first_wins, cmp_.p_second_wins, abs_tol=1e-9)

    @given(k=sample_sizes, p=unit_interior)
    @settings(max_examples=40, deadline=None)
    def test_stochastic_dominance(self, k, p):
        """A strictly better coin never has a lower win probability."""
        q = min(1.0, p + 0.2)
        better_wins = compare_binomials(k, q, p).p_first_wins
        worse_wins = compare_binomials(k, p, q).p_first_wins
        assert better_wins >= worse_wins - 1e-9


class TestDriftProperties:
    @given(x=probabilities, y=probabilities, ell=sample_sizes)
    @settings(max_examples=60, deadline=None)
    def test_g_is_a_probability(self, x, y, ell):
        assert 0.0 <= drift_g(x, y, ell, 100) <= 1.0

    @given(x=unit_interior, y=unit_interior, ell=sample_sizes)
    @settings(max_examples=40, deadline=None)
    def test_g_respects_symmetry(self, x, y, ell):
        """g(x, y) + g(1-x, 1-y) ≈ 1 up to the O(1/n) source term."""
        n = 10_000
        total = drift_g(x, y, ell, n) + drift_g(1 - x, 1 - y, ell, n)
        assert abs(total - 1.0) <= 2.0 / n + 1e-9


class TestDomainProperties:
    @given(
        x=probabilities,
        y=probabilities,
        n=st.sampled_from([100, 1000, 10**6]),
        delta=st.floats(min_value=0.01, max_value=0.12),
    )
    @settings(max_examples=80, deadline=None)
    def test_classification_total_and_deterministic(self, x, y, n, delta):
        part = DomainPartition(n=n, delta=delta)
        a = part.classify(x, y)
        b = part.classify(x, y)
        assert a is b
        assert isinstance(a, Domain)

    @given(x=probabilities, y=probabilities)
    @settings(max_examples=80, deadline=None)
    def test_reflection_symmetry(self, x, y):
        part = DomainPartition(n=1000, delta=0.05)
        swap = {
            Domain.GREEN1: Domain.GREEN0,
            Domain.GREEN0: Domain.GREEN1,
            Domain.PURPLE1: Domain.PURPLE0,
            Domain.PURPLE0: Domain.PURPLE1,
            Domain.RED1: Domain.RED0,
            Domain.RED0: Domain.RED1,
            Domain.CYAN1: Domain.CYAN0,
            Domain.CYAN0: Domain.CYAN1,
            Domain.YELLOW: Domain.YELLOW,
            Domain.NONE: Domain.NONE,
        }
        assert part.classify(1 - x, 1 - y) is swap[part.classify(x, y)]

    @given(x=probabilities, y=probabilities)
    @settings(max_examples=80, deadline=None)
    def test_yellow_area_covers_square(self, x, y):
        part = DomainPartition(n=1000, delta=0.05)
        lo, hi = part.yellow_prime_lo, part.yellow_prime_hi
        px = lo + x * (hi - lo)
        py = lo + y * (hi - lo)
        assert part.classify_yellow_area(px, py) is not YellowArea.OUTSIDE

    @given(x=probabilities, y=probabilities)
    @settings(max_examples=60, deadline=None)
    def test_speed_nonnegative(self, x, y):
        part = DomainPartition(n=1000)
        assert part.speed(x, y) >= 0.0


class TestEngineProperties:
    @given(
        n=st.integers(min_value=4, max_value=120),
        ell=st.integers(min_value=1, max_value=12),
        seed=st.integers(min_value=0, max_value=2**31),
        rounds=st.integers(min_value=1, max_value=15),
    )
    @settings(max_examples=30, deadline=None)
    def test_source_invariant_and_opinions_binary(self, n, ell, seed, rounds):
        proto = FETProtocol(ell)
        pop = make_population(n, 1)
        rng = make_rng(seed)
        state = proto.randomize_state(n, rng)
        pop.adversarial_opinions(rng.integers(0, 2, size=n).astype(np.uint8))
        engine = SynchronousEngine(proto, pop, rng=rng, state=state)
        for _ in range(rounds):
            engine.step()
            assert pop.opinions[pop.source_mask].tolist() == [1]
            assert np.isin(pop.opinions, (0, 1)).all()
            assert state["prev_count"].min() >= 0
            assert state["prev_count"].max() <= ell

    @given(
        n=st.integers(min_value=4, max_value=80),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=20, deadline=None)
    def test_correct_consensus_is_absorbing(self, n, seed):
        """From (1, 1) — consensus held two rounds — FET never moves."""
        proto = FETProtocol(5)
        pop = make_population(n, 1)
        pop.set_opinions(np.ones(n, dtype=np.uint8))
        state = {"prev_count": np.full(n, 5, dtype=np.int64)}
        engine = SynchronousEngine(proto, pop, rng=make_rng(seed), state=state)
        for _ in range(5):
            engine.step()
            assert pop.at_correct_consensus()
