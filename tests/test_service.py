"""Run-service acceptance: dedup, streaming, failures — over real HTTP.

The acceptance contract (ISSUE 10): submitting the same SweepSpec twice
executes its cells exactly once — the second submission resolves from the
store via the spec-hash dedup path (cache-hit counter, zero worker
executions) and returns byte-identical rows; a live submission can be
followed over ``GET /runs/{id}/stream`` (SSE) to completion; a worker
crash lands the job in ``failed`` with its failure record served in the
status body. Everything here talks to a real ``http.server`` socket —
nothing is stubbed between the client and the worker pool.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from pathlib import Path

import pytest

from repro import cli
from repro.config import RunSpec
from repro.service import (
    Job,
    JobError,
    JobQueue,
    RunServiceClient,
    RunServiceServer,
    ServiceError,
    WorkerPool,
    normalize_submission,
    spec_hash,
)
from repro.sweep import FaultPolicy, ResultsStore, SweepSpec, execute_cell, run_sweep
from repro.telemetry import MetricsRegistry, validate_exposition


def tiny_grid(seed: int = 7, **overrides) -> dict:
    """Four fast FET cells as a submission-ready sweep dict."""
    settings = dict(
        name="service-grid",
        seed=seed,
        trials=2,
        axes={
            "protocol": [{"name": "fet", "ell": 8}],
            "n": [60, 90],
            "initializer": ["all-wrong", {"name": "bernoulli", "p": 0.5}],
        },
        max_rounds=120,
    )
    settings.update(overrides)
    return SweepSpec(**settings).to_dict()


def record_policy(**overrides) -> FaultPolicy:
    settings = dict(max_retries=1, backoff_base=0.0, jitter=0.0, on_failure="record")
    settings.update(overrides)
    return FaultPolicy(**settings)


def _crash_cell(cell):
    raise RuntimeError("injected worker crash")


def _slow_cell(cell):
    time.sleep(0.25)
    return execute_cell(cell)


@contextmanager
def service(tmp_path: Path, **pool_kwargs):
    """A full live stack — store, queue, pool, HTTP server, client."""
    registry = MetricsRegistry()
    store = ResultsStore(tmp_path / "store.jsonl")
    queue = JobQueue(tmp_path / "queue.jsonl", store=store, registry=registry)
    pool_kwargs.setdefault("policy", record_policy())
    pool = WorkerPool(queue, store, registry=registry, **pool_kwargs)
    server = RunServiceServer(queue=queue, pool=pool, registry=registry)
    pool.start()
    port = server.start()
    client = RunServiceClient(f"http://127.0.0.1:{port}", timeout=10.0)
    try:
        yield type(
            "Service",
            (),
            {
                "registry": registry,
                "store": store,
                "queue": queue,
                "pool": pool,
                "server": server,
                "client": client,
                "url": f"http://127.0.0.1:{port}",
            },
        )
    finally:
        pool.stop()
        server.stop()


# ---------------------------------------------------------------- unit: jobs


class TestJobs:
    def test_equivalent_spellings_hash_identically(self):
        spec = tiny_grid()
        reordered = {key: spec[key] for key in sorted(spec, reverse=True)}
        assert normalize_submission({"sweep": spec}) == normalize_submission(reordered)
        kind, canonical = normalize_submission(spec)
        assert kind == "sweep"
        assert spec_hash(kind, canonical) == spec_hash(*normalize_submission(reordered))

    def test_run_autodetected_and_distinct_from_sweep(self):
        run = RunSpec(protocol={"name": "fet", "ell": 8}, n=60, trials=1, max_rounds=50)
        kind, spec = normalize_submission(run.to_dict())
        assert kind == "run"
        assert spec_hash("run", spec) != spec_hash("sweep", spec)

    def test_invalid_submissions_rejected(self):
        for bad in (None, [], {"sweep": []}, {"run": {}, "sweep": {}}, {"axes": {}}):
            with pytest.raises(JobError):
                normalize_submission(bad)

    def test_state_machine(self):
        job = Job.from_submission(*normalize_submission(tiny_grid()))
        assert job.state == "queued" and not job.terminal
        job.transition("running")
        with pytest.raises(JobError):
            job.transition("cancelled")  # running jobs are not preemptible
        job.transition("done")
        assert job.terminal and job.finished_ts is not None
        with pytest.raises(JobError):
            job.transition("queued")  # done is final

    def test_requeue_clears_outcome(self):
        job = Job.from_submission(*normalize_submission(tiny_grid()))
        job.transition("running")
        job.error = {"type": "Boom"}
        job.transition("failed")
        job.transition("queued")
        assert (job.error, job.result, job.started_ts, job.finished_ts) == (None,) * 4

    def test_round_trips_through_dict(self):
        job = Job.from_submission(*normalize_submission(tiny_grid()))
        job.transition("running")
        job.result = {"cells": 4}
        assert Job.from_dict(job.to_dict()).to_dict() == job.to_dict()


# --------------------------------------------------------------- unit: queue


class TestJobQueue:
    def test_submit_claim_done_survives_reload(self, tmp_path):
        path = tmp_path / "queue.jsonl"
        queue = JobQueue(path)
        job, dedup = queue.submit(*normalize_submission(tiny_grid()))
        assert not dedup and queue.position(job.job_id) == 0
        claimed = queue.claim(timeout=1.0)
        assert claimed.job_id == job.job_id and claimed.state == "running"
        queue.mark_done(job.job_id, {"cells": 4})

        reloaded = JobQueue(path)
        assert reloaded.get(job.job_id).state == "done"
        assert reloaded.get(job.job_id).result == {"cells": 4}

    def test_running_jobs_requeue_on_reload(self, tmp_path):
        path = tmp_path / "queue.jsonl"
        queue = JobQueue(path)
        first, _ = queue.submit(*normalize_submission(tiny_grid(seed=1)))
        second, _ = queue.submit(*normalize_submission(tiny_grid(seed=2)))
        queue.claim(timeout=1.0)  # first goes running, then the service "dies"

        recovered = JobQueue(path)
        assert recovered.get(first.job_id).state == "queued"
        # Recovery keeps submission order: the interrupted job runs first.
        assert recovered.claim(timeout=1.0).job_id == first.job_id
        assert recovered.claim(timeout=1.0).job_id == second.job_id

    def test_torn_journal_tail_is_skipped(self, tmp_path):
        path = tmp_path / "queue.jsonl"
        queue = JobQueue(path)
        job, _ = queue.submit(*normalize_submission(tiny_grid()))
        with path.open("a") as handle:
            handle.write('{"job_id": "torn-wri')
        reloaded = JobQueue(path)
        assert reloaded.corrupt_lines == 1
        assert reloaded.get(job.job_id).state == "queued"

    def test_identical_submission_coalesces(self, tmp_path):
        queue = JobQueue(tmp_path / "queue.jsonl")
        job, _ = queue.submit(*normalize_submission(tiny_grid()))
        again, dedup = queue.submit(*normalize_submission(tiny_grid()))
        assert dedup and again.job_id == job.job_id
        assert len(queue) == 1 and queue.position(job.job_id) == 0

    def test_failed_job_requeues_on_resubmission(self, tmp_path):
        queue = JobQueue(tmp_path / "queue.jsonl")
        job, _ = queue.submit(*normalize_submission(tiny_grid()))
        queue.claim(timeout=1.0)
        queue.mark_failed(job.job_id, {"type": "Boom", "message": "no"})
        revived, dedup = queue.submit(*normalize_submission(tiny_grid()))
        assert not dedup and revived.job_id == job.job_id
        assert revived.state == "queued" and revived.error is None

    def test_cancel_only_queued(self, tmp_path):
        queue = JobQueue(tmp_path / "queue.jsonl")
        job, _ = queue.submit(*normalize_submission(tiny_grid()))
        queue.claim(timeout=1.0)
        with pytest.raises(JobError):
            queue.cancel(job.job_id)

    def test_store_covered_spec_is_born_done(self, tmp_path):
        spec = tiny_grid()
        store = ResultsStore(tmp_path / "store.jsonl")
        run_sweep(SweepSpec.from_dict(spec), jobs=1, store=store)
        registry = MetricsRegistry()
        queue = JobQueue(tmp_path / "queue.jsonl", store=store, registry=registry)
        job, dedup = queue.submit(*normalize_submission(spec))
        assert dedup and job.state == "done" and job.deduplicated
        assert job.result["source"] == "store"
        assert job.result["cached"] == job.result["cells"] == 4
        assert registry.total("repro_service_dedup_hits_total") == 1.0
        # Nothing pending: the job never touches a worker.
        assert queue.claim(timeout=0.05) is None


# ---------------------------------------------------------- unit: store index


class TestStoreIndex:
    def test_has_and_contains_without_io(self, tmp_path):
        store = ResultsStore(tmp_path / "store.jsonl")
        store.put("k1", {"cell": {}, "payload": {"x": 1}})
        assert store.has("k1") and "k1" in store and not store.has("k2")

    def test_get_after_reload_seeks_the_right_line(self, tmp_path):
        path = tmp_path / "store.jsonl"
        store = ResultsStore(path)
        for index in range(5):
            store.put(f"k{index}", {"cell": {}, "payload": {"value": index}})
        store.put("k2", {"cell": {}, "payload": {"value": 99}})  # supersede
        reloaded = ResultsStore(path)
        assert len(reloaded) == 5
        assert reloaded.get("k2")["payload"]["value"] == 99
        assert reloaded.get("k4")["payload"]["value"] == 4

    def test_put_after_torn_tail_keeps_offsets_valid(self, tmp_path):
        path = tmp_path / "store.jsonl"
        store = ResultsStore(path)
        store.put("k1", {"cell": {}, "payload": {"value": 1}})
        with path.open("a") as handle:
            handle.write('{"key": "torn-wri')
        resumed = ResultsStore(path)
        resumed.put("k2", {"cell": {}, "payload": {"value": 2}})
        assert resumed.get("k2")["payload"]["value"] == 2
        # And a fresh load sees both intact records, one corrupt line.
        final = ResultsStore(path)
        assert final.corrupt_lines == 1
        assert final.get("k1")["payload"]["value"] == 1
        assert final.get("k2")["payload"]["value"] == 2

    def test_compact_preserves_indexed_view(self, tmp_path):
        path = tmp_path / "store.jsonl"
        store = ResultsStore(path)
        for index in range(3):
            store.put("hot", {"cell": {}, "payload": {"value": index}})
        store.put("cold", {"cell": {}, "payload": {"value": -1}})
        summary = store.compact()
        assert summary["records"] == 2 and summary["lines_before"] == 4
        assert store.get("hot")["payload"]["value"] == 2
        assert ResultsStore(path).get("cold")["payload"]["value"] == -1


# ------------------------------------------------------------- e2e over HTTP


class TestServiceEndToEnd:
    def test_submit_dedup_and_byte_identical_csv(self, tmp_path):
        spec = tiny_grid()
        with service(tmp_path) as svc:
            first = svc.client.submit({"sweep": spec})
            assert first["state"] == "queued" and not first["deduplicated"]
            final = svc.client.wait(first["job_id"], timeout=60.0)
            assert final["state"] == "done"
            assert final["result"]["executed"] == 4 and final["result"]["failed"] == 0
            csv_first = svc.client.result_csv(first["job_id"])

            # Same spec, different JSON spelling: the dedup path must
            # resolve it without executing anything.
            reordered = {key: spec[key] for key in sorted(spec, reverse=True)}
            second = svc.client.submit({"sweep": reordered})
            assert second["deduplicated"] and second["state"] == "done"
            assert second["job_id"] == first["job_id"]
            assert svc.client.result_csv(second["job_id"]) == csv_first

            registry = svc.registry
            assert registry.total("repro_service_dedup_hits_total") == 1.0
            assert registry.total("repro_service_jobs_executed_total") == 1.0

        # The service bytes equal a direct orchestrator run's CSV exactly.
        direct = run_sweep(SweepSpec.from_dict(spec), jobs=1)
        reference = direct.write_csv(tmp_path / "direct.csv").read_bytes()
        assert csv_first == reference

    def test_sse_stream_follows_live_run(self, tmp_path):
        with service(tmp_path, work_fn=_slow_cell) as svc:
            submitted = svc.client.submit({"sweep": tiny_grid()})
            events = list(svc.client.stream(submitted["job_id"], timeout=60.0))
            kinds = [kind for kind, _ in events]
            assert kinds[-1] == "done"
            assert "progress" in kinds, kinds
            # Progress frames carry the job id (the /progress contract).
            progress = [payload for kind, payload in events if kind == "progress"]
            assert all(frame["job_id"] == submitted["job_id"] for frame in progress)
            done = events[-1][1]
            assert done["state"] == "done" and done["result"]["executed"] == 4

    def test_progress_route_reports_running_job(self, tmp_path):
        with service(tmp_path, work_fn=_slow_cell) as svc:
            submitted = svc.client.submit({"sweep": tiny_grid()})
            deadline = time.monotonic() + 30.0
            body = {}
            while time.monotonic() < deadline:
                status, raw = svc.client._request("GET", "/progress")
                body = json.loads(raw)
                if body.get("active"):
                    break
                time.sleep(0.05)
            assert body["active"], body
            assert body["jobs"][0]["job_id"] == submitted["job_id"]
            svc.client.wait(submitted["job_id"], timeout=60.0)

    def test_worker_crash_lands_failed_with_record(self, tmp_path):
        with service(tmp_path, work_fn=_crash_cell) as svc:
            submitted = svc.client.submit({"sweep": tiny_grid()})
            final = svc.client.wait(submitted["job_id"], timeout=60.0)
            assert final["state"] == "failed"
            error = final["error"]
            assert error["type"] == "CellFailures"
            assert len(error["failures"]) == 4
            record = error["failures"][0]["error"]
            assert record["type"] == "RuntimeError"
            assert "injected worker crash" in record["message"]
            assert record["attempts"] == 2  # initial try + max_retries=1
            with pytest.raises(ServiceError) as exc:
                svc.client.result_csv(submitted["job_id"])
            assert exc.value.status == 409

            # Resubmission requeues (the retry path) instead of serving the
            # failure — and keeps failing under the crashing work function.
            again = svc.client.submit({"sweep": tiny_grid()})
            assert not again["deduplicated"]
            assert svc.client.wait(again["job_id"], timeout=60.0)["state"] == "failed"

    def test_single_run_submission(self, tmp_path):
        run = RunSpec(protocol={"name": "fet", "ell": 8}, n=60, trials=2, max_rounds=120)
        with service(tmp_path) as svc:
            submitted = svc.client.submit({"run": run.to_dict()})
            final = svc.client.wait(submitted["job_id"], timeout=60.0)
            assert final["state"] == "done" and final["result"]["cells"] == 1
            rows = svc.client.result_rows(submitted["job_id"])
            assert len(rows["rows"]) == 1
            assert rows["rows"][0]["n"] == 60
            # The run's cell is now store-covered: a resubmission under a
            # fresh queue would dedup from the store (tested in queue units).
            assert svc.store.has(RunSpec.from_dict(final["spec"]).key())

    def test_cancel_and_error_routes(self, tmp_path):
        with service(tmp_path) as svc:
            with pytest.raises(ServiceError) as exc:
                svc.client.job("no-such-job")
            assert exc.value.status == 404
            with pytest.raises(ServiceError) as exc:
                svc.client.submit({"sweep": {"axes": {}}})
            assert exc.value.status == 400
            done = svc.client.submit({"sweep": tiny_grid()})
            svc.client.wait(done["job_id"], timeout=60.0)
            with pytest.raises(ServiceError) as exc:
                svc.client.cancel(done["job_id"])  # terminal: nothing to cancel
            assert exc.value.status == 409

    def test_cancel_queued_job(self, tmp_path):
        # No pool: the job stays queued, so cancel has something to catch.
        queue = JobQueue(tmp_path / "queue.jsonl")
        pool = WorkerPool(queue, None)
        server = RunServiceServer(queue=queue, pool=pool)
        port = server.start()
        client = RunServiceClient(f"http://127.0.0.1:{port}")
        try:
            submitted = client.submit({"sweep": tiny_grid()})
            assert submitted["queue_position"] == 0
            cancelled = client.cancel(submitted["job_id"])
            assert cancelled["state"] == "cancelled"
            assert client.job(submitted["job_id"])["state"] == "cancelled"
        finally:
            server.stop()

    def test_metrics_scrape_stays_valid_exposition(self, tmp_path):
        with service(tmp_path) as svc:
            submitted = svc.client.submit({"sweep": tiny_grid()})
            svc.client.wait(submitted["job_id"], timeout=60.0)
            _, raw = svc.client._request("GET", "/metrics")
            text = raw.decode("utf-8")
            assert validate_exposition(text) > 0
            assert "repro_service_jobs_executed_total 1" in text


# --------------------------------------------------------------------- CLI


class TestSubmitCLI:
    def test_submit_wait_and_out(self, tmp_path, capsys):
        spec = tiny_grid()
        spec_file = tmp_path / "grid.json"
        spec_file.write_text(json.dumps(spec))
        out = tmp_path / "result.csv"
        with service(tmp_path) as svc:
            code = cli.main(
                ["submit", "--url", svc.url, "--spec", str(spec_file), "--out", str(out)]
            )
            assert code == 0
            again = cli.main(
                ["submit", "--url", svc.url, "--spec", str(spec_file), "--wait"]
            )
            assert again == 0
        printed = capsys.readouterr().out
        assert "deduplicated" in printed
        direct = run_sweep(SweepSpec.from_dict(spec), jobs=1)
        assert out.read_bytes() == direct.write_csv(tmp_path / "direct.csv").read_bytes()

    def test_submit_surfaces_failure(self, tmp_path, capsys):
        spec_file = tmp_path / "grid.json"
        spec_file.write_text(json.dumps(tiny_grid()))
        with service(tmp_path, work_fn=_crash_cell) as svc:
            code = cli.main(
                ["submit", "--url", svc.url, "--spec", str(spec_file), "--wait"]
            )
        assert code == 1
        assert "CellFailures" in capsys.readouterr().err

    def test_submit_rejects_missing_spec(self, tmp_path, capsys):
        assert cli.main(["submit", "--spec", str(tmp_path / "nope.json")]) == 2
        assert "cannot load spec" in capsys.readouterr().err
