"""Tests for the oracle-clock and clock-sync protocols."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.engine import run_protocol
from repro.core.population import make_population
from repro.core.rng import make_rng
from repro.initializers.standard import AllWrong, BernoulliRandom
from repro.protocols.clock_sync import ClockSyncProtocol
from repro.protocols.fet import ell_for
from repro.protocols.oracle_clock import OracleClockProtocol


class TestOracleClockConstruction:
    def test_period_is_four_log(self):
        proto = OracleClockProtocol(1024)
        assert proto.subphase_len == 2 * 10
        assert proto.period == 4 * 10

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            OracleClockProtocol(1)
        with pytest.raises(ValueError):
            OracleClockProtocol(100, ell=0)

    def test_is_passive(self):
        assert OracleClockProtocol(100).passive is True

    def test_memory_is_clock_width(self):
        proto = OracleClockProtocol(1024)
        assert proto.memory_bits() == pytest.approx(math.log2(proto.period))


class TestOracleClockBehaviour:
    @pytest.mark.parametrize("correct", [0, 1])
    def test_converges_fast(self, correct):
        n = 2000
        proto = OracleClockProtocol(n, ell=1)
        pop = make_population(n, correct)
        rng = make_rng(correct)
        state = proto.init_state(n, rng)
        AllWrong()(pop, proto, state, rng)
        result = run_protocol(proto, pop, 10 * proto.period, rng=rng, state=state)
        assert result.converged
        # Two phases always suffice from a clean clock.
        assert result.rounds <= 2 * proto.period

    def test_random_clock_offset_tolerated(self):
        n = 1000
        proto = OracleClockProtocol(n, ell=1)
        pop = make_population(n, 1)
        rng = make_rng(9)
        state = proto.randomize_state(n, rng)
        AllWrong()(pop, proto, state, rng)
        result = run_protocol(proto, pop, 10 * proto.period, rng=rng, state=state)
        assert result.converged

    def test_clock_advances(self):
        proto = OracleClockProtocol(64, ell=1)
        pop = make_population(16, 1)
        rng = make_rng(0)
        state = proto.init_state(16, rng)
        from repro.core.sampling import BinomialCountSampler

        proto.step(pop, state, BinomialCountSampler(), rng)
        proto.step(pop, state, BinomialCountSampler(), rng)
        assert int(state["clock"][0]) == 2


class TestClockSync:
    def test_not_passive(self):
        assert ClockSyncProtocol(100, 8).passive is False

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            ClockSyncProtocol(1, 8)
        with pytest.raises(ValueError):
            ClockSyncProtocol(100, 0)

    def test_randomize_state_spreads_clocks(self):
        proto = ClockSyncProtocol(256, 8)
        state = proto.randomize_state(2000, make_rng(0))
        assert len(np.unique(state["clock"])) > proto.period // 2

    def test_clock_agreement_diagnostic(self):
        proto = ClockSyncProtocol(256, 8)
        state = {"clock": np.zeros(100, dtype=np.int64)}
        assert proto.clock_agreement(state) == 1.0
        state["clock"][:50] = 1
        assert proto.clock_agreement(state) == 0.5

    def test_clocks_synchronize_from_adversarial_start(self):
        n = 1000
        proto = ClockSyncProtocol(n, ell_for(n))
        pop = make_population(n, 1)
        rng = make_rng(3)
        state = proto.randomize_state(n, rng)
        from repro.core.sampling import BinomialCountSampler

        sampler = BinomialCountSampler()
        for _ in range(5 * proto.period):
            new = proto.step(pop, state, sampler, rng)
            pop.set_opinions(new)
        assert proto.clock_agreement(state) > 0.99

    def test_converges_from_adversarial_start(self):
        n = 1000
        proto = ClockSyncProtocol(n, ell_for(n))
        pop = make_population(n, 1)
        rng = make_rng(4)
        state = proto.randomize_state(n, rng)
        BernoulliRandom(0.5)(pop, proto, state, rng)
        # BernoulliRandom re-randomizes internal state; that is fine here.
        result = run_protocol(proto, pop, 40 * proto.period, rng=rng, state=state)
        assert result.converged
