"""Tests for the oracle-clock and clock-sync protocols."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.engine import run_protocol
from repro.core.population import make_population
from repro.core.rng import make_rng
from repro.initializers.standard import AllWrong, BernoulliRandom
from repro.protocols.clock_sync import ClockSyncProtocol
from repro.protocols.fet import ell_for
from repro.protocols.oracle_clock import OracleClockProtocol


class TestOracleClockConstruction:
    def test_period_is_four_log(self):
        proto = OracleClockProtocol(1024)
        assert proto.subphase_len == 2 * 10
        assert proto.period == 4 * 10

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            OracleClockProtocol(1)
        with pytest.raises(ValueError):
            OracleClockProtocol(100, ell=0)

    def test_is_passive(self):
        assert OracleClockProtocol(100).passive is True

    def test_memory_is_clock_width(self):
        proto = OracleClockProtocol(1024)
        assert proto.memory_bits() == pytest.approx(math.log2(proto.period))


class TestOracleClockBehaviour:
    @pytest.mark.parametrize("correct", [0, 1])
    def test_converges_fast(self, correct):
        n = 2000
        proto = OracleClockProtocol(n, ell=1)
        pop = make_population(n, correct)
        rng = make_rng(correct)
        state = proto.init_state(n, rng)
        AllWrong()(pop, proto, state, rng)
        result = run_protocol(proto, pop, 10 * proto.period, rng=rng, state=state)
        assert result.converged
        # Two phases always suffice from a clean clock.
        assert result.rounds <= 2 * proto.period

    def test_random_clock_offset_tolerated(self):
        n = 1000
        proto = OracleClockProtocol(n, ell=1)
        pop = make_population(n, 1)
        rng = make_rng(9)
        state = proto.randomize_state(n, rng)
        AllWrong()(pop, proto, state, rng)
        result = run_protocol(proto, pop, 10 * proto.period, rng=rng, state=state)
        assert result.converged

    def test_clock_advances(self):
        proto = OracleClockProtocol(64, ell=1)
        pop = make_population(16, 1)
        rng = make_rng(0)
        state = proto.init_state(16, rng)
        from repro.core.sampling import BinomialCountSampler

        proto.step(pop, state, BinomialCountSampler(), rng)
        proto.step(pop, state, BinomialCountSampler(), rng)
        assert int(state["clock"][0]) == 2


class TestClockSync:
    def test_not_passive(self):
        assert ClockSyncProtocol(100, 8).passive is False

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            ClockSyncProtocol(1, 8)
        with pytest.raises(ValueError):
            ClockSyncProtocol(100, 0)

    def test_randomize_state_spreads_clocks(self):
        proto = ClockSyncProtocol(256, 8)
        state = proto.randomize_state(2000, make_rng(0))
        assert len(np.unique(state["clock"])) > proto.period // 2

    def test_clock_agreement_diagnostic(self):
        proto = ClockSyncProtocol(256, 8)
        state = {"clock": np.zeros(100, dtype=np.int64)}
        assert proto.clock_agreement(state) == 1.0
        state["clock"][:50] = 1
        assert proto.clock_agreement(state) == 0.5

    def test_clocks_synchronize_from_adversarial_start(self):
        n = 1000
        proto = ClockSyncProtocol(n, ell_for(n))
        pop = make_population(n, 1)
        rng = make_rng(3)
        state = proto.randomize_state(n, rng)
        from repro.core.sampling import BinomialCountSampler

        sampler = BinomialCountSampler()
        for _ in range(5 * proto.period):
            new = proto.step(pop, state, sampler, rng)
            pop.set_opinions(new)
        assert proto.clock_agreement(state) > 0.99

    def test_converges_from_adversarial_start(self):
        n = 1000
        proto = ClockSyncProtocol(n, ell_for(n))
        pop = make_population(n, 1)
        rng = make_rng(4)
        state = proto.randomize_state(n, rng)
        BernoulliRandom(0.5)(pop, proto, state, rng)
        # BernoulliRandom re-randomizes internal state; that is fine here.
        result = run_protocol(proto, pop, 40 * proto.period, rng=rng, state=state)
        assert result.converged


class TestClockSyncBatched:
    """Vectorized step_batch: identical streams at R=1, statistical
    equivalence at R>1, and chunking invariance."""

    def test_is_batch_vectorized(self):
        assert ClockSyncProtocol(100, 8).batch_vectorized is True

    def test_identical_stream_matches_scalar_step(self):
        # With one replica the batched draws consume the stream exactly as
        # the scalar step does, so both paths must agree bitwise, round by
        # round — clocks and opinions alike.
        from repro.core.batch import BatchedPopulation

        n = 96
        proto = ClockSyncProtocol(n, 5)
        pop = make_population(n, 1)
        rng_scalar, rng_batch = make_rng(7), make_rng(7)
        state = proto.randomize_state(n, make_rng(3))
        batch_state = {"clock": state["clock"][None, :].copy()}
        batch = BatchedPopulation.from_population(pop, 1)
        for round_index in range(3 * proto.period):
            new_scalar = proto.step(pop, state, None, rng_scalar)
            new_batched = proto.step_batch(batch, batch_state, None, rng_batch)
            assert np.array_equal(new_scalar, new_batched[0]), round_index
            assert np.array_equal(state["clock"], batch_state["clock"][0]), round_index
            pop.set_opinions(new_scalar)
            batch.set_opinions(new_batched)

    def test_batched_state_shapes(self):
        proto = ClockSyncProtocol(128, 6)
        rng = make_rng(0)
        clean = proto.init_state_batch(5, 40, rng)
        assert clean["clock"].shape == (5, 40)
        assert (clean["clock"] == 0).all()
        adversarial = proto.randomize_state_batch(8, 500, rng)
        assert adversarial["clock"].shape == (8, 500)
        assert adversarial["clock"].min() >= 0
        assert adversarial["clock"].max() < proto.period
        assert len(np.unique(adversarial["clock"])) > proto.period // 2

    def test_clock_agreement_accepts_batched_state(self):
        proto = ClockSyncProtocol(256, 8)
        aligned = {"clock": np.zeros((3, 50), dtype=np.int64)}
        assert proto.clock_agreement(aligned) == 1.0
        mixed = {"clock": np.zeros((2, 50), dtype=np.int64)}
        mixed["clock"][0, :25] = 1
        assert proto.clock_agreement(mixed) == pytest.approx(0.75)

    def test_batched_clocks_synchronize_from_adversarial_start(self):
        from repro.core.batch import BatchedPopulation
        from repro.core.sampling import BatchedBinomialSampler

        n, replicas = 400, 6
        proto = ClockSyncProtocol(n, ell_for(n))
        batch = BatchedPopulation.from_population(make_population(n, 1), replicas)
        rng = make_rng(11)
        states = proto.randomize_state_batch(replicas, n, rng)
        sampler = BatchedBinomialSampler()
        for _ in range(5 * proto.period):
            batch.set_opinions(proto.step_batch(batch, states, sampler, rng))
        assert proto.clock_agreement(states) > 0.99

    def test_chunked_run_still_converges(self, monkeypatch):
        import repro.protocols.clock_sync as clock_sync_module
        from repro.experiments.harness import run_trials
        from repro.initializers.standard import AllWrong

        monkeypatch.setattr(clock_sync_module, "_CHUNK_ELEMENT_BUDGET", 1500)
        stats = run_trials(
            lambda: ClockSyncProtocol(128, 8), 128, AllWrong(),
            trials=6, max_rounds=600, seed=2, engine="batched",
        )
        assert stats.engine == "batched"
        assert stats.successes == 6

    def test_success_rates_agree_across_seeds(self):
        # The tentpole acceptance: batched and sequential success rates agree
        # within sampling error, checked over several independent seeds.
        from repro.experiments.harness import run_trials
        from repro.initializers.standard import BernoulliRandom
        from repro.stats.summary import wilson_interval

        n = 200
        kwargs = dict(trials=40, max_rounds=30 * ClockSyncProtocol(n, 8).period)
        for seed in (0, 1, 2):
            seq = run_trials(
                lambda: ClockSyncProtocol(n, ell_for(n)), n, BernoulliRandom(0.5),
                seed=seed, engine="sequential", **kwargs,
            )
            bat = run_trials(
                lambda: ClockSyncProtocol(n, ell_for(n)), n, BernoulliRandom(0.5),
                seed=seed, engine="batched", **kwargs,
            )
            assert bat.engine == "batched"
            lo_s, hi_s = wilson_interval(seq.successes, seq.trials)
            lo_b, hi_b = wilson_interval(bat.successes, bat.trials)
            assert max(lo_s, lo_b) <= min(hi_s, hi_b), (seed, seq.successes, bat.successes)


class TestClockSyncObservationNoise:
    """Clock-sync reads opinions directly, so it must apply the noisy
    sampler's per-bit flip model itself — on both engines."""

    def test_scalar_step_consumes_sampler_epsilon(self):
        from repro.core.noise import NoisyCountSampler

        n = 400
        proto = ClockSyncProtocol(n, 8)
        pop = make_population(n, 1)
        pop.adversarial_opinions(np.ones(n, dtype=np.uint8))
        state = proto.init_state(n, make_rng(0))  # clock 0: zero-subphase
        new = proto.step(pop, state, NoisyCountSampler(0.5), make_rng(1))
        # At the all-ones consensus with eps=1/2 every agent sees a flipped
        # bit w.p. 1 - 2^-8 and the zero-subphase rule adopts 0; noiseless,
        # nobody would move.
        assert (new == 0).mean() > 0.9
        clean = proto.step(pop, state, NoisyCountSampler(0.0), make_rng(2))
        assert (clean == 1).all()

    def test_batched_step_consumes_sampler_epsilon(self):
        from repro.core.batch import BatchedPopulation
        from repro.core.noise import BatchedNoisyCountSampler

        n, replicas = 400, 3
        proto = ClockSyncProtocol(n, 8)
        pop = make_population(n, 1)
        pop.adversarial_opinions(np.ones(n, dtype=np.uint8))
        batch = BatchedPopulation.from_population(pop, replicas)
        states = proto.init_state_batch(replicas, n, make_rng(0))
        new = proto.step_batch(batch, states, BatchedNoisyCountSampler(0.5), make_rng(1))
        assert (new == 0).mean() > 0.9
        states = proto.init_state_batch(replicas, n, make_rng(0))
        clean = proto.step_batch(batch, states, BatchedNoisyCountSampler(0.0), make_rng(2))
        assert (clean == 1).all()

    def test_noisy_identical_stream_scalar_vs_batched(self):
        # The R=1 bitwise equivalence must survive the extra noise draws.
        from repro.core.batch import BatchedPopulation
        from repro.core.noise import BatchedNoisyCountSampler, NoisyCountSampler

        n = 96
        proto = ClockSyncProtocol(n, 5)
        pop = make_population(n, 1)
        rng_scalar, rng_batch = make_rng(7), make_rng(7)
        state = proto.randomize_state(n, make_rng(3))
        batch_state = {"clock": state["clock"][None, :].copy()}
        batch = BatchedPopulation.from_population(pop, 1)
        for _ in range(20):
            new_scalar = proto.step(pop, state, NoisyCountSampler(0.1), rng_scalar)
            new_batched = proto.step_batch(
                batch, batch_state, BatchedNoisyCountSampler(0.1), rng_batch
            )
            assert np.array_equal(new_scalar, new_batched[0])
            pop.set_opinions(new_scalar)
            batch.set_opinions(new_batched)
