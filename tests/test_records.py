"""Tests for run records and protocol descriptions."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.protocol import Protocol
from repro.core.records import RoundRecord, RunResult
from repro.protocols.fet import FETProtocol


class TestRoundRecord:
    def test_fields(self):
        record = RoundRecord(round_index=3, x_before=0.2, x_after=0.5, flips=30)
        assert record.round_index == 3
        assert record.x_before == 0.2
        assert record.x_after == 0.5
        assert record.flips == 30

    def test_frozen(self):
        record = RoundRecord(round_index=0, x_before=0.0, x_after=1.0, flips=5)
        with pytest.raises(AttributeError):
            record.flips = 7


class TestRunResult:
    def test_final_fraction(self):
        result = RunResult(converged=True, rounds=2, trajectory=np.array([0.0, 0.5, 1.0]))
        assert result.final_fraction == 1.0

    def test_pairs_of_short_trajectory(self):
        result = RunResult(converged=False, rounds=0, trajectory=np.array([0.3]))
        assert result.pairs().shape == (0, 2)

    def test_pairs_window(self):
        result = RunResult(converged=True, rounds=3, trajectory=np.array([0.1, 0.2, 0.4, 0.8]))
        pairs = result.pairs()
        assert pairs.shape == (3, 2)
        assert pairs[0].tolist() == [0.1, 0.2]
        assert pairs[-1].tolist() == [0.4, 0.8]

    def test_summary_keys(self):
        result = RunResult(converged=True, rounds=5, trajectory=np.array([0.0, 1.0]))
        summary = result.summary()
        assert summary == {"converged": True, "rounds": 5, "final_fraction": 1.0}

    def test_default_flips_empty(self):
        result = RunResult(converged=False, rounds=1, trajectory=np.array([0.5, 0.5]))
        assert result.flips.size == 0


class TestProtocolDefaults:
    def test_describe_shape(self):
        class Bare(Protocol):
            name = "bare"

            def init_state(self, n, rng):
                return {}

            def step(self, population, state, sampler, rng):
                return population.opinions

        desc = Bare().describe()
        assert desc == {
            "name": "bare",
            "passive": True,
            "samples_per_round": 0,
            "memory_bits": 0.0,
        }

    def test_randomize_defaults_to_init(self):
        class Bare(Protocol):
            def init_state(self, n, rng):
                return {"x": np.arange(n)}

            def step(self, population, state, sampler, rng):
                return population.opinions

        proto = Bare()
        rng = np.random.default_rng(0)
        assert np.array_equal(proto.randomize_state(4, rng)["x"], np.arange(4))

    def test_fet_repr(self):
        assert "FETProtocol" in repr(FETProtocol(5))
