"""Tests for the baseline opinion dynamics (voter, majority, USD, sample-majority)."""

from __future__ import annotations

import numpy as np
import pytest

from conftest import scripted_sampler
from repro.core.engine import run_protocol
from repro.core.population import make_population
from repro.core.rng import make_rng
from repro.initializers.standard import AllWrong
from repro.protocols.majority import MajorityProtocol
from repro.protocols.majority_sampling import MajoritySamplingProtocol
from repro.protocols.undecided import UndecidedStateProtocol
from repro.protocols.voter import VoterProtocol


class TestVoter:
    def test_copies_sampled_opinion(self):
        proto = VoterProtocol()
        pop = make_population(4, 1)
        sampler = scripted_sampler(np.array([1, 0, 1, 0]))
        new = proto.step(pop, {}, sampler, make_rng(0))
        assert new.tolist() == [1, 0, 1, 0]

    def test_is_passive_single_sample(self):
        proto = VoterProtocol()
        assert proto.passive
        assert proto.samples_per_round() == 1
        assert proto.memory_bits() == 0.0

    def test_fails_from_all_wrong(self):
        """Voter does not spread the source opinion in short horizons."""
        n = 2000
        proto = VoterProtocol()
        pop = make_population(n, 1)
        rng = make_rng(0)
        state = proto.init_state(n, rng)
        AllWrong()(pop, proto, state, rng)
        result = run_protocol(proto, pop, 300, rng=rng, state=state)
        assert not result.converged

    def test_preserves_consensus_of_nonsource_free_system(self):
        n = 100
        proto = VoterProtocol()
        pop = make_population(n, 1)
        pop.set_opinions(np.ones(n, dtype=np.uint8))
        result = run_protocol(proto, pop, 20, rng=1)
        assert result.converged
        assert result.rounds == 0


class TestMajority:
    def test_rejects_even_k(self):
        with pytest.raises(ValueError):
            MajorityProtocol(2)

    def test_rejects_nonpositive_k(self):
        with pytest.raises(ValueError):
            MajorityProtocol(-3)

    def test_majority_rule(self):
        proto = MajorityProtocol(3)
        pop = make_population(4, 1)
        sampler = scripted_sampler(np.array([3, 2, 1, 0]))
        new = proto.step(pop, {}, sampler, make_rng(0))
        assert new.tolist() == [1, 1, 0, 0]

    def test_locks_wrong_majority(self):
        """3-majority collapses to the initial (wrong) majority and stays."""
        n = 2000
        proto = MajorityProtocol(3)
        pop = make_population(n, 1)
        rng = make_rng(2)
        state = proto.init_state(n, rng)
        AllWrong()(pop, proto, state, rng)
        result = run_protocol(proto, pop, 200, rng=rng, state=state)
        assert not result.converged
        assert result.final_fraction < 0.05  # stuck near the wrong consensus

    def test_amplifies_correct_majority(self):
        n = 1000
        proto = MajorityProtocol(3)
        pop = make_population(n, 1)
        opinions = np.zeros(n, dtype=np.uint8)
        opinions[:700] = 1
        pop.adversarial_opinions(opinions)
        result = run_protocol(proto, pop, 200, rng=3)
        assert result.converged


class TestMajoritySampling:
    def test_rejects_bad_ell(self):
        with pytest.raises(ValueError):
            MajoritySamplingProtocol(0)

    def test_threshold_and_tie(self):
        proto = MajoritySamplingProtocol(4)
        pop = make_population(5, 1)
        pop.adversarial_opinions(np.array([0, 0, 1, 1, 0], dtype=np.uint8))
        sampler = scripted_sampler(np.array([3, 1, 2, 2, 4]))
        new = proto.step(pop, {}, sampler, make_rng(0))
        # counts 3>2 -> 1; 1<2 -> 0; tie keeps 1; tie keeps 1; 4>2 -> 1
        assert new.tolist() == [1, 0, 1, 1, 1]

    def test_locks_wrong_majority(self):
        n = 2000
        proto = MajoritySamplingProtocol(20)
        pop = make_population(n, 1)
        rng = make_rng(4)
        state = proto.init_state(n, rng)
        AllWrong()(pop, proto, state, rng)
        result = run_protocol(proto, pop, 300, rng=rng, state=state)
        assert not result.converged
        assert result.final_fraction < 0.05


class TestUndecided:
    def test_memory_accounting(self):
        proto = UndecidedStateProtocol()
        assert proto.memory_bits() == 1.0
        assert proto.samples_per_round() == 1

    def test_decided_agent_becomes_undecided_on_disagreement(self):
        proto = UndecidedStateProtocol()
        pop = make_population(3, 1)
        pop.adversarial_opinions(np.array([1, 0, 1], dtype=np.uint8))
        state = {"undecided": np.zeros(3, dtype=bool)}
        sampler = scripted_sampler(np.array([0, 0, 1]))  # sees 0, 0, 1
        new = proto.step(pop, state, sampler, make_rng(0))
        # Agent 0 (opinion 1) saw 0 -> undecided, keeps displaying 1.
        assert new.tolist() == [1, 0, 1]
        assert state["undecided"].tolist() == [True, False, False]

    def test_undecided_agent_adopts_seen(self):
        proto = UndecidedStateProtocol()
        pop = make_population(3, 1)
        pop.adversarial_opinions(np.array([1, 0, 0], dtype=np.uint8))
        state = {"undecided": np.array([False, True, True])}
        sampler = scripted_sampler(np.array([1, 1, 0]))
        new = proto.step(pop, state, sampler, make_rng(0))
        assert new.tolist()[1] == 1  # adopted the seen opinion
        assert new.tolist()[2] == 0
        assert not state["undecided"][1] and not state["undecided"][2]

    def test_randomize_state_varies(self):
        proto = UndecidedStateProtocol()
        state = proto.randomize_state(500, make_rng(0))
        assert 0 < state["undecided"].sum() < 500

    def test_fails_from_all_wrong(self):
        n = 2000
        proto = UndecidedStateProtocol()
        pop = make_population(n, 1)
        rng = make_rng(5)
        state = proto.init_state(n, rng)
        AllWrong()(pop, proto, state, rng)
        result = run_protocol(proto, pop, 300, rng=rng, state=state)
        assert not result.converged
        assert result.final_fraction < 0.05
