"""Tests for the dead-band FET ablation."""

from __future__ import annotations

import numpy as np
import pytest

from conftest import scripted_sampler
from repro.core.engine import run_protocol
from repro.core.population import make_population
from repro.core.rng import make_rng
from repro.initializers.standard import AllWrong
from repro.protocols.fet import FETProtocol
from repro.protocols.hysteresis import HysteresisFETProtocol


class TestConstruction:
    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            HysteresisFETProtocol(0, 1)
        with pytest.raises(ValueError):
            HysteresisFETProtocol(10, -1)

    def test_accounting_matches_fet(self):
        hfet = HysteresisFETProtocol(15, 3)
        fet = FETProtocol(15)
        assert hfet.samples_per_round() == fet.samples_per_round()
        assert hfet.memory_bits() == fet.memory_bits()
        assert hfet.passive


class TestStepSemantics:
    def test_band_suppresses_small_trends(self):
        proto = HysteresisFETProtocol(10, band=2)
        pop = make_population(4, 1)
        pop.adversarial_opinions(np.array([1, 0, 1, 0], dtype=np.uint8))
        state = {"prev_count": np.full(4, 5, dtype=np.int64)}
        # diffs: +2 (within band), -2 (within band), +3 (above), -3 (below)
        counts = np.array([7, 3, 8, 2], dtype=np.int64)
        sampler = scripted_sampler(counts, np.zeros(4))
        new = proto.step(pop, state, sampler, make_rng(0))
        assert new.tolist() == [1, 0, 1, 0]

    def test_band_zero_equals_fet(self):
        """band = 0 must reproduce FET decisions exactly."""
        n = 8
        counts = np.array([3, 1, 2, 4, 0, 2, 3, 1], dtype=np.int64)
        second = np.array([1, 2, 3, 0, 4, 2, 1, 3], dtype=np.int64)
        prev = np.full(n, 2, dtype=np.int64)
        opinions = np.array([1, 0, 1, 0, 1, 0, 1, 0], dtype=np.uint8)

        results = []
        for proto in (HysteresisFETProtocol(4, 0), FETProtocol(4)):
            pop = make_population(n, 1)
            pop.adversarial_opinions(opinions.copy())
            state = {"prev_count": prev.copy()}
            sampler = scripted_sampler(counts.copy(), second.copy())
            results.append(proto.step(pop, state, sampler, make_rng(0)))
        assert np.array_equal(results[0], results[1])


class TestNegativeResult:
    """The measured facts the module docstring claims."""

    def test_band_zero_converges_like_fet(self):
        n = 1000
        proto = HysteresisFETProtocol(56, 0)
        pop = make_population(n, 1)
        rng = make_rng(0)
        state = proto.init_state(n, rng)
        AllWrong()(pop, proto, state, rng)
        result = run_protocol(proto, pop, 2000, rng=rng, state=state)
        assert result.converged

    def test_moderate_band_still_converges_but_slower(self):
        n = 1000
        times = {}
        for band in (0, 2):
            proto = HysteresisFETProtocol(56, band)
            pop = make_population(n, 1)
            rng = make_rng(1)
            state = proto.init_state(n, rng)
            AllWrong()(pop, proto, state, rng)
            result = run_protocol(proto, pop, 20_000, rng=rng, state=state)
            assert result.converged, f"band={band} failed"
            times[band] = result.rounds
        assert times[2] >= times[0]  # the band can only slow things down

    def test_large_band_stalls(self):
        """A band at the count-noise scale kills the Yellow-escape engine."""
        n = 1000
        proto = HysteresisFETProtocol(56, 8)
        pop = make_population(n, 1)
        rng = make_rng(2)
        state = proto.init_state(n, rng)
        AllWrong()(pop, proto, state, rng)
        result = run_protocol(proto, pop, 1000, rng=rng, state=state)
        assert not result.converged
