"""Tests for the experiment harnesses (trials, sweeps, transitions)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.population import make_population
from repro.experiments.convergence import (
    fit_scaling,
    sweep_population_sizes,
    sweep_sample_sizes,
)
from repro.experiments.harness import run_trials
from repro.experiments.trajectories import run_annotated
from repro.experiments.transitions import collect_transitions
from repro.initializers.standard import AllWrong, BernoulliRandom
from repro.protocols.fet import FETProtocol, ell_for
from repro.protocols.voter import VoterProtocol


class TestRunTrials:
    def test_aggregates(self):
        stats = run_trials(
            lambda: FETProtocol(30),
            400,
            AllWrong(),
            trials=10,
            max_rounds=800,
            seed=0,
        )
        assert stats.trials == 10
        assert stats.successes == 10
        assert stats.times.size == 10
        assert stats.success_rate == 1.0

    def test_reproducible(self):
        kwargs = dict(trials=5, max_rounds=500, seed=42)
        a = run_trials(lambda: FETProtocol(30), 300, AllWrong(), **kwargs)
        b = run_trials(lambda: FETProtocol(30), 300, AllWrong(), **kwargs)
        assert np.array_equal(a.times, b.times)

    def test_failure_counted(self):
        stats = run_trials(
            lambda: VoterProtocol(),
            1000,
            AllWrong(),
            trials=5,
            max_rounds=50,
            seed=1,
        )
        assert stats.successes == 0
        assert stats.times.size == 0
        assert np.isnan(stats.time_summary().mean)

    def test_row_fields(self):
        stats = run_trials(
            lambda: FETProtocol(30), 300, AllWrong(), trials=3, max_rounds=500, seed=2
        )
        row = stats.row()
        assert row["n"] == 300
        assert row["success"] == "3/3"

    def test_keep_results(self):
        stats = run_trials(
            lambda: FETProtocol(30),
            300,
            AllWrong(),
            trials=3,
            max_rounds=500,
            seed=3,
            keep_results=True,
        )
        assert len(stats.results) == 3

    def test_custom_population_factory(self):
        stats = run_trials(
            lambda: FETProtocol(30),
            300,
            AllWrong(),
            trials=2,
            max_rounds=500,
            seed=4,
            population_factory=lambda: make_population(300, 0),
        )
        assert stats.successes == 2

    def test_zero_trials_degrade_gracefully(self):
        with np.errstate(all="raise"):  # any division warning would raise
            stats = run_trials(
                lambda: FETProtocol(10), 100, AllWrong(), trials=0, max_rounds=10, seed=0
            )
            assert stats.trials == 0
            assert stats.successes == 0
            assert stats.times.size == 0
            assert np.isnan(stats.success_rate)
            assert all(np.isnan(v) for v in stats.success_interval)
            assert stats.time_summary().count == 0
            assert stats.protocol_name == "fet(ell=10)"
            row = stats.row()
            assert row["success"] == "0/0"

    def test_rejects_negative_trials(self):
        with pytest.raises(ValueError, match="trials"):
            run_trials(
                lambda: FETProtocol(10), 100, AllWrong(), trials=-1, max_rounds=10, seed=0
            )

    def test_rejects_nonpositive_max_rounds(self):
        for max_rounds in (0, -5):
            with pytest.raises(ValueError, match="max_rounds"):
                run_trials(
                    lambda: FETProtocol(10),
                    100,
                    AllWrong(),
                    trials=2,
                    max_rounds=max_rounds,
                    seed=0,
                )


class TestSweeps:
    def test_population_sweep_rows(self):
        rows = sweep_population_sizes([128, 256, 512], trials=4, seed=0)
        assert [row.n for row in rows] == [128, 256, 512]
        for row in rows:
            assert row.ell == ell_for(row.n)
            assert row.stats.successes == row.stats.trials

    def test_fit_scaling_runs(self):
        rows = sweep_population_sizes([128, 512, 2048], trials=4, seed=1)
        fit = fit_scaling(rows)
        assert np.isfinite(fit.b)

    def test_sample_size_sweep(self):
        rows = sweep_sample_sizes(400, [4, 16, 48], trials=4, seed=2, max_rounds=4000)
        assert [row.ell for row in rows] == [4, 16, 48]
        # The largest ell should succeed in every trial.
        assert rows[-1].stats.successes == rows[-1].stats.trials


class TestAnnotatedRun:
    def test_domains_align_with_pairs(self):
        annotated = run_annotated(
            FETProtocol(40),
            800,
            AllWrong(),
            max_rounds=1000,
            seed=0,
        )
        assert len(annotated.domains) == annotated.result.pairs().shape[0]

    def test_dwell_segments_sum(self):
        annotated = run_annotated(
            FETProtocol(40),
            800,
            BernoulliRandom(0.5),
            max_rounds=1000,
            seed=1,
        )
        total = sum(dwell for _, dwell in annotated.dwell_segments())
        assert total == len(annotated.domains)

    def test_starts_in_cyan_from_all_wrong(self):
        annotated = run_annotated(
            FETProtocol(40),
            800,
            AllWrong(),
            max_rounds=1000,
            seed=2,
        )
        assert annotated.domains[0].family == "Cyan"


class TestCollectTransitions:
    def test_summary_populated(self):
        summary = collect_transitions(
            500,
            ell_for(500),
            [AllWrong(), BernoulliRandom(0.5)],
            trials_per_init=4,
            max_rounds=2000,
            seed=0,
        )
        assert summary.runs == 8
        assert summary.converged_runs == 8
        assert summary.dwell_times  # non-empty

    def test_transition_probabilities_normalized(self):
        summary = collect_transitions(
            500,
            ell_for(500),
            [AllWrong()],
            trials_per_init=6,
            max_rounds=2000,
            seed=1,
        )
        for family in summary.families():
            total = sum(
                summary.transition_probability(family, dst)
                for dst in summary.families()
                if not np.isnan(summary.transition_probability(family, dst))
            )
            if total:  # families with at least one outgoing transition
                assert total == pytest.approx(1.0)

    def test_dwell_helpers(self):
        summary = collect_transitions(
            500,
            ell_for(500),
            [AllWrong()],
            trials_per_init=4,
            max_rounds=2000,
            seed=2,
        )
        family = next(iter(summary.dwell_times))
        assert summary.max_dwell(family) >= 1
        assert summary.mean_dwell(family) >= 1.0
        assert summary.max_dwell("nonexistent") == 0
