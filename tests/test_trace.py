"""Trace subsystem: recorders, measures, engine integration, migrations.

The contract under test: the batched engine plus a trace recorder must
reproduce, per replica, exactly what a per-trial sequential engine would have
logged — trajectories trimmed to executed rounds, rows frozen at retirement,
flip totals preserved under stride, ring windows identical to the full
trace's tail — and the vectorized trace measures must agree with the
sequential per-step measurement logic on identical per-replica streams.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.batch import BatchedEngine, BatchedPopulation
from repro.core.engine import SynchronousEngine
from repro.core.population import make_population
from repro.core.protocol import Protocol
from repro.experiments.harness import run_trials
from repro.experiments.transitions import collect_transitions
from repro.initializers.standard import AllWrong
from repro.protocols.fet import FETProtocol, ell_for
from repro.sweep import ResultsStore, SweepSpec, measure_kinds, register_measure, run_sweep
from repro.trace import (
    BatchTrace,
    FullTrace,
    RingBufferTrace,
    nonsource_correct_fractions,
    post_settle_flip_rate,
    settle_rounds,
    time_to_threshold,
    window_mean_after,
)


class GrowOneProtocol(Protocol):
    """Deterministic: one more agent adopts 1 each round (staggered retire)."""

    name = "grow-one"
    batch_vectorized = True

    def init_state(self, n, rng):
        return {}

    def step(self, population, state, sampler, rng):
        new = population.opinions.copy()
        zeros = np.nonzero(new == 0)[0]
        if zeros.size:
            new[zeros[0]] = 1
        return new

    def step_batch(self, batch, states, sampler, rng):
        new = batch.opinions.copy()
        for row in new:
            zeros = np.nonzero(row == 0)[0]
            if zeros.size:
                row[zeros[0]] = 1
        return new


def _staggered_engine(n=8, replicas=5):
    """Replica r starts with r+1 ones; grow-one retires them in reverse order."""
    pop = make_population(n, 1)
    batch = BatchedPopulation.from_population(pop, replicas)
    for r in range(replicas):
        batch.opinions[r, : r + 1] = 1
    batch.invalidate_cache()
    return BatchedEngine(GrowOneProtocol(), batch, rng=0)


class TestRecorderBasics:
    def test_requires_bind_before_record(self):
        recorder = FullTrace()
        with pytest.raises(RuntimeError, match="not bound"):
            recorder.on_round(0, np.zeros(2))

    def test_single_use(self):
        recorder = FullTrace()
        recorder.bind(replicas=1, n=4, num_sources=1, sources_correct=1,
                      correct_opinion=1, pin_each_round=True)
        with pytest.raises(RuntimeError, match="single-use"):
            recorder.bind(replicas=1, n=4, num_sources=1, sources_correct=1,
                          correct_opinion=1, pin_each_round=True)

    def test_rejects_bad_stride_and_capacity(self):
        with pytest.raises(ValueError):
            FullTrace(stride=0)
        with pytest.raises(ValueError):
            RingBufferTrace(0)

    def test_flip_channel_demands_flips(self):
        recorder = FullTrace(record_flips=True)
        recorder.bind(replicas=1, n=4, num_sources=1, sources_correct=1,
                      correct_opinion=1, pin_each_round=True)
        with pytest.raises(ValueError, match="flips"):
            recorder.on_round(0, np.zeros(1), None)

    def test_empty_trace_shapes(self):
        recorder = FullTrace(record_flips=True)
        recorder.bind(replicas=3, n=4, num_sources=1, sources_correct=1,
                      correct_opinion=1, pin_each_round=True)
        trace = recorder.trace()
        assert trace.x.shape == (3, 0)
        assert trace.flips.shape == (3, 0)
        assert trace.columns == 0


class TestEngineRecording:
    def test_records_deterministic_trajectories(self):
        n, replicas = 8, 5
        recorder = FullTrace(record_flips=True)
        engine = _staggered_engine(n, replicas)
        result = engine.run(100, stability_rounds=1, recorder=recorder)
        trace = recorder.trace()
        horizon = int(result.rounds_executed.max())  # slowest replica: 7 rounds
        assert horizon == n - 1
        assert np.array_equal(trace.rounds, np.arange(horizon + 1))
        for r in range(replicas):
            expected = np.minimum((r + 1 + np.arange(horizon + 1)) / n, 1.0)
            assert np.allclose(trace.x[r], expected)

    def test_retirement_freezes_rows_and_flips(self):
        n, replicas = 8, 5
        recorder = FullTrace(record_flips=True)
        engine = _staggered_engine(n, replicas)
        result = engine.run(100, stability_rounds=1, recorder=recorder)
        trace = recorder.trace()
        for r in range(replicas):
            t_con = int(result.rounds[r])
            # frozen at the final value from retirement on
            assert (trace.x[r, t_con:] == 1.0).all()
            # exactly one flip per executed round, none after retirement
            assert (trace.flips[r, 1 : t_con + 1] == 1).all()
            assert (trace.flips[r, t_con + 1 :] == 0).all()
            assert trace.flips[r, 0] == 0

    def test_to_run_results_matches_sequential_exactly(self):
        n, replicas = 8, 5
        recorder = FullTrace(record_flips=True)
        engine = _staggered_engine(n, replicas)
        result = engine.run(100, stability_rounds=1, recorder=recorder)
        results = recorder.trace().to_run_results(result)
        for r, batched in enumerate(results):
            pop = make_population(n, 1)
            pop.opinions[: r + 1] = 1
            pop.invalidate_cache()
            sequential = SynchronousEngine(GrowOneProtocol(), pop, rng=0).run(
                100, stability_rounds=1, record_flips=True
            )
            assert batched.converged == sequential.converged
            assert batched.rounds == sequential.rounds
            assert np.array_equal(batched.trajectory, sequential.trajectory)
            assert np.array_equal(batched.flips, sequential.flips)

    def test_sequential_engine_recorder_matches_run_result(self):
        pop = make_population(200, 1)
        rng_seed = 3
        protocol = FETProtocol(24)
        state = protocol.init_state(200, np.random.default_rng(rng_seed))
        recorder = FullTrace(record_flips=True)
        engine = SynchronousEngine(protocol, pop, rng=rng_seed, state=state)
        result = engine.run(400, recorder=recorder, record_flips=True)
        trace = recorder.trace()
        assert trace.replicas == 1
        assert np.array_equal(trace.x[0], result.trajectory)
        assert np.array_equal(trace.flips[0, 1:], result.flips)

    def test_linger_keeps_stepping_after_lock(self):
        # grow-one, stop at x >= 1/2 (round 3 from one source), linger 2:
        # convergence accounting locks at round 3 but rounds 4 and 5 still
        # execute, so the trace keeps rising through the linger window.
        n = 8
        pop = make_population(n, 1)
        batch = BatchedPopulation.from_population(pop, 2)
        recorder = FullTrace()
        engine = BatchedEngine(GrowOneProtocol(), batch, rng=0)
        result = engine.run(
            100,
            stability_rounds=1,
            stop_condition=lambda b: b.fraction_ones() >= 0.5,
            recorder=recorder,
            linger_rounds=2,
        )
        assert result.converged.all()
        assert (result.rounds == 3).all()
        assert (result.rounds_executed == 5).all()
        trace = recorder.trace()
        assert np.allclose(trace.x[0], (1 + np.arange(6)) / n)
        level = window_mean_after(trace.x, trace.rounds, result.rounds, 2)
        assert level[0] == pytest.approx((5 / 8 + 6 / 8) / 2)

    def test_linger_may_exceed_max_rounds(self):
        # Lock lands on the final budgeted round; the settle window runs past
        # max_rounds exactly like sequential settle stepping does.
        n = 8
        pop = make_population(n, 1)
        batch = BatchedPopulation.from_population(pop, 1)
        engine = BatchedEngine(GrowOneProtocol(), batch, rng=0)
        result = engine.run(
            3,
            stability_rounds=1,
            stop_condition=lambda b: b.fraction_ones() >= 0.5,
            linger_rounds=4,
        )
        assert result.converged.all()
        assert result.rounds[0] == 3
        assert result.rounds_executed[0] == 7

    def test_rejects_negative_linger(self):
        pop = make_population(8, 1)
        engine = BatchedEngine(GrowOneProtocol(), BatchedPopulation.from_population(pop, 1), rng=0)
        with pytest.raises(ValueError):
            engine.run(10, linger_rounds=-1)


def _two_identical_runs(recorder_a, recorder_b, *, max_rounds=400):
    """Run the same seeded FET batch twice, once per recorder."""
    for recorder in (recorder_a, recorder_b):
        pop = make_population(150, 1)
        batch = BatchedPopulation.from_population(pop, 6)
        engine = BatchedEngine(FETProtocol(20), batch, rng=42)
        engine.run(max_rounds, recorder=recorder)
    return recorder_a.trace(), recorder_b.trace()


class TestStrideAndRing:
    def test_stride_downsamples_exactly(self):
        full, strided = _two_identical_runs(
            FullTrace(record_flips=True), FullTrace(stride=3, record_flips=True)
        )
        last = int(full.rounds[-1])
        expected_rounds = list(range(0, last + 1, 3))
        if expected_rounds[-1] != last:
            expected_rounds.append(last)  # final round flushed as partial tail
        assert strided.rounds.tolist() == expected_rounds
        assert np.array_equal(strided.x, full.x[:, strided.rounds])

    def test_stride_preserves_flip_totals(self):
        full, strided = _two_identical_runs(
            FullTrace(record_flips=True), FullTrace(stride=3, record_flips=True)
        )
        # Column k of the strided flip channel covers rounds
        # (rounds[k-1], rounds[k]] — including a partial tail column — so
        # downsampling loses no flips at all.
        for k in range(1, strided.columns):
            lo = int(strided.rounds[k - 1]) + 1
            hi = int(strided.rounds[k]) + 1
            assert np.array_equal(strided.flips[:, k], full.flips[:, lo:hi].sum(axis=1))
        assert (strided.flips[:, 0] == 0).all()
        assert strided.flips.sum() == full.flips.sum()

    def test_stride_flushes_final_round(self):
        # A deterministic run ending off-stride: grow-one from one source on
        # n=8 executes 7 rounds; stride 4 records rounds 0, 4 and must flush
        # round 7 (with the flips of rounds 5-7) rather than drop them.
        recorder = FullTrace(stride=4, record_flips=True)
        _staggered_engine(replicas=1).run(100, stability_rounds=1, recorder=recorder)
        trace = recorder.trace()
        assert trace.rounds.tolist() == [0, 4, 7]
        assert trace.x[0].tolist() == [1 / 8, 5 / 8, 1.0]
        assert trace.flips[0].tolist() == [0, 4, 3]
        # flushing is idempotent
        assert recorder.trace().rounds.tolist() == [0, 4, 7]

    def test_ring_equals_full_tail(self):
        full, ring = _two_identical_runs(
            FullTrace(record_flips=True), RingBufferTrace(5, record_flips=True)
        )
        assert ring.columns == 5
        assert np.array_equal(ring.rounds, full.rounds[-5:])
        assert np.array_equal(ring.x, full.x[:, -5:])
        assert np.array_equal(ring.flips, full.flips[:, -5:])

    def test_unwrapped_ring_equals_full(self):
        full, ring = _two_identical_runs(FullTrace(), RingBufferTrace(100_000))
        assert np.array_equal(ring.rounds, full.rounds)
        assert np.array_equal(ring.x, full.x)

    def test_strided_ring_composes(self):
        full, ring = _two_identical_runs(
            FullTrace(stride=2), RingBufferTrace(4, stride=2)
        )
        assert np.array_equal(ring.rounds, full.rounds[-4:])
        assert np.array_equal(ring.x, full.x[:, -4:])

    def test_make_recorder_factory(self):
        from repro.trace import make_recorder

        full = make_recorder(stride=2, record_flips=True)
        assert isinstance(full, FullTrace) and full.stride == 2 and full.record_flips
        ring = make_recorder(ring=16)
        assert isinstance(ring, RingBufferTrace) and ring.capacity == 16

    def test_to_run_results_rejects_partial_traces(self):
        pop = make_population(8, 1)
        for recorder in (FullTrace(stride=2), RingBufferTrace(2)):
            batch = BatchedPopulation.from_population(pop, 1)
            engine = BatchedEngine(GrowOneProtocol(), batch, rng=0)
            result = engine.run(100, stability_rounds=1, recorder=recorder)
            with pytest.raises(ValueError):
                recorder.trace().to_run_results(result)


def _toy_trace(x, flips=None, *, n=10, num_sources=1, sources_correct=1,
               correct_opinion=1, pin=True, stride=1, rounds=None):
    x = np.asarray(x, dtype=float)
    return BatchTrace(
        x=x,
        rounds=np.arange(x.shape[1]) if rounds is None else np.asarray(rounds),
        flips=None if flips is None else np.asarray(flips, dtype=np.int64),
        stride=stride,
        meta={
            "replicas": x.shape[0],
            "n": n,
            "num_sources": num_sources,
            "sources_correct": sources_correct,
            "correct_opinion": correct_opinion,
            "pin_each_round": pin,
        },
    )


class TestMeasures:
    def test_nonsource_correct_affine(self):
        trace = _toy_trace([[0.1, 0.5, 1.0]], n=10)
        # one source pinned correct: nonsource correct = (ones - 1) / 9
        assert np.allclose(nonsource_correct_fractions(trace)[0], [0.0, 4 / 9, 1.0])

    def test_nonsource_correct_side_zero(self):
        # correct opinion 0: correct count = n - ones
        trace = _toy_trace([[0.1, 0.0]], n=10, correct_opinion=0)
        assert np.allclose(nonsource_correct_fractions(trace)[0], [8 / 9, 1.0])

    def test_nonsource_correct_requires_pinning(self):
        trace = _toy_trace([[0.5]], pin=False)
        with pytest.raises(ValueError, match="pinned"):
            nonsource_correct_fractions(trace)

    def test_time_to_threshold(self):
        values = np.array([[0.1, 0.4, 0.9, 0.95], [0.1, 0.2, 0.3, 0.4]])
        rounds = np.arange(4)
        assert time_to_threshold(values, rounds, 0.9).tolist() == [2, -1]

    def test_time_to_threshold_respects_round_labels(self):
        values = np.array([[0.1, 0.95]])
        assert time_to_threshold(values, np.array([0, 6]), 0.9).tolist() == [6]

    def test_window_mean_after(self):
        values = np.array([[0.0, 0.2, 0.4, 0.6, 0.8]])
        rounds = np.arange(5)
        # start 1, window 2 -> rounds 2 and 3
        assert window_mean_after(values, rounds, np.array([1]), 2)[0] == pytest.approx(0.5)
        # start -1 (never) and empty windows are NaN
        assert np.isnan(window_mean_after(values, rounds, np.array([-1]), 2)[0])
        assert np.isnan(window_mean_after(values, rounds, np.array([1]), 0)[0])
        # window reaching past the trace averages what exists
        assert window_mean_after(values, rounds, np.array([3]), 10)[0] == pytest.approx(0.8)

    def test_settle_rounds(self):
        values = np.array([[0.1, 0.9, 1.0, 1.0, 1.0], [0.2, 0.2, 0.2, 0.2, 0.2]])
        rounds = np.arange(5)
        assert settle_rounds(values, rounds).tolist() == [2, 0]
        assert settle_rounds(values, rounds, tolerance=0.2)[0] == 1

    def test_post_settle_flip_rate(self):
        trace = _toy_trace(
            [[0.5, 0.5, 0.5, 0.5]],
            flips=[[0, 4, 2, 6]],
            rounds=np.arange(4),
        )
        # settle at round 1 -> flips over rounds 2..3 = 8 across 2 rounds
        rate = post_settle_flip_rate(trace, np.array([1]))
        assert rate[0] == pytest.approx(4.0)
        # settle at the last round -> nothing after -> NaN
        assert np.isnan(post_settle_flip_rate(trace, np.array([3]))[0])

    def test_post_settle_flip_rate_needs_channel(self):
        with pytest.raises(ValueError, match="flip channel"):
            post_settle_flip_rate(_toy_trace([[0.5, 0.5]]))


class TestThetaAgreement:
    """Settle/θ trace measures vs the sequential per-step logic."""

    def test_exact_on_identical_streams(self):
        # Record noisy sequential FET runs round by round; the vectorized
        # trace measures and a plain per-trial reimplementation of the
        # sequential θ/settle logic must agree exactly on the same streams.
        from repro.core.noise import NoisyCountSampler

        theta, window, max_rounds = 0.9, 8, 120
        curves = []
        for seed in range(6):
            protocol = FETProtocol(24)
            pop = make_population(200, 1)
            rng = np.random.default_rng(seed)
            state = protocol.init_state(200, rng)
            AllWrong()(pop, protocol, state, rng)
            engine = SynchronousEngine(
                protocol, pop, sampler=NoisyCountSampler(0.1), rng=rng, state=state
            )
            levels = [pop.nonsource_correct_fraction()]
            for _ in range(max_rounds):
                engine.step()
                levels.append(pop.nonsource_correct_fraction())
            curves.append(levels)
        values = np.asarray(curves)
        rounds = np.arange(max_rounds + 1)

        hits = time_to_threshold(values, rounds, theta)
        settle = window_mean_after(values, rounds, hits, window)

        for r in range(values.shape[0]):
            # reference: the sequential measure's own definition
            hit = next((t for t in range(max_rounds + 1) if values[r, t] >= theta), -1)
            assert hits[r] == hit
            if hit >= 0 and hit + 1 <= max_rounds:
                expected = float(np.mean(values[r, hit + 1 : hit + 1 + window]))
                assert settle[r] == pytest.approx(expected, abs=1e-12)

    def test_sweep_theta_batched_vs_sequential(self):
        kwargs = dict(
            axes={
                "protocol": [{"name": "fet", "ell": 24}],
                "n": [200],
                "noise": [0.1],
                "initializer": ["all-wrong"],
            },
            trials=30,
            max_rounds=300,
            stability_rounds=1,
            seed=11,
            measure={"kind": "theta", "theta": 0.9, "settle_window": 10},
        )
        rows = {}
        for engine in ("batched", "sequential"):
            out = run_sweep(SweepSpec(engine=engine, **kwargs))
            row = out.rows()[0]
            assert row["engine"] == engine
            rows[engine] = row
        # noisy FET reaches theta essentially always; both paths must agree
        assert rows["batched"]["successes"] == rows["sequential"]["successes"] == 30
        assert rows["batched"]["settle"] == pytest.approx(rows["sequential"]["settle"], abs=0.02)
        assert rows["batched"]["median"] == pytest.approx(rows["sequential"]["median"], abs=3)

    def test_theta_cells_default_to_batched(self):
        spec = SweepSpec(
            axes={"protocol": [{"name": "fet", "ell": 20}], "n": [200]},
            trials=2,
            max_rounds=300,
            stability_rounds=1,
            measure={"kind": "theta", "theta": 0.9, "settle_window": 4},
        )
        row = run_sweep(spec).rows()[0]
        assert row["engine"] == "batched"
        assert row["successes"] == 2
        assert row["settle"] == pytest.approx(1.0, abs=0.05)


class TestKeepResultsMigration:
    def test_batched_keep_results_round_trip(self):
        stats = run_trials(
            lambda: FETProtocol(20), 150, AllWrong(), trials=6, max_rounds=400,
            seed=9, engine="batched", keep_results=True,
        )
        assert stats.engine == "batched"
        assert len(stats.results) == 6
        for result in stats.results:
            assert result.converged
            assert result.trajectory[0] == pytest.approx(1 / 150)
            assert result.final_fraction == 1.0
            # trajectory covers exactly the executed rounds (t_con + window - 1)
            assert result.trajectory.shape[0] == result.rounds + 2

    def test_auto_keep_results_falls_back_without_vectorization(self):
        # Since the clock-sync vectorization every shipped protocol is
        # batch-vectorized, so the fallback is exercised by masking the flag.
        from repro.protocols.clock_sync import ClockSyncProtocol

        def factory():
            protocol = ClockSyncProtocol(64, 4)
            protocol.batch_vectorized = False
            return protocol

        stats = run_trials(
            factory, 64, AllWrong(),
            trials=2, max_rounds=150, seed=4, keep_results=True,
        )
        assert stats.engine == "sequential"
        assert len(stats.results) == 2

    def test_clock_sync_traces_ride_the_batched_engine(self):
        # The last ROADMAP trace follow-on: clock-sync trajectory recording
        # used to pay the per-replica fallback; with step_batch it runs on
        # the batched path, with retired rows frozen at their final value.
        from repro.protocols.clock_sync import ClockSyncProtocol

        stats = run_trials(
            lambda: ClockSyncProtocol(64, 4), 64, AllWrong(),
            trials=4, max_rounds=300, seed=4, keep_results=True,
        )
        assert stats.engine == "batched"
        assert len(stats.results) == 4
        for result in stats.results:
            assert result.converged
            assert result.trajectory[0] == pytest.approx(1 / 64)
            assert result.final_fraction == 1.0
            assert result.trajectory.shape[0] >= result.rounds + 1


class TestTransitionsMigration:
    def test_batched_matches_sequential_structure(self):
        kwargs = dict(
            trials_per_init=4, max_rounds=2000, seed=0, delta=0.05
        )
        n, ell = 500, ell_for(500)
        batched = collect_transitions(n, ell, [AllWrong()], engine="batched", **kwargs)
        sequential = collect_transitions(n, ell, [AllWrong()], engine="sequential", **kwargs)
        assert batched.runs == sequential.runs == 4
        assert batched.converged_runs == sequential.converged_runs == 4
        # all-wrong starts in Cyan on both paths, and the chain passes
        # through the same families on its way to Green
        assert set(batched.families()) == set(sequential.families())
        for family in batched.dwell_times:
            assert batched.max_dwell(family) >= 1

    def test_default_engine_is_batched_shaped(self):
        # auto == batched for FET; the default call must accept the kwarg-free
        # form and produce a populated summary (the bench_fig1b call shape).
        summary = collect_transitions(
            300, ell_for(300), [AllWrong()], trials_per_init=2, max_rounds=1500, seed=3
        )
        assert summary.runs == 2 and summary.converged_runs == 2

    def test_rejects_unknown_engine(self):
        with pytest.raises(ValueError):
            collect_transitions(
                300, 20, [AllWrong()], trials_per_init=1, max_rounds=10, seed=0,
                engine="turbo",
            )


class TestSweepTraceMeasure:
    def test_trace_measure_payload(self):
        spec = SweepSpec(
            axes={"protocol": [{"name": "fet", "ell": 20}], "n": [150]},
            trials=4,
            max_rounds=300,
            measure={"kind": "trace", "flips": True},
        )
        result = run_sweep(spec).results[0]
        payload = result.payload
        assert payload["measure"] == "trace"
        assert payload["engine"] == "batched"
        assert payload["successes"] == 4
        assert payload["final_x_mean"] == pytest.approx(1.0)
        assert len(payload["settle_rounds"]) == 4
        # converged noiseless runs are absorbing: no flips after settling
        assert payload["post_settle_flip_rate"] == pytest.approx(0.0)
        row = result.row()
        assert row["successes"] == 4 and np.isnan(row["settle"])

    def test_trace_measure_ring_and_stride(self):
        spec = SweepSpec(
            axes={"protocol": [{"name": "fet", "ell": 20}], "n": [150]},
            trials=3,
            max_rounds=300,
            measure={"kind": "trace", "stride": 2, "ring": 8},
        )
        payload = run_sweep(spec).results[0].payload
        assert payload["successes"] == 3
        assert payload["recorded_columns"] <= 8

    def test_trace_measure_rejects_sequential_engine(self):
        spec = SweepSpec(
            axes={"protocol": [{"name": "fet", "ell": 20}], "n": [100]},
            trials=2,
            max_rounds=200,
            engine="sequential",
            measure={"kind": "trace"},
        )
        with pytest.raises(ValueError, match="sequential"):
            run_sweep(spec)

    def test_measure_registry_contents(self):
        kinds = measure_kinds()
        assert set(kinds) >= {"consensus", "theta", "trace"}

    def test_register_measure_rejects_duplicates(self):
        with pytest.raises(ValueError, match="already registered"):
            register_measure("consensus", lambda cell, f, i: {})

    def test_custom_measure_exports_without_successes(self):
        # A payload built to the documented minimum contract (no successes/
        # reached key) must still export: the rate columns degrade to NaN.
        from repro.sweep.runner import CellResult

        result = CellResult(
            key="k",
            cell={"trials": 3, "n": 100, "noise": 0.0},
            payload={
                "measure": "custom",
                "protocol": "fet",
                "initializer": "all-wrong",
                "times": [1.0, 2.0],
                "engine": "batched",
            },
        )
        row = result.row()
        assert np.isnan(row["successes"]) and np.isnan(row["rate"])
        assert row["median"] == pytest.approx(1.5)

    def test_spec_validates_measure_params(self):
        base = dict(axes={"protocol": ["fet"], "n": [100]}, trials=1)
        with pytest.raises(ValueError, match="measure kind"):
            SweepSpec(measure={"kind": "nope"}, **base)
        with pytest.raises(ValueError, match="stride"):
            SweepSpec(measure={"kind": "trace", "stride": 0}, **base)
        with pytest.raises(ValueError, match="ring"):
            SweepSpec(measure={"kind": "trace", "ring": 0}, **base)
        with pytest.raises(ValueError, match="'theta' threshold"):
            SweepSpec(measure={"kind": "theta"}, **base)


class TestStoreProvenance:
    def test_put_stamps_records(self, tmp_path):
        store = ResultsStore(tmp_path / "s.jsonl")
        store.put("k1", {"cell": {"n": 10}, "payload": {"x": 1}})
        record = ResultsStore(tmp_path / "s.jsonl").get("k1")
        stamp = record["provenance"]
        assert set(stamp) == {"host", "python", "version", "timestamp"}
        from repro import __version__

        assert stamp["version"] == __version__
        assert stamp["timestamp"].startswith("20")

    def test_legacy_records_without_stamp_load(self, tmp_path):
        path = tmp_path / "s.jsonl"
        path.write_text('{"key": "old", "cell": {"n": 5}, "payload": {"x": 2}}\n')
        store = ResultsStore(path)
        assert store.get("old")["payload"] == {"x": 2}
        assert "provenance" not in store.get("old")
        # and appending next to legacy lines still works + stamps
        store.put("new", {"cell": {}, "payload": {}})
        reloaded = ResultsStore(path)
        assert "provenance" in reloaded.get("new")
        assert "provenance" not in reloaded.get("old")

    def test_explicit_provenance_wins(self, tmp_path):
        store = ResultsStore(tmp_path / "s.jsonl")
        store.put("k", {"cell": {}, "payload": {}, "provenance": {"host": "archived"}})
        assert store.get("k")["provenance"] == {"host": "archived"}


class TestVizExport:
    def test_write_trace_csv(self, tmp_path):
        from repro.viz import write_trace_csv

        recorder = FullTrace(record_flips=True)
        _staggered_engine().run(100, stability_rounds=1, recorder=recorder)
        trace = recorder.trace()
        path = write_trace_csv(tmp_path / "t.csv", trace)
        lines = path.read_text().strip().splitlines()
        assert lines[0] == "replica,round,x,flips"
        assert len(lines) == 1 + trace.replicas * trace.columns

    def test_render_batch_trace(self):
        from repro.viz import render_batch_trace

        recorder = FullTrace()
        _staggered_engine().run(100, stability_rounds=1, recorder=recorder)
        trace = recorder.trace()
        text = render_batch_trace(trace)
        assert "mean one-fraction over 5 replica(s)" in text
        with pytest.raises(ValueError, match="reducer"):
            render_batch_trace(trace, reducer="mode")
