"""Counts engine: exact-chain validation, batched equivalence, contract parity.

The sufficient-statistic engine must be *exact in distribution*: stepping
``(R, S)`` state-count matrices with multinomial draws is the same stochastic
process as stepping ``n`` agents, just without agent identity. Three layers of
evidence here: (1) convergence times match the exact Markov chain of
:mod:`repro.analysis.markov` at small ``n``; (2) KS-indistinguishable time
distributions against the batched engine across the whole count-capable
protocol lineup, noisy observation included; (3) the ``run`` contract —
stability windows, retirement, linger, traces, single-shot — behaves exactly
like :class:`~repro.core.batch.BatchedEngine`'s.

Components with no count-level meaning (per-agent samplers, crafted
initializers and populations, flip recording) must be rejected with a clear
error at every entry point: the engine itself, the harness, and
``validate_cell``.
"""

from __future__ import annotations

import numpy as np
import pytest
from scipy import stats as scipy_stats

from repro.analysis.markov import ExactPairChain
from repro.config import RunSpec
from repro.core.batch import BatchedEngine, BatchedPopulation
from repro.core.counts import CountEngine, CountPopulation, make_count_population
from repro.core.population import make_population
from repro.core.sampling import BatchedBinomialSampler
from repro.experiments.harness import make_count_engine, prepare_counts
from repro.initializers.adversarial import ZeroSpeedCenter
from repro.protocols.fet import FETProtocol
from repro.protocols.oracle_clock import OracleClockProtocol
from repro.protocols.voter import VoterProtocol
from repro.sweep.registry import validate_cell
from repro.trace.recorder import FullTrace


def chain_state_population(
    n: int, ell: int, i: int, j: int, replicas: int, rng: np.random.Generator
) -> CountPopulation:
    """Replicas of the FET count population at exact-chain state ``(i, j)``.

    ``(i, j)`` are one-counts (pinned source included) at consecutive rounds;
    the chain treats each agent's stored counter as a fresh ``Binom(ℓ, i/n)``
    draw, so the count vector is a multinomial over the binomial pmf, split
    by current opinion (``j - 1`` non-source ones).
    """
    width = ell + 1
    pmf = scipy_stats.binom.pmf(np.arange(width), ell, i / n)
    pmf = pmf / pmf.sum()
    counts = np.zeros((replicas, 2 * width), dtype=np.int64)
    counts[:, :width] = rng.multinomial(n - j, pmf, size=replicas)
    counts[:, width:] = rng.multinomial(j - 1, pmf, size=replicas)
    protocol = FETProtocol(ell)
    return CountPopulation(
        counts, protocol.count_display(), n=n, num_sources=1, correct_opinion=1
    )


class TestCountPopulation:
    def test_clean_template_counts(self):
        protocol = FETProtocol(4)
        pop = make_count_population(protocol, replicas=3, n=50)
        assert pop.counts.shape == (3, protocol.count_states())
        assert (pop.counts.sum(axis=1) == 49).all()
        # all non-sources wrong, one pinned source correct
        assert (pop.count_ones() == 1).all()
        assert pop.fraction_ones() == pytest.approx([0.02, 0.02, 0.02])
        assert not pop.at_correct_consensus().any()
        assert pop.nonsource_correct_fraction() == pytest.approx([0.0, 0.0, 0.0])

    def test_memory_is_independent_of_n(self):
        protocol = FETProtocol(6)
        small = make_count_population(protocol, replicas=8, n=100)
        huge = make_count_population(protocol, replicas=8, n=10**7)
        assert small.counts.nbytes == huge.counts.nbytes

    def test_row_sum_validation(self):
        protocol = FETProtocol(2)
        counts = np.zeros((2, protocol.count_states()), dtype=np.int64)
        counts[:, 0] = 7  # n - num_sources would be 9
        with pytest.raises(ValueError, match="sum to n - num_sources"):
            CountPopulation(counts, protocol.count_display(), n=10)

    def test_select_and_copy_are_independent(self):
        protocol = FETProtocol(2)
        pop = make_count_population(protocol, replicas=4, n=20)
        sub = pop.select(np.array([0, 2]))
        assert sub.replicas == 2
        clone = pop.copy()
        clone.counts[0, 0] = 0
        clone.counts[0, 1] = 19
        clone.invalidate_cache()
        assert pop.counts[0, 0] == 19  # original untouched

    def test_rejects_unsupported_protocol(self):
        with pytest.raises(ValueError, match="counts_supported=False"):
            make_count_population(OracleClockProtocol(16), replicas=2, n=16)


class TestExactChain:
    """Counts dynamics reproduce the exact pair-chain expectations (small n).

    Conventions match ``tests/test_markov.py``: the chain's ``E[T]`` counts
    rounds to *absorption* at ``(n, n)`` — the second consecutive all-ones
    round — while ``result.rounds`` is the first round of the final streak,
    one earlier. Tolerances are the same loose band the sequential
    comparison uses (finite sampling plus the one-round offset ambiguity).
    """

    N, ELL = 10, 4

    def test_mean_time_matches_chain_from_all_wrong(self):
        chain = ExactPairChain(n=self.N, ell=self.ELL)
        exact = chain.expected_time_from_all_wrong()
        rng = np.random.default_rng(4242)
        pop = chain_state_population(self.N, self.ELL, 1, 1, replicas=4000, rng=rng)
        result = CountEngine(FETProtocol(self.ELL), pop, rng=rng).run(
            5000, stability_rounds=2
        )
        assert result.converged.all()
        assert result.times().mean() + 1 == pytest.approx(exact + 1, rel=0.12, abs=1.0)

    def test_mean_time_matches_chain_from_interior_state(self):
        chain = ExactPairChain(n=self.N, ell=self.ELL)
        exact = chain.expected_time_from(5, 8)
        rng = np.random.default_rng(77)
        pop = chain_state_population(self.N, self.ELL, 5, 8, replicas=4000, rng=rng)
        result = CountEngine(FETProtocol(self.ELL), pop, rng=rng).run(
            5000, stability_rounds=2
        )
        assert result.converged.all()
        assert result.times().mean() + 1 == pytest.approx(exact + 1, rel=0.12, abs=1.0)

    def test_counts_and_batched_agree_from_identical_start(self):
        """Tight cross-check: both engines from the same (1,1) start law."""
        rng = np.random.default_rng(2024)
        pop = chain_state_population(self.N, self.ELL, 1, 1, replicas=3000, rng=rng)
        counts_result = CountEngine(FETProtocol(self.ELL), pop, rng=rng).run(
            5000, stability_rounds=2
        )

        rng2 = np.random.default_rng(555)
        batch = BatchedPopulation.from_population(make_population(self.N, 1), 3000)
        states = {
            "prev_count": rng2.binomial(
                self.ELL, 1.0 / self.N, size=(3000, self.N)
            ).astype(np.int64)
        }
        batched_result = BatchedEngine(
            FETProtocol(self.ELL), batch, rng=rng2, states=states
        ).run(5000, stability_rounds=2)

        assert counts_result.converged.all() and batched_result.converged.all()
        pvalue = scipy_stats.ks_2samp(
            counts_result.times(), batched_result.times()
        ).pvalue
        assert pvalue > 1e-3


#: (protocol component, initializer component, n, max_rounds) — one cell per
#: count-capable protocol, started where the dynamics actually converge.
LINEUP = [
    ({"name": "fet", "ell": 6}, {"name": "all-wrong"}, 256, 3000),
    # the band must sit well under the √ℓ count-noise scale to converge
    ({"name": "hysteresis-fet", "ell": 16, "band": 1}, {"name": "all-wrong"}, 256, 3000),
    ({"name": "simple-trend", "ell": 6}, {"name": "fraction", "x": 0.75}, 256, 3000),
    ({"name": "sample-majority", "ell": 6}, {"name": "fraction", "x": 0.75}, 256, 3000),
    ({"name": "k-majority", "k": 3}, {"name": "fraction", "x": 0.75}, 256, 3000),
    ({"name": "undecided-state"}, {"name": "fraction", "x": 0.75}, 256, 3000),
    ({"name": "voter"}, {"name": "fraction", "x": 0.9}, 48, 30000),
]


class TestEngineEquivalence:
    """The counts engine is the batched engine in distribution, per protocol."""

    @pytest.mark.parametrize(
        "protocol,initializer,n,max_rounds",
        LINEUP,
        ids=[entry[0]["name"] for entry in LINEUP],
    )
    def test_ks_equivalent_times(self, protocol, initializer, n, max_rounds):
        trials = 96
        results = {}
        for engine in ("batched", "counts"):
            spec = RunSpec(
                protocol=protocol,
                n=n,
                initializer=initializer,
                trials=trials,
                max_rounds=max_rounds,
                seed=31337,
                engine=engine,
            )
            validate_cell(spec)
            results[engine] = spec.execute()
        batched, counts = results["batched"], results["counts"]
        assert counts.engine == "counts"
        assert batched.successes == trials, protocol["name"]
        assert counts.successes == trials, protocol["name"]
        assert scipy_stats.ks_2samp(batched.times, counts.times).pvalue > 1e-3

    def test_ks_equivalent_under_observation_noise(self):
        trials = 96
        times = {}
        for engine in ("batched", "counts"):
            spec = RunSpec(
                protocol={"name": "fet", "ell": 8},
                n=256,
                noise=0.01,
                initializer={"name": "all-wrong"},
                trials=trials,
                max_rounds=4000,
                seed=7,
                engine=engine,
            )
            validate_cell(spec)
            stats = spec.execute()
            assert stats.successes == trials
            times[engine] = stats.times
        assert scipy_stats.ks_2samp(times["batched"], times["counts"]).pvalue > 1e-3


class TestRunContract:
    """Stability, retirement, linger, traces, single-shot — batched parity."""

    def _engine(self, seed: int = 5, trials: int = 32, n: int = 128) -> CountEngine:
        spec = RunSpec(
            protocol={"name": "fet", "ell": 6},
            n=n,
            trials=trials,
            seed=seed,
            engine="counts",
        )
        return spec.count_engine()

    def test_retirement_accounting(self):
        stability, linger = 3, 2
        engine = self._engine()
        result = engine.run(3000, stability_rounds=stability, linger_rounds=linger)
        conv = result.converged
        assert conv.all()
        # retired exactly at the end of the stability window plus the linger
        # settle rounds, with rounds = first round of the final streak
        np.testing.assert_array_equal(
            result.rounds_executed[conv],
            result.rounds[conv] + stability - 1 + linger,
        )

    def test_final_population_is_frozen_at_consensus(self):
        engine = self._engine(seed=11)
        result = engine.run(3000)
        assert result.converged.all()
        assert engine.population.at_correct_consensus().all()
        assert (engine.population.nonsource_correct_fraction() == 1.0).all()

    def test_trace_records_one_fractions_and_freezes_retired_rows(self):
        engine = self._engine(seed=3, trials=16)
        recorder = FullTrace()
        result = engine.run(3000, recorder=recorder)
        trace = recorder.trace()
        assert trace.replicas == 16
        assert trace.first_round == 0
        assert trace.last_round >= int(result.rounds.max())
        x = trace.x
        assert ((x >= 0.0) & (x <= 1.0)).all()
        # retired rows are frozen at the consensus fraction for the tail
        for r in range(trace.replicas):
            retired_from = int(result.rounds_executed[r])
            tail = x[r, retired_from:]
            assert (tail == 1.0).all()
        runs = trace.to_run_results(result)
        assert len(runs) == 16
        assert all(run.converged for run in runs)

    def test_flip_recorders_are_rejected(self):
        engine = self._engine(seed=9, trials=4)
        with pytest.raises(ValueError, match="flip counts"):
            engine.run(100, recorder=FullTrace(record_flips=True))

    def test_engine_is_single_shot(self):
        engine = self._engine(seed=13, trials=4)
        engine.run(2000)
        with pytest.raises(RuntimeError, match="single-shot"):
            engine.run(2000)

    def test_stop_condition_sees_count_population(self):
        engine = self._engine(seed=21, trials=8, n=512)
        theta = 0.6
        result = engine.run(
            3000,
            stop_condition=lambda pop: pop.nonsource_correct_fraction() >= theta,
        )
        assert result.converged.all()
        assert (engine.population.nonsource_correct_fraction() >= theta).all()

    def test_rejects_per_agent_sampler(self):
        class NoSeam:
            pass

        protocol = FETProtocol(4)
        pop = make_count_population(protocol, replicas=2, n=32)
        with pytest.raises(ValueError, match="effective_fractions"):
            CountEngine(protocol, pop, sampler=NoSeam())

    def test_rejects_protocol_without_count_model(self):
        protocol = FETProtocol(4)
        pop = make_count_population(protocol, replicas=2, n=32)
        with pytest.raises(ValueError, match="counts_supported"):
            CountEngine(OracleClockProtocol(32), pop)


class TestHarnessDispatch:
    def test_prepare_counts_rejects_per_agent_initializer(self):
        with pytest.raises(ValueError, match="supports_counts=False"):
            prepare_counts(
                FETProtocol(4), 64, ZeroSpeedCenter(), trials=4, seed=0
            )

    def test_make_count_engine_resolves_spec(self):
        spec = RunSpec(
            protocol={"name": "voter"}, n=64, trials=8, seed=1, engine="counts"
        )
        engine = make_count_engine(spec)
        assert isinstance(engine, CountEngine)
        assert isinstance(engine.protocol, VoterProtocol)
        assert engine.population.replicas == 8

    def test_execute_keeps_per_trial_results(self):
        spec = RunSpec(
            protocol={"name": "fet", "ell": 6},
            n=128,
            trials=12,
            seed=4,
            engine="counts",
        )
        stats = spec.execute(keep_results=True)
        assert stats.engine == "counts"
        assert len(stats.results) == 12
        converged_rounds = sorted(r.rounds for r in stats.results if r.converged)
        assert converged_rounds == sorted(int(t) for t in stats.times)

    def test_zero_trials_reports_counts_engine(self):
        spec = RunSpec(
            protocol={"name": "fet", "ell": 4}, n=64, trials=0, seed=0, engine="counts"
        )
        stats = spec.execute()
        assert stats.engine == "counts"
        assert stats.trials == 0

    def test_standard_population_component_is_a_no_op(self):
        base = RunSpec(
            protocol={"name": "fet", "ell": 6}, n=128, trials=8, seed=2, engine="counts"
        )
        explicit = RunSpec(
            protocol={"name": "fet", "ell": 6},
            n=128,
            trials=8,
            seed=2,
            engine="counts",
            population={"name": "standard"},
        )
        a, b = base.execute(), explicit.execute()
        assert a.successes == b.successes
        np.testing.assert_array_equal(a.times, b.times)

    def test_spec_dict_elides_default_population(self):
        plain = RunSpec(protocol={"name": "fet", "ell": 4}, n=32)
        assert "population" not in plain.spec_dict()
        declared = RunSpec(
            protocol={"name": "fet", "ell": 4},
            n=32,
            population={"name": "majority", "k0": 1, "k1": 2},
        )
        assert declared.spec_dict()["population"]["name"] == "majority"
        assert plain.key() != declared.key()
        assert "pop=majority" in declared.label()

    def test_counts_engine_is_part_of_the_hash(self):
        plain = RunSpec(protocol={"name": "fet", "ell": 4}, n=32)
        counts = RunSpec(protocol={"name": "fet", "ell": 4}, n=32, engine="counts")
        assert counts.spec_dict()["engine"] == "counts"
        assert plain.key() != counts.key()


class TestValidateCell:
    """Per-agent-only components fail fast, before any worker runs."""

    def _cell(self, **overrides) -> RunSpec:
        spec = dict(
            protocol={"name": "fet", "ell": 4},
            n=64,
            trials=4,
            seed=0,
            engine="counts",
        )
        spec.update(overrides)
        return RunSpec(**spec)

    def test_valid_counts_cell_passes(self):
        validate_cell(self._cell())

    def test_rejects_protocol_without_count_model(self):
        with pytest.raises(ValueError, match="no count model"):
            validate_cell(self._cell(protocol={"name": "clock-sync"}))

    def test_rejects_crafted_initializer(self):
        with pytest.raises(ValueError, match="per-agent configurations"):
            validate_cell(self._cell(initializer={"name": "zero-speed-center"}))

    def test_rejects_index_sampler(self):
        with pytest.raises(ValueError, match="fraction-keyed"):
            validate_cell(self._cell(sampler={"name": "index"}))

    def test_rejects_crafted_population(self):
        with pytest.raises(ValueError, match="crafted per-agent layout"):
            validate_cell(
                self._cell(population={"name": "majority", "k0": 1, "k1": 2})
            )

    def test_rejects_flip_traces(self):
        with pytest.raises(ValueError, match="flip counts"):
            validate_cell(
                self._cell(measure={"kind": "trace", "flips": True})
            )

    def test_frozen_unanimity_needs_majority_population(self):
        with pytest.raises(ValueError, match="majority"):
            validate_cell(
                RunSpec(
                    protocol={"name": "fet", "ell": 4},
                    n=64,
                    initializer={"name": "frozen-unanimity"},
                    trials=4,
                    seed=0,
                )
            )

    def test_errors_carry_the_cell_label(self):
        with pytest.raises(ValueError, match=r"invalid sweep cell \["):
            validate_cell(self._cell(sampler={"name": "index"}))
