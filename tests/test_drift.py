"""Tests for the drift function g (Eq. 7), its fixed points and amplification."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.analysis.coins import compare_binomials
from repro.analysis.drift import (
    amplification_factor,
    drift_g,
    drift_grid,
    expected_next_pair,
    fixed_point_f,
)
from repro.analysis.theory import amplification_lower_bound


class TestDriftG:
    def test_matches_equation_seven(self):
        """g must equal the three-term expression of Eq. (7) verbatim."""
        ell, n = 20, 500
        x, y = 0.35, 0.45
        cmp_ = compare_binomials(ell, y, x)
        expected = (
            cmp_.p_first_wins
            + y * cmp_.p_tie
            + (1 - (cmp_.p_first_wins + cmp_.p_tie)) / n
        )
        assert drift_g(x, y, ell, n) == pytest.approx(expected, abs=1e-14)

    def test_range(self):
        for x in (0.0, 0.3, 0.7, 1.0):
            for y in (0.0, 0.5, 1.0):
                value = drift_g(x, y, 30, 100)
                assert 0.0 <= value <= 1.0

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            drift_g(1.5, 0.5, 10, 100)

    def test_all_ones_is_fixed(self):
        """At (1, 1) the comparison always ties, so g = 1: absorbing."""
        assert drift_g(1.0, 1.0, 25, 400) == pytest.approx(1.0)

    def test_all_zeros_is_formally_fixed(self):
        """At (0, 0) every comparison ties and keeps 0, so g = 0.

        (The real chain never visits x = 0: the pinned source keeps
        x ≥ 1/n; see the next test for the physical boundary.)
        """
        assert drift_g(0.0, 0.0, 25, 400) == pytest.approx(0.0)

    def test_wrong_consensus_bounces_up(self):
        """At (1/n, 1/n) — the actual all-wrong state — drift is upward."""
        n = 400
        assert drift_g(1 / n, 1 / n, 25, n) > 1 / n

    def test_rising_trend_pushes_up(self):
        """A clear upward trend (y >> x) drives the expectation near 1."""
        assert drift_g(0.3, 0.6, 60, 1000) > 0.95

    def test_falling_trend_pushes_down(self):
        assert drift_g(0.6, 0.3, 60, 1000) < 0.05

    def test_center_nearly_neutral(self):
        value = drift_g(0.5, 0.5, 60, 10_000)
        assert value == pytest.approx(0.5, abs=0.01)


class TestDriftGrid:
    def test_matches_scalar(self):
        xs = np.array([0.2, 0.5, 0.8])
        ys = np.array([0.3, 0.6])
        grid = drift_grid(xs, ys, 15, 300)
        for i, y in enumerate(ys):
            for j, x in enumerate(xs):
                assert grid[i, j] == pytest.approx(drift_g(x, y, 15, 300), abs=1e-12)

    def test_shape(self):
        grid = drift_grid(np.linspace(0, 1, 9), np.linspace(0, 1, 5), 10, 100)
        assert grid.shape == (5, 9)

    def test_values_in_unit_interval(self):
        grid = drift_grid(np.linspace(0, 1, 21), np.linspace(0, 1, 21), 12, 200)
        assert grid.min() >= 0.0 and grid.max() <= 1.0


class TestClaim1Monotonicity:
    """Claim 1: y -> g(x, y) - y is strictly increasing on [x, x + 1/sqrt(l)]."""

    @pytest.mark.parametrize("x", [0.35, 0.45, 0.55, 0.6])
    def test_h_increasing(self, x):
        ell, n = 400, 100_000
        ys = np.linspace(x, x + 1 / math.sqrt(ell), 25)
        h = np.array([drift_g(x, float(y), ell, n) - y for y in ys])
        assert (np.diff(h) > 0).all()


class TestFixedPointF:
    def test_in_interval(self):
        ell, n = 100, 10_000
        for x in (0.51, 0.55, 0.6):
            f = fixed_point_f(x, ell, n)
            assert x <= f <= x + 1 / math.sqrt(ell) + 1e-9

    def test_is_fixed_point_when_interior(self):
        ell, n = 100, 10_000
        x = 0.52
        f = fixed_point_f(x, ell, n)
        if f < x + 1 / math.sqrt(ell) - 1e-9:  # interior solution
            assert drift_g(x, f, ell, n) == pytest.approx(f, abs=1e-8)

    def test_claim2_g_below_at_endpoint_when_no_solution(self):
        """When f(x) = x + 1/sqrt(l), Claim 2 says g stays below the diagonal."""
        ell, n = 100, 10_000
        for x in (0.51, 0.55, 0.6):
            f = fixed_point_f(x, ell, n)
            assert drift_g(x, f, ell, n) <= f + 1e-8


class TestClaim3Amplification:
    """Eq. (9): the fixed-point map amplifies distance from 1/2."""

    @pytest.mark.parametrize("x", [0.51, 0.55, 0.6, 0.68])
    def test_amplification_exceeds_paper_bound(self, x):
        ell, n = 100, 100_000
        measured = amplification_factor(x, ell, n)
        assert measured > amplification_lower_bound(ell)

    def test_amplification_above_one(self):
        assert amplification_factor(0.55, 64, 10_000) > 1.0

    def test_rejects_left_half(self):
        with pytest.raises(ValueError):
            amplification_factor(0.4, 64, 10_000)


class TestExpectedNextPair:
    def test_shifts_window(self):
        nxt = expected_next_pair(0.3, 0.4, 30, 1000)
        assert nxt[0] == 0.4
        assert nxt[1] == pytest.approx(drift_g(0.3, 0.4, 30, 1000))

    def test_mean_field_orbit_reaches_consensus(self):
        """Iterating the mean-field map from an upward trend hits x ≈ 1.

        Only the peak is asserted: the deterministic skeleton is repelled
        from the absorbing edge once floating error nudges it off exactly
        (1, 1) — in the discrete chain the state pins to (1, 1) instead.
        """
        x, y = 0.2, 0.3
        peak = y
        for _ in range(10):
            x, y = expected_next_pair(x, y, 60, 100_000)
            peak = max(peak, y)
        assert peak > 0.999
