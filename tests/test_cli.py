"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_demo_defaults(self):
        args = build_parser().parse_args(["demo"])
        assert args.command == "demo"
        assert args.n == 5000
        assert args.seed == 0

    def test_global_seed(self):
        args = build_parser().parse_args(["--seed", "9", "map"])
        assert args.seed == 9

    def test_map_options(self):
        args = build_parser().parse_args(["map", "-n", "500", "--delta", "0.1", "--resolution", "21"])
        assert args.n == 500
        assert args.delta == 0.1
        assert args.resolution == 21

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["explode"])

    def test_sweep_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.command == "sweep"
        assert args.spec is None
        assert args.jobs == 1
        assert args.store is None
        assert args.out is None
        assert args.force is False

    def test_sweep_options(self):
        args = build_parser().parse_args(
            ["sweep", "--spec", "grid.json", "--jobs", "4", "--store", "s.jsonl", "--force"]
        )
        assert args.spec == "grid.json"
        assert args.jobs == 4
        assert args.store == "s.jsonl"
        assert args.force is True

    @pytest.mark.parametrize("command", ["sweep", "scale"])
    def test_jobs_zero_means_all_cores(self, command):
        import os

        args = build_parser().parse_args([command, "--jobs", "0"])
        assert args.jobs == (os.cpu_count() or 1)
        assert args.jobs >= 1

    @pytest.mark.parametrize("command", ["sweep", "scale"])
    @pytest.mark.parametrize("bad", ["-1", "-8", "two"])
    def test_jobs_rejects_bad_values(self, command, bad, capsys):
        # Regression: negative/non-integer --jobs used to reach the
        # dispatcher as-is and die with a traceback; now argparse refuses.
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args([command, "--jobs", bad])
        assert excinfo.value.code == 2
        assert "--jobs must be" in capsys.readouterr().err

    def test_trace_help_smoke(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["trace", "--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        for option in ("--replicas", "--stride", "--ring", "--flips", "--out"):
            assert option in out

    def test_trace_defaults(self):
        args = build_parser().parse_args(["trace"])
        assert args.command == "trace"
        assert args.n == 1000
        assert args.protocol == "fet"
        assert args.init == "all-wrong"
        assert args.replicas == 8
        assert args.stride == 1
        assert args.ring is None
        assert args.flips is False
        assert args.out is None


class TestCommands:
    def test_demo_runs(self, capsys):
        code = main(["demo", "-n", "500"])
        out = capsys.readouterr().out
        assert code == 0
        assert "converged=True" in out
        assert "FET" in out

    def test_map_runs(self, capsys):
        code = main(["map", "-n", "1000", "--resolution", "21"])
        out = capsys.readouterr().out
        assert code == 0
        assert "legend:" in out

    def test_compare_runs(self, capsys):
        code = main(["compare", "-n", "400", "--trials", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "FET" in out
        assert "voter" in out

    def test_scale_runs(self, capsys):
        code = main(["--seed", "3", "scale", "--trials", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "fit T(n)" in out

    def test_sweep_runs_spec_with_store_and_csv(self, capsys, tmp_path):
        spec = {
            "name": "cli-grid",
            "seed": 3,
            "trials": 2,
            "axes": {
                "protocol": [{"name": "fet", "ell": 10}],
                "n": [100, 150],
                "initializer": ["all-wrong"],
            },
            "max_rounds": 300,
        }
        spec_path = tmp_path / "grid.json"
        spec_path.write_text(json.dumps(spec))
        store = tmp_path / "store.jsonl"
        out = tmp_path / "grid.csv"

        code = main(
            ["sweep", "--spec", str(spec_path), "--jobs", "2",
             "--store", str(store), "--out", str(out)]
        )
        first = capsys.readouterr().out
        assert code == 0
        assert "cli-grid" in first
        assert "executed 2 cell(s), 0 served from store" in first
        assert out.exists() and store.exists()

        # Same spec again: every cell is served from the store.
        code = main(["sweep", "--spec", str(spec_path), "--store", str(store)])
        second = capsys.readouterr().out
        assert code == 0
        assert "executed 0 cell(s), 2 served from store" in second

    def test_trace_runs_and_exports(self, capsys, tmp_path):
        out = tmp_path / "trace.csv"
        code = main(
            ["trace", "-n", "300", "--replicas", "3", "--max-rounds", "500",
             "--flips", "--out", str(out)]
        )
        text = capsys.readouterr().out
        assert code == 0
        assert "3 replica(s)" in text
        assert "settled at" in text
        assert out.exists()
        assert out.read_text().startswith("replica,round,x,flips")

    def test_trace_ring_and_stride_run(self, capsys):
        code = main(
            ["trace", "-n", "300", "--replicas", "2", "--max-rounds", "500",
             "--stride", "2", "--ring", "16", "--reducer", "median"]
        )
        text = capsys.readouterr().out
        assert code == 0
        assert "median one-fraction" in text
        assert "stride 2" in text

    def test_sweep_demo_grid_runs(self, capsys):
        code = main(["sweep"])
        out = capsys.readouterr().out
        assert code == 0
        assert "fet-demo" in out
        assert "fet(ell=37)" in out  # ell_for(100) on the demo grid

    def test_demo_seed_reproducible(self, capsys):
        main(["--seed", "5", "demo", "-n", "400"])
        first = capsys.readouterr().out
        main(["--seed", "5", "demo", "-n", "400"])
        second = capsys.readouterr().out
        assert first == second
