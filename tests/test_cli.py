"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_demo_defaults(self):
        args = build_parser().parse_args(["demo"])
        assert args.command == "demo"
        assert args.n == 5000
        assert args.seed == 0

    def test_global_seed(self):
        args = build_parser().parse_args(["--seed", "9", "map"])
        assert args.seed == 9

    def test_map_options(self):
        args = build_parser().parse_args(["map", "-n", "500", "--delta", "0.1", "--resolution", "21"])
        assert args.n == 500
        assert args.delta == 0.1
        assert args.resolution == 21

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["explode"])


class TestCommands:
    def test_demo_runs(self, capsys):
        code = main(["demo", "-n", "500"])
        out = capsys.readouterr().out
        assert code == 0
        assert "converged=True" in out
        assert "FET" in out

    def test_map_runs(self, capsys):
        code = main(["map", "-n", "1000", "--resolution", "21"])
        out = capsys.readouterr().out
        assert code == 0
        assert "legend:" in out

    def test_compare_runs(self, capsys):
        code = main(["compare", "-n", "400", "--trials", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "FET" in out
        assert "voter" in out

    def test_scale_runs(self, capsys):
        code = main(["--seed", "3", "scale", "--trials", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "fit T(n)" in out

    def test_demo_seed_reproducible(self, capsys):
        main(["--seed", "5", "demo", "-n", "400"])
        first = capsys.readouterr().out
        main(["--seed", "5", "demo", "-n", "400"])
        second = capsys.readouterr().out
        assert first == second
