"""Tests for the FET protocol (Protocol 1)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from conftest import scripted_sampler
from repro.core.engine import run_protocol
from repro.core.population import make_population
from repro.core.rng import make_rng
from repro.core.sampling import IndexSampler
from repro.initializers.standard import AllCorrect, AllWrong, BernoulliRandom
from repro.protocols.fet import DEFAULT_SAMPLE_CONSTANT, FETProtocol, ell_for


class TestEllFor:
    def test_formula(self):
        assert ell_for(100, 2.0) == math.ceil(2.0 * math.log(100))

    def test_minimum_one(self):
        assert ell_for(2, 0.001) == 1

    def test_rejects_tiny_n(self):
        with pytest.raises(ValueError):
            ell_for(1)

    def test_default_constant(self):
        assert ell_for(1000) == math.ceil(DEFAULT_SAMPLE_CONSTANT * math.log(1000))


class TestConstruction:
    def test_rejects_bad_ell(self):
        with pytest.raises(ValueError):
            FETProtocol(0)

    def test_name_mentions_ell(self):
        assert "7" in FETProtocol(7).name

    def test_accounting(self):
        proto = FETProtocol(15)
        assert proto.samples_per_round() == 30
        assert proto.memory_bits() == pytest.approx(math.log2(16))
        assert proto.passive is True

    def test_describe(self):
        desc = FETProtocol(15).describe()
        assert desc["passive"] is True
        assert desc["samples_per_round"] == 30


class TestState:
    def test_init_state_zeroed(self):
        state = FETProtocol(5).init_state(10, make_rng(0))
        assert (state["prev_count"] == 0).all()

    def test_randomize_state_in_range(self):
        proto = FETProtocol(5)
        state = proto.randomize_state(1000, make_rng(0))
        assert state["prev_count"].min() >= 0
        assert state["prev_count"].max() <= 5
        # All values of {0..5} should occur in 1000 draws.
        assert set(np.unique(state["prev_count"])) == set(range(6))


class TestStepSemantics:
    """Drive FET with scripted counts to pin down the update rule exactly."""

    def make(self, n=6, ell=4):
        proto = FETProtocol(ell)
        pop = make_population(n, 1)
        return proto, pop

    def test_greater_adopts_one(self):
        proto, pop = self.make()
        state = {"prev_count": np.full(6, 1, dtype=np.int64)}
        sampler = scripted_sampler(np.full(6, 3), np.zeros(6))  # count' = 3 > 1
        new = proto.step(pop, state, sampler, make_rng(0))
        assert (new == 1).all()

    def test_smaller_adopts_zero(self):
        proto, pop = self.make()
        state = {"prev_count": np.full(6, 3, dtype=np.int64)}
        sampler = scripted_sampler(np.full(6, 1), np.zeros(6))  # count' = 1 < 3
        new = proto.step(pop, state, sampler, make_rng(0))
        assert (new == 0).all()

    def test_tie_keeps_opinion(self):
        proto, pop = self.make()
        opinions = np.array([1, 0, 1, 0, 1, 0], dtype=np.uint8)
        pop.adversarial_opinions(opinions)
        state = {"prev_count": np.full(6, 2, dtype=np.int64)}
        sampler = scripted_sampler(np.full(6, 2), np.zeros(6))  # tie
        new = proto.step(pop, state, sampler, make_rng(0))
        assert np.array_equal(new, pop.opinions)

    def test_mixed_rules_per_agent(self):
        proto, pop = self.make()
        pop.adversarial_opinions(np.array([1, 1, 0, 0, 1, 0], dtype=np.uint8))
        state = {"prev_count": np.array([2, 2, 2, 2, 2, 2], dtype=np.int64)}
        counts = np.array([3, 1, 2, 3, 2, 1], dtype=np.int64)
        sampler = scripted_sampler(counts, np.zeros(6))
        new = proto.step(pop, state, sampler, make_rng(0))
        assert new.tolist() == [1, 0, 0, 1, 1, 0]

    def test_state_updated_to_second_block(self):
        proto, pop = self.make()
        state = {"prev_count": np.zeros(6, dtype=np.int64)}
        second_block = np.array([4, 3, 2, 1, 0, 4], dtype=np.int64)
        sampler = scripted_sampler(np.zeros(6), second_block)
        proto.step(pop, state, sampler, make_rng(0))
        assert np.array_equal(state["prev_count"], second_block)


class TestConvergence:
    @pytest.mark.parametrize("correct", [0, 1])
    def test_converges_from_all_wrong(self, correct):
        n = 1500
        proto = FETProtocol(ell_for(n))
        pop = make_population(n, correct)
        rng = make_rng(42 + correct)
        state = proto.init_state(n, rng)
        AllWrong()(pop, proto, state, rng)
        result = run_protocol(proto, pop, 2000, rng=rng, state=state)
        assert result.converged
        assert result.rounds < 200

    def test_converges_from_random(self):
        n = 1500
        proto = FETProtocol(ell_for(n))
        pop = make_population(n, 1)
        rng = make_rng(7)
        state = proto.init_state(n, rng)
        BernoulliRandom(0.5)(pop, proto, state, rng)
        result = run_protocol(proto, pop, 3000, rng=rng, state=state)
        assert result.converged

    def test_stays_at_correct_consensus(self):
        n = 1000
        proto = FETProtocol(ell_for(n))
        pop = make_population(n, 1)
        rng = make_rng(3)
        state = proto.init_state(n, rng)
        AllCorrect()(pop, proto, state, rng)
        result = run_protocol(proto, pop, 300, rng=rng, state=state)
        assert result.converged
        # After at most a couple of settling rounds, x stays at 1: the
        # adversarial counters can cause an initial dip but never a collapse.
        assert result.rounds <= 25

    def test_converges_with_index_sampler(self):
        """The literal sampler gives the same qualitative behaviour."""
        n = 600
        proto = FETProtocol(ell_for(n, 4.0))
        pop = make_population(n, 1)
        rng = make_rng(11)
        state = proto.init_state(n, rng)
        AllWrong()(pop, proto, state, rng)
        result = run_protocol(
            proto, pop, 1500, sampler=IndexSampler(exclude_self=True), rng=rng, state=state
        )
        assert result.converged

    def test_absorbing_once_converged(self):
        """After convergence is detected, extending the run changes nothing."""
        n = 800
        proto = FETProtocol(ell_for(n))
        pop = make_population(n, 1)
        rng = make_rng(5)
        state = proto.init_state(n, rng)
        AllWrong()(pop, proto, state, rng)
        result = run_protocol(proto, pop, 2000, rng=rng, state=state)
        assert result.converged
        # Continue for 100 extra rounds manually: opinion vector must not move.
        from repro.core.engine import SynchronousEngine

        engine = SynchronousEngine(proto, pop, rng=rng, state=state)
        for _ in range(100):
            record = engine.step()
            assert record.x_after == 1.0


class TestFusedBatchStep:
    """The single-comparison batched update (2·count′ + opinion > 2·prev)
    must resolve the three-way rule exactly: greater → 1, smaller → 0,
    tie → keep."""

    def test_fused_step_batch_matches_three_way_rule(self):
        from repro.core.batch import BatchedPopulation
        from repro.core.sampling import BatchedSampler

        ell, replicas, n = 9, 7, 40
        rng = make_rng(77)
        proto = FETProtocol(ell)
        pop = make_population(n, 1)
        batch = BatchedPopulation.from_population(pop, replicas)
        opinions = (make_rng(1).random((replicas, n)) < 0.5).astype("uint8")
        batch.adversarial_opinions(opinions)
        prev = make_rng(2).integers(0, ell + 1, size=(replicas, n))
        states = {"prev_count": prev.copy()}
        blocks = make_rng(3).integers(0, ell + 1, size=(2, replicas, n))

        class Scripted(BatchedSampler):
            def counts(self, batch, ell, rng):  # pragma: no cover - unused
                raise AssertionError

            def count_blocks(self, batch, ell, blocks_count, rng):
                assert blocks_count == 2
                return blocks.copy()

            def scalar(self):  # pragma: no cover - unused
                raise AssertionError

        expected = np.where(
            blocks[0] == prev, batch.opinions, blocks[0] > prev
        ).astype(np.uint8)
        new = proto.step_batch(batch, states, Scripted(), rng)
        assert new.dtype == np.uint8
        assert np.array_equal(new, expected)
        # the carried state is the second block, untouched by the fusion
        assert np.array_equal(states["prev_count"], blocks[1])

    def test_fused_step_batch_bitwise_matches_scalar_at_r1(self):
        """R=1 batched step equals the scalar step on identical counts."""
        from repro.core.batch import BatchedPopulation
        from repro.core.sampling import BatchedSampler

        ell, n = 6, 30
        proto = FETProtocol(ell)
        pop = make_population(n, 1)
        start = (make_rng(4).random(n) < 0.5).astype("uint8")
        pop.adversarial_opinions(start)
        batch = BatchedPopulation.from_population(pop, 1)
        counts = make_rng(5).integers(0, ell + 1, size=(2, n))
        prev = make_rng(6).integers(0, ell + 1, size=n)

        class ScriptedBatched(BatchedSampler):
            def counts(self, batch, ell, rng):  # pragma: no cover - unused
                raise AssertionError

            def count_blocks(self, batch, ell, blocks_count, rng):
                return counts[:, None, :].copy()

            def scalar(self):  # pragma: no cover - unused
                raise AssertionError

        scalar_state = {"prev_count": prev.copy()}
        batch_states = {"prev_count": prev.copy()[None, :]}
        scripted = scripted_sampler(counts[0], counts[1])
        scalar_new = proto.step(pop, scalar_state, scripted, make_rng(0))
        batch_new = proto.step_batch(batch, batch_states, ScriptedBatched(), make_rng(0))
        assert np.array_equal(batch_new[0], scalar_new)
        assert np.array_equal(batch_states["prev_count"][0], scalar_state["prev_count"])

    def test_fused_step_batch_leaves_aliasing_sampler_buffers_intact(self):
        """A buffer-reusing sampler (returns the same tensor every call)
        aliases this round's blocks with the carried previous count; the
        fused update must detect the overlap and not corrupt the buffer."""
        from repro.core.batch import BatchedPopulation
        from repro.core.sampling import BatchedSampler

        ell, replicas, n = 5, 3, 20
        proto = FETProtocol(ell)
        pop = make_population(n, 1)
        batch = BatchedPopulation.from_population(pop, replicas)
        cached = make_rng(8).integers(0, ell + 1, size=(2, replicas, n))
        snapshot = cached.copy()

        class Caching(BatchedSampler):
            def counts(self, batch, ell, rng):  # pragma: no cover - unused
                raise AssertionError

            def count_blocks(self, batch, ell, blocks_count, rng):
                return cached  # same buffer every round, never rewritten

            def scalar(self):  # pragma: no cover - unused
                raise AssertionError

        states = {"prev_count": cached[1]}  # aliases the sampler's buffer
        expected = np.where(
            snapshot[0] == snapshot[1], batch.opinions, snapshot[0] > snapshot[1]
        ).astype(np.uint8)
        new = proto.step_batch(batch, states, Caching(), make_rng(0))
        assert np.array_equal(new, expected)
        assert np.array_equal(cached, snapshot)  # buffer not mutated
