"""Tests for the FET protocol (Protocol 1)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from conftest import scripted_sampler
from repro.core.engine import run_protocol
from repro.core.population import make_population
from repro.core.rng import make_rng
from repro.core.sampling import IndexSampler
from repro.initializers.standard import AllCorrect, AllWrong, BernoulliRandom
from repro.protocols.fet import DEFAULT_SAMPLE_CONSTANT, FETProtocol, ell_for


class TestEllFor:
    def test_formula(self):
        assert ell_for(100, 2.0) == math.ceil(2.0 * math.log(100))

    def test_minimum_one(self):
        assert ell_for(2, 0.001) == 1

    def test_rejects_tiny_n(self):
        with pytest.raises(ValueError):
            ell_for(1)

    def test_default_constant(self):
        assert ell_for(1000) == math.ceil(DEFAULT_SAMPLE_CONSTANT * math.log(1000))


class TestConstruction:
    def test_rejects_bad_ell(self):
        with pytest.raises(ValueError):
            FETProtocol(0)

    def test_name_mentions_ell(self):
        assert "7" in FETProtocol(7).name

    def test_accounting(self):
        proto = FETProtocol(15)
        assert proto.samples_per_round() == 30
        assert proto.memory_bits() == pytest.approx(math.log2(16))
        assert proto.passive is True

    def test_describe(self):
        desc = FETProtocol(15).describe()
        assert desc["passive"] is True
        assert desc["samples_per_round"] == 30


class TestState:
    def test_init_state_zeroed(self):
        state = FETProtocol(5).init_state(10, make_rng(0))
        assert (state["prev_count"] == 0).all()

    def test_randomize_state_in_range(self):
        proto = FETProtocol(5)
        state = proto.randomize_state(1000, make_rng(0))
        assert state["prev_count"].min() >= 0
        assert state["prev_count"].max() <= 5
        # All values of {0..5} should occur in 1000 draws.
        assert set(np.unique(state["prev_count"])) == set(range(6))


class TestStepSemantics:
    """Drive FET with scripted counts to pin down the update rule exactly."""

    def make(self, n=6, ell=4):
        proto = FETProtocol(ell)
        pop = make_population(n, 1)
        return proto, pop

    def test_greater_adopts_one(self):
        proto, pop = self.make()
        state = {"prev_count": np.full(6, 1, dtype=np.int64)}
        sampler = scripted_sampler(np.full(6, 3), np.zeros(6))  # count' = 3 > 1
        new = proto.step(pop, state, sampler, make_rng(0))
        assert (new == 1).all()

    def test_smaller_adopts_zero(self):
        proto, pop = self.make()
        state = {"prev_count": np.full(6, 3, dtype=np.int64)}
        sampler = scripted_sampler(np.full(6, 1), np.zeros(6))  # count' = 1 < 3
        new = proto.step(pop, state, sampler, make_rng(0))
        assert (new == 0).all()

    def test_tie_keeps_opinion(self):
        proto, pop = self.make()
        opinions = np.array([1, 0, 1, 0, 1, 0], dtype=np.uint8)
        pop.adversarial_opinions(opinions)
        state = {"prev_count": np.full(6, 2, dtype=np.int64)}
        sampler = scripted_sampler(np.full(6, 2), np.zeros(6))  # tie
        new = proto.step(pop, state, sampler, make_rng(0))
        assert np.array_equal(new, pop.opinions)

    def test_mixed_rules_per_agent(self):
        proto, pop = self.make()
        pop.adversarial_opinions(np.array([1, 1, 0, 0, 1, 0], dtype=np.uint8))
        state = {"prev_count": np.array([2, 2, 2, 2, 2, 2], dtype=np.int64)}
        counts = np.array([3, 1, 2, 3, 2, 1], dtype=np.int64)
        sampler = scripted_sampler(counts, np.zeros(6))
        new = proto.step(pop, state, sampler, make_rng(0))
        assert new.tolist() == [1, 0, 0, 1, 1, 0]

    def test_state_updated_to_second_block(self):
        proto, pop = self.make()
        state = {"prev_count": np.zeros(6, dtype=np.int64)}
        second_block = np.array([4, 3, 2, 1, 0, 4], dtype=np.int64)
        sampler = scripted_sampler(np.zeros(6), second_block)
        proto.step(pop, state, sampler, make_rng(0))
        assert np.array_equal(state["prev_count"], second_block)


class TestConvergence:
    @pytest.mark.parametrize("correct", [0, 1])
    def test_converges_from_all_wrong(self, correct):
        n = 1500
        proto = FETProtocol(ell_for(n))
        pop = make_population(n, correct)
        rng = make_rng(42 + correct)
        state = proto.init_state(n, rng)
        AllWrong()(pop, proto, state, rng)
        result = run_protocol(proto, pop, 2000, rng=rng, state=state)
        assert result.converged
        assert result.rounds < 200

    def test_converges_from_random(self):
        n = 1500
        proto = FETProtocol(ell_for(n))
        pop = make_population(n, 1)
        rng = make_rng(7)
        state = proto.init_state(n, rng)
        BernoulliRandom(0.5)(pop, proto, state, rng)
        result = run_protocol(proto, pop, 3000, rng=rng, state=state)
        assert result.converged

    def test_stays_at_correct_consensus(self):
        n = 1000
        proto = FETProtocol(ell_for(n))
        pop = make_population(n, 1)
        rng = make_rng(3)
        state = proto.init_state(n, rng)
        AllCorrect()(pop, proto, state, rng)
        result = run_protocol(proto, pop, 300, rng=rng, state=state)
        assert result.converged
        # After at most a couple of settling rounds, x stays at 1: the
        # adversarial counters can cause an initial dip but never a collapse.
        assert result.rounds <= 25

    def test_converges_with_index_sampler(self):
        """The literal sampler gives the same qualitative behaviour."""
        n = 600
        proto = FETProtocol(ell_for(n, 4.0))
        pop = make_population(n, 1)
        rng = make_rng(11)
        state = proto.init_state(n, rng)
        AllWrong()(pop, proto, state, rng)
        result = run_protocol(
            proto, pop, 1500, sampler=IndexSampler(exclude_self=True), rng=rng, state=state
        )
        assert result.converged

    def test_absorbing_once_converged(self):
        """After convergence is detected, extending the run changes nothing."""
        n = 800
        proto = FETProtocol(ell_for(n))
        pop = make_population(n, 1)
        rng = make_rng(5)
        state = proto.init_state(n, rng)
        AllWrong()(pop, proto, state, rng)
        result = run_protocol(proto, pop, 2000, rng=rng, state=state)
        assert result.converged
        # Continue for 100 extra rounds manually: opinion vector must not move.
        from repro.core.engine import SynchronousEngine

        engine = SynchronousEngine(proto, pop, rng=rng, state=state)
        for _ in range(100):
            record = engine.step()
            assert record.x_after == 1.0
