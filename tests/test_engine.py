"""Tests for the synchronous round engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.engine import SynchronousEngine, run_protocol
from repro.core.population import make_population
from repro.core.protocol import Protocol
from repro.core.rng import make_rng
from repro.protocols.fet import FETProtocol


class ConstantProtocol(Protocol):
    """Sets every opinion to a constant — a minimal test protocol."""

    name = "constant"

    def __init__(self, value: int) -> None:
        self.value = value

    def init_state(self, n, rng):
        return {}

    def step(self, population, state, sampler, rng):
        return np.full(population.n, self.value, dtype=np.uint8)


class FlipFlopProtocol(Protocol):
    """Alternates all opinions every round — never converges."""

    name = "flipflop"

    def init_state(self, n, rng):
        return {}

    def step(self, population, state, sampler, rng):
        return (1 - population.opinions).astype(np.uint8)


class TestEngineBasics:
    def test_step_counts_rounds(self):
        pop = make_population(10, 1)
        engine = SynchronousEngine(ConstantProtocol(1), pop, rng=0)
        engine.step()
        engine.step()
        assert engine.round_index == 2

    def test_step_record_fields(self):
        pop = make_population(10, 1)
        engine = SynchronousEngine(ConstantProtocol(1), pop, rng=0)
        record = engine.step()
        assert record.round_index == 0
        assert record.x_before == pytest.approx(0.1)
        assert record.x_after == pytest.approx(1.0)
        assert record.flips == 9

    def test_source_pinned_by_engine(self):
        pop = make_population(10, 1)
        engine = SynchronousEngine(ConstantProtocol(0), pop, rng=0)
        engine.step()
        assert pop.opinions[0] == 1  # source re-pinned after each step

    def test_engine_pins_at_construction(self):
        pop = make_population(10, 1)
        pop.opinions[0] = 0  # sloppy caller corrupts the source
        SynchronousEngine(ConstantProtocol(0), pop, rng=0)
        assert pop.opinions[0] == 1


class TestRun:
    def test_converges_with_constant_correct(self):
        pop = make_population(10, 1)
        result = run_protocol(ConstantProtocol(1), pop, 50, rng=0)
        assert result.converged
        assert result.rounds == 1  # first all-correct round

    def test_never_converges_with_wrong_constant(self):
        pop = make_population(10, 1)
        result = run_protocol(ConstantProtocol(0), pop, 20, rng=0)
        assert not result.converged
        assert result.rounds == 20

    def test_flipflop_never_converges(self):
        pop = make_population(10, 1)
        result = run_protocol(FlipFlopProtocol(), pop, 30, rng=0)
        assert not result.converged

    def test_trajectory_includes_initial(self):
        pop = make_population(10, 1)
        result = run_protocol(ConstantProtocol(1), pop, 50, rng=0)
        assert result.trajectory[0] == pytest.approx(0.1)
        assert result.trajectory[-1] == pytest.approx(1.0)

    def test_stability_window_respected(self):
        pop = make_population(10, 1)
        result = run_protocol(ConstantProtocol(1), pop, 50, rng=0, stability_rounds=4)
        assert result.converged
        # Convergence time reported is still the first all-correct round.
        assert result.rounds == 1
        # Engine had to actually observe 4 consecutive all-correct rounds.
        assert len(result.trajectory) >= 4

    def test_already_converged_start(self):
        pop = make_population(10, 1)
        pop.set_opinions(np.ones(10, dtype=np.uint8))
        result = run_protocol(ConstantProtocol(1), pop, 50, rng=0)
        assert result.converged
        assert result.rounds == 0

    def test_zero_max_rounds(self):
        pop = make_population(10, 1)
        result = run_protocol(ConstantProtocol(1), pop, 0, rng=0, stability_rounds=1)
        assert not result.converged  # no stability evidence gathered

    def test_negative_max_rounds_rejected(self):
        pop = make_population(10, 1)
        engine = SynchronousEngine(ConstantProtocol(1), pop, rng=0)
        with pytest.raises(ValueError):
            engine.run(-1)

    def test_record_flips(self):
        pop = make_population(10, 1)
        result = run_protocol(ConstantProtocol(1), pop, 50, rng=0, record_flips=True)
        assert result.flips.size >= 1
        assert result.flips[0] == 9

    def test_custom_stop_condition(self):
        pop = make_population(10, 1)
        engine = SynchronousEngine(FlipFlopProtocol(), pop, rng=0)
        result = engine.run(
            30,
            stability_rounds=1,
            stop_condition=lambda p: p.fraction_ones() > 0.5,
        )
        assert result.converged
        assert result.rounds == 1  # first flip sends everyone (but source) to 1


class TestEngineWithFET:
    def test_reproducible_with_seed(self):
        def run_once():
            pop = make_population(300, 1)
            proto = FETProtocol(20)
            rng = make_rng(99)
            state = proto.init_state(300, rng)
            return run_protocol(proto, pop, 500, rng=rng, state=state)

        r1, r2 = run_once(), run_once()
        assert r1.rounds == r2.rounds
        assert np.array_equal(r1.trajectory, r2.trajectory)

    def test_fet_absorbing_after_two_correct_rounds(self):
        """Two all-correct rounds are provably absorbing for FET."""
        n = 200
        pop = make_population(n, 1)
        pop.set_opinions(np.ones(n, dtype=np.uint8))
        proto = FETProtocol(10)
        state = {"prev_count": np.full(n, 10, dtype=np.int64)}  # as after an all-1 round
        result = run_protocol(proto, pop, 50, rng=0, state=state)
        assert result.converged
        assert (result.trajectory == 1.0).all()

    def test_pairs_shape(self):
        pop = make_population(100, 1)
        proto = FETProtocol(10)
        result = run_protocol(proto, pop, 100, rng=1)
        pairs = result.pairs()
        assert pairs.shape == (result.trajectory.size - 1, 2)
        assert np.array_equal(pairs[:, 0], result.trajectory[:-1])


class SourceDeviatorProtocol(Protocol):
    """Sets every opinion to 0 — including the source, which gets re-pinned."""

    name = "source-deviator"

    def init_state(self, n, rng):
        return {}

    def step(self, population, state, sampler, rng):
        return np.zeros(population.n, dtype=np.uint8)


class TestFlipAccounting:
    def test_flips_counted_after_source_repin(self):
        # All agents already hold 1. The protocol proposes all-zeros; the
        # engine re-pins the source, so the *published* vector flips only the
        # 9 non-source agents. Counting before the pin would report 10.
        pop = make_population(10, 1)
        pop.set_opinions(np.ones(10, dtype=np.uint8))
        engine = SynchronousEngine(SourceDeviatorProtocol(), pop, rng=0)
        record = engine.step()
        assert record.flips == 9

    def test_steady_source_not_a_flip(self):
        # From the all-correct configuration a constant-correct protocol
        # publishes an identical vector: zero flips, source included.
        pop = make_population(10, 1)
        pop.set_opinions(np.ones(10, dtype=np.uint8))
        engine = SynchronousEngine(ConstantProtocol(1), pop, rng=0)
        assert engine.step().flips == 0


class TestStabilityValidation:
    def test_zero_stability_rejected(self):
        pop = make_population(10, 1)
        engine = SynchronousEngine(ConstantProtocol(1), pop, rng=0)
        with pytest.raises(ValueError):
            engine.run(10, stability_rounds=0)

    def test_negative_stability_rejected(self):
        pop = make_population(10, 1)
        engine = SynchronousEngine(ConstantProtocol(1), pop, rng=0)
        with pytest.raises(ValueError):
            engine.run(10, stability_rounds=-3)
