"""Integration tests: end-to-end scenarios across the whole stack."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.domains import DomainPartition
from repro.analysis.markov import ExactPairChain
from repro.analysis.theory import theorem1_bound
from repro.core.engine import run_protocol
from repro.core.population import make_majority_population, make_population
from repro.core.rng import make_rng, spawn_rngs
from repro.core.sampling import IndexSampler
from repro.experiments.harness import run_trials
from repro.initializers.adversarial import FrozenUnanimity, TwoRoundTarget, ZeroSpeedCenter
from repro.initializers.standard import AllWrong, BernoulliRandom, ExactFraction
from repro.protocols.fet import FETProtocol, ell_for
from repro.protocols.oracle_clock import OracleClockProtocol
from repro.protocols.simple_trend import SimpleTrendProtocol


class TestAdversarialGrid:
    """FET converges from a grid of adversarial (x_prev, x_now) targets."""

    @pytest.mark.parametrize("x_prev,x_now", [(0.0, 0.0), (0.5, 0.5), (0.9, 0.1), (0.1, 0.9), (1.0, 1.0)])
    def test_converges(self, x_prev, x_now):
        n = 800
        proto = FETProtocol(ell_for(n))
        pop = make_population(n, 1)
        rng = make_rng(int(x_prev * 10) * 17 + int(x_now * 10))
        state = proto.init_state(n, rng)
        TwoRoundTarget(x_prev, x_now)(pop, proto, state, rng)
        result = run_protocol(proto, pop, 4000, rng=rng, state=state)
        assert result.converged


class TestTheorem1Shape:
    def test_median_below_scaled_bound(self):
        """Measured medians stay below a constant multiple of log^{5/2} n."""
        for n in (256, 1024, 4096):
            stats = run_trials(
                lambda n=n: FETProtocol(ell_for(n)),
                n,
                AllWrong(),
                trials=6,
                max_rounds=int(50 * theorem1_bound(n)),
                seed=n,
            )
            assert stats.successes == stats.trials
            assert np.median(stats.times) < 3.0 * theorem1_bound(n)

    def test_worst_case_init_still_polylog(self):
        n = 1024
        stats = run_trials(
            lambda: FETProtocol(ell_for(n)),
            n,
            ZeroSpeedCenter(),
            trials=6,
            max_rounds=int(50 * theorem1_bound(n)),
            seed=7,
        )
        assert stats.successes == stats.trials


class TestSimpleTrendParity:
    def test_simple_trend_also_converges(self):
        """The single-counter ablation behaves like FET empirically."""
        n = 1000
        stats = run_trials(
            lambda: SimpleTrendProtocol(ell_for(n)),
            n,
            BernoulliRandom(0.5),
            trials=6,
            max_rounds=5000,
            seed=11,
        )
        assert stats.successes == stats.trials


class TestPassiveVsOracle:
    def test_oracle_clock_faster_but_not_self_contained(self):
        """Oracle clock wins on speed; FET wins on assumptions."""
        n = 1024
        fet_stats = run_trials(
            lambda: FETProtocol(ell_for(n)),
            n,
            AllWrong(),
            trials=5,
            max_rounds=5000,
            seed=13,
        )
        oracle = OracleClockProtocol(n, ell=1)
        oracle_stats = run_trials(
            lambda: OracleClockProtocol(n, ell=1),
            n,
            AllWrong(),
            trials=5,
            max_rounds=20 * oracle.period,
            seed=13,
        )
        assert fet_stats.successes == oracle_stats.successes == 5
        # FET pays a samples-per-round premium for self-containment.
        assert FETProtocol(ell_for(n)).samples_per_round() > oracle.samples_per_round()


class TestImpossibilityWitness:
    def test_majority_variant_frozen_for_polynomial_time(self):
        n = 128
        pop = make_majority_population(n, k0=n // 4, k1=n // 8)
        proto = FETProtocol(16)
        rng = make_rng(5)
        state = proto.init_state(n, rng)
        FrozenUnanimity(opinion=1)(pop, proto, state, rng)
        result = run_protocol(proto, pop, n * n, rng=rng, state=state)
        assert not result.converged
        assert (result.trajectory == 1.0).all()

    def test_single_source_variant_escapes_same_state(self):
        """Contrast: with a pinned source the same unanimity is *correct*."""
        n = 128
        pop = make_population(n, 1)
        proto = FETProtocol(16)
        rng = make_rng(6)
        state = {"prev_count": np.full(n, 16, dtype=np.int64)}
        pop.set_opinions(np.ones(n, dtype=np.uint8))
        result = run_protocol(proto, pop, 100, rng=rng, state=state)
        assert result.converged


class TestDomainTrajectoryConsistency:
    def test_all_wrong_bounce_visits_cyan_then_green_side(self):
        n = 2000
        proto = FETProtocol(ell_for(n))
        pop = make_population(n, 1)
        rng = make_rng(8)
        state = proto.init_state(n, rng)
        AllWrong()(pop, proto, state, rng)
        result = run_protocol(proto, pop, 3000, rng=rng, state=state)
        part = DomainPartition(n=n)
        families = [part.classify(float(x), float(y)).family for x, y in result.pairs()]
        assert families[0] == "Cyan"
        assert result.converged


class TestExactChainAgainstHarness:
    def test_small_n_agreement(self):
        """Mean convergence from all-wrong agrees with the exact chain."""
        n, ell = 8, 3
        chain = ExactPairChain(n=n, ell=ell)
        exact = chain.expected_time_from_all_wrong()
        totals = []
        for rng in spawn_rngs(99, 400):
            proto = FETProtocol(ell)
            pop = make_population(n, 1)
            state = {"prev_count": rng.binomial(ell, 1 / n, size=n).astype(np.int64)}
            result = run_protocol(
                proto, pop, 2000, rng=rng, state=state, stability_rounds=2
            )
            assert result.converged
            # rounds is the first all-correct round; absorption into (n, n)
            # happens one round later, matching the chain's state pair.
            totals.append(result.rounds + 1)
        assert np.mean(totals) == pytest.approx(exact, rel=0.15)


class TestIndexSamplerEndToEnd:
    def test_literal_model_converges(self):
        n = 400
        proto = FETProtocol(ell_for(n, 4.0))
        pop = make_population(n, 1)
        rng = make_rng(10)
        state = proto.init_state(n, rng)
        ExactFraction(0.5)(pop, proto, state, rng)
        result = run_protocol(
            proto,
            pop,
            3000,
            sampler=IndexSampler(exclude_self=True),
            rng=rng,
            state=state,
        )
        assert result.converged
