"""Tests for the RNG service."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.rng import as_rng, derive_rng, make_rng, spawn_rngs
from repro.core.rng import interleave_seeds


class TestMakeRng:
    def test_returns_generator(self):
        assert isinstance(make_rng(0), np.random.Generator)

    def test_same_seed_same_stream(self):
        a = make_rng(42).random(5)
        b = make_rng(42).random(5)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = make_rng(1).random(5)
        b = make_rng(2).random(5)
        assert not np.array_equal(a, b)

    def test_none_seed_allowed(self):
        assert isinstance(make_rng(None), np.random.Generator)


class TestAsRng:
    def test_passes_generator_through(self):
        gen = make_rng(7)
        assert as_rng(gen) is gen

    def test_coerces_int(self):
        a = as_rng(9).random(3)
        b = make_rng(9).random(3)
        assert np.array_equal(a, b)

    def test_coerces_none(self):
        assert isinstance(as_rng(None), np.random.Generator)


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 7)) == 7

    def test_zero_count(self):
        assert spawn_rngs(0, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_streams_are_independent(self):
        rngs = spawn_rngs(3, 4)
        draws = [r.random(4) for r in rngs]
        for i in range(4):
            for j in range(i + 1, 4):
                assert not np.array_equal(draws[i], draws[j])

    def test_reproducible(self):
        a = [r.random(3) for r in spawn_rngs(11, 3)]
        b = [r.random(3) for r in spawn_rngs(11, 3)]
        for x, y in zip(a, b):
            assert np.array_equal(x, y)

    def test_different_from_plain_seed(self):
        spawned = spawn_rngs(5, 1)[0].random(4)
        plain = make_rng(5).random(4)
        assert not np.array_equal(spawned, plain)


class TestDeriveRng:
    def test_reproducible(self):
        a = derive_rng(1, 2, 3).random(4)
        b = derive_rng(1, 2, 3).random(4)
        assert np.array_equal(a, b)

    def test_distinct_keys_distinct_streams(self):
        a = derive_rng(1, 2, 3).random(4)
        b = derive_rng(1, 2, 4).random(4)
        assert not np.array_equal(a, b)

    def test_key_order_matters(self):
        a = derive_rng(1, 2, 3).random(4)
        b = derive_rng(1, 3, 2).random(4)
        assert not np.array_equal(a, b)


class TestInterleaveSeeds:
    def test_labels_mapped(self):
        mapping = interleave_seeds(0, ["a", "b"])
        assert set(mapping) == {"a", "b"}

    def test_stable_assignment(self):
        m1 = interleave_seeds(0, ["a", "b"])
        m2 = interleave_seeds(0, ["a", "b"])
        assert np.array_equal(m1["a"].random(3), m2["a"].random(3))
