"""Tests for standard and adversarial initializers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.batch import BatchedPopulation
from repro.core.engine import run_protocol
from repro.core.population import make_majority_population, make_population
from repro.core.rng import make_rng
from repro.experiments.harness import run_trials
from repro.initializers.adversarial import (
    FrozenUnanimity,
    PoisonedCounters,
    TwoRoundTarget,
    ZeroSpeedCenter,
)
from repro.initializers.standard import (
    AllCorrect,
    AllWrong,
    BernoulliRandom,
    ExactFraction,
    RandomizeProtocolState,
)
from repro.protocols.fet import FETProtocol


def fresh(n=100, ell=10, correct=1):
    proto = FETProtocol(ell)
    pop = make_population(n, correct)
    rng = make_rng(0)
    state = proto.init_state(n, rng)
    return proto, pop, state, rng


class TestAllWrong:
    def test_nonsources_wrong(self):
        proto, pop, state, rng = fresh()
        AllWrong()(pop, proto, state, rng)
        assert (pop.opinions[~pop.source_mask] == 0).all()
        assert pop.opinions[pop.source_mask].tolist() == [1]

    def test_respects_correct_zero(self):
        proto, pop, state, rng = fresh(correct=0)
        AllWrong()(pop, proto, state, rng)
        assert (pop.opinions[~pop.source_mask] == 1).all()

    def test_randomizes_internal_state(self):
        proto, pop, state, rng = fresh(ell=20)
        AllWrong()(pop, proto, state, rng)
        assert len(np.unique(state["prev_count"])) > 1


class TestAllCorrect:
    def test_everyone_correct(self):
        proto, pop, state, rng = fresh()
        AllCorrect()(pop, proto, state, rng)
        assert pop.at_correct_consensus()


class TestBernoulliRandom:
    def test_rejects_bad_p(self):
        with pytest.raises(ValueError):
            BernoulliRandom(1.5)

    def test_fraction_near_p(self):
        proto, pop, state, rng = fresh(n=4000)
        BernoulliRandom(0.3)(pop, proto, state, rng)
        assert pop.fraction_ones() == pytest.approx(0.3, abs=0.05)

    def test_name_contains_p(self):
        assert "0.3" in BernoulliRandom(0.3).name


class TestExactFraction:
    def test_exact_count(self):
        proto, pop, state, rng = fresh(n=200)
        ExactFraction(0.35)(pop, proto, state, rng)
        # Source pinning can add at most one extra 1.
        assert abs(pop.count_ones() - 70) <= 1

    def test_rejects_bad_x(self):
        with pytest.raises(ValueError):
            ExactFraction(-0.1)

    def test_zero_fraction(self):
        proto, pop, state, rng = fresh(n=100)
        ExactFraction(0.0)(pop, proto, state, rng)
        assert pop.count_ones() == 1  # only the pinned source


class TestRandomizeProtocolState:
    def test_leaves_opinions(self):
        proto, pop, state, rng = fresh()
        before = pop.opinions.copy()
        RandomizeProtocolState()(pop, proto, state, rng)
        assert np.array_equal(before, pop.opinions)

    def test_randomizes_state(self):
        proto, pop, state, rng = fresh(ell=20)
        RandomizeProtocolState()(pop, proto, state, rng)
        assert len(np.unique(state["prev_count"])) > 1


class TestTwoRoundTarget:
    def test_sets_fraction(self):
        proto, pop, state, rng = fresh(n=1000)
        TwoRoundTarget(0.2, 0.6)(pop, proto, state, rng)
        assert pop.fraction_ones() == pytest.approx(0.6, abs=0.01)

    def test_counters_reflect_x_prev(self):
        proto, pop, state, rng = fresh(n=5000, ell=40)
        TwoRoundTarget(0.2, 0.6)(pop, proto, state, rng)
        assert state["prev_count"].mean() / 40 == pytest.approx(0.2, abs=0.03)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            TwoRoundTarget(1.2, 0.5)
        with pytest.raises(ValueError):
            TwoRoundTarget(0.5, -0.5)


class TestZeroSpeedCenter:
    def test_center_configuration(self):
        proto, pop, state, rng = fresh(n=1000, ell=40)
        ZeroSpeedCenter()(pop, proto, state, rng)
        assert pop.fraction_ones() == pytest.approx(0.5, abs=0.01)
        assert state["prev_count"].mean() / 40 == pytest.approx(0.5, abs=0.05)

    def test_fet_still_converges(self):
        n = 1000
        proto = FETProtocol(56)
        pop = make_population(n, 1)
        rng = make_rng(17)
        state = proto.init_state(n, rng)
        ZeroSpeedCenter()(pop, proto, state, rng)
        result = run_protocol(proto, pop, 5000, rng=rng, state=state)
        assert result.converged


class TestPoisonedCounters:
    def test_counters_saturated(self):
        proto, pop, state, rng = fresh(ell=10)
        PoisonedCounters()(pop, proto, state, rng)
        assert (state["prev_count"] == 10).all()
        assert (pop.opinions[~pop.source_mask] == 0).all()

    def test_fet_recovers(self):
        n = 1000
        proto = FETProtocol(56)
        pop = make_population(n, 1)
        rng = make_rng(21)
        state = proto.init_state(n, rng)
        PoisonedCounters()(pop, proto, state, rng)
        result = run_protocol(proto, pop, 3000, rng=rng, state=state)
        assert result.converged


class TestFrozenUnanimity:
    def test_rejects_pinned_population(self):
        proto, pop, state, rng = fresh()
        with pytest.raises(ValueError):
            FrozenUnanimity()(pop, proto, state, rng)

    def test_rejects_bad_opinion(self):
        with pytest.raises(ValueError):
            FrozenUnanimity(opinion=2)

    def test_installs_unanimity(self):
        pop = make_majority_population(40, k0=10, k1=5)
        proto = FETProtocol(8)
        rng = make_rng(0)
        state = proto.init_state(40, rng)
        FrozenUnanimity(opinion=1)(pop, proto, state, rng)
        assert (pop.opinions == 1).all()
        assert (state["prev_count"] == 8).all()

    def test_freeze_is_permanent(self):
        """The impossibility witness: the configuration never moves."""
        pop = make_majority_population(60, k0=15, k1=5)  # majority prefers 0
        proto = FETProtocol(8)
        rng = make_rng(1)
        state = proto.init_state(60, rng)
        FrozenUnanimity(opinion=1)(pop, proto, state, rng)
        result = run_protocol(proto, pop, 500, rng=rng, state=state)
        assert not result.converged  # correct bit is 0, population frozen at 1
        assert (result.trajectory == 1.0).all()

    def test_zero_variant_freezes_too(self):
        pop = make_majority_population(60, k0=5, k1=15)  # majority prefers 1
        proto = FETProtocol(8)
        rng = make_rng(2)
        state = proto.init_state(60, rng)
        FrozenUnanimity(opinion=0)(pop, proto, state, rng)
        result = run_protocol(proto, pop, 300, rng=rng, state=state)
        assert not result.converged
        assert (result.trajectory == 0.0).all()


class TestAdversarialBatched:
    """Batched application of the crafted adversarial constructions."""

    def batch(self, n=60, replicas=8, ell=10):
        proto = FETProtocol(ell)
        rng = make_rng(0)
        batch = BatchedPopulation.from_population(make_population(n, 1), replicas)
        states = proto.init_state_batch(replicas, n, rng)
        return proto, batch, states, rng

    def test_all_support_batch(self):
        for init in (TwoRoundTarget(0.3, 0.7), ZeroSpeedCenter(), PoisonedCounters(), FrozenUnanimity()):
            assert init.supports_batch

    def test_two_round_target_rows(self):
        proto, batch, states, rng = self.batch()
        TwoRoundTarget(0.25, 0.5).apply_batch(batch, proto, states, rng)
        # Every replica holds fraction x_now up to source re-pinning (1 source).
        counts = batch.count_ones()
        assert ((counts >= 30) & (counts <= 31)).all()
        # Counters are Binomial(ell, x_prev) per agent: in range, and not all
        # rows identical (independent draws per replica).
        prev = states["prev_count"]
        assert prev.shape == (8, 60)
        assert prev.min() >= 0 and prev.max() <= 10
        assert len(np.unique(prev.sum(axis=1))) > 1

    def test_two_round_needs_ell(self):
        class NoEll:
            name = "no-ell"

            def init_state(self, n, rng):
                return {"prev_count": np.zeros(n, dtype=np.int64)}

        proto, batch, states, rng = self.batch()
        with pytest.raises(ValueError, match="ell"):
            TwoRoundTarget(0.5, 0.5).apply_batch(batch, NoEll(), states, rng)

    def test_zero_speed_center_delegates(self):
        proto, batch, states, rng = self.batch(n=80)
        ZeroSpeedCenter().apply_batch(batch, proto, states, rng)
        counts = batch.count_ones()
        assert ((counts >= 40) & (counts <= 41)).all()

    def test_poisoned_counters_batch(self):
        proto, batch, states, rng = self.batch()
        PoisonedCounters().apply_batch(batch, proto, states, rng)
        nonsource = batch.opinions[:, ~batch.source_mask]
        assert (nonsource == 0).all()  # every non-source wrong
        assert (batch.opinions[:, batch.source_mask] == 1).all()  # sources pinned
        assert (states["prev_count"] == 10).all()

    def test_frozen_unanimity_batch(self):
        proto = FETProtocol(8)
        rng = make_rng(0)
        pop = make_majority_population(40, k0=10, k1=5)
        batch = BatchedPopulation.from_population(pop, 4)
        states = proto.init_state_batch(4, 40, rng)
        FrozenUnanimity(opinion=1).apply_batch(batch, proto, states, rng)
        assert (batch.opinions == 1).all()
        assert (states["prev_count"] == 8).all()

    def test_frozen_unanimity_batch_rejects_pinned(self):
        proto, batch, states, rng = self.batch()
        with pytest.raises(ValueError, match="majority variant"):
            FrozenUnanimity().apply_batch(batch, proto, states, rng)

    def test_batched_harness_uses_fast_path(self):
        """Adversarial cells take the vectorized init branch end to end."""
        stats = run_trials(
            lambda: FETProtocol(30),
            300,
            PoisonedCounters(),
            trials=6,
            max_rounds=1500,
            seed=0,
            engine="batched",
        )
        assert stats.engine == "batched"
        assert stats.successes == 6

    def test_batched_matches_sequential_profile(self):
        """Same construction, both engines: equal success profile (the
        batched path is exact in distribution, not bitwise)."""
        kwargs = dict(trials=5, max_rounds=1500, seed=7)
        for init in (ZeroSpeedCenter(), TwoRoundTarget(0.5, 0.5)):
            seq = run_trials(lambda: FETProtocol(30), 300, init, engine="sequential", **kwargs)
            bat = run_trials(lambda: FETProtocol(30), 300, init, engine="batched", **kwargs)
            assert seq.successes == bat.successes == 5
