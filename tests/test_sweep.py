"""Tests for the parallel sweep orchestrator (repro.sweep)."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.experiments.harness import TrialStats
from repro.sweep import (
    Cell,
    ProcessPoolDispatcher,
    ResultsStore,
    SerialDispatcher,
    SweepSpec,
    build_initializer,
    build_protocol,
    execute_cell,
    fet_demo_spec,
    load_spec,
    make_dispatcher,
    run_sweep,
)


def small_spec(seed: int = 7, **overrides) -> SweepSpec:
    """A 4-cell FET grid small enough to execute many times per test run."""
    settings = dict(
        name="test-grid",
        seed=seed,
        trials=3,
        axes={
            "protocol": [{"name": "fet", "ell": 10}],
            "n": [100, 150],
            "initializer": ["all-wrong", {"name": "bernoulli", "p": 0.5}],
        },
        max_rounds=400,
    )
    settings.update(overrides)
    return SweepSpec(**settings)


class TestSpecExpansion:
    def test_cross_product_count_and_order(self):
        cells = small_spec().expand()
        assert len(cells) == 4
        # Canonical order: protocol x n x noise x initializer.
        assert [(c.n, c.initializer["name"]) for c in cells] == [
            (100, "all-wrong"),
            (100, "bernoulli"),
            (150, "all-wrong"),
            (150, "bernoulli"),
        ]

    def test_scalar_and_string_normalization(self):
        spec = SweepSpec(axes={"protocol": "voter", "n": 100}, trials=1)
        cells = spec.expand()
        assert len(cells) == 1
        assert cells[0].protocol == {"name": "voter"}
        assert cells[0].noise == 0.0
        assert cells[0].initializer == {"name": "all-wrong"}

    def test_zipped_axes_lockstep(self):
        spec = SweepSpec(
            axes={
                "protocol": ["fet"],
                "n": [100, 200, 300],
                "initializer": ["all-wrong", "all-correct", {"name": "fraction", "x": 0.5}],
            },
            zipped=[["n", "initializer"]],
            trials=1,
        )
        cells = spec.expand()
        assert [(c.n, c.initializer["name"]) for c in cells] == [
            (100, "all-wrong"),
            (200, "all-correct"),
            (300, "fraction"),
        ]

    def test_zipped_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="equal lengths"):
            SweepSpec(
                axes={"protocol": ["fet"], "n": [100, 200], "initializer": ["all-wrong"]},
                zipped=[["n", "initializer"]],
                trials=1,
            )

    def test_unknown_axis_rejected(self):
        with pytest.raises(ValueError, match="unknown axes"):
            SweepSpec(axes={"protocol": ["fet"], "n": [100], "temperature": [1]}, trials=1)

    def test_missing_required_axis_rejected(self):
        with pytest.raises(ValueError, match="must include"):
            SweepSpec(axes={"protocol": ["fet"]}, trials=1)

    def test_max_rounds_factor_rule(self):
        spec = small_spec(max_rounds=None, max_rounds_factor=40.0, min_rounds=50)
        for cell in spec.expand():
            assert cell.max_rounds == max(50, int(40.0 * np.log(cell.n) ** 2.5))

    def test_round_trips_through_json(self, tmp_path):
        spec = small_spec()
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(spec.to_dict()))
        loaded = load_spec(path)
        assert [c.key() for c in loaded.expand()] == [c.key() for c in spec.expand()]

    def test_unknown_spec_key_rejected(self):
        with pytest.raises(ValueError, match="unknown sweep spec keys"):
            SweepSpec.from_dict({"axes": {"protocol": ["fet"], "n": [100]}, "trials": 1, "bogus": 2})

    def test_theta_measure_requires_threshold(self):
        with pytest.raises(ValueError, match="'theta' threshold"):
            small_spec(measure={"kind": "theta"})
        with pytest.raises(ValueError, match="theta must be in"):
            small_spec(measure={"kind": "theta", "theta": 1.5})
        with pytest.raises(ValueError, match="settle_window"):
            small_spec(measure={"kind": "theta", "theta": 0.9, "settle_window": -1})


class TestCellSeeds:
    def test_distinct_cells_distinct_seeds(self):
        cells = small_spec().expand()
        assert len({c.seed for c in cells}) == len(cells)

    def test_seed_stable_under_grid_composition(self):
        # A cell keeps its derived seed when the grid around it grows or is
        # reordered — the property that makes stores reusable across specs.
        small = small_spec().expand()
        grown = small_spec(axes={
            "protocol": [{"name": "fet", "ell": 10}],
            "n": [300, 150, 100],
            "initializer": [{"name": "bernoulli", "p": 0.5}, "all-wrong", "all-correct"],
        }).expand()
        by_coords = {(c.n, c.initializer["name"]): c for c in grown}
        for cell in small:
            twin = by_coords[(cell.n, cell.initializer["name"])]
            assert twin.seed == cell.seed
            assert twin.key() == cell.key()

    def test_base_seed_changes_cell_seeds(self):
        a = small_spec(seed=1).expand()
        b = small_spec(seed=2).expand()
        assert all(x.seed != y.seed for x, y in zip(a, b))

    def test_config_changes_cell_seed(self):
        a = small_spec(trials=3).expand()
        b = small_spec(trials=4).expand()
        assert all(x.seed != y.seed for x, y in zip(a, b))

    def test_key_covers_seed(self):
        cell = small_spec().expand()[0]
        twin = Cell.from_dict({**cell.to_dict(), "seed": cell.seed + 1})
        assert twin.key() != cell.key()


class TestRegistry:
    def test_unknown_protocol_rejected(self):
        with pytest.raises(ValueError, match="unknown protocol"):
            build_protocol({"name": "teleport"}, 100)

    def test_unknown_initializer_rejected(self):
        with pytest.raises(ValueError, match="unknown initializer"):
            build_initializer({"name": "chaos"})

    def test_unknown_parameter_rejected(self):
        with pytest.raises(ValueError, match="unknown parameters"):
            build_protocol({"name": "voter", "ell": 10}, 100)

    def test_fet_ell_defaults_to_paper_rule(self):
        from repro.protocols.fet import ell_for

        assert build_protocol({"name": "fet"}, 1000).ell == ell_for(1000)
        assert build_protocol({"name": "fet", "ell": 5}, 1000).ell == 5

    def test_bad_cell_fails_before_dispatch(self):
        # A typo'd name raises one clear error in the orchestrating process;
        # no pool worker ever sees the cell.
        spec = small_spec(axes={"protocol": [{"name": "ftt"}], "n": [100]})
        with pytest.raises(ValueError, match=r"invalid sweep cell \[ftt n=100.*unknown protocol"):
            run_sweep(spec, jobs=4)
        spec = small_spec(axes={"protocol": ["fet"], "n": [100], "initializer": [{"name": "chaos"}]})
        with pytest.raises(ValueError, match="unknown initializer"):
            run_sweep(spec, jobs=4)

    def test_initializer_spec_round_trip(self):
        from repro.initializers.adversarial import PoisonedCounters, TwoRoundTarget
        from repro.initializers.standard import AllWrong, BernoulliRandom, ExactFraction

        for init in (
            AllWrong(),
            BernoulliRandom(0.25),
            ExactFraction(0.5),
            TwoRoundTarget(0.3, 0.7),
            PoisonedCounters(),
        ):
            rebuilt = build_initializer(init.spec())
            assert rebuilt.name == init.name


class TestDispatchers:
    def test_make_dispatcher(self):
        assert isinstance(make_dispatcher(1), SerialDispatcher)
        assert isinstance(make_dispatcher(3), ProcessPoolDispatcher)
        with pytest.raises(ValueError):
            make_dispatcher(0)

    def test_serial_reports_in_order(self):
        seen = []
        results = SerialDispatcher().map(lambda x: x * x, [1, 2, 3], on_result=lambda i, r: seen.append((i, r)))
        assert results == [1, 4, 9]
        assert seen == [(0, 1), (1, 4), (2, 9)]

    def test_pool_collects_in_submission_order(self):
        results = ProcessPoolDispatcher(4).map(_square, list(range(8)))
        assert results == [x * x for x in range(8)]


def _square(x: int) -> int:
    return x * x


class TestRunSweep:
    def test_jobs_do_not_change_results(self, tmp_path):
        spec = small_spec()
        serial = run_sweep(spec, jobs=1)
        pooled = run_sweep(spec, jobs=4)
        a = serial.write_csv(tmp_path / "serial.csv")
        b = pooled.write_csv(tmp_path / "pooled.csv")
        assert a.read_bytes() == b.read_bytes()
        for x, y in zip(serial.results, pooled.results):
            assert x.payload == y.payload

    def test_cells_and_results_aligned(self):
        spec = small_spec()
        outcome = run_sweep(spec, jobs=1)
        for cell, result in zip(outcome.cells, outcome.results):
            assert result.key == cell.key()
            assert result.cell["n"] == cell.n

    def test_stats_reconstruction(self):
        outcome = run_sweep(small_spec(), jobs=1)
        stats = outcome.results[0].stats()
        assert isinstance(stats, TrialStats)
        assert stats.trials == 3
        assert stats.successes <= stats.trials

    def test_cache_hit_skips_execution(self, tmp_path):
        spec = small_spec()
        store = tmp_path / "store.jsonl"
        first = run_sweep(spec, jobs=1, store=store)
        assert (first.executed, first.cached) == (4, 0)
        second = run_sweep(spec, jobs=1, store=store)
        assert (second.executed, second.cached) == (0, 4)
        for x, y in zip(first.results, second.results):
            assert x.payload == y.payload

    def test_force_recomputes(self, tmp_path):
        spec = small_spec()
        store = tmp_path / "store.jsonl"
        run_sweep(spec, jobs=1, store=store)
        forced = run_sweep(spec, jobs=1, store=store, force=True)
        assert forced.executed == 4

    def test_resume_from_partial_store(self, tmp_path):
        spec = small_spec()
        store_path = tmp_path / "store.jsonl"
        full = run_sweep(spec, jobs=1, store=store_path)
        reference = full.write_csv(tmp_path / "full.csv").read_bytes()

        # Simulate an interrupt: keep 2 completed lines plus a torn tail.
        lines = store_path.read_text().splitlines()
        store_path.write_text("\n".join(lines[:2]) + '\n{"key": "torn-wri')
        resumed = run_sweep(spec, jobs=4, store=store_path)
        assert (resumed.executed, resumed.cached) == (2, 2)
        assert resumed.write_csv(tmp_path / "resumed.csv").read_bytes() == reference

        # The store is whole again afterwards: a third run computes nothing.
        final = run_sweep(spec, jobs=1, store=store_path)
        assert (final.executed, final.cached) == (0, 4)

    def test_store_misses_on_config_change(self, tmp_path):
        store = tmp_path / "store.jsonl"
        run_sweep(small_spec(trials=3), jobs=1, store=store)
        changed = run_sweep(small_spec(trials=4), jobs=1, store=store)
        assert changed.executed == 4

    def test_zero_trial_cells(self):
        outcome = run_sweep(small_spec(trials=0), jobs=1)
        for row in outcome.rows():
            assert row["trials"] == 0
            assert np.isnan(row["rate"])

    def test_noise_axis_uses_noisy_samplers(self):
        spec = SweepSpec(
            axes={
                "protocol": [{"name": "fet", "ell": 15}],
                "n": [200],
                "noise": [0.0, 0.2],
                "initializer": ["all-correct"],
            },
            trials=3,
            max_rounds=60,
            stability_rounds=1,
            seed=3,
        )
        rows = run_sweep(spec, jobs=1).rows()
        # Noiseless all-correct is absorbing; heavy noise destroys retention,
        # so the noisy cell converges (round 0) but these are distinct cells.
        assert rows[0]["noise"] == 0.0 and rows[1]["noise"] == 0.2
        assert rows[0]["successes"] == 3

    def test_theta_measure_rows(self):
        spec = SweepSpec(
            axes={
                "protocol": [{"name": "fet", "ell": 20}],
                "n": [300],
                "noise": [0.0],
                "initializer": ["all-wrong"],
            },
            trials=2,
            max_rounds=500,
            stability_rounds=1,
            engine="sequential",
            measure={"kind": "theta", "theta": 0.9, "settle_window": 5},
            seed=5,
        )
        outcome = run_sweep(spec, jobs=1)
        row = outcome.rows()[0]
        assert row["successes"] == 2
        assert row["settle"] == pytest.approx(1.0, abs=0.05)
        with pytest.raises(ValueError, match="not consensus"):
            outcome.results[0].stats()

    def test_execute_cell_deterministic(self):
        cell = small_spec().expand()[1]
        assert execute_cell(cell).payload == execute_cell(cell).payload


class TestResultsStore:
    def test_round_trip(self, tmp_path):
        store = ResultsStore(tmp_path / "s.jsonl")
        store.put("k1", {"cell": {"n": 10}, "payload": {"x": 1}})
        reloaded = ResultsStore(tmp_path / "s.jsonl")
        assert reloaded.get("k1")["payload"] == {"x": 1}
        assert "k1" in reloaded and len(reloaded) == 1

    def test_last_write_wins(self, tmp_path):
        store = ResultsStore(tmp_path / "s.jsonl")
        store.put("k", {"payload": 1})
        store.put("k", {"payload": 2})
        assert ResultsStore(tmp_path / "s.jsonl").get("k")["payload"] == 2

    def test_torn_tail_tolerated(self, tmp_path):
        path = tmp_path / "s.jsonl"
        store = ResultsStore(path)
        store.put("good", {"payload": 1})
        with path.open("a") as handle:
            handle.write('{"key": "torn", "payl')
        reloaded = ResultsStore(path)
        assert reloaded.get("good")["payload"] == 1
        assert reloaded.get("torn") is None
        assert reloaded.corrupt_lines == 1

    def test_missing_file_is_empty(self, tmp_path):
        assert len(ResultsStore(tmp_path / "absent.jsonl")) == 0


class TestStoreIntegrity:
    """Per-record checksums and the fsync durability knob."""

    def test_records_carry_verifiable_checksums(self, tmp_path):
        from repro.sweep.store import record_checksum

        path = tmp_path / "s.jsonl"
        ResultsStore(path).put("k", {"cell": {"n": 10}, "payload": {"x": 1}})
        record = json.loads(path.read_text())
        assert record["checksum"] == record_checksum(record)
        reloaded = ResultsStore(path)
        assert reloaded.checksum_failures == 0
        assert reloaded.get("k")["payload"] == {"x": 1}

    def test_corrupted_middle_line_refused_and_recomputed(self, tmp_path):
        # The satellite's acceptance case: flip one payload byte in the
        # *middle* of a store (still valid JSON, still has a key) and the
        # record must be refused at load and recomputed by the next sweep.
        spec = small_spec()
        store_path = tmp_path / "store.jsonl"
        reference = run_sweep(spec, jobs=1, store=store_path)
        reference_csv = reference.write_csv(tmp_path / "ref.csv").read_bytes()

        lines = store_path.read_text().splitlines()
        record = json.loads(lines[1])
        record["payload"]["successes"] = record["payload"]["successes"] + 1
        lines[1] = json.dumps(record, sort_keys=True)
        store_path.write_text("\n".join(lines) + "\n")

        tampered = ResultsStore(store_path)
        assert tampered.checksum_failures == 1
        assert len(tampered) == 3  # the other records still load

        resumed = run_sweep(spec, jobs=1, store=store_path)
        assert (resumed.executed, resumed.cached) == (1, 3)
        assert resumed.write_csv(tmp_path / "res.csv").read_bytes() == reference_csv

    def test_legacy_records_without_checksum_load(self, tmp_path):
        path = tmp_path / "s.jsonl"
        legacy = {"key": "old", "cell": {"n": 5}, "payload": {"x": 2}}
        path.write_text(json.dumps(legacy) + "\n")
        store = ResultsStore(path)
        assert store.get("old")["payload"] == {"x": 2}
        assert store.checksum_failures == 0

    def test_compact_drops_and_reports_checksum_failures(self, tmp_path):
        path = tmp_path / "s.jsonl"
        store = ResultsStore(path)
        store.put("a", {"payload": 1})
        store.put("b", {"payload": 2})
        lines = path.read_text().splitlines()
        lines[0] = lines[0].replace('"payload": 1', '"payload": 9')
        path.write_text("\n".join(lines) + "\n")

        summary = ResultsStore(path).compact()
        assert summary["checksum_failures"] == 1
        assert summary["records"] == 1
        # The rewritten file carries only the intact record.
        survivors = [json.loads(line) for line in path.read_text().splitlines()]
        assert [r["key"] for r in survivors] == ["b"]
        assert ResultsStore(path).checksum_failures == 0

    def test_durable_store_fsyncs_every_put(self, tmp_path, monkeypatch):
        import os as os_module

        calls = []
        real_fsync = os_module.fsync
        monkeypatch.setattr(
            "repro.sweep.store.os.fsync",
            lambda fd: (calls.append(fd), real_fsync(fd)),
        )
        durable = ResultsStore(tmp_path / "d.jsonl", durable=True)
        durable.put("a", {"payload": 1})
        durable.put("b", {"payload": 2})
        assert len(calls) == 2
        lazy = ResultsStore(tmp_path / "l.jsonl")
        lazy.put("a", {"payload": 1})
        assert len(calls) == 2  # the default store never pays the barrier

    def test_run_sweep_store_is_durable(self, tmp_path, monkeypatch):
        # run_sweep opens path-based stores durable=True so a resume point
        # survives machine crashes, not just process kills.
        import repro.sweep.orchestrator as orchestrator

        opened = []

        class SpyingStore(orchestrator.ResultsStore):
            def __init__(self, path, **kwargs):
                opened.append(kwargs)
                super().__init__(path, **kwargs)

        monkeypatch.setattr(orchestrator, "ResultsStore", SpyingStore)
        run_sweep(small_spec(), jobs=1, store=tmp_path / "store.jsonl")
        assert opened == [{"durable": True}]
