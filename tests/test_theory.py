"""Tests for the theoretical bound helpers."""

from __future__ import annotations

import math

import pytest

from repro.analysis.theory import (
    amplification_lower_bound,
    cyan_dwell_bound,
    cyan_gamma,
    cyan_growth_constant,
    green_dwell_bound,
    purple_dwell_bound,
    red_dwell_bound,
    theorem1_bound,
    yellow_b_dwell_bound,
    yellow_dwell_bound,
)


class TestTheorem1Bound:
    def test_value(self):
        assert theorem1_bound(1000) == pytest.approx(math.log(1000) ** 2.5)

    def test_constant_scales(self):
        assert theorem1_bound(1000, 3.0) == pytest.approx(3 * theorem1_bound(1000))

    def test_monotone_in_n(self):
        assert theorem1_bound(10**6) > theorem1_bound(10**3)

    def test_rejects_tiny_n(self):
        with pytest.raises(ValueError):
            theorem1_bound(2)

    def test_yellow_equals_theorem(self):
        assert yellow_dwell_bound(5000, 2.0) == theorem1_bound(5000, 2.0)


class TestRedBound:
    def test_value(self):
        assert red_dwell_bound(1000, 0.05) == pytest.approx(math.log(1000) ** 0.6)

    def test_grows_slower_than_theorem1(self):
        for n in (10**3, 10**6, 10**9):
            assert red_dwell_bound(n) < theorem1_bound(n)


class TestCyanBound:
    def test_value(self):
        n = 10**4
        expected = math.log(n) / math.log(math.log(n))
        assert cyan_dwell_bound(n) == pytest.approx(expected)

    def test_rejects_tiny_n(self):
        with pytest.raises(ValueError):
            cyan_dwell_bound(2)

    def test_sublogarithmic(self):
        assert cyan_dwell_bound(10**6) < math.log(10**6)


class TestOneRoundBounds:
    def test_green(self):
        assert green_dwell_bound(100) == 1.0

    def test_purple(self):
        assert purple_dwell_bound(100) == 1.0


class TestYellowB:
    def test_value(self):
        n, c, c4 = 10**4, 8.0, 1 / 36
        expected = (math.sqrt(c) / c4) * math.log(n) ** 1.5
        assert yellow_b_dwell_bound(n, c, c4) == pytest.approx(expected)

    def test_rejects_bad_constants(self):
        with pytest.raises(ValueError):
            yellow_b_dwell_bound(100, -1.0, 0.1)

    def test_below_yellow_total(self):
        n = 10**6
        assert yellow_b_dwell_bound(n, 8.0, 1 / 36) < yellow_dwell_bound(n, 400.0)


class TestSection4Constants:
    def test_gamma_formula(self):
        c = 1.0
        assert cyan_gamma(c) == pytest.approx((1 - 1 / math.e) * math.exp(-2) / 2)

    def test_growth_formula(self):
        c = 1.0
        assert cyan_growth_constant(c) == pytest.approx(math.exp(-2) / 2)

    def test_positive(self):
        for c in (0.5, 2.0, 8.0):
            assert cyan_gamma(c) > 0
            assert cyan_growth_constant(c) > 0

    def test_reject_nonpositive_c(self):
        with pytest.raises(ValueError):
            cyan_gamma(0.0)
        with pytest.raises(ValueError):
            cyan_growth_constant(-1.0)


class TestAmplification:
    def test_formula(self):
        assert amplification_lower_bound(100, alpha=9.0) == pytest.approx(
            1 + (1 / 36) / 10
        )

    def test_decreases_with_ell(self):
        assert amplification_lower_bound(16) > amplification_lower_bound(256)

    def test_always_above_one(self):
        for ell in (1, 10, 10_000):
            assert amplification_lower_bound(ell) > 1.0

    def test_rejects_bad_ell(self):
        with pytest.raises(ValueError):
            amplification_lower_bound(0)
