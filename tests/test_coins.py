"""Tests for the exact coin-competition probabilities and the paper's bounds."""

from __future__ import annotations

import itertools
import math

import numpy as np
import pytest

from repro.analysis.coins import (
    LEMMA12_ALPHA,
    berry_esseen_underdog_bound,
    binomial_pmf,
    compare_binomials,
    compare_grid,
    exact_expected_abs_difference,
    expected_abs_difference_bound,
    hoeffding_favorite_bound,
    lemma12_upper_bound,
    lemma14_lower_bound,
)


def brute_force_compare(k: int, p: float, q: float) -> tuple[float, float, float]:
    """O(k²) direct enumeration for cross-checking the convolution."""
    pmf_p = [math.comb(k, i) * p**i * (1 - p) ** (k - i) for i in range(k + 1)]
    pmf_q = [math.comb(k, j) * q**j * (1 - q) ** (k - j) for j in range(k + 1)]
    gt = sum(pmf_p[i] * pmf_q[j] for i in range(k + 1) for j in range(k + 1) if i > j)
    eq = sum(pmf_p[i] * pmf_q[i] for i in range(k + 1))
    return gt, eq, 1 - gt - eq


class TestBinomialPmf:
    def test_sums_to_one(self):
        assert binomial_pmf(12, 0.37).sum() == pytest.approx(1.0)

    def test_degenerate_p(self):
        assert binomial_pmf(5, 0.0)[0] == pytest.approx(1.0)
        assert binomial_pmf(5, 1.0)[5] == pytest.approx(1.0)

    def test_vector_p(self):
        out = binomial_pmf(6, np.array([0.2, 0.8]))
        assert out.shape == (2, 7)
        assert out.sum(axis=1) == pytest.approx([1.0, 1.0])

    def test_rejects_negative_k(self):
        with pytest.raises(ValueError):
            binomial_pmf(-1, 0.5)


class TestCompareBinomials:
    @pytest.mark.parametrize(
        "k,p,q", list(itertools.product([1, 3, 8], [0.1, 0.5], [0.3, 0.9]))
    )
    def test_matches_brute_force(self, k, p, q):
        exact = compare_binomials(k, p, q)
        gt, eq, lt = brute_force_compare(k, p, q)
        assert exact.p_first_wins == pytest.approx(gt, abs=1e-12)
        assert exact.p_tie == pytest.approx(eq, abs=1e-12)
        assert exact.p_second_wins == pytest.approx(lt, abs=1e-12)

    def test_probabilities_sum_to_one(self):
        cmp_ = compare_binomials(25, 0.4, 0.6)
        assert cmp_.total == pytest.approx(1.0)

    def test_symmetry_under_swap(self):
        a = compare_binomials(20, 0.3, 0.7)
        b = compare_binomials(20, 0.7, 0.3)
        assert a.p_first_wins == pytest.approx(b.p_second_wins)
        assert a.p_tie == pytest.approx(b.p_tie)

    def test_equal_coins_symmetric(self):
        cmp_ = compare_binomials(30, 0.5, 0.5)
        assert cmp_.p_first_wins == pytest.approx(cmp_.p_second_wins)

    def test_favorite_usually_wins(self):
        cmp_ = compare_binomials(100, 0.3, 0.7)
        assert cmp_.p_second_wins > 0.99

    def test_k_zero(self):
        cmp_ = compare_binomials(0, 0.3, 0.7)
        assert cmp_.p_tie == pytest.approx(1.0)


class TestCompareGrid:
    def test_matches_scalar(self):
        ps = np.array([0.2, 0.5, 0.8])
        qs = np.array([0.1, 0.6])
        gt, eq = compare_grid(10, ps, qs)
        for i, p in enumerate(ps):
            for j, q in enumerate(qs):
                scalar = compare_binomials(10, p, q)
                assert gt[i, j] == pytest.approx(scalar.p_first_wins, abs=1e-12)
                assert eq[i, j] == pytest.approx(scalar.p_tie, abs=1e-12)

    def test_shapes(self):
        gt, eq = compare_grid(5, np.linspace(0, 1, 7), np.linspace(0, 1, 4))
        assert gt.shape == (7, 4)
        assert eq.shape == (7, 4)


class TestLemma13Hoeffding:
    @pytest.mark.parametrize("k", [10, 50, 200])
    @pytest.mark.parametrize("gap", [0.1, 0.3])
    def test_bound_holds(self, k, gap):
        p, q = 0.4, 0.4 + gap
        exact = compare_binomials(k, p, q).p_second_wins  # P(B(p) < B(q))
        assert exact >= hoeffding_favorite_bound(k, p, q) - 1e-12

    def test_requires_ordering(self):
        with pytest.raises(ValueError):
            hoeffding_favorite_bound(10, 0.6, 0.4)


class TestLemma15BerryEsseen:
    @pytest.mark.parametrize("k", [20, 100, 400])
    def test_bound_holds(self, k):
        p, q = 0.45, 0.55
        exact = compare_binomials(k, p, q).p_first_wins  # underdog p wins
        bound = berry_esseen_underdog_bound(k, p, q)
        assert exact >= bound - 1e-12

    def test_bound_can_be_vacuous_but_valid(self):
        # Large gap: the bound may go negative; the exact value still exceeds it.
        exact = compare_binomials(50, 0.1, 0.9).p_first_wins
        assert exact >= berry_esseen_underdog_bound(50, 0.1, 0.9)

    def test_requires_ordering(self):
        with pytest.raises(ValueError):
            berry_esseen_underdog_bound(10, 0.6, 0.4)


class TestLemma12:
    @pytest.mark.parametrize("k", [16, 64, 256])
    def test_upper_bound_holds(self, k):
        p = 0.45
        for frac in (0.25, 0.5, 1.0):
            q = p + frac / math.sqrt(k)
            if q > 2 / 3:
                continue
            exact = compare_binomials(k, p, q).p_second_wins  # P(B(p) < B(q))
            assert exact < lemma12_upper_bound(k, p, q) + 1e-12

    def test_domain_validation(self):
        with pytest.raises(ValueError):
            lemma12_upper_bound(16, 0.1, 0.5)
        with pytest.raises(ValueError):
            lemma12_upper_bound(16, 0.4, 0.66)  # gap 0.26 > 1/sqrt(16)

    def test_alpha_constant_positive(self):
        assert LEMMA12_ALPHA > 1


class TestLemma14:
    @pytest.mark.parametrize("lam", [2.0, 6.0])
    def test_lower_bound_holds_for_large_k(self, lam):
        """Lemma 14 guarantees the bound for k large and p, q near 1/2."""
        k = 4000
        p, q = 0.499, 0.501
        exact = compare_binomials(k, p, q).p_second_wins  # P(B(p) < B(q))
        assert exact > lemma14_lower_bound(k, p, q, lam)

    def test_requires_ordering(self):
        with pytest.raises(ValueError):
            lemma14_lower_bound(10, 0.6, 0.4, 2.0)


class TestClaim10:
    @pytest.mark.parametrize("k,p,q", [(10, 0.3, 0.5), (50, 0.45, 0.55), (100, 0.4, 0.41)])
    def test_expected_abs_difference_bound(self, k, p, q):
        exact = exact_expected_abs_difference(k, p, q)
        assert exact <= expected_abs_difference_bound(k, p, q) + 1e-12

    def test_exact_value_nonnegative(self):
        assert exact_expected_abs_difference(10, 0.2, 0.8) > 0
