"""Unit tests for span tracing, the event log, and trace export.

Covers the two new ambient telemetry pillars (:mod:`repro.telemetry.spans`,
:mod:`repro.telemetry.events`) and the Chrome trace-event / ASCII timeline
exporters built on top of them.  End-to-end sweep integration lives in
``test_observability.py``; these tests pin the value-object contracts:
parent resolution, capacity bounds, by-value snapshots, graft/absorb
determinism, and the exact trace-event shapes Perfetto expects.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.telemetry.chrome_trace import (
    chrome_trace,
    render_timeline,
    timeline_lanes,
    write_chrome_trace,
)
from repro.telemetry.events import (
    EventLog,
    current_event_log,
    emit_event,
    use_event_log,
    write_events_jsonl,
)
from repro.telemetry.spans import (
    SpanLog,
    SpanTracer,
    current_tracer,
    span,
    use_tracer,
)


def make_log(records, pid=1000, epoch_wall=100.0, dropped=0) -> SpanLog:
    """Hand-built SpanLog with full records (timing chosen, not measured)."""
    full = []
    for record in records:
        full.append(
            {
                "name": record["name"],
                "labels": dict(record.get("labels", {})),
                "start": record.get("start", 0.0),
                "duration": record.get("duration", 1.0),
                "parent": record.get("parent", -1),
                **({"pid": record["pid"]} if "pid" in record else {}),
            }
        )
    return SpanLog(pid=pid, epoch_wall=epoch_wall, records=full, dropped=dropped)


class TestSpanTracer:
    def test_nesting_resolves_parents(self):
        tracer = SpanTracer()
        with tracer.span("outer"):
            with tracer.span("middle"):
                with tracer.span("inner"):
                    pass
            with tracer.span("sibling"):
                pass
        names = [r["name"] for r in tracer.records]
        parents = [r["parent"] for r in tracer.records]
        assert names == ["outer", "middle", "inner", "sibling"]
        assert parents == [-1, 0, 1, 0]

    def test_durations_stamped_on_close(self):
        tracer = SpanTracer()
        with tracer.span("a"):
            pass
        record = tracer.records[0]
        assert record["duration"] is not None
        assert record["duration"] >= 0.0
        assert record["start"] >= 0.0

    def test_open_span_has_none_duration_in_snapshot(self):
        tracer = SpanTracer()
        with tracer.span("open"):
            log = tracer.snapshot()
            assert log.records[0]["duration"] is None
        # after exit the tracer's own record is closed
        assert tracer.records[0]["duration"] is not None

    def test_labels_stringified_and_sorted(self):
        tracer = SpanTracer()
        with tracer.span("cell", n=120, zeta="x", alpha=1.5):
            pass
        labels = tracer.records[0]["labels"]
        assert labels == {"alpha": "1.5", "n": "120", "zeta": "x"}
        assert list(labels) == ["alpha", "n", "zeta"]

    def test_capacity_drops_and_keeps_stack_integrity(self):
        tracer = SpanTracer(max_spans=2)
        with tracer.span("a"):
            with tracer.span("b"):
                with tracer.span("c"):  # dropped
                    with tracer.span("d"):  # dropped
                        pass
        assert len(tracer) == 2
        assert tracer.dropped == 2
        assert [r["name"] for r in tracer.records] == ["a", "b"]
        # both surviving spans were closed despite the dropped inner pair
        assert all(r["duration"] is not None for r in tracer.records)
        assert tracer._stack == []

    def test_parent_skips_dropped_placeholder(self):
        # A span opened while a dropped span is on the stack must parent to
        # the nearest *recorded* ancestor, not the -1 placeholder.
        tracer = SpanTracer(max_spans=1)
        with tracer.span("root"):
            with tracer.span("lost"):
                pass
        assert len(tracer) == 1
        assert tracer.dropped == 1

    def test_max_spans_must_be_positive(self):
        with pytest.raises(ValueError, match="max_spans"):
            SpanTracer(max_spans=0)

    def test_exception_still_closes_span(self):
        tracer = SpanTracer()
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("x")
        assert tracer.records[0]["duration"] is not None
        assert tracer._stack == []

    def test_snapshot_is_by_value(self):
        tracer = SpanTracer()
        with tracer.span("a", k="v"):
            pass
        log = tracer.snapshot()
        log.records[0]["name"] = "mutated"
        log.records[0]["labels"]["k"] = "mutated"
        assert tracer.records[0]["name"] == "a"
        assert tracer.records[0]["labels"]["k"] == "v"
        assert log.pid == os.getpid()


class TestAmbientTracerSeam:
    def test_off_by_default(self):
        assert current_tracer() is None
        with span("nothing", any_label=1):
            pass  # must be a silent no-op

    def test_use_tracer_installs_and_restores(self):
        tracer = SpanTracer()
        with use_tracer(tracer) as installed:
            assert installed is tracer
            assert current_tracer() is tracer
            with span("via-ambient"):
                pass
        assert current_tracer() is None
        assert [r["name"] for r in tracer.records] == ["via-ambient"]

    def test_nested_use_tracer_restores_outer(self):
        outer, inner = SpanTracer(), SpanTracer()
        with use_tracer(outer):
            with use_tracer(inner):
                with span("deep"):
                    pass
            assert current_tracer() is outer
        assert len(inner) == 1
        assert len(outer) == 0


class TestSpanLog:
    def test_round_trip(self):
        tracer = SpanTracer()
        with tracer.span("a", x=1):
            with tracer.span("b"):
                pass
        log = tracer.snapshot()
        rebuilt = SpanLog.from_dict(log.to_dict())
        assert rebuilt == log
        # and the payload itself is JSON-serializable
        assert json.loads(json.dumps(log.to_dict())) == log.to_dict()

    def test_from_dict_rejects_unknown_schema(self):
        payload = make_log([{"name": "a"}]).to_dict()
        payload["schema"] = 99
        with pytest.raises(ValueError, match="schema"):
            SpanLog.from_dict(payload)

    def test_graft_offsets_and_reparents(self):
        parent = make_log(
            [{"name": "sweep"}, {"name": "dispatch", "parent": 0}], pid=1, epoch_wall=50.0
        )
        child = make_log(
            [{"name": "cell", "start": 0.25}, {"name": "engine.run", "parent": 0, "start": 0.3}],
            pid=2,
            epoch_wall=50.5,
            dropped=3,
        )
        parent.graft(child, parent=0)
        assert len(parent) == 4
        cell, engine = parent.records[2], parent.records[3]
        # child roots hang under the requested parent; children stay offset
        assert cell["parent"] == 0
        assert engine["parent"] == 2
        # starts rebased through the wall-clock epochs: 0.25 + (50.5 - 50.0)
        assert cell["start"] == pytest.approx(0.75)
        assert engine["start"] == pytest.approx(0.8)
        # grafted records carry the originating pid; dropped counts add
        assert cell["pid"] == 2 and engine["pid"] == 2
        assert parent.dropped == 3

    def test_graft_default_parent_keeps_roots(self):
        parent = make_log([{"name": "sweep"}])
        parent.graft(make_log([{"name": "orphan"}], pid=7))
        assert parent.records[1]["parent"] == -1
        assert parent.roots() == [0, 1]

    def test_tree_is_structural_only(self):
        slow = make_log(
            [
                {"name": "sweep", "start": 0.0, "duration": 9.0},
                {"name": "cell", "labels": {"n": "60"}, "parent": 0, "start": 1.0},
                {"name": "cell", "labels": {"n": "90"}, "parent": 0, "start": 5.0},
            ]
        )
        fast = make_log(
            [
                {"name": "sweep", "start": 0.0, "duration": 0.1},
                {"name": "cell", "labels": {"n": "60"}, "parent": 0, "start": 0.01},
                {"name": "cell", "labels": {"n": "90"}, "parent": 0, "start": 0.02},
            ],
            pid=999,
            epoch_wall=1.0,
        )
        assert slow.tree() == fast.tree()
        assert slow.tree() == [
            (
                "sweep",
                (),
                (("cell", (("n", "60"),), ()), ("cell", (("n", "90"),), ())),
            )
        ]

    def test_roots_and_children(self):
        log = make_log(
            [{"name": "a"}, {"name": "b", "parent": 0}, {"name": "c", "parent": 0}]
        )
        assert log.roots() == [0]
        assert log.children(0) == [1, 2]
        assert log.children(1) == []


class TestEventLog:
    def test_emit_stamps_seq_ts_kind(self):
        log = EventLog()
        log.emit("sweep.retry", item=3, attempt=1)
        (event,) = log.events()
        assert event["kind"] == "sweep.retry"
        assert event["seq"] == 0
        assert event["ts"] > 0
        assert event["item"] == 3 and event["attempt"] == 1

    @pytest.mark.parametrize("reserved", ["seq", "ts"])
    def test_reserved_field_names_raise(self, reserved):
        log = EventLog()
        with pytest.raises(ValueError, match="reserved"):
            log.emit("x", **{reserved: 1})
        assert len(log) == 0

    def test_kind_collides_at_signature_level(self):
        # "kind" is the positional parameter itself, so it can never sneak
        # in as a field — Python rejects the duplicate keyword outright.
        with pytest.raises(TypeError):
            EventLog().emit("x", **{"kind": 1})

    def test_ring_drops_oldest(self):
        log = EventLog(capacity=3)
        for index in range(5):
            log.emit("tick", index=index)
        assert len(log) == 3
        assert log.dropped == 2
        assert [event["index"] for event in log.events()] == [2, 3, 4]
        assert [event["seq"] for event in log.events()] == [2, 3, 4]

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError, match="capacity"):
            EventLog(capacity=0)

    def test_absorb_resequences_but_keeps_timestamps(self):
        worker = EventLog()
        worker.emit("store.append", key="abc")
        worker.emit("sweep.retry", item=0)
        original_ts = [event["ts"] for event in worker.events()]
        parent = EventLog()
        parent.emit("store.cache_hit", key="zzz")
        parent.absorb(worker.events())
        events = parent.events()
        assert [event["seq"] for event in events] == [0, 1, 2]
        assert [event["kind"] for event in events] == [
            "store.cache_hit",
            "store.append",
            "sweep.retry",
        ]
        assert [event["ts"] for event in events[1:]] == original_ts

    def test_absorb_counts_overflow_as_dropped(self):
        parent = EventLog(capacity=2)
        parent.absorb({"seq": i, "ts": 1.0, "kind": "k"} for i in range(4))
        assert len(parent) == 2
        assert parent.dropped == 2

    def test_kinds(self):
        log = EventLog()
        log.emit("a")
        log.emit("b")
        assert log.kinds() == ["a", "b"]

    def test_ambient_seam(self):
        assert current_event_log() is None
        emit_event("ignored", x=1)  # no-op, must not raise
        log = EventLog()
        with use_event_log(log) as installed:
            assert installed is log
            assert current_event_log() is log
            emit_event("seen", x=1)
        assert current_event_log() is None
        assert log.kinds() == ["seen"]


class TestWriteEventsJsonl:
    def test_one_compact_object_per_line(self, tmp_path):
        log = EventLog()
        log.emit("a", value=1)
        log.emit("b", nested={"k": [1, 2]})
        path = write_events_jsonl(tmp_path / "events.jsonl", log.events())
        lines = path.read_text(encoding="utf-8").splitlines()
        assert len(lines) == 2
        parsed = [json.loads(line) for line in lines]
        assert parsed == log.events()
        # compact separators, sorted keys
        assert ": " not in lines[0]
        assert list(parsed[0]) == sorted(parsed[0])

    def test_creates_parent_directories(self, tmp_path):
        target = tmp_path / "deep" / "dir" / "events.jsonl"
        write_events_jsonl(target, [])
        assert target.exists()
        assert target.read_text(encoding="utf-8") == ""


class TestChromeTrace:
    def merged_log(self) -> SpanLog:
        log = make_log(
            [
                {"name": "sweep", "start": 0.0, "duration": 2.0, "labels": {"spec": "g"}},
                {"name": "dispatch", "parent": 0, "start": 0.5, "duration": 1.0},
            ],
            pid=1,
            epoch_wall=100.0,
        )
        log.graft(
            make_log(
                [{"name": "cell", "start": 0.1, "duration": 0.5, "labels": {"n": "60"}}],
                pid=2,
                epoch_wall=100.5,
            ),
            parent=0,
        )
        return log

    def test_closed_spans_become_complete_events(self):
        trace = chrome_trace(self.merged_log())
        spans = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert [e["name"] for e in spans] == ["sweep", "dispatch", "cell"]
        sweep = spans[0]
        assert sweep == {
            "name": "sweep",
            "cat": "repro",
            "ph": "X",
            "ts": 0.0,
            "dur": 2_000_000.0,
            "pid": 1,
            "tid": 0,
            "args": {"spec": "g"},
        }
        # grafted cell: pid from the worker, ts rebased (0.1 + 0.5s shift)
        cell = spans[2]
        assert cell["pid"] == 2
        assert cell["ts"] == pytest.approx(600_000.0)
        assert cell["dur"] == pytest.approx(500_000.0)

    def test_unclosed_spans_are_skipped(self):
        log = make_log([{"name": "open", "duration": None}, {"name": "done"}])
        trace = chrome_trace(log)
        names = [e["name"] for e in trace["traceEvents"] if e["ph"] == "X"]
        assert names == ["done"]

    def test_events_become_instants_without_reserved_keys(self):
        events = [{"seq": 0, "ts": 100.25, "kind": "sweep.retry", "item": 4}]
        trace = chrome_trace(self.merged_log(), events)
        (instant,) = [e for e in trace["traceEvents"] if e["ph"] == "i"]
        assert instant["name"] == "sweep.retry"
        assert instant["s"] == "g"
        assert instant["args"] == {"item": 4}
        assert instant["ts"] == pytest.approx(250_000.0)

    def test_process_metadata_names_lanes(self):
        trace = chrome_trace(self.merged_log())
        metadata = [e for e in trace["traceEvents"] if e["ph"] == "M"]
        assert [(e["pid"], e["args"]["name"]) for e in metadata] == [
            (1, "sweep"),
            (2, "worker-2"),
        ]

    def test_base_defaults_to_earliest_event_without_spans(self):
        events = [
            {"seq": 0, "ts": 10.5, "kind": "late"},
            {"seq": 1, "ts": 10.0, "kind": "early"},
        ]
        trace = chrome_trace(None, events)
        instants = {e["name"]: e["ts"] for e in trace["traceEvents"] if e["ph"] == "i"}
        assert instants["early"] == 0.0
        assert instants["late"] == pytest.approx(500_000.0)

    def test_explicit_base_shifts_timestamps(self):
        trace = chrome_trace(self.merged_log(), base=99.0)
        sweep = next(e for e in trace["traceEvents"] if e["ph"] == "X")
        assert sweep["ts"] == pytest.approx(1_000_000.0)

    def test_empty_trace(self):
        trace = chrome_trace(None)
        assert trace["traceEvents"] == []
        assert trace["displayTimeUnit"] == "ms"

    def test_write_chrome_trace_round_trips(self, tmp_path):
        path = write_chrome_trace(tmp_path / "trace.json", self.merged_log())
        text = path.read_text(encoding="utf-8")
        assert text.endswith("\n")
        loaded = json.loads(text)
        assert loaded == chrome_trace(self.merged_log())


class TestTimeline:
    def trace(self) -> dict:
        return chrome_trace(
            TestChromeTrace().merged_log(),
            [{"seq": 0, "ts": 100.2, "kind": "store.append"}],
        )

    def test_lanes_sweep_first_then_workers(self):
        lanes = timeline_lanes(self.trace())
        assert [lane["label"] for lane in lanes] == ["sweep", "worker-2"]
        assert [lane["pid"] for lane in lanes] == [1, 2]

    def test_nested_spans_get_depth(self):
        (sweep_lane, worker_lane) = timeline_lanes(self.trace())
        by_name = {item["name"]: item for item in sweep_lane["spans"]}
        assert by_name["sweep"]["depth"] == 0
        assert by_name["dispatch"]["depth"] == 1
        assert worker_lane["spans"][0]["depth"] == 0
        assert worker_lane["spans"][0]["dur_s"] == pytest.approx(0.5)

    def test_instants_land_on_their_lane(self):
        (sweep_lane, _) = timeline_lanes(self.trace())
        assert [item["name"] for item in sweep_lane["instants"]] == ["store.append"]
        assert sweep_lane["instants"][0]["ts_s"] == pytest.approx(0.2)

    def test_render_contains_lanes_bars_and_axis(self):
        text = render_timeline(self.trace(), width=80)
        lines = text.splitlines()
        assert lines[0].startswith("timeline: 2.000s total")
        assert any(line.lstrip().startswith("sweep |") for line in lines)
        assert any(line.lstrip().startswith("worker-2 |") for line in lines)
        assert "#" in text
        assert "!" in text  # the instant marker
        assert "busy" in text

    def test_render_empty_trace(self):
        assert render_timeline({"traceEvents": []}) == "timeline: no spans recorded\n"

    def test_render_clamps_tiny_width(self):
        text = render_timeline(self.trace(), width=5)
        assert "timeline:" in text  # still renders at the 20-col floor
