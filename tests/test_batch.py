"""Batched engine: unit semantics plus batched-vs-sequential equivalence.

The batched path must be *exact in distribution*: same success rates, same
convergence-time distribution, same retirement semantics as running one
:class:`SynchronousEngine` per trial. The equivalence tests here compare the
two engines on shared seeds at KS/CI level (the dynamics consume different
streams, so outcomes are statistically — not bitwise — identical).
"""

from __future__ import annotations

import numpy as np
import pytest
from scipy import stats as scipy_stats

from repro.core.batch import (
    BatchedEngine,
    BatchedPopulation,
    run_protocol_batched,
    stack_states,
)
from repro.core.population import make_population
from repro.core.protocol import Protocol
from repro.core.rng import make_rng
from repro.core.sampling import BatchedBinomialSampler, BinomialCountSampler
from repro.experiments.harness import run_trials
from repro.initializers.standard import AllWrong, BernoulliRandom, ExactFraction
from repro.protocols.fet import FETProtocol
from repro.protocols.majority_sampling import MajoritySamplingProtocol
from repro.protocols.simple_trend import SimpleTrendProtocol
from repro.protocols.voter import VoterProtocol


class GrowOneProtocol(Protocol):
    """Deterministic test protocol: one more agent adopts 1 each round.

    Replicas starting with more ones reach the all-ones consensus earlier, so
    a batch retires in a staggered, exactly predictable order.
    """

    name = "grow-one"
    batch_vectorized = True

    def init_state(self, n, rng):
        return {}

    def step(self, population, state, sampler, rng):
        new = population.opinions.copy()
        zeros = np.nonzero(new == 0)[0]
        if zeros.size:
            new[zeros[0]] = 1
        return new

    def step_batch(self, batch, states, sampler, rng):
        new = batch.opinions.copy()
        for row in new:  # deterministic, test-only; clarity over speed
            zeros = np.nonzero(row == 0)[0]
            if zeros.size:
                row[zeros[0]] = 1
        return new


class FlipAllProtocol(Protocol):
    """Inverts every opinion every round — never converges, never idles."""

    name = "flip-all"
    batch_vectorized = True

    def init_state(self, n, rng):
        return {}

    def step(self, population, state, sampler, rng):
        return (1 - population.opinions).astype(np.uint8)

    def step_batch(self, batch, states, sampler, rng):
        return (1 - batch.opinions).astype(np.uint8)


class TestBatchedPopulation:
    def test_from_population_tiles(self):
        pop = make_population(10, 1)
        batch = BatchedPopulation.from_population(pop, 4)
        assert batch.replicas == 4 and batch.n == 10
        assert np.array_equal(batch.opinions, np.tile(pop.opinions, (4, 1)))

    def test_from_populations_requires_shared_structure(self):
        a = make_population(10, 1)
        b = make_population(10, 1, num_sources=2)
        with pytest.raises(ValueError):
            BatchedPopulation.from_populations([a, b])

    def test_per_replica_predicates(self):
        pop = make_population(4, 1)
        batch = BatchedPopulation.from_population(pop, 3)
        batch.opinions[0] = [1, 1, 1, 1]
        batch.opinions[1] = [1, 0, 0, 0]
        batch.opinions[2] = [1, 1, 0, 0]
        batch.invalidate_cache()
        assert np.array_equal(batch.at_correct_consensus(), [True, False, False])
        assert np.array_equal(batch.fraction_ones(), [1.0, 0.25, 0.5])
        assert np.array_equal(batch.at_consensus(), [True, False, False])

    def test_pin_sources_every_row(self):
        pop = make_population(6, 1)
        batch = BatchedPopulation.from_population(pop, 3)
        batch.set_opinions(np.zeros((3, 6), dtype=np.uint8))
        assert (batch.opinions[:, 0] == 1).all()

    def test_select_rows_and_cache(self):
        pop = make_population(5, 1)
        batch = BatchedPopulation.from_population(pop, 4)
        batch.opinions[2] = 1
        batch.invalidate_cache()
        counts = batch.count_ones()
        sub = batch.select(np.array([2, 3]))
        assert sub.replicas == 2
        assert np.array_equal(sub.count_ones(), counts[[2, 3]])

    def test_replica_view_snapshot(self):
        pop = make_population(5, 1)
        batch = BatchedPopulation.from_population(pop, 2)
        view = batch.replica(1)
        assert view.n == 5
        assert np.shares_memory(view.opinions, batch.opinions)

    def test_rejects_non_binary(self):
        pop = make_population(5, 1)
        with pytest.raises(ValueError):
            BatchedPopulation(
                opinions=np.full((2, 5), 3, dtype=np.uint8),
                source_mask=pop.source_mask,
                source_preferences=pop.source_preferences,
                correct_opinion=1,
            )

    def test_stack_states_shapes(self):
        states = [{"a": np.arange(3)} for _ in range(4)]
        stacked = stack_states(states)
        assert stacked["a"].shape == (4, 3)
        assert stack_states([{} for _ in range(4)]) == {}


class TestBatchedEngineSemantics:
    def test_validates_stability_rounds(self):
        pop = make_population(10, 1)
        engine = BatchedEngine(FlipAllProtocol(), BatchedPopulation.from_population(pop, 2), rng=0)
        with pytest.raises(ValueError):
            engine.run(10, stability_rounds=0)

    def test_validates_max_rounds(self):
        pop = make_population(10, 1)
        engine = BatchedEngine(FlipAllProtocol(), BatchedPopulation.from_population(pop, 2), rng=0)
        with pytest.raises(ValueError):
            engine.run(-1)

    def test_rejects_zero_max_rounds_like_run_trials(self):
        # Regression: the engine used to accept max_rounds=0 while run_trials
        # rejected it; both layers must refuse with the same message.
        pop = make_population(10, 1)
        engine = BatchedEngine(FlipAllProtocol(), BatchedPopulation.from_population(pop, 2), rng=0)
        with pytest.raises(ValueError, match="max_rounds must be >= 1, got 0"):
            engine.run(0)
        with pytest.raises(ValueError, match="max_rounds must be >= 1, got 0"):
            run_trials(
                lambda: FETProtocol(8), 10, AllWrong(), trials=2, max_rounds=0, seed=0
            )

    def test_run_is_single_shot(self):
        # Retirement compacts the state arrays, so a second run has nothing
        # coherent to resume from — the engine must refuse, not crash.
        pop = make_population(10, 1)
        engine = BatchedEngine(GrowOneProtocol(), BatchedPopulation.from_population(pop, 2), rng=0)
        engine.run(100)
        with pytest.raises(RuntimeError):
            engine.run(100)

    def test_staggered_retirement_rounds(self):
        # Replica r starts with r+1 ones (sources included); grow-one reaches
        # all-ones after n - (r+1) rounds, which is t_con with stability 1.
        n, replicas = 8, 5
        pop = make_population(n, 1)
        batch = BatchedPopulation.from_population(pop, replicas)
        for r in range(replicas):
            batch.opinions[r, : r + 1] = 1
        batch.invalidate_cache()
        engine = BatchedEngine(GrowOneProtocol(), batch, rng=0)
        result = engine.run(100, stability_rounds=1)
        assert result.converged.all()
        expected = [n - (r + 1) for r in range(replicas)]
        assert result.rounds.tolist() == expected
        assert result.rounds_executed.tolist() == expected

    def test_retired_replica_state_frozen(self):
        # Replica 0 starts at correct consensus and retires at round 0 with
        # stability 1 — before any step. flip-all would destroy its consensus
        # on the very first step, so an unchanged final state proves the
        # active-mask actually removed it from the dynamics.
        pop = make_population(6, 1)
        batch = BatchedPopulation.from_population(pop, 2)
        batch.opinions[0] = 1
        # a mixed row stays mixed under flip-all (+ re-pin), so it never
        # reaches any consensus
        batch.opinions[1] = [1, 1, 0, 0, 0, 0]
        batch.invalidate_cache()
        engine = BatchedEngine(FlipAllProtocol(), batch, rng=0)
        result = engine.run(7, stability_rounds=1)
        assert result.converged.tolist() == [True, False]
        assert result.rounds.tolist() == [0, 7]
        assert (engine.batch.opinions[0] == 1).all()
        # the live replica kept flipping (odd number of rounds, source re-pinned)
        assert not (engine.batch.opinions[1] == engine.batch.opinions[0]).all()

    def test_stability_window_matches_sequential_accounting(self):
        # grow-one with stability 2: t_con is still the first all-correct
        # round; the extra confirmation round only delays retirement.
        n = 6
        pop = make_population(n, 1)
        batch = BatchedPopulation.from_population(pop, 1)
        engine = BatchedEngine(GrowOneProtocol(), batch, rng=0)
        result = engine.run(100, stability_rounds=2)
        assert result.converged.all()
        assert result.rounds[0] == n - 1
        assert result.rounds_executed[0] == n  # one confirmation round more

    def test_non_converged_reports_max_rounds(self):
        pop = make_population(6, 1)
        result = run_protocol_batched(FlipAllProtocol(), pop, 3, 9, rng=0)
        assert not result.converged.any()
        assert (result.rounds == 9).all()
        assert (result.rounds_executed == 9).all()

    def test_generic_fallback_matches_vectorized_distribution(self):
        # Drive FET once through its vectorized step_batch and once through
        # the generic per-replica fallback; outcomes must agree statistically.
        def run(force_fallback: bool) -> np.ndarray:
            protocol = FETProtocol(16)
            if force_fallback:
                protocol.step_batch = (  # type: ignore[method-assign]
                    lambda *args: Protocol.step_batch(protocol, *args)
                )
            pop = make_population(120, 1)
            batch = BatchedPopulation.from_population(pop, 64)
            rng = make_rng(5)
            states = protocol.randomize_state_batch(64, 120, rng)
            engine = BatchedEngine(protocol, batch, rng=rng, states=states)
            return engine.run(400).rounds

        # KS on convergence rounds; both paths must see the same dynamics law
        a, b = run(False), run(True)
        assert scipy_stats.ks_2samp(a, b).pvalue > 1e-3


def _times(stats):
    return np.asarray(stats.times, dtype=float)


class TestEngineEquivalence:
    """Batched vs sequential: success rates and time distributions agree."""

    def check(self, factory, n, initializer, *, trials, max_rounds, seed, sampler=None,
              batched_sampler=None, expect_success=None):
        seq = run_trials(
            factory, n, initializer, trials=trials, max_rounds=max_rounds, seed=seed,
            engine="sequential", sampler_factory=sampler,
        )
        bat = run_trials(
            factory, n, initializer, trials=trials, max_rounds=max_rounds, seed=seed,
            engine="batched", batched_sampler=batched_sampler,
            sampler_factory=sampler,
        )
        assert bat.engine == "batched" and seq.engine == "sequential"
        # success-rate agreement at CI level (overlapping Wilson intervals)
        lo_s, hi_s = seq.success_interval
        lo_b, hi_b = bat.success_interval
        assert max(lo_s, lo_b) <= min(hi_s, hi_b), (
            f"success CIs disjoint: seq [{lo_s:.3f},{hi_s:.3f}] vs bat [{lo_b:.3f},{hi_b:.3f}]"
        )
        if expect_success is not None:
            assert seq.success_rate == expect_success
            assert bat.success_rate == expect_success
        ts, tb = _times(seq), _times(bat)
        if ts.size > 30 and tb.size > 30:
            assert scipy_stats.ks_2samp(ts, tb).pvalue > 1e-3
        return seq, bat

    def test_fet_equivalent(self):
        self.check(
            lambda: FETProtocol(24), 300, AllWrong(),
            trials=300, max_rounds=1500, seed=11, expect_success=1.0,
        )

    def test_fet_random_start_equivalent(self):
        self.check(
            lambda: FETProtocol(24), 300, BernoulliRandom(0.5),
            trials=300, max_rounds=1500, seed=12, expect_success=1.0,
        )

    def test_simple_trend_equivalent(self):
        self.check(
            lambda: SimpleTrendProtocol(24), 300, AllWrong(),
            trials=200, max_rounds=1500, seed=13, expect_success=1.0,
        )

    def test_voter_equivalent(self):
        # Small n so the voter's polynomial escape is reachable; compare the
        # full outcome distribution, successes and failures alike.
        self.check(
            lambda: VoterProtocol(), 24, BernoulliRandom(0.5),
            trials=300, max_rounds=400, seed=14,
        )

    def test_majority_sampling_equivalent(self):
        # Correct-majority random start: sample-majority amplifies to the
        # correct consensus quickly.
        self.check(
            lambda: MajoritySamplingProtocol(24), 300, BernoulliRandom(0.75),
            trials=300, max_rounds=400, seed=15, expect_success=1.0,
        )

    def test_majority_sampling_lockin_equivalent(self):
        # All-wrong start: both engines must agree the protocol fails.
        seq, bat = self.check(
            lambda: MajoritySamplingProtocol(24), 300, AllWrong(),
            trials=60, max_rounds=120, seed=16,
        )
        assert seq.successes == 0 and bat.successes == 0

    def test_exact_fraction_equivalent(self):
        self.check(
            lambda: FETProtocol(24), 300, ExactFraction(0.7),
            trials=200, max_rounds=1500, seed=17, expect_success=1.0,
        )

    def test_clock_sync_equivalent(self):
        # The decoupled-message baseline on its vectorized step_batch: same
        # success law and convergence-time law as the per-trial engine.
        from repro.protocols.clock_sync import ClockSyncProtocol
        from repro.protocols.fet import ell_for

        n = 200
        budget = 40 * ClockSyncProtocol(n, 8).period
        self.check(
            lambda: ClockSyncProtocol(n, ell_for(n)), n, AllWrong(),
            trials=120, max_rounds=budget, seed=18, expect_success=1.0,
        )


class TestRunTrialsDispatch:
    def test_auto_uses_batched_for_vectorized_protocol(self):
        stats = run_trials(
            lambda: FETProtocol(16), 100, AllWrong(), trials=8, max_rounds=400, seed=0
        )
        assert stats.engine == "batched"

    def test_auto_keeps_batched_for_keep_results(self):
        # Since the trace subsystem, keep_results rides the batched engine:
        # a FullTrace recorder captures per-replica trajectories and converts
        # them back into per-trial RunResults.
        stats = run_trials(
            lambda: FETProtocol(16), 100, AllWrong(), trials=4, max_rounds=400, seed=0,
            keep_results=True,
        )
        assert stats.engine == "batched"
        assert len(stats.results) == 4
        for result in stats.results:
            assert result.converged
            # trajectory covers round 0 through the rounds the replica executed
            assert result.trajectory.shape[0] >= result.rounds + 1

    def test_sequential_escape_hatch_for_keep_results(self):
        stats = run_trials(
            lambda: FETProtocol(16), 100, AllWrong(), trials=4, max_rounds=400, seed=0,
            keep_results=True, engine="sequential",
        )
        assert stats.engine == "sequential"
        assert len(stats.results) == 4

    def test_auto_falls_back_for_custom_sampler(self):
        stats = run_trials(
            lambda: FETProtocol(16), 100, AllWrong(), trials=4, max_rounds=400, seed=0,
            sampler_factory=BinomialCountSampler,
        )
        assert stats.engine == "sequential"

    def test_batched_keep_results_matches_sequential_shape(self):
        seq = run_trials(
            lambda: FETProtocol(16), 100, AllWrong(), trials=4, max_rounds=400,
            seed=0, engine="sequential", keep_results=True,
        )
        bat = run_trials(
            lambda: FETProtocol(16), 100, AllWrong(), trials=4, max_rounds=400,
            seed=0, engine="batched", keep_results=True,
        )
        assert len(bat.results) == len(seq.results) == 4
        for result in bat.results + seq.results:
            # same contract: trajectory[0] is the initial all-wrong fraction
            # (one source pinned correct) and the final entry is consensus
            assert result.trajectory[0] == pytest.approx(0.01)
            assert result.final_fraction == 1.0

    def test_batched_rejects_unpaired_sampler(self):
        with pytest.raises(ValueError):
            run_trials(
                lambda: FETProtocol(16), 100, AllWrong(), trials=4, max_rounds=400,
                seed=0, engine="batched", sampler_factory=BinomialCountSampler,
            )

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            run_trials(
                lambda: FETProtocol(16), 100, AllWrong(), trials=4, max_rounds=400,
                seed=0, engine="turbo",
            )

    def test_batched_reproducible(self):
        kwargs = dict(trials=16, max_rounds=500, seed=42, engine="batched")
        a = run_trials(lambda: FETProtocol(24), 300, AllWrong(), **kwargs)
        b = run_trials(lambda: FETProtocol(24), 300, AllWrong(), **kwargs)
        assert np.array_equal(a.times, b.times)

    def test_batched_with_population_factory(self):
        stats = run_trials(
            lambda: FETProtocol(16), 100, AllWrong(), trials=6, max_rounds=400,
            seed=3, engine="batched",
            population_factory=lambda: make_population(100, 0),
        )
        assert stats.successes == 6

    def test_non_vectorized_protocol_through_batched_api(self):
        # Protocols without a vectorized step_batch run through the generic
        # per-replica fallback; it must still carry identity-sampling state
        # (clock-sync's clock vector) end to end through the batched engine.
        from repro.protocols.clock_sync import ClockSyncProtocol

        def factory():
            protocol = ClockSyncProtocol(64, 4)
            protocol.batch_vectorized = False
            protocol.step_batch = (  # type: ignore[method-assign]
                lambda *args: Protocol.step_batch(protocol, *args)
            )
            return protocol

        stats = run_trials(
            factory, 64, AllWrong(),
            trials=3, max_rounds=200, seed=4, engine="batched",
        )
        assert stats.engine == "batched"
        assert stats.trials == 3


class TestBatchedSamplerStatistics:
    def test_methods_agree_in_distribution(self):
        rng = make_rng(0)
        pop = make_population(400, 1)
        batch = BatchedPopulation.from_population(pop, 6)
        # put replicas at assorted fractions, including consensus rows
        fractions = [0.0, 0.05, 0.35, 0.65, 0.97, 1.0]
        for r, x in enumerate(fractions):
            ones = int(round(x * 400))
            batch.opinions[r] = 0
            batch.opinions[r, :ones] = 1
        batch.invalidate_cache()
        draws = {}
        for method in ("auto", "histogram", "binomial", "sparse"):
            sampler = BatchedBinomialSampler(method)
            draws[method] = np.concatenate(
                [sampler.counts(batch, 20, rng) for _ in range(40)], axis=1
            )
        for r, x in enumerate(fractions):
            ref = draws["binomial"][r]
            for method in ("auto", "histogram", "sparse"):
                got = draws[method][r]
                assert got.min() >= 0 and got.max() <= 20
                if x in (0.0, 1.0):
                    assert (got == (0 if x == 0.0 else 20)).all()
                    continue
                assert scipy_stats.ks_2samp(got, ref).pvalue > 1e-4, (r, x, method)

    def test_moments_match_theory(self):
        rng = make_rng(1)
        x = np.array([0.02, 0.3, 0.5, 0.8, 0.995])
        from repro.core.sampling import batched_binomial_counts

        ell, n = 40, 60000
        counts = batched_binomial_counts(rng, ell, x, 1, n)[0]
        mean = counts.mean(axis=1)
        var = counts.var(axis=1)
        assert np.allclose(mean, ell * x, rtol=0.05, atol=0.05)
        assert np.allclose(var, ell * x * (1 - x), rtol=0.1, atol=0.1)

    def test_block_independence_shape(self):
        rng = make_rng(2)
        pop = make_population(50, 1)
        batch = BatchedPopulation.from_population(pop, 3)
        sampler = BatchedBinomialSampler()
        blocks = sampler.count_blocks(batch, 7, 2, rng)
        assert blocks.shape == (2, 3, 50)

    def test_scalar_pairing(self):
        assert isinstance(BatchedBinomialSampler().scalar(), BinomialCountSampler)

    def test_rejects_bad_method(self):
        with pytest.raises(ValueError):
            BatchedBinomialSampler("alias")

    def test_rejects_negative_ell(self):
        rng = make_rng(3)
        pop = make_population(50, 1)
        batch = BatchedPopulation.from_population(pop, 2)
        with pytest.raises(ValueError):
            BatchedBinomialSampler().count_blocks(batch, -1, 2, rng)


class TestBatchedNoise:
    def test_noisy_equivalence(self):
        from repro.core.noise import BatchedNoisyCountSampler, NoisyCountSampler

        seq = run_trials(
            lambda: FETProtocol(24), 200, AllWrong(), trials=120, max_rounds=60,
            seed=21, engine="sequential", sampler_factory=lambda: NoisyCountSampler(0.1),
        )
        bat = run_trials(
            lambda: FETProtocol(24), 200, AllWrong(), trials=120, max_rounds=60,
            seed=21, engine="batched", sampler_factory=lambda: NoisyCountSampler(0.1),
            batched_sampler=BatchedNoisyCountSampler(0.1),
        )
        assert bat.engine == "batched"
        lo_s, hi_s = seq.success_interval
        lo_b, hi_b = bat.success_interval
        assert max(lo_s, lo_b) <= min(hi_s, hi_b)
