"""Fault-tolerant sweep execution: retries, timeouts, crash isolation,
failure records, and the deterministic fault-injection harness.

The acceptance contract (ISSUE 6): a sweep with injected worker crashes,
cell exceptions, and hangs completes under ``FaultPolicy(max_retries=2,
timeout=..., on_failure="record")``; successfully-retried cells are bitwise
identical to a fault-free run at any job count; exhausted cells appear as
structured failure records in the store and as ``error`` rows in the CSV;
and no fault aborts the sweep.
"""

from __future__ import annotations

import json
import os
import pickle
import re
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

import repro
from repro.sweep import (
    CellTimeoutError,
    FailedItem,
    FaultInjector,
    FaultPlan,
    FaultPolicy,
    InjectedFault,
    ProcessPoolDispatcher,
    ResultsStore,
    SerialDispatcher,
    SweepSpec,
    execute_cell,
    run_sweep,
)

# --------------------------------------------------------------- work fns
# Module-level so they pickle into pool workers.


def _times_ten(x: int) -> int:
    return x * 10


class _MarkingWorker:
    """Records which items ran (as files) and raises on item 0."""

    def __init__(self, mark_dir: Path, sleep: float = 0.3) -> None:
        self.mark_dir = Path(mark_dir)
        self.sleep = sleep

    def __call__(self, item: int) -> int:
        self.mark_dir.mkdir(parents=True, exist_ok=True)
        (self.mark_dir / f"ran_{item}").write_text("")
        if item == 0:
            raise RuntimeError("boom on item 0")
        time.sleep(self.sleep)
        return item


def chaos_spec(seed: int = 7, **overrides) -> SweepSpec:
    """Six fast FET cells: 3 sizes x 2 starts."""
    settings = dict(
        name="chaos-grid",
        seed=seed,
        trials=2,
        axes={
            "protocol": [{"name": "fet", "ell": 8}],
            "n": [60, 90, 120],
            "initializer": ["all-wrong", {"name": "bernoulli", "p": 0.5}],
        },
        max_rounds=120,
    )
    settings.update(overrides)
    return SweepSpec(**settings)


def record_policy(**overrides) -> FaultPolicy:
    settings = dict(max_retries=2, backoff_base=0.0, on_failure="record")
    settings.update(overrides)
    return FaultPolicy(**settings)


def injector(plan: FaultPlan, cells, tmp_path: Path) -> FaultInjector:
    return FaultInjector(execute_cell, plan, cells, tmp_path / "counters")


# ------------------------------------------------------------ FaultPolicy


class TestFaultPolicy:
    def test_validation(self):
        with pytest.raises(ValueError, match="max_retries"):
            FaultPolicy(max_retries=-1)
        with pytest.raises(ValueError, match="backoff_base"):
            FaultPolicy(backoff_base=-0.1)
        with pytest.raises(ValueError, match="timeout must be positive"):
            FaultPolicy(timeout=0)
        with pytest.raises(ValueError, match="on_failure"):
            FaultPolicy(on_failure="ignore")
        with pytest.raises(ValueError, match="jitter"):
            FaultPolicy(jitter=-1)

    def test_backoff_exponential_with_jitter_bounds(self):
        policy = FaultPolicy(backoff_base=0.1, backoff_max=30.0, jitter=0.5)
        for attempt in (1, 2, 3):
            base = 0.1 * 2 ** (attempt - 1)
            for _ in range(20):
                delay = policy.backoff(attempt)
                assert base <= delay <= base * 1.5

    def test_backoff_capped_and_disabled(self):
        policy = FaultPolicy(backoff_base=1.0, backoff_max=2.0, jitter=0.0)
        assert policy.backoff(10) == 2.0
        assert FaultPolicy(backoff_base=0.0).backoff(1) == 0.0
        with pytest.raises(ValueError, match="attempt"):
            policy.backoff(0)


# -------------------------------------------------------------- FaultPlan


class TestFaultPlan:
    def test_fault_lookup(self):
        plan = FaultPlan(faults={2: {0: "raise", 1: "kill"}})
        assert plan.fault_for(2, 0) == "raise"
        assert plan.fault_for(2, 1) == "kill"
        assert plan.fault_for(2, 2) is None
        assert plan.fault_for(0, 0) is None
        assert plan.faulted_cells == (2,)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultPlan(faults={0: {0: "typo"}})
        with pytest.raises(ValueError, match="hang_seconds"):
            FaultPlan(hang_seconds=-1)

    def test_sample_is_seed_deterministic(self):
        a = FaultPlan.sample(50, seed=3, rate=0.4, kinds=("raise", "kill"))
        b = FaultPlan.sample(50, seed=3, rate=0.4, kinds=("raise", "kill"))
        c = FaultPlan.sample(50, seed=4, rate=0.4, kinds=("raise", "kill"))
        assert a.faults == b.faults
        assert a.faults != c.faults
        assert all(
            kind in ("raise", "kill")
            for per_attempt in a.faults.values()
            for kind in per_attempt.values()
        )

    def test_sample_validation(self):
        with pytest.raises(ValueError, match="rate"):
            FaultPlan.sample(10, seed=0, rate=1.5)
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultPlan.sample(10, seed=0, kinds=("explode",))


# ---------------------------------------------------------- FaultInjector


class TestFaultInjector:
    def test_counts_attempts_and_injects_on_planned_ones(self, tmp_path):
        plan = FaultPlan(faults={1: {0: "raise", 2: "raise"}})
        inject = FaultInjector(_times_ten, plan, [5, 6, 7], tmp_path)
        assert inject(5) == 50  # cell 0 never faulted
        with pytest.raises(InjectedFault, match="cell 1, attempt 0"):
            inject(6)
        assert inject(6) == 60  # attempt 1 clean
        with pytest.raises(InjectedFault, match="cell 1, attempt 2"):
            inject(6)
        assert inject.attempts_seen(6) == 3

    def test_round_trips_through_pickle(self, tmp_path):
        plan = FaultPlan(faults={0: {1: "kill"}})
        inject = FaultInjector(_times_ten, plan, [1, 2], tmp_path)
        clone = pickle.loads(pickle.dumps(inject))
        assert clone(2) == 20
        # the clone and the original share the file-based attempt counter
        assert inject.attempts_seen(2) == 1

    def test_plan_beyond_items_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="beyond the item list"):
            FaultInjector(_times_ten, FaultPlan(faults={9: {0: "raise"}}), [1, 2], tmp_path)

    def test_duplicate_item_keys_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="distinct keys"):
            FaultInjector(_times_ten, FaultPlan(), [1, 1], tmp_path)


# ------------------------------------------------- SerialDispatcher faults


class TestSerialDispatcherFaults:
    def test_retry_then_succeed(self, tmp_path):
        plan = FaultPlan(faults={1: {0: "raise"}})
        inject = FaultInjector(_times_ten, plan, [1, 2, 3], tmp_path)
        results = SerialDispatcher().map(inject, [1, 2, 3], policy=record_policy())
        assert results == [10, 20, 30]
        assert inject.attempts_seen(2) == 2

    def test_exhausted_raises_by_default(self, tmp_path):
        plan = FaultPlan(faults={0: {0: "raise", 1: "raise"}})
        inject = FaultInjector(_times_ten, plan, [1], tmp_path)
        with pytest.raises(InjectedFault):
            SerialDispatcher().map(
                inject, [1], policy=FaultPolicy(max_retries=1, backoff_base=0.0)
            )

    def test_exhausted_records_failed_item(self, tmp_path):
        plan = FaultPlan(faults={0: {0: "raise", 1: "raise", 2: "raise"}})
        inject = FaultInjector(_times_ten, plan, [1, 2], tmp_path)
        seen = []
        results = SerialDispatcher().map(
            inject, [1, 2], on_result=lambda i, r: seen.append(i), policy=record_policy()
        )
        failed, ok = results
        assert isinstance(failed, FailedItem)
        assert failed.index == 0 and ok == 20
        assert failed.error_type == "InjectedFault"
        assert len(failed.attempts) == 3
        assert [entry["attempt"] for entry in failed.attempts] == [1, 2, 3]
        assert all(entry["kind"] == "exception" for entry in failed.attempts)
        assert any("InjectedFault" in line for line in failed.attempts[-1]["traceback"])
        assert seen == [0, 1]


# -------------------------------------------- ProcessPoolDispatcher faults


class TestPoolFaults:
    @pytest.mark.timeout(120)
    def test_exception_retry_then_succeed(self, tmp_path):
        plan = FaultPlan(faults={0: {0: "raise", 1: "raise"}, 2: {0: "raise"}})
        inject = FaultInjector(_times_ten, plan, [1, 2, 3], tmp_path)
        results = ProcessPoolDispatcher(2).map(inject, [1, 2, 3], policy=record_policy())
        assert results == [10, 20, 30]
        assert inject.attempts_seen(1) == 3

    @pytest.mark.timeout(120)
    def test_raise_aborts_promptly_without_draining_queue(self, tmp_path):
        # Satellite bugfix: a worker exception used to let every queued cell
        # run to completion before propagating. Submission is now throttled
        # and the pool torn down on abort, so most of the queue never runs.
        items = list(range(8))
        worker = _MarkingWorker(tmp_path / "marks", sleep=0.5)
        with pytest.raises(RuntimeError, match="boom on item 0"):
            ProcessPoolDispatcher(2).map(worker, items)
        ran = len(list((tmp_path / "marks").glob("ran_*")))
        assert ran <= 4, f"queued items should have been cancelled, but {ran}/8 ran"

    @pytest.mark.timeout(120)
    def test_worker_kill_is_survived(self, tmp_path):
        plan = FaultPlan(faults={1: {0: "kill"}})
        inject = FaultInjector(_times_ten, plan, [1, 2, 3, 4], tmp_path)
        results = ProcessPoolDispatcher(2).map(inject, [1, 2, 3, 4], policy=record_policy())
        assert results == [10, 20, 30, 40]

    @pytest.mark.timeout(120)
    def test_worker_kill_without_retries_raises_broken_worker(self, tmp_path):
        from repro.sweep import BrokenWorkerError

        plan = FaultPlan(faults={0: {0: "kill"}})
        inject = FaultInjector(_times_ten, plan, [1, 2], tmp_path)
        with pytest.raises(BrokenWorkerError):
            ProcessPoolDispatcher(2).map(inject, [1, 2], policy=FaultPolicy())

    @pytest.mark.timeout(120)
    def test_hung_cell_recovered_by_watchdog(self, tmp_path):
        plan = FaultPlan(faults={0: {0: "hang"}}, hang_seconds=600)
        inject = FaultInjector(_times_ten, plan, [1, 2, 3], tmp_path)
        start = time.monotonic()
        results = ProcessPoolDispatcher(2).map(
            inject, [1, 2, 3], policy=record_policy(timeout=1.5)
        )
        elapsed = time.monotonic() - start
        assert results == [10, 20, 30]
        assert 1.5 <= elapsed < 60
        # innocent in-flight neighbours were requeued, not charged: only the
        # hung cell shows a second attempt beyond the pool-rebuild reruns
        assert inject.attempts_seen(1) == 2

    @pytest.mark.timeout(120)
    def test_timeout_exhaustion_recorded(self, tmp_path):
        plan = FaultPlan(faults={0: {0: "hang", 1: "hang"}}, hang_seconds=600)
        inject = FaultInjector(_times_ten, plan, [1, 2], tmp_path)
        results = ProcessPoolDispatcher(2).map(
            inject, [1, 2], policy=record_policy(max_retries=1, timeout=1.0)
        )
        failed, ok = results
        assert ok == 20
        assert isinstance(failed, FailedItem)
        assert len(failed.attempts) == 2
        assert failed.error_type == "CellTimeoutError"
        assert all(entry["kind"] == "timeout" for entry in failed.attempts)

    @pytest.mark.timeout(120)
    def test_timeout_exhaustion_raises_by_default(self, tmp_path):
        plan = FaultPlan(faults={0: {0: "hang"}}, hang_seconds=600)
        inject = FaultInjector(_times_ten, plan, [1], tmp_path)
        with pytest.raises(CellTimeoutError):
            ProcessPoolDispatcher(2).map(inject, [1], policy=FaultPolicy(timeout=1.0))

    def test_policy_defaults_keep_plain_behavior(self):
        results = ProcessPoolDispatcher(3).map(_times_ten, [1, 2, 3, 4, 5])
        assert results == [10, 20, 30, 40, 50]


# --------------------------------------------------- chaos acceptance tests


class TestChaosSweep:
    @pytest.mark.timeout(300)
    def test_crashes_hangs_and_exceptions_complete_and_match_fault_free(self, tmp_path):
        spec = chaos_spec()
        cells = spec.expand()
        fault_free = run_sweep(spec, jobs=1)

        plan = FaultPlan(
            faults={
                1: {0: "raise"},                      # transient exception
                2: {0: "kill"},                       # worker death -> pool rebuild
                3: {0: "hang"},                       # watchdog or crash-recovery
                4: {0: "raise", 1: "raise", 2: "raise"},  # exhausts retries
            },
            hang_seconds=600,
        )
        store_path = tmp_path / "store.jsonl"
        outcome = run_sweep(
            spec,
            jobs=3,
            store=store_path,
            policy=record_policy(timeout=3.0),
            work_fn=injector(plan, cells, tmp_path),
        )

        # No fault aborted the sweep; exactly the exhausted cell failed.
        assert outcome.failed == 1
        assert outcome.results[4].failed
        # Every recovered cell is bitwise identical to the fault-free run.
        for index, (clean, chaotic) in enumerate(zip(fault_free.results, outcome.results)):
            if index != 4:
                assert chaotic.payload == clean.payload

        # The store carries a structured failure record.
        record = ResultsStore(store_path).get(cells[4].key())
        assert record["error"]["type"] == "InjectedFault"
        assert record["error"]["attempts"] == 3
        assert len(record["error"]["attempt_log"]) == 3
        assert record["error"]["traceback"]
        assert "payload" not in record

        # The CSV gains an error column; failure rows are NaN + error text.
        csv = outcome.write_csv(tmp_path / "chaos.csv").read_text()
        lines = csv.splitlines()
        assert lines[0].endswith(",error")
        failure_line = lines[1 + 4]
        assert "InjectedFault" in failure_line
        assert ",,,," in failure_line  # blank payload columns
        # Fault-free sweeps keep the historical header (no error column).
        clean_csv = fault_free.write_csv(tmp_path / "clean.csv").read_text()
        assert not clean_csv.splitlines()[0].endswith(",error")

    @pytest.mark.timeout(300)
    def test_serial_and_pooled_chaos_agree_bytewise(self, tmp_path):
        # jobs=1 rides SerialDispatcher, jobs=4 the pool; with a raise-only
        # plan both recover the same cells and must export identical bytes.
        spec = chaos_spec()
        cells = spec.expand()
        plan = FaultPlan(faults={0: {0: "raise"}, 3: {0: "raise", 1: "raise", 2: "raise"}})
        outputs = []
        for jobs, subdir in ((1, "serial"), (4, "pooled")):
            scratch = tmp_path / subdir
            outcome = run_sweep(
                spec,
                jobs=jobs,
                policy=record_policy(),
                work_fn=injector(plan, cells, scratch),
            )
            outputs.append(outcome.write_csv(scratch / "out.csv").read_bytes())
        assert outputs[0] == outputs[1]

    @pytest.mark.timeout(300)
    def test_resume_serves_failure_record_and_retry_failed_recomputes(self, tmp_path):
        spec = chaos_spec()
        cells = spec.expand()
        plan = FaultPlan(faults={2: {0: "raise", 1: "raise", 2: "raise"}})
        store_path = tmp_path / "store.jsonl"
        first = run_sweep(
            spec,
            jobs=1,
            store=store_path,
            policy=record_policy(),
            work_fn=injector(plan, cells, tmp_path),
        )
        assert first.failed == 1

        # A resume serves the failure instead of re-crashing blindly.
        resumed = run_sweep(spec, jobs=1, store=store_path, policy=record_policy())
        assert (resumed.executed, resumed.cached, resumed.failed) == (0, 6, 1)
        assert resumed.results[2].failed and resumed.results[2].cached
        cell, failure = resumed.failures()[0]
        assert cell.key() == cells[2].key()
        assert failure.error["type"] == "InjectedFault"

        # retry_failed re-runs only the failed cell (now fault-free).
        retried = run_sweep(spec, jobs=1, store=store_path, retry_failed=True)
        assert (retried.executed, retried.cached, retried.failed) == (1, 5, 0)
        clean = run_sweep(spec, jobs=1)
        assert retried.results[2].payload == clean.results[2].payload
        # The store's last-write-wins record is now the success.
        assert "payload" in ResultsStore(store_path).get(cells[2].key())

    def test_failed_cell_payload_accessors_raise(self, tmp_path):
        spec = chaos_spec()
        cells = spec.expand()
        plan = FaultPlan(faults={0: {0: "raise"}})
        outcome = run_sweep(
            spec,
            jobs=1,
            policy=FaultPolicy(max_retries=0, backoff_base=0.0, on_failure="record"),
            work_fn=injector(plan, cells, tmp_path),
        )
        failed = outcome.results[0]
        assert failed.failed
        with pytest.raises(ValueError, match="has no payload"):
            failed.stats()
        with pytest.raises(ValueError, match="has no payload"):
            failed.times()
        row = failed.row()
        assert row["error"].startswith("InjectedFault")
        assert row["n"] == cells[0].n

    def test_experiment_drivers_thread_policy(self, tmp_path):
        # The pass-throughs accept a policy and hand it to run_sweep.
        from repro.experiments.convergence import sweep_population_sizes

        rows = sweep_population_sizes(
            [64, 128],
            trials=2,
            seed=1,
            jobs=1,
            policy=record_policy(),
        )
        assert [row.n for row in rows] == [64, 128]


# ----------------------------------------------------------- CLI threading


class FakeResult:
    failed = 0
    executed = 1
    cached = 0
    cells = [None]

    def table(self):
        return "table"

    def write_csv(self, path):
        return Path(path)


class TestSweepCLIFaultFlags:
    def test_flags_parse(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["sweep", "--max-retries", "3", "--cell-timeout", "2.5",
             "--keep-going", "--retry-failed"]
        )
        assert args.max_retries == 3
        assert args.cell_timeout == 2.5
        assert args.keep_going and args.retry_failed

    def test_flags_thread_into_fault_policy(self, monkeypatch, tmp_path):
        from repro import cli

        captured = {}

        def fake_run_sweep(spec, **kwargs):
            captured.update(kwargs)
            return FakeResult()

        monkeypatch.setattr(cli, "run_sweep", fake_run_sweep)
        code = cli.main(
            ["sweep", "--max-retries", "2", "--cell-timeout", "1.5",
             "--keep-going", "--retry-failed", "--jobs", "2"]
        )
        assert code == 0
        policy = captured["policy"]
        assert policy.max_retries == 2
        assert policy.timeout == 1.5
        assert policy.on_failure == "record"
        assert captured["retry_failed"] is True

    def test_default_policy_is_fail_fast(self, monkeypatch):
        from repro import cli

        captured = {}

        def fake_run_sweep(spec, **kwargs):
            captured.update(kwargs)
            return FakeResult()

        monkeypatch.setattr(cli, "run_sweep", fake_run_sweep)
        assert cli.main(["sweep"]) == 0
        policy = captured["policy"]
        assert policy.max_retries == 0
        assert policy.timeout is None
        assert policy.on_failure == "raise"

    def test_invalid_values_rejected(self, capsys):
        from repro import cli

        assert cli.main(["sweep", "--max-retries", "-1"]) == 2
        assert cli.main(["sweep", "--cell-timeout", "0"]) == 2
        err = capsys.readouterr().err
        assert "--max-retries" in err and "--cell-timeout" in err

    def test_failed_cells_exit_nonzero(self, monkeypatch, capsys):
        from repro import cli

        class FailingResult(FakeResult):
            failed = 2

        monkeypatch.setattr(cli, "run_sweep", lambda spec, **kwargs: FailingResult())
        assert cli.main(["sweep", "--keep-going"]) == 1
        assert "2 cell(s) failed" in capsys.readouterr().out


# --------------------------------------------------- kill/resume end to end


@pytest.mark.timeout(300)
def test_sigkill_mid_sweep_then_resume_byte_identical(tmp_path):
    """Real kill/resume: SIGKILL `repro sweep` mid-grid, resume, and the
    aggregate CSV is byte-identical to an uninterrupted run."""
    spec = {
        "version": 2,
        "name": "kill-resume",
        "seed": 11,
        "trials": 400,
        "axes": {
            "protocol": [{"name": "fet", "ell": 60}],
            "n": [2000],
            "initializer": [{"name": "bernoulli", "p": 0.5}],
            "initializer.p": [0.35, 0.45, 0.5, 0.55, 0.6, 0.65],
        },
        "max_rounds": 300,
    }
    spec_path = tmp_path / "spec.json"
    spec_path.write_text(json.dumps(spec))
    store = tmp_path / "store.jsonl"
    out = tmp_path / "resumed.csv"

    src_dir = str(Path(repro.__file__).resolve().parent.parent)
    env = dict(os.environ)
    env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
    base_cmd = [sys.executable, "-m", "repro", "sweep", "--spec", str(spec_path)]

    victim = subprocess.Popen(
        base_cmd + ["--store", str(store)],
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )
    deadline = time.monotonic() + 120
    while time.monotonic() < deadline and victim.poll() is None:
        if store.exists() and len(store.read_text().splitlines()) >= 2:
            break
        time.sleep(0.02)
    killed_midway = victim.poll() is None
    if killed_midway:
        os.kill(victim.pid, signal.SIGKILL)
    victim.wait(timeout=60)

    resumed = subprocess.run(
        base_cmd + ["--store", str(store), "--out", str(out)],
        env=env, capture_output=True, text=True, timeout=240,
    )
    assert resumed.returncode == 0, resumed.stderr

    clean = subprocess.run(
        base_cmd + ["--store", str(tmp_path / "clean.jsonl"), "--out", str(tmp_path / "clean.csv")],
        env=env, capture_output=True, text=True, timeout=240,
    )
    assert clean.returncode == 0, clean.stderr
    assert out.read_bytes() == (tmp_path / "clean.csv").read_bytes()

    if killed_midway:
        # The resume actually reused the survivor lines of the killed run.
        served = int(re.search(r"(\d+) served from store", resumed.stdout).group(1))
        assert served >= 2
