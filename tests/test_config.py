"""Tests for the unified run-config API (`repro.config.RunSpec`) and the
spec-v2 sweep surface it unlocks: JSON round-trips, legacy v1 loading with
byte-identical aggregates, extended/dotted axes, sampler pairing, store
compaction, and the multisource migration."""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest
from scipy import stats as scipy_stats

from repro.config import RunSpec, canonical_json, derive_seed
from repro.core.noise import BatchedNoisyCountSampler, NoisyCountSampler
from repro.core.population import make_population
from repro.core.sampling import BatchedBinomialSampler, IndexSampler
from repro.experiments.harness import run_trials
from repro.experiments.multisource import sweep_sources
from repro.initializers.standard import AllWrong
from repro.protocols.fet import FETProtocol
from repro.sweep import (
    AXES,
    EXTENDED_AXES,
    Cell,
    ResultsStore,
    SweepSpec,
    build_samplers,
    component_catalog,
    initializer_names,
    load_spec,
    protocol_names,
    run_sweep,
    sampler_names,
)

DATA = Path(__file__).parent / "data"


def demo_spec(**overrides) -> RunSpec:
    settings = dict(
        protocol={"name": "fet", "ell": 10},
        n=120,
        trials=4,
        max_rounds=100,
        seed=9,
    )
    settings.update(overrides)
    return RunSpec(**settings)


class TestRunSpecBasics:
    def test_json_round_trip(self):
        spec = demo_spec(
            noise=0.05,
            sampler={"name": "noisy", "epsilon": 0.05},
            num_sources=3,
            correct_opinion=0,
            linger_rounds=5,
        )
        twin = RunSpec.from_json(spec.to_json())
        assert twin == spec
        assert twin.key() == spec.key()
        # canonical form is byte-stable
        assert twin.to_json() == spec.to_json()

    def test_file_round_trip(self, tmp_path):
        spec = demo_spec()
        path = tmp_path / "run.json"
        path.write_text(spec.to_json())
        assert RunSpec.from_dict(json.loads(path.read_text())) == spec

    def test_default_fields_elided_from_hash_input(self):
        # Hash-compat: a spec with every new field at its default must emit
        # exactly the nine v1 keys, so pre-existing conditions keep their
        # content hashes, derived seeds, and store keys.
        spec = demo_spec()
        assert set(spec.spec_dict()) == {
            "protocol",
            "n",
            "noise",
            "initializer",
            "trials",
            "max_rounds",
            "stability_rounds",
            "engine",
            "measure",
        }

    def test_non_default_fields_enter_the_hash(self):
        base = demo_spec()
        assert demo_spec(num_sources=4).key() != base.key()
        assert demo_spec(linger_rounds=3).key() != base.key()
        assert demo_spec(sampler={"name": "binomial"}).key() != base.key()
        assert demo_spec(correct_opinion=0).key() != base.key()

    def test_validation(self):
        with pytest.raises(ValueError, match="trials must be >= 0"):
            demo_spec(trials=-1)
        with pytest.raises(ValueError, match="max_rounds must be >= 1"):
            demo_spec(max_rounds=0)
        with pytest.raises(ValueError, match="num_sources must be in"):
            demo_spec(num_sources=0)
        with pytest.raises(ValueError, match="num_sources must be in"):
            demo_spec(num_sources=120)
        with pytest.raises(ValueError, match="linger_rounds"):
            demo_spec(linger_rounds=-1)
        with pytest.raises(ValueError, match="correct_opinion"):
            demo_spec(correct_opinion=2)
        with pytest.raises(ValueError, match="engine must be"):
            demo_spec(engine="gpu")
        with pytest.raises(ValueError, match="noise levels"):
            demo_spec(noise=0.7)

    def test_protocol_none_cannot_serialize(self):
        spec = RunSpec(protocol=None, n=50, trials=1, max_rounds=10)
        with pytest.raises(ValueError, match="cannot be serialized"):
            spec.spec_dict()
        with pytest.raises(ValueError, match="no protocol component"):
            spec.build_protocol()

    def test_resolved_max_rounds_poly_log_rule(self):
        spec = demo_spec(max_rounds=None, n=1000)
        assert spec.resolved_max_rounds() == max(200, int(40 * np.log(1000) ** 2.5))
        assert demo_spec(max_rounds=77).resolved_max_rounds() == 77

    def test_derive_seed_is_content_addressed(self):
        a = derive_seed(1, {"x": 1})
        assert a == derive_seed(1, {"x": 1})
        assert a != derive_seed(2, {"x": 1})
        assert a != derive_seed(1, {"x": 2})
        assert canonical_json({"b": 1, "a": 2}) == '{"a":2,"b":1}'


class TestRunSpecExecution:
    def test_execute_matches_run_trials_adapter(self):
        # The declarative path and the legacy factory-kwargs adapter are the
        # same core: identical streams, identical aggregates.
        spec = demo_spec()
        direct = spec.execute()
        legacy = run_trials(
            lambda: FETProtocol(10),
            spec.n,
            AllWrong(),
            trials=spec.trials,
            max_rounds=spec.max_rounds,
            seed=spec.seed,
        )
        assert direct.successes == legacy.successes
        assert np.array_equal(direct.times, legacy.times)
        assert direct.engine == legacy.engine == "batched"

    def test_execute_multisource_population(self):
        stats = demo_spec(num_sources=30).execute()
        assert stats.successes == stats.trials
        # More sources pin more mass: convergence at least as fast as single.
        single = demo_spec().execute()
        assert np.median(stats.times) <= np.median(single.times) + 2

    def test_execute_correct_opinion_zero(self):
        stats = demo_spec(correct_opinion=0).execute()
        assert stats.successes == stats.trials

    def test_index_sampler_forces_sequential(self):
        spec = demo_spec(sampler={"name": "index"}, trials=2, n=60)
        stats = spec.execute()
        assert stats.engine == "sequential"
        with pytest.raises(ValueError, match="no batched observation model"):
            demo_spec(sampler={"name": "index"}, engine="batched").execute()

    def test_batched_engine_prepared(self):
        spec = demo_spec(trials=3, num_sources=5)
        engine = spec.batched_engine()
        assert engine.batch.replicas == 3
        assert engine.batch.source_mask.sum() == 5
        result = engine.run(spec.max_rounds, stability_rounds=spec.stability_rounds)
        assert result.converged.all()

    def test_noise_resolves_paired_noisy_samplers(self):
        scalar_factory, batched = demo_spec(noise=0.1).samplers()
        assert isinstance(scalar_factory(), NoisyCountSampler)
        assert isinstance(batched, BatchedNoisyCountSampler)
        assert scalar_factory().epsilon == batched.epsilon == 0.1
        none_factory, default_batched = demo_spec().samplers()
        assert none_factory is None
        assert isinstance(default_batched, BatchedBinomialSampler)


class TestSamplerRegistry:
    def test_pairing_is_automatic(self):
        scalar_factory, batched = build_samplers({"name": "noisy", "epsilon": 0.2})
        assert isinstance(scalar_factory(), NoisyCountSampler)
        assert isinstance(batched, BatchedNoisyCountSampler)
        assert batched.epsilon == 0.2

    def test_index_sampler_has_no_batched_side(self):
        scalar_factory, batched = build_samplers({"name": "index", "exclude_self": True})
        sampler = scalar_factory()
        assert isinstance(sampler, IndexSampler) and sampler.exclude_self
        assert batched is None

    def test_unknown_names_and_params_rejected(self):
        with pytest.raises(ValueError, match="unknown sampler"):
            build_samplers({"name": "quantum"})
        with pytest.raises(ValueError, match="unknown parameters"):
            build_samplers({"name": "binomial", "epsilon": 0.1})
        with pytest.raises(ValueError, match="epsilon"):
            build_samplers({"name": "noisy"})

    def test_catalog_covers_registries_exactly(self):
        catalog = component_catalog()
        assert sorted(catalog["protocol"]) == protocol_names()
        assert sorted(catalog["initializer"]) == initializer_names()
        assert sorted(catalog["sampler"]) == sampler_names()
        assert catalog["protocol"]["hysteresis-fet"] == ["band", "ell", "sample_constant"]
        assert catalog["sampler"]["noisy"] == ["epsilon", "method"]

    def test_scalar_vs_batched_noise_equivalence(self):
        """The registry-paired noisy samplers agree in distribution (KS)."""
        eps, ell, n, reps = 0.2, 20, 400, 50
        scalar_factory, batched_sampler = build_samplers({"name": "noisy", "epsilon": eps})
        population = make_population(n, 1)
        population.adversarial_opinions((np.arange(n) % 3 == 0).astype(np.uint8))
        from repro.core.batch import BatchedPopulation
        from repro.core.rng import make_rng

        batch = BatchedPopulation.from_population(population, reps)
        scalar_counts = np.concatenate(
            [scalar_factory().counts(population, ell, make_rng(100 + i)) for i in range(reps)]
        )
        batched_counts = batched_sampler.counts(batch, ell, make_rng(999)).ravel()
        ks = scipy_stats.ks_2samp(scalar_counts, batched_counts)
        assert ks.pvalue > 1e-3


class TestSweepSpecV2:
    def test_cell_is_a_runspec(self):
        assert Cell is RunSpec

    def test_extended_axis_expansion_order(self):
        spec = SweepSpec(
            axes={
                "protocol": ["fet"],
                "n": [100, 200],
                "num_sources": [1, 5],
            },
            trials=1,
            max_rounds=50,
        )
        cells = spec.expand()
        assert [(c.n, c.num_sources) for c in cells] == [
            (100, 1),
            (100, 5),
            (200, 1),
            (200, 5),
        ]

    def test_extended_axis_defaults_keep_v1_hashes(self):
        base = SweepSpec(axes={"protocol": ["fet"], "n": [100]}, trials=2, max_rounds=50)
        via_axis = SweepSpec(
            axes={"protocol": ["fet"], "n": [100], "num_sources": [1]},
            trials=2,
            max_rounds=50,
        )
        assert [c.key() for c in base.expand()] == [c.key() for c in via_axis.expand()]

    def test_dotted_protocol_param_axis(self):
        spec = SweepSpec(
            axes={"protocol": ["fet"], "protocol.ell": [4, 16], "n": [100]},
            trials=1,
            max_rounds=50,
        )
        cells = spec.expand()
        assert [c.protocol for c in cells] == [
            {"name": "fet", "ell": 4},
            {"name": "fet", "ell": 16},
        ]
        # identical to declaring the components one by one
        explicit = SweepSpec(
            axes={
                "protocol": [{"name": "fet", "ell": 4}, {"name": "fet", "ell": 16}],
                "n": [100],
            },
            trials=1,
            max_rounds=50,
        )
        assert [c.key() for c in cells] == [c.key() for c in explicit.expand()]

    def test_dotted_band_axis_collapses_hysteresis_sweep(self):
        spec = SweepSpec(
            axes={
                "protocol": ["hysteresis-fet"],
                "protocol.band": [1, 2, 3],
                "n": [100],
            },
            trials=0,
            max_rounds=50,
        )
        assert [c.protocol["band"] for c in spec.expand()] == [1, 2, 3]

    def test_dotted_measure_axis(self):
        spec = SweepSpec(
            axes={"protocol": ["fet"], "n": [100], "measure.theta": [0.8, 0.9]},
            trials=1,
            max_rounds=50,
            measure={"kind": "theta", "theta": 0.5},
        )
        assert [c.measure["theta"] for c in spec.expand()] == [0.8, 0.9]

    def test_dotted_measure_axis_validates_merged_measure(self):
        with pytest.raises(ValueError, match="theta must be in"):
            SweepSpec(
                axes={"protocol": ["fet"], "n": [100], "measure.theta": [1.5]},
                trials=1,
                max_rounds=50,
                measure={"kind": "theta", "theta": 0.5},
            ).expand()

    def test_dotted_axis_rejects_unknown_root(self):
        with pytest.raises(ValueError, match="dotted axis"):
            SweepSpec(
                axes={"protocol": ["fet"], "n": [100], "engine.mode": [1]},
                trials=1,
            )
        with pytest.raises(ValueError, match="needs a 'sampler' axis"):
            SweepSpec(
                axes={"protocol": ["fet"], "n": [100], "sampler.epsilon": [0.1]},
                trials=1,
            )

    def test_sampler_axis(self):
        spec = SweepSpec(
            axes={
                "protocol": ["fet"],
                "n": [100],
                "sampler": ["binomial", {"name": "noisy", "epsilon": 0.1}],
            },
            trials=1,
            max_rounds=50,
        )
        cells = spec.expand()
        assert cells[0].sampler == {"name": "binomial"}
        assert cells[1].sampler == {"name": "noisy", "epsilon": 0.1}

    def test_zipped_extended_axes(self):
        spec = SweepSpec(
            axes={
                "protocol": ["fet"],
                "n": [100, 200],
                "num_sources": [1, 10],
            },
            zipped=[["n", "num_sources"]],
            trials=1,
            max_rounds=50,
        )
        assert [(c.n, c.num_sources) for c in spec.expand()] == [(100, 1), (200, 10)]

    def test_extended_axis_validation(self):
        with pytest.raises(ValueError, match="num_sources axis values"):
            SweepSpec(axes={"protocol": ["fet"], "n": [100], "num_sources": [0]}, trials=1)
        with pytest.raises(ValueError, match="engine axis values"):
            SweepSpec(axes={"protocol": ["fet"], "n": [100], "engine": ["gpu"]}, trials=1)
        with pytest.raises(ValueError, match="unknown axes"):
            SweepSpec(axes={"protocol": ["fet"], "n": [100], "temperature": [1]}, trials=1)

    def test_trials_and_stability_axes_override_spec_defaults(self):
        spec = SweepSpec(
            axes={
                "protocol": ["fet"],
                "n": [100],
                "trials": [0, 3],
                "stability_rounds": [4],
            },
            trials=9,
            max_rounds=50,
        )
        cells = spec.expand()
        assert [c.trials for c in cells] == [0, 3]
        assert all(c.stability_rounds == 4 for c in cells)

    def test_num_sources_bound_checked_before_dispatch(self):
        spec = SweepSpec(
            axes={"protocol": ["fet"], "n": [100], "num_sources": [100]},
            trials=1,
            max_rounds=50,
        )
        with pytest.raises(ValueError, match="num_sources must be in"):
            spec.expand()

    def test_to_dict_round_trip_with_version(self):
        spec = SweepSpec(
            axes={"protocol": ["fet"], "n": [100], "num_sources": [1, 2]},
            trials=1,
            max_rounds=50,
        )
        data = spec.to_dict()
        assert data["version"] == 2
        twin = SweepSpec.from_dict(data)
        assert [c.key() for c in twin.expand()] == [c.key() for c in spec.expand()]


class TestLegacySpecLoading:
    def test_v1_file_loads_unchanged(self):
        spec = load_spec(DATA / "golden_v1_spec.json")
        assert spec.name == "golden-v1"
        assert len(spec.expand()) == 16

    def test_v1_file_rejects_extended_axes(self):
        data = json.loads((DATA / "golden_v1_spec.json").read_text())
        data["axes"]["num_sources"] = [1, 2]
        with pytest.raises(ValueError, match="version-1 sweep spec"):
            SweepSpec.from_dict(data)
        data["version"] = 2
        assert len(SweepSpec.from_dict(data).expand()) == 32

    def test_unknown_version_rejected(self):
        with pytest.raises(ValueError, match="unknown sweep spec version"):
            SweepSpec.from_dict(
                {"version": 99, "axes": {"protocol": ["fet"], "n": [100]}, "trials": 1}
            )

    def test_v1_aggregate_csv_byte_identical(self, tmp_path):
        """A pre-existing v1 spec JSON reproduces its aggregate CSV exactly
        (recorded before the RunSpec redesign) through the new loader."""
        spec = load_spec(DATA / "golden_v1_spec.json")
        out = tmp_path / "agg.csv"
        run_sweep(spec).write_csv(out)
        assert out.read_bytes() == (DATA / "golden_v1_aggregate.csv").read_bytes()

    def test_v1_theta_aggregate_csv_byte_identical(self, tmp_path):
        spec = load_spec(DATA / "golden_v1_theta_spec.json")
        out = tmp_path / "agg.csv"
        run_sweep(spec).write_csv(out)
        assert out.read_bytes() == (DATA / "golden_v1_theta_aggregate.csv").read_bytes()


class TestMultisourceMigration:
    def test_invalid_source_count_raises_before_any_cell_runs(self, tmp_path):
        """Regression: a bad count used to surface mid-loop, after earlier
        cells had already burned compute. Now the whole list is validated up
        front — nothing is executed and nothing lands in the store."""
        store = ResultsStore(tmp_path / "store.jsonl")
        with pytest.raises(ValueError, match="source count must be in"):
            sweep_sources(
                100, 10, [1, 4, 100], trials=2, max_rounds=10, seed=0, store=store
            )
        assert len(store) == 0

    def test_rows_match_axis_order_and_derive_independent_seeds(self):
        rows = sweep_sources(100, 10, [1, 5, 20], trials=2, max_rounds=60, seed=3)
        assert [row.num_sources for row in rows] == [1, 5, 20]
        # derived per-cell seeds replaced the ad-hoc seed+index scheme
        spec_cells = {
            cell.num_sources: cell.seed
            for cell in __import__("repro.sweep", fromlist=["SweepSpec"]).SweepSpec(
                name="multisource",
                seed=3,
                trials=2,
                axes={
                    "protocol": [{"name": "fet", "ell": 10}],
                    "n": [100],
                    "initializer": [{"name": "all-wrong"}],
                    "num_sources": [1, 5, 20],
                },
                max_rounds=60,
            ).expand()
        }
        assert len(set(spec_cells.values())) == 3

    def test_statistically_equivalent_to_manual_loop(self):
        """The orchestrated num_sources grid reproduces the old hand-rolled
        sweep's rows (different seed scheme, same distributions)."""
        n, ell, counts = 200, 15, [1, 25]
        rows = sweep_sources(n, ell, counts, trials=10, max_rounds=500, seed=0)
        manual = [
            run_trials(
                lambda: FETProtocol(ell),
                n,
                AllWrong(),
                trials=10,
                max_rounds=500,
                seed=100 + index,
                population_factory=lambda k=k: make_population(n, 1, num_sources=k),
            )
            for index, k in enumerate(counts)
        ]
        for row, stats in zip(rows, manual):
            assert row.stats.successes == stats.successes == 10
            assert abs(np.median(row.stats.times) - np.median(stats.times)) <= 3

    def test_jobs_and_store_supported(self, tmp_path):
        store = tmp_path / "multi.jsonl"
        first = sweep_sources(
            100, 10, [1, 4], trials=2, max_rounds=60, seed=1, jobs=2, store=store
        )
        again = sweep_sources(
            100, 10, [1, 4], trials=2, max_rounds=60, seed=1, store=store
        )
        for a, b in zip(first, again):
            assert a.stats.successes == b.stats.successes
            assert np.array_equal(a.stats.times, b.stats.times)


class TestStoreCompaction:
    def test_compact_keeps_latest_record_per_key(self, tmp_path):
        path = tmp_path / "store.jsonl"
        store = ResultsStore(path)
        store.put("a", {"payload": 1})
        store.put("b", {"payload": 2})
        store.put("a", {"payload": 3})  # supersedes the first line
        assert len(path.read_text().splitlines()) == 3
        summary = store.compact()
        assert summary == {
            "lines_before": 3,
            "corrupt_lines": 0,
            "checksum_failures": 0,
            "records": 2,
        }
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        reloaded = ResultsStore(path)
        assert reloaded.get("a")["payload"] == 3
        assert reloaded.get("b")["payload"] == 2

    def test_compact_preserves_original_provenance(self, tmp_path):
        path = tmp_path / "store.jsonl"
        store = ResultsStore(path)
        store.put("a", {"payload": 1, "provenance": {"host": "elsewhere"}})
        store.compact()
        assert ResultsStore(path).get("a")["provenance"] == {"host": "elsewhere"}

    def test_compact_drops_torn_tail_safely(self, tmp_path):
        path = tmp_path / "store.jsonl"
        store = ResultsStore(path)
        store.put("a", {"payload": 1})
        with path.open("a") as handle:
            handle.write('{"key": "b", "payl')  # killed mid-append
        store = ResultsStore(path)
        summary = store.compact()
        assert summary["corrupt_lines"] == 1
        assert summary["records"] == 1
        # the rewritten file is fully valid and appendable again
        store.put("c", {"payload": 2})
        reloaded = ResultsStore(path)
        assert reloaded.corrupt_lines == 0
        assert sorted(reloaded.keys()) == ["a", "c"]

    def test_compact_missing_file_is_noop(self, tmp_path):
        store = ResultsStore(tmp_path / "never_written.jsonl")
        assert store.compact()["records"] == 0
        assert not (tmp_path / "never_written.jsonl").exists()

    def test_compact_picks_up_external_appends(self, tmp_path):
        path = tmp_path / "store.jsonl"
        store = ResultsStore(path)
        store.put("a", {"payload": 1})
        # another process appends after this handle loaded
        ResultsStore(path).put("b", {"payload": 2})
        summary = store.compact()
        assert summary["records"] == 2
        assert sorted(ResultsStore(path).keys()) == ["a", "b"]

    def test_compact_leaves_no_tmp_file(self, tmp_path):
        path = tmp_path / "store.jsonl"
        store = ResultsStore(path)
        store.put("a", {"payload": 1})
        store.compact()
        assert list(tmp_path.iterdir()) == [path]


class TestCellValidationConflicts:
    def test_sequential_only_sampler_with_batched_engine_fails_fast(self):
        spec = SweepSpec(
            axes={"protocol": ["fet"], "n": [100], "sampler": ["index"]},
            trials=1,
            max_rounds=50,
            engine="batched",
        )
        with pytest.raises(ValueError, match="invalid sweep cell .*no batched"):
            run_sweep(spec)

    def test_sequential_only_sampler_with_trace_measure_fails_fast(self):
        spec = SweepSpec(
            axes={"protocol": ["fet"], "n": [100], "sampler": ["index"]},
            trials=1,
            max_rounds=50,
            measure={"kind": "trace"},
        )
        with pytest.raises(ValueError, match="invalid sweep cell .*trace measure"):
            run_sweep(spec)

    def test_sequential_only_sampler_with_auto_engine_is_fine(self):
        spec = SweepSpec(
            axes={"protocol": ["fet", {"name": "fet", "ell": 12}], "n": [60], "sampler": ["index"]},
            trials=2,
            max_rounds=80,
        )
        result = run_sweep(spec)
        assert all(row["engine"] == "sequential" for row in result.rows())


class TestCLISurface:
    def test_sweep_list_prints_catalog(self, capsys):
        from repro.cli import main

        assert main(["sweep", "--list"]) == 0
        out = capsys.readouterr().out
        for name in protocol_names() + initializer_names() + sampler_names():
            assert name in out
        assert "measures: consensus, theta, trace" in out

    def test_sweep_compact_cli(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "store.jsonl"
        store = ResultsStore(path)
        store.put("a", {"payload": 1})
        store.put("a", {"payload": 2})
        assert main(["sweep", "--compact", "--store", str(path)]) == 0
        out = capsys.readouterr().out
        assert "kept 1 record(s)" in out
        assert len(path.read_text().splitlines()) == 1

    def test_sweep_compact_requires_store(self, capsys):
        from repro.cli import main

        assert main(["sweep", "--compact"]) == 2
        assert "--store" in capsys.readouterr().err


class TestRunTrialsAdapter:
    def test_signature_unchanged_for_legacy_callers(self):
        stats = run_trials(
            lambda: FETProtocol(8),
            100,
            AllWrong(),
            trials=3,
            max_rounds=80,
            seed=4,
            stability_rounds=2,
            engine="auto",
        )
        assert stats.trials == 3 and stats.engine == "batched"

    def test_legacy_error_messages_preserved(self):
        factory = lambda: FETProtocol(8)
        with pytest.raises(ValueError, match="trials must be >= 0"):
            run_trials(factory, 100, AllWrong(), trials=-1, max_rounds=10, seed=0)
        with pytest.raises(ValueError, match="max_rounds must be >= 1"):
            run_trials(factory, 100, AllWrong(), trials=1, max_rounds=0, seed=0)
        with pytest.raises(ValueError, match="engine must be"):
            run_trials(factory, 100, AllWrong(), trials=1, max_rounds=10, seed=0, engine="x")
        with pytest.raises(ValueError, match="matching batched_sampler"):
            run_trials(
                factory,
                100,
                AllWrong(),
                trials=1,
                max_rounds=10,
                seed=0,
                engine="batched",
                sampler_factory=lambda: NoisyCountSampler(0.1),
            )
