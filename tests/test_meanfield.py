"""Tests for the deterministic mean-field skeleton."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.meanfield import OrbitFate, basin_grid, trace_orbit

ELL, N = 60, 100_000


class TestTraceOrbit:
    def test_upward_trend_hits_correct(self):
        orbit = trace_orbit(0.2, 0.35, ELL, N)
        assert orbit.fate is OrbitFate.CORRECT
        assert orbit.hit_step is not None
        assert orbit.hit_step <= 10

    def test_downward_trend_hits_wrong_first(self):
        orbit = trace_orbit(0.8, 0.65, ELL, N)
        assert orbit.fate is OrbitFate.WRONG
        assert orbit.hit_step is not None

    def test_zero_speed_center_escapes_via_source_bias(self):
        """The centre is NOT a skeleton fixed point: the source's O(1/n)
        term seeds an upward speed that Claim-3 amplification compounds —
        the noise-free skeleton escapes to the correct side."""
        orbit = trace_orbit(0.5, 0.5, ELL, N, max_steps=50)
        assert orbit.fate is OrbitFate.CORRECT
        assert orbit.hit_step is not None
        assert orbit.hit_step > 5  # but much slower than a trending start

    def test_center_stalls_within_tiny_budget(self):
        orbit = trace_orbit(0.5, 0.5, ELL, N, max_steps=3)
        assert orbit.fate is OrbitFate.STALLED
        assert orbit.hit_step is None

    def test_points_are_pair_shifted(self):
        orbit = trace_orbit(0.2, 0.35, ELL, N)
        # The x of each step equals the y of the previous step.
        assert np.allclose(orbit.points[1:, 0], orbit.points[:-1, 1])

    def test_rejects_bad_budget(self):
        with pytest.raises(ValueError):
            trace_orbit(0.2, 0.3, ELL, N, max_steps=0)

    def test_length_consistent_with_hit(self):
        orbit = trace_orbit(0.1, 0.4, ELL, N)
        assert orbit.length == orbit.hit_step + 1  # initial point + steps


class TestBasinGrid:
    def test_shapes(self):
        grid, fates = basin_grid(ELL, N, resolution=9, max_steps=60)
        assert grid.shape == (9,)
        assert len(fates) == 9 and len(fates[0]) == 9

    def test_corners(self):
        grid, fates = basin_grid(ELL, N, resolution=5, max_steps=60)
        # (x=0, y=1): maximal upward trend -> correct immediately.
        assert fates[4][0] is OrbitFate.CORRECT
        # (x=1, y=0): maximal downward trend -> wrong contact first.
        assert fates[0][4] is OrbitFate.WRONG

    def test_upper_left_flows_correct(self):
        grid, fates = basin_grid(ELL, N, resolution=11, max_steps=100)
        # Strictly upward-trend starts away from the diagonal all reach
        # the correct band.
        for i in range(11):
            for j in range(11):
                y, x = grid[i], grid[j]
                if y - x >= 0.2 and y < 0.999:
                    assert fates[i][j] is OrbitFate.CORRECT, (x, y)
