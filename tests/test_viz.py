"""Tests for ASCII rendering and CSV emission."""

from __future__ import annotations

import csv

import numpy as np
import pytest

from repro.analysis.domains import Domain, DomainPartition, YellowArea
from repro.viz.ascii_grid import (
    DOMAIN_GLYPHS,
    YELLOW_GLYPHS,
    render_domain_map,
    render_trajectory,
    render_yellow_map,
)
from repro.viz.csv_out import write_domain_grid, write_rows
from repro.viz.tables import format_rows, format_table


@pytest.fixture
def part():
    return DomainPartition(n=1000, delta=0.05)


class TestDomainMap:
    def test_contains_legend(self, part):
        out = render_domain_map(part, 21)
        assert "legend:" in out
        assert "G=Green1" in out

    def test_row_count(self, part):
        out = render_domain_map(part, 21)
        assert len(out.splitlines()) == 21 + 3  # grid + axis + params + legend

    def test_green_in_top_left(self, part):
        rows = render_domain_map(part, 21).splitlines()
        assert "G" in rows[0]

    def test_all_glyphs_distinct(self):
        glyphs = list(DOMAIN_GLYPHS.values())
        assert len(glyphs) == len(set(glyphs))

    def test_every_domain_has_glyph(self):
        assert set(DOMAIN_GLYPHS) == set(Domain)


class TestYellowMap:
    def test_contains_all_six_areas(self, part):
        out = render_yellow_map(part, 41)
        for glyph in ("A", "B", "C", "a", "b", "c"):
            assert glyph in out

    def test_every_area_has_glyph(self):
        assert set(YELLOW_GLYPHS) == set(YellowArea)

    def test_no_outside_cells_inside_square(self, part):
        grid_lines = render_yellow_map(part, 21).splitlines()[:21]
        body = "".join(line[6:] for line in grid_lines)
        assert "." not in body


class TestTrajectory:
    def test_empty(self):
        assert "empty" in render_trajectory(np.array([]))

    def test_contains_marks(self):
        out = render_trajectory(np.linspace(0, 1, 30))
        assert "*" in out

    def test_downsamples(self):
        out = render_trajectory(np.linspace(0, 1, 10_000), width=40)
        longest = max(len(line) for line in out.splitlines())
        assert longest < 60

    def test_monotone_trajectory_is_monotone_chart(self):
        out = render_trajectory(np.linspace(0, 1, 20), width=20, height=10)
        rows = out.splitlines()[:10]
        first_mark_cols = []
        for row in rows:
            body = row.split("|", 1)[1]
            if "*" in body:
                first_mark_cols.append(body.index("*"))
        # Higher levels (earlier rows) must be reached later in time.
        assert first_mark_cols == sorted(first_mark_cols, reverse=True)


class TestTables:
    def test_alignment(self):
        out = format_table(["a", "bb"], [[1, 2], [333, 4]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])

    def test_nan_rendered_as_dash(self):
        out = format_table(["x"], [[float("nan")]])
        assert "-" in out.splitlines()[2]

    def test_format_rows_empty(self):
        assert format_rows([]) == "(no rows)"

    def test_format_rows_dicts(self):
        out = format_rows([{"n": 10, "t": 1.5}, {"n": 20, "t": 2.5}])
        assert "n" in out and "t" in out
        assert "20" in out


class TestCsvOut:
    def test_write_rows(self, tmp_path):
        path = write_rows(tmp_path / "sub" / "x.csv", ("a", "b"), [(1, 2), (3, 4)])
        with path.open() as handle:
            rows = list(csv.reader(handle))
        assert rows == [["a", "b"], ["1", "2"], ["3", "4"]]

    def test_write_domain_grid(self, tmp_path, part):
        path = write_domain_grid(tmp_path / "grid.csv", part, resolution=11)
        with path.open() as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["x_t", "x_t1", "domain"]
        assert len(rows) == 1 + 11 * 11
        domains = {row[2] for row in rows[1:]}
        assert "Green1" in domains
