"""Observability endpoint and end-to-end span/event determinism.

The acceptance contract (ISSUE 8): a sweep run with full observability
(``--events-out``, ``--trace-out``, ``--metrics-port``) yields CSV output
byte-identical to a telemetry-off run at any ``--jobs``, a merged span log
whose structural tree is identical across job counts, a Perfetto-loadable
Chrome trace, and a live ``/metrics`` scrape that passes
``validate_exposition`` while the sweep executes.
"""

from __future__ import annotations

import json
import socket
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro import cli
from repro.sweep import (
    FaultInjector,
    FaultPlan,
    FaultPolicy,
    SweepSpec,
    execute_cell,
    run_sweep,
)
from repro.telemetry import (
    EventLog,
    MetricsRegistry,
    ObservabilityServer,
    SpanLog,
    SpanTracer,
    validate_exposition,
    write_chrome_trace,
)


def small_grid(seed: int = 7, **overrides) -> SweepSpec:
    """Six fast FET cells: 3 sizes x 2 starts (same as test_telemetry)."""
    settings = dict(
        name="telemetry-grid",
        seed=seed,
        trials=2,
        axes={
            "protocol": [{"name": "fet", "ell": 8}],
            "n": [60, 90, 120],
            "initializer": ["all-wrong", {"name": "bernoulli", "p": 0.5}],
        },
        max_rounds=120,
    )
    settings.update(overrides)
    return SweepSpec(**settings)


def record_policy(**overrides) -> FaultPolicy:
    settings = dict(max_retries=2, backoff_base=0.0, jitter=0.0, on_failure="record")
    settings.update(overrides)
    return FaultPolicy(**settings)


def scrape(url: str, timeout: float = 5.0):
    """GET ``url``; returns (status, content_type, body_text)."""
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return (
            response.status,
            response.headers.get("Content-Type", ""),
            response.read().decode("utf-8"),
        )


def scrape_with_retry(url: str, deadline: float = 10.0):
    """Scrape, retrying while the server comes up (for threaded starts)."""
    end = time.monotonic() + deadline
    while True:
        try:
            return scrape(url)
        except (urllib.error.URLError, ConnectionError, OSError):
            if time.monotonic() >= end:
                raise
            time.sleep(0.05)


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


# ------------------------------------------------------------------ server


class TestObservabilityServer:
    def test_start_is_idempotent_and_stop_releases(self):
        server = ObservabilityServer()
        try:
            port = server.start()
            assert server.start() == port  # second start: same binding
            assert server.running
            assert server.url("/healthz") == f"http://127.0.0.1:{port}/healthz"
        finally:
            server.stop()
        assert not server.running
        server.stop()  # stop when stopped is a no-op

    def test_context_manager_starts_and_stops(self):
        with ObservabilityServer() as server:
            assert server.running
            status, _, body = scrape(server.url("/healthz"))
            assert (status, body) == (200, "ok\n")
        assert not server.running

    def test_healthz_aliases(self):
        with ObservabilityServer() as server:
            for path in ("/healthz", "/health"):
                status, content_type, body = scrape(server.url(path))
                assert status == 200
                assert body == "ok\n"
                assert content_type.startswith("text/plain")

    def test_metrics_route_serves_valid_exposition(self):
        registry = MetricsRegistry()
        registry.counter("demo_total", "Demo counter.", kind="x").inc(3)
        registry.histogram("demo_seconds", "Demo histogram.").observe(0.2)
        with ObservabilityServer(registry=registry) as server:
            status, content_type, body = scrape(server.url("/metrics"))
        assert status == 200
        assert content_type == "text/plain; version=0.0.4; charset=utf-8"
        assert validate_exposition(body) > 0
        assert 'demo_total{kind="x"} 3' in body
        assert "demo_seconds_count 1" in body

    def test_metrics_without_registry_is_empty_but_200(self):
        with ObservabilityServer() as server:
            status, _, body = scrape(server.url("/metrics"))
        assert status == 200
        assert body == ""

    def test_refresh_runs_before_each_scrape(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("ticks", "Refreshed per scrape.")
        calls = []
        server = ObservabilityServer(
            registry=registry, refresh=lambda: (calls.append(1), gauge.set(len(calls)))
        )
        with server:
            scrape(server.url("/metrics"))
            _, _, body = scrape(server.url("/metrics"))
        assert len(calls) == 2
        assert "ticks 2" in body

    def test_progress_route_inactive_without_source(self):
        with ObservabilityServer() as server:
            status, content_type, body = scrape(server.url("/progress"))
        assert status == 200
        assert content_type == "application/json"
        assert json.loads(body) == {"active": False}

    def test_progress_route_mirrors_attached_source(self):
        server = ObservabilityServer(progress=lambda: {"done": 3, "total": 6})
        with server:
            _, _, body = scrape(server.url("/progress"))
        assert json.loads(body) == {"active": True, "done": 3, "total": 6}

    def test_attach_swaps_registry_live(self):
        first, second = MetricsRegistry(), MetricsRegistry()
        first.counter("alpha_total").inc()
        second.counter("beta_total").inc()
        with ObservabilityServer(registry=first) as server:
            _, _, before = scrape(server.url("/metrics"))
            server.attach(registry=second)
            _, _, after = scrape(server.url("/metrics"))
        assert "alpha_total" in before
        assert "beta_total" in after and "alpha_total" not in after

    def test_unknown_route_404_and_index(self):
        with ObservabilityServer() as server:
            status, _, body = scrape(server.url("/"))
            assert status == 200
            assert "/metrics" in body and "/progress" in body
            with pytest.raises(urllib.error.HTTPError) as err:
                scrape(server.url("/nope"))
            assert err.value.code == 404


# --------------------------------------------------- live scrape during run


class TestLiveScrape:
    @pytest.mark.timeout(120)
    def test_metrics_scrapeable_while_sweep_runs(self):
        registry = MetricsRegistry()
        server = ObservabilityServer()
        results: dict = {}

        def run():
            results["result"] = run_sweep(
                small_grid(), jobs=1, metrics=registry, serve=server
            )

        worker = threading.Thread(target=run)
        worker.start()
        try:
            mid_run: list[str] = []
            while worker.is_alive():
                if server.running:
                    try:
                        _, _, body = scrape(server.url("/metrics"), timeout=2.0)
                        mid_run.append(body)
                    except (urllib.error.URLError, ConnectionError, OSError):
                        pass
                time.sleep(0.01)
            worker.join()
            # run_sweep leaves the server up (the CLI owns its lifecycle),
            # so the post-run scrape is deterministic even if the sweep
            # finished before the poller caught a mid-run page.
            _, _, final = scrape(server.url("/metrics"))
            for body in mid_run + [final]:
                if body:
                    assert validate_exposition(body) > 0
            assert "repro_cells_completed_total" in final
            assert "repro_sweep_cells_total 6" in final
            _, _, progress = scrape(server.url("/progress"))
        finally:
            server.stop()
        stats = json.loads(progress)
        assert stats["active"] is True
        assert (stats["done"], stats["total"]) == (6, 6)
        assert results["result"].metrics is not None


# ------------------------------------------------- e2e span/event contract


class TestSweepObservabilityE2E:
    @pytest.mark.timeout(120)
    def test_span_tree_and_csv_identical_across_jobs(self, tmp_path):
        trees = {}
        csvs = {}
        for jobs in (1, 2):
            result = run_sweep(small_grid(), jobs=jobs, tracer=SpanTracer())
            assert isinstance(result.spans, SpanLog)
            trees[jobs] = json.dumps(result.spans.tree())
            csvs[jobs] = result.write_csv(tmp_path / f"j{jobs}.csv").read_bytes()
        assert trees[1] == trees[2]
        assert csvs[1] == csvs[2]
        roots = json.loads(trees[1])
        assert len(roots) == 1
        name, _labels, children = roots[0]
        assert name == "sweep"
        assert sum(child[0] == "cell" for child in children) == 6

    def test_merged_log_contains_all_layers(self):
        result = run_sweep(small_grid(), jobs=1, tracer=SpanTracer())
        names = {record["name"] for record in result.spans.records}
        assert {"sweep", "dispatch", "cell", "engine.run", "draw_tier"} <= names
        # every span closed: the sweep span is finalized before snapshot
        assert all(record["duration"] is not None for record in result.spans.records)

    @pytest.mark.timeout(120)
    def test_worker_spans_carry_worker_pids(self):
        result = run_sweep(small_grid(), jobs=2, tracer=SpanTracer())
        cell_pids = {
            record.get("pid")
            for record in result.spans.records
            if record["name"] == "cell"
        }
        assert None not in cell_pids  # every grafted cell is pid-tagged
        assert cell_pids  # and at least one worker contributed

    def test_store_append_and_cache_hit_events(self, tmp_path):
        store = tmp_path / "store.jsonl"
        first = run_sweep(small_grid(), store=store, events=EventLog())
        kinds = [event["kind"] for event in first.events]
        assert kinds.count("store.append") == 6
        assert kinds.count("store.cache_hit") == 0
        resumed = run_sweep(small_grid(), store=store, events=EventLog())
        kinds = [event["kind"] for event in resumed.events]
        assert kinds.count("store.cache_hit") == 6
        assert kinds.count("store.append") == 0
        hit = next(e for e in resumed.events if e["kind"] == "store.cache_hit")
        assert hit["failed"] is False
        assert "key" in hit

    def test_retry_events_match_fault_plan(self, tmp_path):
        spec = small_grid()
        cells = spec.expand()
        plan = FaultPlan(faults={0: {0: "raise"}, 2: {0: "raise", 1: "raise", 2: "raise"}})
        injector = FaultInjector(execute_cell, plan, cells, tmp_path / "counters")
        result = run_sweep(
            spec, jobs=1, events=EventLog(), policy=record_policy(), work_fn=injector
        )
        retries = [event for event in result.events if event["kind"] == "sweep.retry"]
        assert len(retries) == 3  # 1 for cell 0 + 2 granted to cell 2
        for event in retries:
            assert event["error"] == "InjectedFault"
            assert event["attempt"] >= 1
            assert "item" in event
        # zero backoff configured, so no backoff sleeps were logged
        assert all(event["kind"] != "sweep.backoff" for event in result.events)

    def test_backoff_events_logged_when_delay_positive(self, tmp_path):
        spec = small_grid()
        cells = spec.expand()
        plan = FaultPlan(faults={0: {0: "raise"}})
        injector = FaultInjector(execute_cell, plan, cells, tmp_path / "counters")
        result = run_sweep(
            spec,
            jobs=1,
            events=EventLog(),
            policy=record_policy(backoff_base=0.01),
            work_fn=injector,
        )
        backoffs = [e for e in result.events if e["kind"] == "sweep.backoff"]
        assert len(backoffs) == 1
        assert backoffs[0]["delay_s"] > 0

    def test_observability_off_leaves_result_bare(self):
        result = run_sweep(small_grid())
        assert result.spans is None
        assert result.events is None
        assert result.metrics is None

    def test_payloads_identical_with_full_observability(self):
        plain = run_sweep(small_grid())
        observed = run_sweep(
            small_grid(),
            metrics=MetricsRegistry(),
            tracer=SpanTracer(),
            events=EventLog(),
        )
        assert [r.payload for r in plain.results] == [r.payload for r in observed.results]


# -------------------------------------------------------------------- CLI


class TestCLIObservability:
    def test_sweep_observability_flags_parse(self):
        args = cli.build_parser().parse_args(
            ["sweep", "--events-out", "e.jsonl", "--trace-out", "t.json",
             "--metrics-port", "0"]
        )
        assert args.events_out == "e.jsonl"
        assert args.trace_out == "t.json"
        assert args.metrics_port == 0

    def test_sweep_rejects_negative_metrics_port(self, capsys):
        code = cli.main(["sweep", "--metrics-port", "-1", "--no-durable"])
        assert code == 2
        assert "--metrics-port" in capsys.readouterr().err

    @pytest.mark.metrics_smoke
    @pytest.mark.timeout(300)
    def test_sweep_full_observability_end_to_end(self, tmp_path, capsys):
        """The flagship run: events + trace + live port, all outputs valid."""
        events_path = tmp_path / "events.jsonl"
        trace_path = tmp_path / "trace.json"
        code = cli.main(
            [
                "sweep",
                "--jobs", "2",
                "--no-durable",
                "--store", str(tmp_path / "store.jsonl"),
                "--events-out", str(events_path),
                "--trace-out", str(trace_path),
                "--metrics-port", "0",
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "serving observability on http://127.0.0.1:" in captured.out
        events = [json.loads(line) for line in events_path.read_text().splitlines()]
        assert events and all({"seq", "ts", "kind"} <= set(e) for e in events)
        assert sum(e["kind"] == "store.append" for e in events) == 6
        trace = json.loads(trace_path.read_text())
        assert "traceEvents" in trace
        phases = {entry["ph"] for entry in trace["traceEvents"]}
        assert {"X", "i", "M"} <= phases
        assert "run: repro timeline" in captured.out

    def test_timeline_renders_ascii_and_json(self, tmp_path, capsys):
        log = SpanLog(
            pid=1,
            epoch_wall=10.0,
            records=[
                {"name": "sweep", "labels": {}, "start": 0.0, "duration": 1.0, "parent": -1},
                {"name": "cell", "labels": {"n": "60"}, "start": 0.2, "duration": 0.5,
                 "parent": 0},
            ],
        )
        path = write_chrome_trace(tmp_path / "trace.json", log)
        assert cli.main(["timeline", str(path)]) == 0
        out = capsys.readouterr().out
        assert out.startswith("timeline: 1.000s total")
        assert "sweep |" in out
        assert cli.main(["timeline", str(path), "--json"]) == 0
        lanes = json.loads(capsys.readouterr().out)
        assert lanes[0]["label"] == "sweep"
        assert [s["name"] for s in lanes[0]["spans"]] == ["sweep", "cell"]

    def test_timeline_rejects_non_trace_json(self, tmp_path, capsys):
        bogus = tmp_path / "not-a-trace.json"
        bogus.write_text("{}")
        assert cli.main(["timeline", str(bogus)]) == 2
        assert "traceEvents" in capsys.readouterr().err

    def test_timeline_rejects_missing_file(self, tmp_path, capsys):
        assert cli.main(["timeline", str(tmp_path / "absent.json")]) == 2
        assert "cannot read trace" in capsys.readouterr().err

    @pytest.mark.timeout(120)
    def test_serve_metrics_serves_recorded_snapshot(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("repro_cells_completed_total", "Cells.").inc(6)
        snapshot_path = tmp_path / "metrics.json"
        snapshot_path.write_text(json.dumps(registry.snapshot().to_dict()))
        port = free_port()
        codes: dict = {}

        def serve():
            codes["exit"] = cli.main(
                [
                    "serve-metrics",
                    "--port", str(port),
                    "--snapshot", str(snapshot_path),
                    "--for-seconds", "4",
                ]
            )

        thread = threading.Thread(target=serve)
        thread.start()
        try:
            _, _, body = scrape_with_retry(f"http://127.0.0.1:{port}/metrics")
            _, _, health = scrape_with_retry(f"http://127.0.0.1:{port}/healthz")
        finally:
            thread.join(timeout=30)
        assert not thread.is_alive()
        assert codes["exit"] == 0
        assert validate_exposition(body) > 0
        assert "repro_cells_completed_total 6" in body
        assert "repro_process_uptime_seconds" in body
        assert health == "ok\n"

    def test_serve_metrics_rejects_bad_snapshot(self, tmp_path, capsys):
        bad = tmp_path / "broken.json"
        bad.write_text("{not json")
        assert cli.main(["serve-metrics", "--snapshot", str(bad)]) == 2
        assert "cannot load snapshot" in capsys.readouterr().err

    @pytest.mark.timeout(300)
    def test_metrics_command_progress_flag(self, capsys):
        assert cli.main(["metrics", "--progress"]) == 0
        captured = capsys.readouterr()
        assert validate_exposition(captured.out) > 0
        assert "sweep 6/6 cells" in captured.err
