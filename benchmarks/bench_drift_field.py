"""E-drift — Eq. (7) drift field, fixed points f(x), and Claim 3 amplification.

Paper artifacts: the drift function g(x, y) of Eq. (7) governs the mean-field
motion; Claim 2 gives the fixed-point map f(x) on [x, x + 1/√ℓ]; Claim 3 /
Eq. (9) show f amplifies the distance from 1/2 by at least 1 + c₄/√ℓ with
c₄ = 1/(4α). We tabulate f and the measured amplification against that lower
bound across the Yellow′ x-range, and summarize the drift field over the grid.
"""

from __future__ import annotations

import math

import numpy as np

from bench_common import banner, results_path, run_once
from repro.analysis.drift import amplification_factor, drift_grid, fixed_point_f
from repro.analysis.theory import amplification_lower_bound
from repro.viz.csv_out import write_rows
from repro.viz.tables import format_table

N = 10_000
ELL = 74  # ell_for(10_000) with the default constant


def test_fixed_point_amplification(benchmark):
    xs = [0.501, 0.51, 0.52, 0.55, 0.6, 0.65, 0.7]

    def build():
        rows = []
        for x in xs:
            f = fixed_point_f(x, ELL, N)
            gain = amplification_factor(x, ELL, N)
            rows.append((x, f, f - x, gain))
        return rows

    rows = run_once(benchmark, build)
    bound = amplification_lower_bound(ELL)
    print(banner(f"Claim 3 — fixed-point amplification, ell={ELL}, n={N}"))
    table = [
        [x, round(f, 5), round(step, 5), round(gain, 4), round(bound, 4)]
        for x, f, step, gain in rows
    ]
    print(format_table(["x", "f(x)", "f(x)-x", "(f-1/2)/(x-1/2)", "paper lower bound"], table))
    write_rows(
        results_path("drift_fixed_points.csv"),
        ("x", "f", "step", "gain"),
        rows,
    )

    for x, f, step, gain in rows:
        assert x <= f <= x + 1 / math.sqrt(ELL) + 1e-9
        assert gain > bound, f"amplification at x={x} below the paper bound"


def test_drift_field_summary(benchmark):
    def build():
        grid = np.linspace(0.0, 1.0, 101)
        g = drift_grid(grid, grid, ELL, N)
        # Drift of the pair chain: E[x_{t+2}] - x_{t+1} at (x=col, y=row).
        drift = g - grid[:, None] * 0 - grid[None, :] * 0  # keep g
        vertical = g - grid[:, None]
        return grid, g, vertical

    grid, g, vertical = run_once(benchmark, build)
    print(banner(f"Eq. (7) — drift field summary, ell={ELL}, n={N}"))
    mid = len(grid) // 2
    print(f"g(1/2, 1/2)      = {g[mid, mid]:.4f}  (neutral centre)")
    print(f"g(x=0.3, y=0.6)  = {g[60, 30]:.4f}  (upward trend -> ~1)")
    print(f"g(x=0.6, y=0.3)  = {g[30, 60]:.4f}  (downward trend -> ~0)")
    up = float((vertical > 0).mean())
    print(f"fraction of grid with upward drift (E[x_t+2] > x_t+1): {up:.3f}")
    write_rows(
        results_path("drift_field_sample.csv"),
        ("x", "y", "g"),
        [
            (float(grid[j]), float(grid[i]), float(g[i, j]))
            for i in range(0, 101, 5)
            for j in range(0, 101, 5)
        ],
    )

    assert abs(g[mid, mid] - 0.5) < 0.02
    assert g[60, 30] > 0.95
    assert g[30, 60] < 0.05
    # The field is symmetric under point reflection up to the O(1/n) source term.
    anti = g + g[::-1, ::-1]
    assert np.abs(anti - 1.0).max() < 2 / N + 1e-6
