"""E-throughput — sequential vs batched engine throughput.

Not a paper artifact: this benchmark tracks the *simulation machinery* itself,
so the performance trajectory of the engines is measured from the PR that
introduced the batched path onward. It times ``run_trials`` end to end
(initialization included) for FET on both engines across population sizes and
the two canonical workloads:

* ``all-wrong`` — the dissemination start; trials converge in a handful of
  rounds, so per-trial setup and the near-consensus rounds dominate;
* ``bernoulli(0.5)`` — the self-stabilization random start; trials pass
  through mid-range one-fractions, where numpy's per-draw binomial setup is
  most expensive and the batched sufficient-statistic sampler pays off most.

Emits ``results/BENCH_engine.json`` with seconds, rounds/sec, trials/sec and
the batched-over-sequential speedup per (n, workload) cell. The headline cell
(n=1000, trials=500, random start) is expected to hold a ≥5× speedup.

Run directly (``PYTHONPATH=src python benchmarks/bench_engine_throughput.py``)
or through pytest-benchmark.
"""

from __future__ import annotations

import json
import sys
import time

from bench_common import banner, results_path, run_once
from repro.experiments.harness import TrialStats, run_trials
from repro.initializers.standard import AllWrong, BernoulliRandom, Initializer
from repro.protocols.fet import FETProtocol, ell_for
from repro.viz.tables import format_table

#: (n, trials) cells; trials shrink with n to keep the benchmark brisk while
#: the acceptance cell n=1000 keeps its full 500 trials.
CELLS = [(100, 500), (1000, 500), (10000, 100)]
MAX_ROUNDS = 2000
SEED = 20260729
#: timing repetitions per cell; min-of-k filters scheduler noise and warm-up
REPEATS = 3


def _executed_rounds(stats: TrialStats) -> int:
    """Total synchronous replica-rounds a run actually simulated.

    A converged trial steps until its stability window closes:
    ``max(rounds + stability - 1, stability - 1)`` rounds with the default
    window of 2; a failed trial runs the full budget. Identical accounting on
    both engines, so rounds/sec is comparable.
    """
    executed = 0.0
    executed += float((stats.times + 1.0).sum())  # stability_rounds=2
    executed += (stats.trials - stats.successes) * stats.max_rounds
    return int(executed)


def run_cell(n: int, trials: int, initializer: Initializer) -> list[dict]:
    ell = ell_for(n)
    rows = []
    timings = {}
    for engine in ("sequential", "batched"):
        seconds = float("inf")
        for _ in range(REPEATS):
            start = time.perf_counter()
            stats = run_trials(
                lambda: FETProtocol(ell),
                n,
                initializer,
                trials=trials,
                max_rounds=MAX_ROUNDS,
                seed=SEED,
                engine=engine,
            )
            seconds = min(seconds, time.perf_counter() - start)
        timings[engine] = seconds
        rounds = _executed_rounds(stats)
        rows.append(
            {
                "engine": engine,
                "init": initializer.name,
                "n": n,
                "ell": ell,
                "trials": trials,
                "successes": stats.successes,
                "mean_rounds": float(stats.times.mean()) if stats.times.size else None,
                "seconds": round(seconds, 4),
                "rounds_per_sec": round(rounds / seconds, 1),
                "trials_per_sec": round(trials / seconds, 1),
            }
        )
    speedup = timings["sequential"] / timings["batched"]
    for row in rows:
        row["speedup"] = round(speedup, 2) if row["engine"] == "batched" else 1.0
    return rows


def run_benchmark() -> list[dict]:
    all_rows = []
    for n, trials in CELLS:
        for initializer in (AllWrong(), BernoulliRandom(0.5)):
            all_rows.extend(run_cell(n, trials, initializer))
    return all_rows


def report(all_rows: list[dict]) -> None:
    print(banner("Engine throughput — sequential vs batched (FET)"))
    table = [
        [
            row["n"],
            row["init"],
            row["engine"],
            row["trials"],
            f"{row['successes']}/{row['trials']}",
            row["seconds"],
            row["rounds_per_sec"],
            row["trials_per_sec"],
            row["speedup"],
        ]
        for row in all_rows
    ]
    print(
        format_table(
            ["n", "init", "engine", "trials", "success", "sec", "rounds/s", "trials/s", "speedup"],
            table,
        )
    )
    headline = [
        row
        for row in all_rows
        if row["n"] == 1000 and row["engine"] == "batched" and row["init"].startswith("bernoulli")
    ]
    if headline:
        print(f"\nheadline (n=1000, trials=500, random start): {headline[0]['speedup']}x batched speedup")
    path = results_path("BENCH_engine.json")
    path.write_text(json.dumps({"cells": all_rows}, indent=2))
    print(f"wrote {path}")


def test_engine_throughput(benchmark):
    all_rows = run_once(benchmark, run_benchmark)
    report(all_rows)
    headline = [
        row
        for row in all_rows
        if row["n"] == 1000 and row["engine"] == "batched" and row["init"].startswith("bernoulli")
    ]
    # Loose floor: the acceptance target is 5x; assert well below it so the
    # benchmark stays green on slower/noisier machines while still catching a
    # regression that erases the batched advantage.
    assert headline and headline[0]["speedup"] >= 2.0


if __name__ == "__main__":
    report(run_benchmark())
    sys.exit(0)
