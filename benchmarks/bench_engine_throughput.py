"""E-throughput — sequential vs batched engine throughput.

Not a paper artifact: this benchmark tracks the *simulation machinery* itself,
so the performance trajectory of the engines is measured from the PR that
introduced the batched path onward. It times ``run_trials`` end to end
(initialization included) for FET on both engines across population sizes and
the two canonical workloads:

* ``all-wrong`` — the dissemination start; trials converge in a handful of
  rounds, so per-trial setup and the near-consensus rounds dominate;
* ``bernoulli(0.5)`` — the self-stabilization random start; trials pass
  through mid-range one-fractions, where numpy's per-draw binomial setup is
  most expensive and the batched sufficient-statistic sampler pays off most.

It also times the *near-consensus draw tier* in isolation: the all-wrong
opening rounds (and noise-hover / linger-settle rounds) key the batched
sampler on fractions with ``ℓ·min(x, 1-x)`` far below 1, where the sparse
geometric-gap generator replaces per-element draws. That section compares
the sparse tier against the scalar-p inversion path that served those rows
before it existed.

Emits ``results/BENCH_engine.json`` with seconds, rounds/sec, trials/sec and
the batched-over-sequential speedup per (n, workload) cell, plus the sparse
draw-tier comparison. The headline cell (n=1000, trials=500, random start)
is expected to hold a ≥5× speedup; every all-wrong batched cell must hold
≥2× end to end and the sparse tier ≥2× on near-consensus draws.

Run directly (``PYTHONPATH=src python benchmarks/bench_engine_throughput.py``)
or through pytest-benchmark.
"""

from __future__ import annotations

import json
import sys
import time

import numpy as np

from bench_common import banner, results_path, run_once
from repro.core.rng import make_rng
from repro.core.sampling import batched_binomial_counts
from repro.experiments.harness import TrialStats, run_trials
from repro.initializers.standard import AllWrong, BernoulliRandom, Initializer
from repro.protocols.fet import FETProtocol, ell_for
from repro.viz.tables import format_table

#: (n, trials) cells; trials shrink with n to keep the benchmark brisk while
#: the acceptance cell n=1000 keeps its full 500 trials.
CELLS = [(100, 500), (1000, 500), (10000, 100)]
MAX_ROUNDS = 2000
SEED = 20260729
#: timing repetitions per cell; min-of-k filters scheduler noise and warm-up
REPEATS = 3

#: Batched speedups recorded by the previous revision of this benchmark
#: (after the sparse draw tier, before FET's fused single-comparison
#: ``step_batch``), kept so the JSON and the gate can state the improvement
#: explicitly.
PREVIOUS_BATCHED_SPEEDUP = {(100, "all-wrong"): 8.96, (1000, "all-wrong"): 3.05,
                            (10000, "all-wrong"): 3.35}


def _executed_rounds(stats: TrialStats) -> int:
    """Total synchronous replica-rounds a run actually simulated.

    A converged trial steps until its stability window closes:
    ``max(rounds + stability - 1, stability - 1)`` rounds with the default
    window of 2; a failed trial runs the full budget. Identical accounting on
    both engines, so rounds/sec is comparable.
    """
    executed = 0.0
    executed += float((stats.times + 1.0).sum())  # stability_rounds=2
    executed += (stats.trials - stats.successes) * stats.max_rounds
    return int(executed)


def run_cell(n: int, trials: int, initializer: Initializer) -> list[dict]:
    ell = ell_for(n)
    rows = []
    timings = {}
    for engine in ("sequential", "batched"):
        seconds = float("inf")
        for _ in range(REPEATS):
            start = time.perf_counter()
            stats = run_trials(
                lambda: FETProtocol(ell),
                n,
                initializer,
                trials=trials,
                max_rounds=MAX_ROUNDS,
                seed=SEED,
                engine=engine,
            )
            seconds = min(seconds, time.perf_counter() - start)
        timings[engine] = seconds
        rounds = _executed_rounds(stats)
        rows.append(
            {
                "engine": engine,
                "init": initializer.name,
                "n": n,
                "ell": ell,
                "trials": trials,
                "successes": stats.successes,
                "mean_rounds": float(stats.times.mean()) if stats.times.size else None,
                "seconds": round(seconds, 4),
                "rounds_per_sec": round(rounds / seconds, 1),
                "trials_per_sec": round(trials / seconds, 1),
            }
        )
    speedup = timings["sequential"] / timings["batched"]
    for row in rows:
        row["speedup"] = round(speedup, 2) if row["engine"] == "batched" else 1.0
    return rows


def run_sparse_tier_cell(n: int, replicas: int, blocks: int = 2) -> dict:
    """Near-consensus draw throughput: sparse tier vs scalar-p inversion.

    The workload is the all-wrong opening fraction ``x = 1/n`` replicated
    across the batch — exactly the rows the tiered sampler used to serve
    with numpy's scalar-p generator (the grouped-inversion path) and now
    serves with geometric-gap placement.
    """
    ell = ell_for(n)
    x = np.full(replicas, 1.0 / n)
    rng = make_rng(SEED)
    timings = {}
    for method in ("inversion", "sparse"):
        seconds = float("inf")
        for _ in range(max(REPEATS, 5)):
            start = time.perf_counter()
            if method == "sparse":
                batched_binomial_counts(rng, ell, x, blocks, n, method="sparse")
            else:
                rng.binomial(ell, x[0], size=(blocks, replicas, n))
            seconds = min(seconds, time.perf_counter() - start)
        timings[method] = seconds
    return {
        "n": n,
        "ell": ell,
        "replicas": replicas,
        "blocks": blocks,
        "x": x[0],
        "tail": round(ell * x[0], 4),
        "inversion_sec": round(timings["inversion"], 5),
        "sparse_sec": round(timings["sparse"], 5),
        "speedup": round(timings["inversion"] / timings["sparse"], 2),
    }


def run_benchmark() -> dict:
    all_rows = []
    for n, trials in CELLS:
        for initializer in (AllWrong(), BernoulliRandom(0.5)):
            all_rows.extend(run_cell(n, trials, initializer))
    for row in all_rows:
        previous = PREVIOUS_BATCHED_SPEEDUP.get((row["n"], row["init"]))
        if previous is not None and row["engine"] == "batched":
            row["previous_speedup"] = previous
    sparse_rows = [
        run_sparse_tier_cell(1000, 500),
        run_sparse_tier_cell(10000, 100),
    ]
    return {"cells": all_rows, "sparse_tier": sparse_rows}


def report(payload: dict) -> None:
    all_rows = payload["cells"]
    print(banner("Engine throughput — sequential vs batched (FET)"))
    table = [
        [
            row["n"],
            row["init"],
            row["engine"],
            row["trials"],
            f"{row['successes']}/{row['trials']}",
            row["seconds"],
            row["rounds_per_sec"],
            row["trials_per_sec"],
            row["speedup"],
        ]
        for row in all_rows
    ]
    print(
        format_table(
            ["n", "init", "engine", "trials", "success", "sec", "rounds/s", "trials/s", "speedup"],
            table,
        )
    )
    headline = [
        row
        for row in all_rows
        if row["n"] == 1000 and row["engine"] == "batched" and row["init"].startswith("bernoulli")
    ]
    if headline:
        print(f"\nheadline (n=1000, trials=500, random start): {headline[0]['speedup']}x batched speedup")
    print(banner("Sparse extreme-x draw tier — near-consensus draws (x = 1/n)"))
    print(
        format_table(
            ["n", "ell", "replicas", "tail", "inversion sec", "sparse sec", "speedup"],
            [
                [row["n"], row["ell"], row["replicas"], row["tail"],
                 row["inversion_sec"], row["sparse_sec"], row["speedup"]]
                for row in payload["sparse_tier"]
            ],
        )
    )
    path = results_path("BENCH_engine.json")
    path.write_text(json.dumps(payload, indent=2))
    print(f"wrote {path}")


def test_engine_throughput(benchmark):
    payload = run_once(benchmark, run_benchmark)
    report(payload)
    all_rows = payload["cells"]
    headline = [
        row
        for row in all_rows
        if row["n"] == 1000 and row["engine"] == "batched" and row["init"].startswith("bernoulli")
    ]
    # Loose floor: the acceptance target is 5x; assert well below it so the
    # benchmark stays green on slower/noisier machines while still catching a
    # regression that erases the batched advantage.
    assert headline and headline[0]["speedup"] >= 2.0
    # Since the sparse draw tier, every all-wrong batched cell holds >= 2x
    # end to end (measured ~3-3.4x at n >= 1000, up from ~2.5x before it).
    for row in all_rows:
        if row["engine"] == "batched" and row["init"] == "all-wrong":
            assert row["speedup"] >= 2.0, row
    # The tier itself must beat the scalar-p inversion path it replaced by
    # >= 2x on near-consensus draws (measured ~3x; floor leaves CI headroom).
    for row in payload["sparse_tier"]:
        assert row["speedup"] >= 2.0, row


if __name__ == "__main__":
    report(run_benchmark())
    sys.exit(0)
