"""E-imposs — the Section 1.2 impossibility witness for the majority variant.

Paper argument: under passive communication, the *majority* bit-dissemination
problem (conflicting sources) cannot be solved in poly-log time. The proof
builds an adversarial state in which every observation is unanimous, so no
agent ever moves — even though the majority of sources prefers the opposite
bit.

We instantiate that construction concretely for FET: all opinions 1, all
counters saturated at ℓ, k0 = n/4 sources preferring 0 against k1 = n/8
preferring 1. The run must stay frozen for a *polynomial* number of rounds
(we use n² — far beyond any poly-log budget). The contrast run shows the
same unanimity state in the single-source problem is simply the (correct)
absorbing state.
"""

from __future__ import annotations

import numpy as np

from bench_common import banner, results_path, run_once
from repro.core.engine import run_protocol
from repro.core.population import make_majority_population, make_population
from repro.core.rng import make_rng
from repro.initializers.adversarial import FrozenUnanimity
from repro.protocols.fet import FETProtocol, ell_for
from repro.viz.csv_out import write_rows
from repro.viz.tables import format_table

SIZES = [64, 128, 256]


def test_impossibility_witness(benchmark):
    def build():
        out = []
        for n in SIZES:
            pop = make_majority_population(n, k0=n // 4, k1=n // 8)
            proto = FETProtocol(ell_for(n))
            rng = make_rng(n)
            state = proto.init_state(n, rng)
            FrozenUnanimity(opinion=1)(pop, proto, state, rng)
            result = run_protocol(proto, pop, n * n, rng=rng, state=state)
            frozen = bool((result.trajectory == 1.0).all())
            out.append((n, n * n, frozen, result.converged))
        return out

    results = run_once(benchmark, build)
    print(banner("Impossibility — majority variant frozen under passive communication"))
    rows = [
        [n, budget, "yes" if frozen else "NO", "yes" if conv else "no"]
        for n, budget, frozen, conv in results
    ]
    print(format_table(["n", "rounds run (n^2)", "frozen whole run", "reached correct"], rows))
    print("k0 = n/4 sources prefer 0 (the correct bit), k1 = n/8 prefer 1;")
    print("adversary: all opinions 1, all counters = ell -> all observations unanimous.")
    write_rows(
        results_path("impossibility.csv"),
        ("n", "rounds", "frozen", "converged"),
        results,
    )

    for n, _, frozen, converged in results:
        assert frozen, f"n={n}: the construction must be deterministically frozen"
        assert not converged


def test_single_source_contrast(benchmark):
    """The identical unanimity state is the legitimate fixed point when the
    (single) source actually prefers 1 — the indistinguishability at the
    heart of the argument."""

    def build():
        n = 128
        pop = make_population(n, 1)
        proto = FETProtocol(ell_for(n))
        pop.set_opinions(np.ones(n, dtype=np.uint8))
        state = {"prev_count": np.full(n, proto.ell, dtype=np.int64)}
        result = run_protocol(proto, pop, 200, rng=make_rng(0), state=state)
        return result

    result = run_once(benchmark, build)
    print(banner("Contrast — same state, single correct source: absorbing and correct"))
    print(f"converged={result.converged} rounds={result.rounds} final_x={result.final_fraction}")
    assert result.converged
    assert result.rounds == 0
