"""Shared helpers for the benchmark suite.

Every benchmark regenerates one paper artifact (figure or quantitative
claim — see the experiment index in DESIGN.md), prints the regenerated
tables/maps to stdout (captured into ``bench_output.txt`` by the run
instructions), and writes CSV artifacts under ``results/``.

Benchmarks run their experiment exactly once via ``benchmark.pedantic``:
the timing numbers are secondary; the scientific payload is the printed
comparison against the paper.
"""

from __future__ import annotations

import os
from pathlib import Path

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


def sweep_knobs() -> tuple[int, str | None]:
    """Orchestrator knobs for SweepSpec-declared benchmarks.

    ``REPRO_BENCH_JOBS`` fans the grid's cells over worker processes and
    ``REPRO_BENCH_STORE`` points at a JSON-lines results store (resume /
    skip-if-cached) — the payoff of declaring a benchmark's grid as a
    :class:`~repro.sweep.spec.SweepSpec` instead of an ad-hoc loop. Both
    default off so plain ``pytest`` runs measure honest single-process,
    uncached executions.
    """
    jobs = int(os.environ.get("REPRO_BENCH_JOBS") or 1)
    store = os.environ.get("REPRO_BENCH_STORE") or None
    return jobs, store


def results_path(name: str) -> Path:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR / name


def banner(title: str) -> str:
    rule = "=" * max(60, len(title) + 4)
    return f"\n{rule}\n  {title}\n{rule}"


def run_once(benchmark, fn):
    """Execute ``fn`` exactly once under the benchmark fixture."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
