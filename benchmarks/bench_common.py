"""Shared helpers for the benchmark suite.

Every benchmark regenerates one paper artifact (figure or quantitative
claim — see the experiment index in DESIGN.md), prints the regenerated
tables/maps to stdout (captured into ``bench_output.txt`` by the run
instructions), and writes CSV artifacts under ``results/``.

Benchmarks run their experiment exactly once via ``benchmark.pedantic``:
the timing numbers are secondary; the scientific payload is the printed
comparison against the paper.
"""

from __future__ import annotations

from pathlib import Path

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


def results_path(name: str) -> Path:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR / name


def banner(title: str) -> str:
    rule = "=" * max(60, len(title) + 4)
    return f"\n{rule}\n  {title}\n{rule}"


def run_once(benchmark, fn):
    """Execute ``fn`` exactly once under the benchmark fixture."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
