"""F2 — regenerate Figure 2: the A/B/C partition of the Yellow′ square.

Paper artifact: Figure 2 splits the bounding square Yellow′ = [1/2−4δ,
1/2+4δ]² into areas A (speed builds), B (slow climb), C (pushed toward A),
each with a side-0 mirror. Regenerated as an ASCII map plus a per-area cell
census.
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from bench_common import banner, results_path, run_once
from repro.analysis.domains import DomainPartition, YellowArea
from repro.viz.ascii_grid import render_yellow_map
from repro.viz.csv_out import write_rows


def test_fig2_yellow_partition(benchmark):
    partition = DomainPartition(n=1000, delta=0.05)
    resolution = 81

    def build():
        art = render_yellow_map(partition, resolution=41)
        lo, hi = partition.yellow_prime_lo, partition.yellow_prime_hi
        grid = np.linspace(lo, hi, resolution)
        census: Counter = Counter()
        rows = []
        for x in grid:
            for y in grid:
                area = partition.classify_yellow_area(float(x), float(y))
                census[area.value] += 1
                rows.append((float(x), float(y), area.value))
        write_rows(results_path("fig2_yellow_areas.csv"), ("x_t", "x_t1", "area"), rows)
        return art, census

    art, census = run_once(benchmark, build)
    print(banner("Figure 2 — Yellow' partition into A/B/C, n=1000, delta=0.05"))
    print(art)
    print("cell census:", dict(census))

    total = sum(census.values())
    assert census[YellowArea.OUTSIDE.value] == 0  # the six areas cover Yellow'
    # A-areas are the largest (they own the whole y >= max(1/2, 2x - 1/2)
    # wedge and its mirror), matching the figure's geometry.
    a_cells = census["A1"] + census["A0"]
    b_cells = census["B1"] + census["B0"]
    c_cells = census["C1"] + census["C0"]
    assert a_cells > b_cells and a_cells > c_cells
    # Side symmetry: mirrored areas have identical cell counts up to the
    # shared boundary (one grid line).
    assert abs(census["A1"] - census["A0"]) <= resolution
    assert abs(census["B1"] - census["B0"]) <= resolution
    assert abs(census["C1"] - census["C0"]) <= resolution
    assert total == resolution * resolution
