"""E-noise / E-multi / E-worst — the extension experiments.

Three studies beyond the paper's main line:

* **E-noise** — per-bit observation noise (motivated by the paper's
  biological framing and its companion work on noisy rumor spreading).
  Finding: FET *reaches* near-consensus under any noise level, but exact
  consensus is a knife-edge — for any ε > 0 the trend rule amplifies noise-
  induced defections into sustained oscillations (reach vs. retain split).
* **E-multi** — the paper's claimed extension to a constant number of
  agreeing sources, swept up to a constant fraction of n.
* **E-worst** — randomized search for the worst initial configuration,
  taking seriously the paper's footnote that worst cases "are not always
  evident" in simulations.
"""

from __future__ import annotations

from bench_common import banner, results_path, run_once
from repro.analysis.theory import theorem1_bound
from repro.experiments.multisource import sweep_sources
from repro.experiments.robustness import sweep_noise
from repro.experiments.worst_case import search_worst_start
from repro.protocols.fet import ell_for
from repro.viz.csv_out import write_rows
from repro.viz.tables import format_table

N = 1500


def test_noise_robustness(benchmark):
    epsilons = [0.0, 0.001, 0.01, 0.05, 0.1, 0.2]

    def build():
        return sweep_noise(
            N,
            ell_for(N),
            epsilons,
            trials=6,
            max_rounds=5000,
            seed=42,
        )

    rows = run_once(benchmark, build)
    print(banner(f"E-noise — FET under per-bit observation noise, n={N}"))
    table = [
        [
            row.epsilon,
            f"{row.reached_theta}/{row.trials}",
            row.median_rounds,
            round(row.mean_settle_level, 3) if row.mean_settle_level == row.mean_settle_level else "-",
        ]
        for row in rows
    ]
    print(format_table(["epsilon", "reached 95%", "median rounds", "settle level (20-rnd mean)"], table))
    print("\nReading: reaching near-consensus survives any noise level, but")
    print("only epsilon = 0 HOLDS it (settle level 1.0): exact unanimity is a")
    print("knife-edge and the trend rule amplifies noise into oscillation.")
    write_rows(
        results_path("noise_robustness.csv"),
        ("epsilon", "reached", "trials", "median_rounds", "settle_level"),
        [(r.epsilon, r.reached_theta, r.trials, r.median_rounds, r.mean_settle_level) for r in rows],
    )

    by_eps = {row.epsilon: row for row in rows}
    assert by_eps[0.0].reached_theta == 6
    assert abs(by_eps[0.0].mean_settle_level - 1.0) < 1e-9
    # Reaching theta keeps working under noise...
    for eps in (0.001, 0.01, 0.05):
        assert by_eps[eps].reached_theta == by_eps[eps].trials
    # ...but no noisy level retains consensus.
    for eps in (0.001, 0.01, 0.05, 0.1, 0.2):
        if by_eps[eps].reached_theta:
            assert by_eps[eps].mean_settle_level < 0.999


def test_multisource_sweep(benchmark):
    counts = [1, 2, 4, 16, N // 8]

    def build():
        return sweep_sources(
            N,
            ell_for(N),
            counts,
            trials=8,
            max_rounds=int(20 * theorem1_bound(N)),
            seed=7,
        )

    rows = run_once(benchmark, build)
    print(banner(f"E-multi — agreeing sources from 1 to n/8, n={N}"))
    table = []
    for row in rows:
        summary = row.stats.time_summary()
        table.append(
            [row.num_sources, row.stats.row()["success"], summary.median, summary.p95]
        )
    print(format_table(["# sources", "success", "median T", "p95 T"], table))
    write_rows(
        results_path("multisource.csv"),
        ("sources", "successes", "trials", "median"),
        [(r.num_sources, r.stats.successes, r.stats.trials, r.stats.time_summary().median) for r in rows],
    )

    for row in rows:
        assert row.stats.successes == row.stats.trials
    # More sources: never slower beyond noise.
    medians = [row.stats.time_summary().median for row in rows]
    assert medians[-1] <= medians[0] + 2


def test_worst_case_search(benchmark):
    def build():
        return search_worst_start(
            N,
            ell_for(N),
            coarse=6,
            refine_steps=1,
            runs_per_candidate=3,
            budget=int(60 * theorem1_bound(N)),
            seed=11,
        )

    result = run_once(benchmark, build)
    print(banner(f"E-worst — randomized worst-start search, n={N}"))
    print(
        f"worst start found: (x_prev={result.x_prev:.3f}, x_now={result.x_now:.3f})  "
        f"mean T = {result.mean_rounds:.1f}, max T = {result.max_rounds_seen}  "
        f"({result.evaluations} candidates evaluated)"
    )
    print(f"Theorem 1 scale ln^2.5(n) = {theorem1_bound(N):.0f} rounds")
    write_rows(
        results_path("worst_case.csv"),
        ("x_prev", "x_now", "mean_rounds", "max_rounds", "evaluations"),
        [(result.x_prev, result.x_now, result.mean_rounds, result.max_rounds_seen, result.evaluations)],
    )

    assert result.all_converged, "every candidate must converge within the budget"
    # Even the adversarially-searched worst start stays far below the
    # theorem's upper-bound scale at this n.
    assert result.max_rounds_seen < 3 * theorem1_bound(N)


def test_hysteresis_ablation(benchmark):
    """E-hyst — the dead-band ablation: hysteresis does not fix the noise
    knife-edge and taxes noiseless convergence (see
    repro/protocols/hysteresis.py for the full argument).

    Declared as a pure :class:`SweepSpec` grid over registry components
    (``hysteresis-fet`` with a dotted band axis, the paired noisy samplers
    resolved by the noise axis, the θ measure's settle window standing in
    for the old hand-rolled retention loop) — so the whole ablation is one
    JSON document away from being submitted to the run service like any
    other condition, and its cells cache/resume under ``REPRO_BENCH_STORE``.
    """
    import numpy as np

    from bench_common import sweep_knobs
    from repro.sweep import SweepSpec, run_sweep

    n = 1500
    bands = [0, 2, 4, 8]
    spec = SweepSpec(
        name="hysteresis-ablation",
        seed=17,
        trials=3,
        max_rounds=500,
        axes={
            "protocol": [{"name": "hysteresis-fet", "ell": ell_for(n)}],
            "protocol.band": bands,
            "n": [n],
            "noise": [0.0, 0.01],
        },
        # Reach = hitting 95% correct; retain = the mean level over the 100
        # rounds after the threshold holds (the old last-100-rounds mean).
        measure={"kind": "theta", "theta": 0.95, "settle_window": 100},
    )
    jobs, store = sweep_knobs()

    def build():
        return run_sweep(spec, jobs=jobs, store=store)

    result = run_once(benchmark, build)
    rows = []
    for cell, res in zip(result.cells, result.results):
        payload = res.payload
        times = payload["times"]
        levels = payload["settle_levels"]
        rows.append(
            (
                cell.protocol["band"],
                cell.noise,
                payload["reached"],
                cell.trials,
                float(np.median(times)) if times else None,
                float(np.mean(levels)) if levels else float("nan"),
            )
        )
    print(banner("E-hyst — dead-band FET: reach (t95) and retain (settle mean)"))
    print(format_table(
        ["band", "epsilon", "reached 95%", "t95 (median)", "retention"],
        [
            [b, e, f"{reached}/{trials}", "-" if t is None else t, round(r, 3) if r == r else "-"]
            for b, e, reached, trials, t, r in rows
        ],
    ))
    print("\nReading: no band retains consensus under noise (retention ~0.5),")
    print("and noiseless convergence slows (band 2) or stalls (band >= 4):")
    print("FET's bare tie rule is a forced design, not an oversight.")
    write_rows(
        results_path("hysteresis_ablation.csv"),
        ("band", "epsilon", "reached", "trials", "t95", "retention"),
        rows,
    )

    by_key = {(b, e): (reached, trials, t, r) for b, e, reached, trials, t, r in rows}
    # Noiseless: band 0 converges fast and retains; large band stalls.
    reached, trials, _, retain = by_key[(0, 0.0)]
    assert reached == trials and retain > 0.999
    assert by_key[(8, 0.0)][0] == 0
    # Under noise: reach works for small bands, retention fails for all.
    assert by_key[(0, 0.01)][0] == by_key[(0, 0.01)][1]
    for band in bands:
        reached, _, _, retain = by_key[(band, 0.01)]
        if reached:
            assert retain < 0.9, f"band={band} unexpectedly retained consensus"


def test_adaptivity(benchmark):
    """E-adapt — the title claim, quantified: the correct opinion flips every
    `period` rounds and the population re-adapts; the lag per flip is one
    Cyan-bounce episode and does not degrade over repeated changes."""
    from repro.experiments.adaptivity import run_changing_environment

    n = 2000
    ell = ell_for(n)
    periods = [10, 30, 80, 200]

    def build():
        return [
            run_changing_environment(n, ell, period=p, flips=8, seed=100 + p)
            for p in periods
        ]

    results = run_once(benchmark, build)
    print(banner(f"E-adapt — changing environment, n={n}, 8 flips per setting"))
    print(format_table(
        ["flip period", "mean lag", "max lag", "missed", "time correct"],
        [
            [r.period, round(r.mean_lag, 2), r.max_lag, r.missed,
             f"{r.correct_time_fraction:.1%}"]
            for r in results
        ],
    ))
    print("\nReading: each environmental change costs one Cyan-bounce episode")
    print("(a few rounds); with changes slower than that, the population is")
    print("correct almost all the time — 'early adapting to trends' at work.")
    write_rows(
        results_path("adaptivity.csv"),
        ("period", "mean_lag", "max_lag", "missed", "correct_fraction"),
        [(r.period, r.mean_lag, r.max_lag, r.missed, r.correct_time_fraction) for r in results],
    )

    by_period = {r.period: r for r in results}
    # Slow environments: never miss, high correctness.
    assert by_period[80].missed == 0
    assert by_period[200].missed == 0
    assert by_period[200].correct_time_fraction > 0.95
    # Correct-time fraction increases with the period.
    fracs = [by_period[p].correct_time_fraction for p in periods]
    assert fracs == sorted(fracs)
