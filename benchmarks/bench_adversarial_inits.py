"""E-adv — self-stabilization: convergence from every adversarial start class.

Paper claim: FET converges from an *arbitrary* initial configuration
(opinions and internal counters both adversarial). We measure convergence
time per initializer class, including the structurally hardest one the
analysis identifies — the zero-speed Yellow centre (x_t = x_{t+1} = 1/2) —
and the most misleading counter state (poisoned counters).
"""

from __future__ import annotations

from bench_common import banner, results_path, run_once
from repro.analysis.theory import theorem1_bound
from repro.experiments.harness import run_trials
from repro.initializers.adversarial import PoisonedCounters, TwoRoundTarget, ZeroSpeedCenter
from repro.initializers.standard import AllCorrect, AllWrong, BernoulliRandom, ExactFraction
from repro.protocols.fet import FETProtocol, ell_for
from repro.viz.csv_out import write_rows
from repro.viz.tables import format_table

N = 2048
TRIALS = 15

INITIALIZERS = [
    AllCorrect(),
    AllWrong(),
    BernoulliRandom(0.5),
    ExactFraction(0.25),
    ZeroSpeedCenter(),
    PoisonedCounters(),
    TwoRoundTarget(0.9, 0.1),  # violent downward trend toward the wrong side
    TwoRoundTarget(0.1, 0.9),  # violent upward trend toward the correct side
]


def test_adversarial_initializations(benchmark):
    max_rounds = int(60 * theorem1_bound(N))

    def build():
        out = []
        for index, initializer in enumerate(INITIALIZERS):
            stats = run_trials(
                lambda: FETProtocol(ell_for(N)),
                N,
                initializer,
                trials=TRIALS,
                max_rounds=max_rounds,
                seed=100 + index,
            )
            out.append(stats)
        return out

    all_stats = run_once(benchmark, build)
    print(banner(f"Self-stabilization — FET from adversarial starts, n={N}"))
    rows = []
    csv_rows = []
    for stats in all_stats:
        summary = stats.time_summary()
        rows.append(
            [
                stats.initializer_name,
                stats.row()["success"],
                summary.median,
                summary.mean,
                summary.p95,
                summary.maximum,
            ]
        )
        csv_rows.append(
            (stats.initializer_name, stats.successes, stats.trials, summary.median, summary.maximum)
        )
    print(format_table(["initializer", "success", "median", "mean", "p95", "max"], rows))
    print(f"\npaper bound scale ln^2.5(n) = {theorem1_bound(N):.1f} rounds")
    write_rows(
        results_path("adversarial_inits.csv"),
        ("initializer", "successes", "trials", "median", "max"),
        csv_rows,
    )

    for stats in all_stats:
        assert stats.successes == stats.trials, f"{stats.initializer_name} failed"
    # The all-correct start must be (near-)instant: at most a couple of
    # settling rounds caused by adversarial counters.
    ordered = {s.initializer_name: s for s in all_stats}
    assert ordered["all-correct"].time_summary().maximum <= 25
