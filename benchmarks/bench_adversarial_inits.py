"""E-adv — self-stabilization: convergence from every adversarial start class.

Paper claim: FET converges from an *arbitrary* initial configuration
(opinions and internal counters both adversarial). We measure convergence
time per initializer class, including the structurally hardest one the
analysis identifies — the zero-speed Yellow centre (x_t = x_{t+1} = 1/2) —
and the most misleading counter state (poisoned counters).

Every condition is a declarative :class:`~repro.config.RunSpec` cell built
from registry components (initializers by name, the population layout as a
``population`` component), validated through ``validate_cell`` exactly like
a sweep cell — no hand-built objects. The Section-1.2 impossibility witness
(frozen unanimity on the ``majority`` population variant) rides along as a
negative control: it must *never* converge.
"""

from __future__ import annotations

from bench_common import banner, results_path, run_once
from repro.analysis.theory import theorem1_bound
from repro.config import RunSpec
from repro.sweep.registry import validate_cell
from repro.viz.csv_out import write_rows
from repro.viz.tables import format_table

N = 2048
TRIALS = 15

INITIALIZERS = [
    {"name": "all-correct"},
    {"name": "all-wrong"},
    {"name": "bernoulli", "p": 0.5},
    {"name": "fraction", "x": 0.25},
    {"name": "zero-speed-center"},
    {"name": "poisoned-counters"},
    # violent downward trend toward the wrong side
    {"name": "two-round", "x_prev": 0.9, "x_now": 0.1},
    # violent upward trend toward the correct side
    {"name": "two-round", "x_prev": 0.1, "x_now": 0.9},
]


def _cells(max_rounds: int) -> list[RunSpec]:
    cells = [
        RunSpec(
            protocol={"name": "fet"},
            n=N,
            initializer=initializer,
            trials=TRIALS,
            max_rounds=max_rounds,
            seed=100 + index,
            population={"name": "standard"},
        )
        for index, initializer in enumerate(INITIALIZERS)
    ]
    for cell in cells:
        validate_cell(cell)
    return cells


def _impossibility_cell() -> RunSpec:
    # Section 1.2: all agents frozen at unanimity on the majority variant —
    # indistinguishable observations, so no passive protocol ever escapes.
    cell = RunSpec(
        protocol={"name": "fet"},
        n=256,
        initializer={"name": "frozen-unanimity", "opinion": 1},
        population={"name": "majority", "k0": 3, "k1": 2},
        correct_opinion=0,
        trials=5,
        max_rounds=200,
        seed=99,
        engine="sequential",
    )
    validate_cell(cell)
    return cell


def test_adversarial_initializations(benchmark):
    max_rounds = int(60 * theorem1_bound(N))

    def build():
        return [cell.execute() for cell in _cells(max_rounds)]

    all_stats = run_once(benchmark, build)
    print(banner(f"Self-stabilization — FET from adversarial starts, n={N}"))
    rows = []
    csv_rows = []
    for stats in all_stats:
        summary = stats.time_summary()
        rows.append(
            [
                stats.initializer_name,
                stats.row()["success"],
                summary.median,
                summary.mean,
                summary.p95,
                summary.maximum,
            ]
        )
        csv_rows.append(
            (stats.initializer_name, stats.successes, stats.trials, summary.median, summary.maximum)
        )
    print(format_table(["initializer", "success", "median", "mean", "p95", "max"], rows))
    print(f"\npaper bound scale ln^2.5(n) = {theorem1_bound(N):.1f} rounds")
    write_rows(
        results_path("adversarial_inits.csv"),
        ("initializer", "successes", "trials", "median", "max"),
        csv_rows,
    )

    for stats in all_stats:
        assert stats.successes == stats.trials, f"{stats.initializer_name} failed"
    # The all-correct start must be (near-)instant: at most a couple of
    # settling rounds caused by adversarial counters.
    ordered = {s.initializer_name: s for s in all_stats}
    assert ordered["all-correct"].time_summary().maximum <= 25


def test_impossibility_witness():
    stats = _impossibility_cell().execute()
    print(banner("Impossibility witness — frozen unanimity, majority variant"))
    print(f"{stats.initializer_name}: {stats.successes}/{stats.trials} converged (must be 0)")
    assert stats.successes == 0
