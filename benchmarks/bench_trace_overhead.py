"""E-trace — trace-recording overhead on the batched engine.

Not a paper artifact: this benchmark tracks the *measurement machinery*. The
trace subsystem hooks the batched engine's round loop (per-round one-fraction
capture; optionally a flip channel that costs an extra opinion-matrix compare
per round); this benchmark quantifies what that recording costs relative to
the untraced batched run the consensus tables use.

It is also the first benchmark expressed as a :class:`~repro.sweep.SweepSpec`
grid instead of an ad-hoc ``run_trials`` loop (the ROADMAP "migrate the
benchmark suite" step): the grid is declared once, expanded into cells, and
each cell is timed through the orchestrator's own pure
:func:`~repro.sweep.runner.execute_cell` worker. The traced variant of every
cell is the *same* cell (same derived seed, hence identical initial
conditions and dynamics stream) with its measure swapped from ``consensus``
to ``trace`` — so traced minus untraced isolates recording cost exactly.

Emits ``results/BENCH_trace.json``. The acceptance line: x-only trace
recording adds at most 25% over the untraced batched run on the headline
cell (n=1000, trials=300, random start).

Run directly (``PYTHONPATH=src python benchmarks/bench_trace_overhead.py``)
or through pytest-benchmark.
"""

from __future__ import annotations

import dataclasses
import json
import sys
import time

from bench_common import banner, results_path, run_once
from repro.sweep import SweepSpec
from repro.sweep.runner import execute_cell
from repro.viz.tables import format_table

SEED = 20260729
MAX_ROUNDS = 2000
TRIALS = 300
#: timing repetitions per variant; min-of-k filters scheduler noise
REPEATS = 3

#: The declarative grid: FET across two sizes from the random start (the
#: workload where per-round cost dominates and recording overhead is most
#: visible). The n=1000 row is the acceptance headline.
SPEC = SweepSpec(
    name="trace-overhead",
    seed=SEED,
    trials=TRIALS,
    axes={
        "protocol": ["fet"],
        "n": [300, 1000],
        "initializer": [{"name": "bernoulli", "p": 0.5}],
    },
    max_rounds=MAX_ROUNDS,
    engine="batched",
)

#: Measure variants timed per cell. ``consensus`` is the untraced baseline;
#: the trace variants reuse the same cell seed so the dynamics are identical.
VARIANTS = [
    ("untraced", {"kind": "consensus"}),
    ("trace-x", {"kind": "trace"}),
    ("trace-x+flips", {"kind": "trace", "flips": True}),
    ("trace-ring64", {"kind": "trace", "ring": 64}),
]


def _time_cell(cell) -> tuple[float, dict]:
    seconds = float("inf")
    payload = {}
    for _ in range(REPEATS):
        start = time.perf_counter()
        payload = execute_cell(cell).payload
        seconds = min(seconds, time.perf_counter() - start)
    return seconds, payload


def run_benchmark() -> list[dict]:
    rows = []
    for cell in SPEC.expand():
        baseline = None
        for label, measure in VARIANTS:
            # Same seed => identical initial batch and dynamics stream; only
            # the recording differs, so the delta is pure trace overhead.
            variant = dataclasses.replace(cell, measure=measure)
            seconds, payload = _time_cell(variant)
            if label == "untraced":
                baseline = seconds
            rows.append(
                {
                    "n": cell.n,
                    "trials": cell.trials,
                    "variant": label,
                    "successes": payload.get("successes"),
                    "seconds": round(seconds, 4),
                    "overhead_pct": round(100.0 * (seconds / baseline - 1.0), 1),
                }
            )
    return rows


def report(rows: list[dict]) -> None:
    print(banner("Trace-recording overhead — batched engine (FET, SweepSpec grid)"))
    print(
        format_table(
            ["n", "trials", "variant", "success", "sec", "overhead %"],
            [
                [
                    row["n"],
                    row["trials"],
                    row["variant"],
                    f"{row['successes']}/{row['trials']}",
                    row["seconds"],
                    row["overhead_pct"],
                ]
                for row in rows
            ],
        )
    )
    headline = _headline(rows)
    if headline:
        print(
            f"\nheadline (n=1000, trials={TRIALS}, random start): "
            f"{headline['overhead_pct']}% x-only trace overhead (target <= 25%)"
        )
    path = results_path("BENCH_trace.json")
    path.write_text(
        json.dumps(
            {
                "spec": SPEC.to_dict(),
                "repeats": REPEATS,
                "cells": rows,
                "headline_overhead_pct": headline["overhead_pct"] if headline else None,
            },
            indent=2,
        )
    )
    print(f"wrote {path}")


def _headline(rows: list[dict]) -> dict | None:
    for row in rows:
        if row["n"] == 1000 and row["variant"] == "trace-x":
            return row
    return None


def test_trace_overhead(benchmark):
    rows = run_once(benchmark, run_benchmark)
    report(rows)
    headline = _headline(rows)
    assert headline is not None
    # Acceptance: x-only recording must stay within 25% of the untraced run.
    assert headline["overhead_pct"] <= 25.0
    # Identical seeds => identical dynamics: the traced and untraced variants
    # of a cell must agree exactly on the outcome they both compute.
    by_cell: dict[int, dict[str, dict]] = {}
    for row in rows:
        by_cell.setdefault(row["n"], {})[row["variant"]] = row
    for variants in by_cell.values():
        assert variants["trace-x"]["successes"] == variants["untraced"]["successes"]


if __name__ == "__main__":
    report(run_benchmark())
    sys.exit(0)
