"""F1b + L1–L5 — regenerate Figure 1b: the domain-transition diagram.

Paper artifact: Figure 1b sketches the proof of Theorem 1 as transitions
between domains with dwell-time annotations (Lemmas 1–5): Yellow is left in
O(log^{5/2} n) rounds, Red in log^{1/2+2δ} n, Cyan in log n / log log n,
Purple and Green in one round, Cyan exits into Green ∪ Purple, Purple exits
into Green, Green1 exits into the (1,1) consensus.

We run FET from a battery of adversarial starts, classify every consecutive
pair, and print the empirical dwell times and the transition frequency
matrix — the measured counterpart of the diagram — next to the paper's
per-lemma bounds.
"""

from __future__ import annotations

from bench_common import banner, results_path, run_once
from repro.analysis.theory import (
    cyan_dwell_bound,
    green_dwell_bound,
    purple_dwell_bound,
    red_dwell_bound,
    yellow_dwell_bound,
)
from repro.experiments.transitions import collect_transitions
from repro.initializers.adversarial import PoisonedCounters, TwoRoundTarget, ZeroSpeedCenter
from repro.initializers.standard import AllWrong, BernoulliRandom
from repro.protocols.fet import ell_for
from repro.viz.csv_out import write_rows
from repro.viz.tables import format_table

N = 2000
TRIALS_PER_INIT = 12

INITIALIZERS = [
    AllWrong(),
    BernoulliRandom(0.5),
    ZeroSpeedCenter(),
    PoisonedCounters(),
    TwoRoundTarget(0.9, 0.1),
    TwoRoundTarget(0.25, 0.25),
]


def test_fig1b_domain_transitions(benchmark):
    def build():
        return collect_transitions(
            N,
            ell_for(N),
            INITIALIZERS,
            trials_per_init=TRIALS_PER_INIT,
            max_rounds=5000,
            seed=2022,
        )

    summary = run_once(benchmark, build)
    print(banner(f"Figure 1b — empirical domain transitions, n={N}, {summary.runs} runs"))

    bounds = {
        "Green": green_dwell_bound(N),
        "Purple": purple_dwell_bound(N),
        "Red": red_dwell_bound(N),
        "Cyan": cyan_dwell_bound(N),
        "Yellow": yellow_dwell_bound(N, 1.0),
    }
    dwell_rows = []
    for family in sorted(summary.dwell_times):
        dwell_rows.append(
            [
                family,
                len(summary.dwell_times[family]),
                round(summary.mean_dwell(family), 2),
                summary.max_dwell(family),
                round(bounds.get(family, float("nan")), 2),
            ]
        )
    print("\nDwell times per domain family (paper bound = big-O shape, constant 1):")
    print(format_table(["family", "visits", "mean dwell", "max dwell", "paper bound"], dwell_rows))

    families = summary.families()
    trans_rows = []
    for src in families:
        row = [src]
        for dst in families:
            p = summary.transition_probability(src, dst)
            row.append("-" if p != p else f"{p:.2f}")
        trans_rows.append(row)
    print("\nTransition frequencies P(next family | leaving family):")
    print(format_table(["from \\ to"] + families, trans_rows))

    write_rows(
        results_path("fig1b_transitions.csv"),
        ("from", "to", "count"),
        [(src, dst, cnt) for (src, dst), cnt in sorted(summary.transitions.items())],
    )

    # The diagram's structural claims, measured:
    assert summary.converged_runs == summary.runs
    # Cyan exits overwhelmingly into Green or Purple (Lemma 4).
    cyan_out = sum(
        summary.transition_probability("Cyan", dst)
        for dst in ("Green", "Purple")
        if summary.transition_probability("Cyan", dst) == summary.transition_probability("Cyan", dst)
    )
    assert cyan_out > 0.9
    # Purple exits into Green (Lemma 2).
    p_purple_green = summary.transition_probability("Purple", "Green")
    if p_purple_green == p_purple_green:  # Purple may be skipped entirely
        assert p_purple_green > 0.8
    # Dwell bounds hold with the trivial constant for everything but Green
    # (Green dwell can be 2 when side-0 consensus needs a second hop).
    assert summary.max_dwell("Cyan") <= cyan_dwell_bound(N) + 2
    assert summary.max_dwell("Yellow") <= yellow_dwell_bound(N, 1.0)
