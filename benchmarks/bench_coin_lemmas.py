"""E-coins — numeric verification of the coin-competition lemmas (App. A.2).

For each of the paper's four bounds we sweep a parameter grid, compare the
bound against the exact probability (pmf convolution), and report the worst
margin. Every margin must be on the correct side.

* Lemma 13 (Hoeffding): P(B_k(p) < B_k(q)) ≥ 1 − e^{−k(q−p)²/2}.
* Lemma 15 (Berry–Esseen): P(B_k(p) > B_k(q)) ≥ 1 − Φ(√k(q−p)/σ) − C/(σ√k).
* Lemma 12: P(B_k(p) < B_k(q)) < 1/2 + α(q−p)√k − P(tie)/2 for close coins.
* Claim 10: E|B_k(p) − B_k(q)| ≤ √(2k q(1−q)) + k(q−p).
"""

from __future__ import annotations

import math

from bench_common import banner, results_path, run_once
from repro.analysis.coins import (
    berry_esseen_underdog_bound,
    compare_binomials,
    exact_expected_abs_difference,
    expected_abs_difference_bound,
    hoeffding_favorite_bound,
    lemma12_upper_bound,
)
from repro.viz.csv_out import write_rows
from repro.viz.tables import format_table

KS = [8, 16, 32, 64, 128, 256]
GAPS = [0.02, 0.05, 0.1, 0.2]
BASE_P = 0.4


def test_lemma13_hoeffding(benchmark):
    def build():
        rows = []
        for k in KS:
            for gap in GAPS:
                p, q = BASE_P, BASE_P + gap
                exact = compare_binomials(k, p, q).p_second_wins
                bound = hoeffding_favorite_bound(k, p, q)
                rows.append((k, gap, exact, bound, exact - bound))
        return rows

    rows = run_once(benchmark, build)
    print(banner("Lemma 13 — Hoeffding favourite-wins lower bound"))
    worst = min(rows, key=lambda r: r[4])
    print(format_table(
        ["k", "gap", "exact P(p<q)", "bound", "margin"],
        [[k, g, round(e, 4), round(b, 4), round(m, 4)] for k, g, e, b, m in rows[:8]],
    ))
    print(f"... {len(rows)} grid points; worst margin {worst[4]:.4f} at k={worst[0]}, gap={worst[1]}")
    write_rows(results_path("lemma13.csv"), ("k", "gap", "exact", "bound", "margin"), rows)
    assert worst[4] >= -1e-12


def test_lemma15_berry_esseen(benchmark):
    def build():
        rows = []
        for k in KS:
            for gap in GAPS:
                p, q = BASE_P, BASE_P + gap
                exact = compare_binomials(k, p, q).p_first_wins
                bound = berry_esseen_underdog_bound(k, p, q)
                rows.append((k, gap, exact, bound, exact - bound))
        return rows

    rows = run_once(benchmark, build)
    print(banner("Lemma 15 — Berry–Esseen underdog-wins lower bound"))
    worst = min(rows, key=lambda r: r[4])
    informative = sum(1 for r in rows if r[3] > 0)
    print(f"{len(rows)} grid points; bound informative (positive) at {informative};"
          f" worst margin {worst[4]:.4f}")
    write_rows(results_path("lemma15.csv"), ("k", "gap", "exact", "bound", "margin"), rows)
    assert worst[4] >= -1e-12


def test_lemma12_close_coins(benchmark):
    def build():
        rows = []
        for k in KS:
            for frac in (0.2, 0.5, 1.0):
                p = 0.45
                q = p + frac / math.sqrt(k)
                if q > 2 / 3:
                    continue
                exact = compare_binomials(k, p, q).p_second_wins
                bound = lemma12_upper_bound(k, p, q)
                rows.append((k, round(q - p, 5), exact, bound, bound - exact))
        return rows

    rows = run_once(benchmark, build)
    print(banner("Lemma 12 — close-coins upper bound (alpha = 9)"))
    worst = min(rows, key=lambda r: r[4])
    print(format_table(
        ["k", "gap", "exact P(p<q)", "bound", "slack"],
        [[k, g, round(e, 4), round(b, 4), round(s, 4)] for k, g, e, b, s in rows[:8]],
    ))
    print(f"... {len(rows)} grid points; worst slack {worst[4]:.4f}")
    write_rows(results_path("lemma12.csv"), ("k", "gap", "exact", "bound", "slack"), rows)
    assert worst[4] >= -1e-12


def test_claim10_expected_difference(benchmark):
    def build():
        rows = []
        for k in KS:
            for gap in GAPS:
                p, q = BASE_P, BASE_P + gap
                exact = exact_expected_abs_difference(k, p, q)
                bound = expected_abs_difference_bound(k, p, q)
                rows.append((k, gap, exact, bound, bound - exact))
        return rows

    rows = run_once(benchmark, build)
    print(banner("Claim 10 — expected |difference| upper bound"))
    worst = min(rows, key=lambda r: r[4])
    print(f"{len(rows)} grid points; worst slack {worst[4]:.4f}")
    write_rows(results_path("claim10.csv"), ("k", "gap", "exact", "bound", "slack"), rows)
    assert worst[4] >= -1e-12
