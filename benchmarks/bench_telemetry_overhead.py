"""E-telemetry — observability overhead on the batched engine.

Not a paper artifact: this benchmark prices the telemetry seams added for
the sweep observability stack (metrics registry, span tracer, event log).
Every instrumented hot path is ambient and off by default — a ContextVar
read plus a ``None`` check — so the "off" variant must run at effectively
the untelemetered engine's speed, while the fully-instrumented variant
(metrics + spans + events, i.e. what ``repro sweep --metrics-out
--trace-out --events-out`` turns on) must stay within the same 25% bound
the trace-overhead benchmark enforces for recording.

Same declarative shape as ``bench_trace_overhead``: one SweepSpec grid,
every variant of a cell reuses the *same* derived seed (identical dynamics
stream), timing through :class:`~repro.sweep.runner.MeteredCell` — the
exact wrapper the orchestrator installs — so the deltas isolate telemetry
cost, not workload drift.

Emits ``results/BENCH_telemetry.json``. Acceptance lines: the telemetry-off
run regresses at most 5% against the ``BENCH_engine.json`` batched
throughput baseline, and the full metrics+spans+events variant costs at
most 25% over telemetry-off on the headline cell (n=1000, trials=300,
random start).

Run directly (``PYTHONPATH=src python benchmarks/bench_telemetry_overhead.py``)
or through pytest-benchmark.
"""

from __future__ import annotations

import json
import sys
import time

from bench_common import banner, results_path, run_once
from repro.sweep import SweepSpec
from repro.sweep.runner import MeteredCell, execute_cell
from repro.viz.tables import format_table

SEED = 20260808
MAX_ROUNDS = 2000
TRIALS = 300
#: timing repetitions per variant; min-of-k filters scheduler noise
REPEATS = 3

#: Same workload as the trace-overhead benchmark: FET from the random
#: start, where per-round cost dominates and per-round instrumentation
#: (draw_tier spans, engine counters) fires most often.
SPEC = SweepSpec(
    name="telemetry-overhead",
    seed=SEED,
    trials=TRIALS,
    axes={
        "protocol": ["fet"],
        "n": [300, 1000],
        "initializer": [{"name": "bernoulli", "p": 0.5}],
    },
    max_rounds=MAX_ROUNDS,
    engine="batched",
)

#: Worker variants. ``off`` is the bare cell executor (the telemetry-off
#: sweep path); the rest wrap it in MeteredCell with the same flag
#: combinations the orchestrator uses for --metrics-out / --trace-out /
#: the full observability CLI.
VARIANTS = [
    ("off", None),
    ("metrics", dict(metrics=True, spans=False, events=False)),
    ("spans", dict(metrics=False, spans=True, events=False)),
    ("full", dict(metrics=True, spans=True, events=True)),
]


def _worker(flags: dict | None):
    if flags is None:
        return execute_cell
    return MeteredCell(execute_cell, **flags)


def _time_cell(cell, flags: dict | None) -> tuple[float, object]:
    worker = _worker(flags)
    seconds = float("inf")
    result = None
    for _ in range(REPEATS):
        start = time.perf_counter()
        result = worker(cell)
        seconds = min(seconds, time.perf_counter() - start)
    return seconds, result


def _engine_baseline() -> float | None:
    """Batched trials/s for the headline workload from BENCH_engine.json."""
    path = results_path("BENCH_engine.json")
    if not path.exists():
        return None
    payload = json.loads(path.read_text())
    for row in payload.get("cells", []):
        if (
            row.get("engine") == "batched"
            and row.get("n") == 1000
            and "bernoulli" in str(row.get("init", ""))
        ):
            return float(row["trials_per_sec"])
    return None


def run_benchmark() -> list[dict]:
    rows = []
    for cell in SPEC.expand():
        baseline = None
        for label, flags in VARIANTS:
            seconds, result = _time_cell(cell, flags)
            if label == "off":
                baseline = seconds
            span_count = None
            if result.spans is not None:
                span_count = len(result.spans["records"])
            rows.append(
                {
                    "n": cell.n,
                    "trials": cell.trials,
                    "variant": label,
                    "successes": result.payload.get("successes"),
                    "seconds": round(seconds, 4),
                    "trials_per_sec": round(cell.trials / seconds, 1),
                    "overhead_pct": round(100.0 * (seconds / baseline - 1.0), 1),
                    "spans_recorded": span_count,
                }
            )
    return rows


def _row(rows: list[dict], n: int, variant: str) -> dict | None:
    for row in rows:
        if row["n"] == n and row["variant"] == variant:
            return row
    return None


def report(rows: list[dict]) -> None:
    print(banner("Telemetry overhead — batched engine (FET, SweepSpec grid)"))
    print(
        format_table(
            ["n", "trials", "variant", "success", "sec", "trials/s", "overhead %", "spans"],
            [
                [
                    row["n"],
                    row["trials"],
                    row["variant"],
                    f"{row['successes']}/{row['trials']}",
                    row["seconds"],
                    row["trials_per_sec"],
                    row["overhead_pct"],
                    row["spans_recorded"] if row["spans_recorded"] is not None else "-",
                ]
                for row in rows
            ],
        )
    )
    full = _row(rows, 1000, "full")
    off = _row(rows, 1000, "off")
    engine_baseline = _engine_baseline()
    off_regression_pct = None
    if engine_baseline is not None and off is not None:
        off_regression_pct = round(100.0 * (1.0 - off["trials_per_sec"] / engine_baseline), 1)
    if full is not None:
        print(
            f"\nheadline (n=1000, trials={TRIALS}, random start): "
            f"{full['overhead_pct']}% full metrics+spans+events overhead "
            "(target <= 25%)"
        )
    if off_regression_pct is not None:
        print(
            f"telemetry-off vs BENCH_engine batched baseline: "
            f"{off_regression_pct}% regression (target <= 5%; negative = faster)"
        )
    path = results_path("BENCH_telemetry.json")
    path.write_text(
        json.dumps(
            {
                "spec": SPEC.to_dict(),
                "repeats": REPEATS,
                "cells": rows,
                "headline_full_overhead_pct": full["overhead_pct"] if full else None,
                "engine_baseline_trials_per_sec": engine_baseline,
                "off_vs_engine_regression_pct": off_regression_pct,
            },
            indent=2,
        )
    )
    print(f"wrote {path}")


def test_telemetry_overhead(benchmark):
    rows = run_once(benchmark, run_benchmark)
    report(rows)
    full = _row(rows, 1000, "full")
    assert full is not None
    # Acceptance: full observability stays within 25% of telemetry-off.
    assert full["overhead_pct"] <= 25.0
    # Identical seeds => identical dynamics: instrumentation must never
    # change the computed outcome.
    for n in (300, 1000):
        off = _row(rows, n, "off")
        for variant in ("metrics", "spans", "full"):
            assert _row(rows, n, variant)["successes"] == off["successes"]
    # Span variants actually recorded spans (the seam was live).
    assert _row(rows, 1000, "spans")["spans_recorded"] > 0
    assert _row(rows, 1000, "off")["spans_recorded"] is None


if __name__ == "__main__":
    report(run_benchmark())
    sys.exit(0)
