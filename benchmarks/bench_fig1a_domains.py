"""F1a — regenerate Figure 1a: the domain partition of the grid G.

Paper artifact: Figure 1a partitions the (x_t, x_{t+1}) unit square into
Green / Purple / Red / Cyan / Yellow (Section 2.1). We regenerate it as an
ASCII map plus a CSV grid of per-cell labels, at the paper's asymptotic
parameters, for two population sizes. The n = 10⁶ map shows the Red sliver;
at n = 1000 Red1 is empty (λ_n > δ/x for all admissible x) — a finite-size
artifact recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from collections import Counter

from bench_common import banner, results_path, run_once
from repro.analysis.domains import Domain, DomainPartition
from repro.viz.ascii_grid import render_domain_map
from repro.viz.csv_out import write_domain_grid


def _census(partition: DomainPartition, resolution: int = 101) -> Counter:
    _, _, labels = partition.grid_labels(resolution)
    return Counter(label.family for row in labels for label in row)


def test_fig1a_domain_map_moderate_n(benchmark):
    partition = DomainPartition(n=1000, delta=0.05)

    def build():
        art = render_domain_map(partition, resolution=61)
        write_domain_grid(results_path("fig1a_domains_n1000.csv"), partition)
        return art, _census(partition)

    art, census = run_once(benchmark, build)
    print(banner("Figure 1a — domain partition, n=1000, delta=0.05"))
    print(art)
    print("cell census:", dict(census))
    # Structural checks against the paper's figure.
    assert census["Green"] > 0 and census["Yellow"] > 0
    assert census["Cyan"] > 0 and census["Purple"] > 0
    assert census["Red"] == 0  # finite-size artifact, see EXPERIMENTS.md
    assert partition.classify(0.5, 0.5) is Domain.YELLOW


def test_fig1a_domain_map_large_n(benchmark):
    partition = DomainPartition(n=10**6, delta=0.05)

    def build():
        art = render_domain_map(partition, resolution=61)
        write_domain_grid(results_path("fig1a_domains_n1e6.csv"), partition)
        return art, _census(partition, resolution=201)

    art, census = run_once(benchmark, build)
    print(banner("Figure 1a — domain partition, n=1e6, delta=0.05"))
    print(art)
    print("cell census:", dict(census))
    # At n = 1e6 the Red sliver exists, as drawn in the paper's figure.
    assert census["Red"] > 0
    assert census["Green"] > census["Yellow"]
