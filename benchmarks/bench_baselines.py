"""E-base — FET against every comparison protocol.

Paper context (Sections 1.1–1.4): classic opinion dynamics are passive but
fail source-driven self-stabilizing dissemination; the prior bit-dissemination
protocols are fast but rely on decoupled messages (non-passive) or an oracle
clock. This benchmark measures all of them from the all-wrong adversarial
start and prints the comparison the paper makes qualitatively:

* FET (passive, self-contained)           — converges, poly-log.
* simple-trend (passive)                  — converges, poly-log (ablation).
* voter / 3-majority / sample-majority /
  undecided-state (passive dynamics)      — fail: locked on the wrong side.
* oracle-clock (passive, oracle clock)    — converges in O(log n), but the
                                            shared clock is an oracle.
* clock-sync (decoupled messages)         — converges, but is not passive.
"""

from __future__ import annotations

from bench_common import banner, results_path, run_once
from repro.experiments.harness import run_trials
from repro.initializers.standard import AllWrong
from repro.protocols.clock_sync import ClockSyncProtocol
from repro.protocols.fet import FETProtocol, ell_for
from repro.protocols.majority import MajorityProtocol
from repro.protocols.majority_sampling import MajoritySamplingProtocol
from repro.protocols.oracle_clock import OracleClockProtocol
from repro.protocols.simple_trend import SimpleTrendProtocol
from repro.protocols.undecided import UndecidedStateProtocol
from repro.protocols.voter import VoterProtocol
from repro.viz.csv_out import write_rows
from repro.viz.tables import format_table

N = 2048
TRIALS = 10
# Budget: a small multiple of the theorem's log^{5/2} n scale. The question
# the paper asks is "who converges in poly-log time?" — dynamics like the
# voter model *do* eventually reach the source's consensus, but on a
# polynomial (~n) timescale, which this budget excludes by construction.
MAX_ROUNDS = 650  # ~ 3 * ln(2048)^2.5


def _factories():
    ell = ell_for(N)
    return [
        ("FET", True, lambda: FETProtocol(ell)),
        ("simple-trend", True, lambda: SimpleTrendProtocol(ell)),
        ("voter", True, lambda: VoterProtocol()),
        ("3-majority", True, lambda: MajorityProtocol(3)),
        ("sample-majority", True, lambda: MajoritySamplingProtocol(ell)),
        ("undecided-state", True, lambda: UndecidedStateProtocol()),
        ("oracle-clock", True, lambda: OracleClockProtocol(N, ell=1)),
        ("clock-sync", False, lambda: ClockSyncProtocol(N, ell)),
    ]


def test_baseline_comparison(benchmark):
    def build():
        out = []
        for index, (label, passive, factory) in enumerate(_factories()):
            stats = run_trials(
                factory,
                N,
                AllWrong(),
                trials=TRIALS,
                max_rounds=MAX_ROUNDS,
                seed=500 + index,
            )
            out.append((label, passive, factory().describe(), stats))
        return out

    results = run_once(benchmark, build)
    print(banner(f"Baselines — all protocols from the all-wrong start, n={N}"))
    rows = []
    csv_rows = []
    for label, passive, desc, stats in results:
        summary = stats.time_summary()
        rows.append(
            [
                label,
                "yes" if passive else "no",
                desc["samples_per_round"],
                stats.row()["success"],
                summary.median,
                summary.p95,
            ]
        )
        csv_rows.append((label, passive, stats.successes, stats.trials, summary.median))
    print(format_table(["protocol", "passive", "samples/rnd", "success", "median T", "p95 T"], rows))
    write_rows(
        results_path("baselines.csv"),
        ("protocol", "passive", "successes", "trials", "median"),
        csv_rows,
    )

    by_label = {label: stats for label, _, _, stats in results}
    # The paper's qualitative table, asserted:
    assert by_label["FET"].successes == TRIALS
    assert by_label["simple-trend"].successes == TRIALS
    assert by_label["oracle-clock"].successes == TRIALS
    assert by_label["clock-sync"].successes == TRIALS
    # Plain consensus dynamics fail the poly-log budget from the
    # wrong-majority start (voter escape is ~Theta(n), the majority-style
    # rules lock the wrong consensus outright; allow one lucky voter trial).
    assert by_label["voter"].successes <= 1
    assert by_label["3-majority"].successes == 0
    assert by_label["sample-majority"].successes == 0
    assert by_label["undecided-state"].successes == 0
    # From the all-wrong start FET's bounce is very fast, while the
    # oracle-clock scheme must wait out its phase structure; both stay within
    # a small multiple of log n.
    import math

    assert by_label["FET"].time_summary().p95 < 5 * math.log(N)
    assert by_label["oracle-clock"].time_summary().p95 < 3 * OracleClockProtocol(N).period
