"""E-base — FET against every comparison protocol.

Paper context (Sections 1.1–1.4): classic opinion dynamics are passive but
fail source-driven self-stabilizing dissemination; the prior bit-dissemination
protocols are fast but rely on decoupled messages (non-passive) or an oracle
clock. This benchmark measures all of them from the all-wrong adversarial
start and prints the comparison the paper makes qualitatively:

* FET (passive, self-contained)           — converges, poly-log.
* simple-trend (passive)                  — converges, poly-log (ablation).
* voter / 3-majority / sample-majority /
  undecided-state (passive dynamics)      — fail: locked on the wrong side.
* oracle-clock (passive, oracle clock)    — converges in O(log n), but the
                                            shared clock is an oracle.
* clock-sync (decoupled messages)         — converges, but is not passive.

The whole lineup is one declarative :class:`~repro.sweep.spec.SweepSpec`
grid over the protocol axis, run through the sweep orchestrator — so the
table parallelizes over ``REPRO_BENCH_JOBS`` worker processes and can
persist/resume through ``REPRO_BENCH_STORE`` (see ``bench_common``).
"""

from __future__ import annotations

import math

from bench_common import banner, results_path, run_once, sweep_knobs
from repro.experiments.harness import TrialStats
from repro.protocols.fet import ell_for
from repro.protocols.oracle_clock import OracleClockProtocol
from repro.sweep import SweepSpec, run_sweep
from repro.viz.csv_out import write_rows
from repro.viz.tables import format_table

N = 2048
TRIALS = 10
# Budget: a small multiple of the theorem's log^{5/2} n scale. The question
# the paper asks is "who converges in poly-log time?" — dynamics like the
# voter model *do* eventually reach the source's consensus, but on a
# polynomial (~n) timescale, which this budget excludes by construction.
MAX_ROUNDS = 650  # ~ 3 * ln(2048)^2.5

#: (table label, passive?, protocol component) — one grid cell per row, in
#: axis order. ℓ-protocols default to the paper rule ℓ = ⌈8·ln n⌉ via the
#: registry; clock-sync pins the same ℓ explicitly (its registry default is
#: the minimal ℓ = 1).
LINEUP = [
    ("FET", True, "fet"),
    ("simple-trend", True, "simple-trend"),
    ("voter", True, "voter"),
    ("3-majority", True, {"name": "k-majority", "k": 3}),
    ("sample-majority", True, "sample-majority"),
    ("undecided-state", True, "undecided-state"),
    ("oracle-clock", True, {"name": "oracle-clock", "ell": 1}),
    ("clock-sync", False, {"name": "clock-sync", "ell": ell_for(N)}),
]


def baselines_spec(seed: int = 500) -> SweepSpec:
    return SweepSpec(
        name="baselines",
        seed=seed,
        trials=TRIALS,
        axes={
            "protocol": [component for _, _, component in LINEUP],
            "n": [N],
            "initializer": ["all-wrong"],
        },
        max_rounds=MAX_ROUNDS,
    )


def test_baseline_comparison(benchmark):
    spec = baselines_spec()
    jobs, store = sweep_knobs()

    def build() -> list[TrialStats]:
        outcome = run_sweep(spec, jobs=jobs, store=store)
        return [result.stats() for result in outcome.results]

    stats_by_cell = run_once(benchmark, build)
    print(banner(f"Baselines — all protocols from the all-wrong start, n={N}"))
    rows = []
    csv_rows = []
    by_label: dict[str, TrialStats] = {}
    for (label, passive, _), stats in zip(LINEUP, stats_by_cell):
        by_label[label] = stats
        summary = stats.time_summary()
        rows.append(
            [
                label,
                "yes" if passive else "no",
                stats.protocol_name,
                stats.row()["success"],
                summary.median,
                summary.p95,
            ]
        )
        csv_rows.append((label, passive, stats.successes, stats.trials, summary.median))
    print(format_table(["protocol", "passive", "component", "success", "median T", "p95 T"], rows))
    write_rows(
        results_path("baselines.csv"),
        ("protocol", "passive", "successes", "trials", "median"),
        csv_rows,
    )

    # The paper's qualitative table, asserted:
    assert by_label["FET"].successes == TRIALS
    assert by_label["simple-trend"].successes == TRIALS
    assert by_label["oracle-clock"].successes == TRIALS
    assert by_label["clock-sync"].successes == TRIALS
    # Plain consensus dynamics fail the poly-log budget from the
    # wrong-majority start (voter escape is ~Theta(n), the majority-style
    # rules lock the wrong consensus outright; allow one lucky voter trial).
    assert by_label["voter"].successes <= 1
    assert by_label["3-majority"].successes == 0
    assert by_label["sample-majority"].successes == 0
    assert by_label["undecided-state"].successes == 0
    # From the all-wrong start FET's bounce is very fast, while the
    # oracle-clock scheme must wait out its phase structure; both stay within
    # a small multiple of log n.
    assert by_label["FET"].time_summary().p95 < 5 * math.log(N)
    assert by_label["oracle-clock"].time_summary().p95 < 3 * OracleClockProtocol(N).period
