"""T1 — the headline: Theorem 1's O(log^{5/2} n) convergence-time scaling.

Paper claim: FET with ℓ = Θ(log n) samples per round converges from any
initial configuration in O(log^{5/2} n) rounds w.h.p.

We measure convergence time from the all-wrong adversarial start over a
geometric sweep of n, fit T(n) = a·(ln n)^b, and compare the measured
exponent b against the theorem's upper bound b ≤ 2.5. (The bound is an upper
bound: the measured exponent from benign regions is smaller — the log^{5/2}
cost is paid only by worst-case Yellow starts, which bench_adversarial_inits
probes separately.)

The grid is declared as a :class:`~repro.sweep.spec.SweepSpec`
(``population_scaling_spec``) and run through the sweep orchestrator, so
the table parallelizes over ``REPRO_BENCH_JOBS`` worker processes and can
persist/resume through ``REPRO_BENCH_STORE`` (see ``bench_common``) — the
same cells (and derived seeds) as ``sweep_population_sizes``.
"""

from __future__ import annotations

import math

from bench_common import banner, results_path, run_once, sweep_knobs
from repro.analysis.theory import theorem1_bound
from repro.experiments.convergence import fit_scaling, population_scaling_spec, scaling_rows
from repro.sweep import run_sweep
from repro.viz.csv_out import write_rows
from repro.viz.tables import format_table

NS = [128, 256, 512, 1024, 2048, 4096, 8192, 16384]
TRIALS = 15


def test_theorem1_scaling(benchmark):
    spec = population_scaling_spec(NS, trials=TRIALS, seed=1)
    jobs, store = sweep_knobs()

    def build():
        rows = scaling_rows(run_sweep(spec, jobs=jobs, store=store))
        fit = fit_scaling(rows, statistic="median")
        return rows, fit

    rows, fit = run_once(benchmark, build)
    print(banner("Theorem 1 — convergence-time scaling, all-wrong start"))
    table = []
    csv_rows = []
    for row in rows:
        summary = row.stats.time_summary()
        bound = theorem1_bound(row.n)
        table.append(
            [
                row.n,
                row.ell,
                row.stats.row()["success"],
                summary.median,
                summary.p95,
                summary.maximum,
                round(bound, 1),
                round(summary.median / bound, 3),
            ]
        )
        csv_rows.append(
            (row.n, row.ell, row.stats.successes, row.stats.trials, summary.median, summary.p95)
        )
    print(
        format_table(
            ["n", "ell", "success", "median T", "p95 T", "max T", "ln^2.5 n", "median/bound"],
            table,
        )
    )
    print(
        f"\nfit T(n) = a*(ln n)^b: a={fit.a:.3f}, b={fit.b:.3f}, R^2={fit.r_squared:.3f}"
        f"  (paper upper bound: b <= 2.5)"
    )
    write_rows(
        results_path("theorem1_scaling.csv"),
        ("n", "ell", "successes", "trials", "median", "p95"),
        csv_rows,
    )

    # Every trial at every size must converge within the bound-scaled budget.
    for row in rows:
        assert row.stats.successes == row.stats.trials
    # Shape check: measured exponent within the theorem's upper bound
    # (with a small tolerance for fit noise).
    assert fit.b <= 2.5 + 0.3
    # Growth is genuinely poly-logarithmic: times at the largest n stay tiny
    # relative to n itself.
    largest = rows[-1]
    assert largest.stats.time_summary().p95 < math.log(largest.n) ** 2.5
