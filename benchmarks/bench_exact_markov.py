"""E-markov — Observation 1's exact chain vs. the simulator.

For small n the pair process (x_t, x_{t+1}) is solved exactly: we build the
transition law implied by Observation 1 and compute expected absorption times
into (1, 1) by linear algebra, then check the Monte-Carlo simulator against
them. This is the strongest end-to-end validation of the engine: any
discrepancy in sampling, update rule, or source pinning would surface here.
"""

from __future__ import annotations

import numpy as np

from bench_common import banner, results_path, run_once
from repro.analysis.markov import ExactPairChain
from repro.core.engine import SynchronousEngine
from repro.core.population import make_population
from repro.core.rng import spawn_rngs
from repro.protocols.fet import FETProtocol
from repro.viz.csv_out import write_rows
from repro.viz.tables import format_table

CASES = [(8, 3), (10, 4), (12, 4)]
TRIALS = 400


def _simulate_mean_absorption(n: int, ell: int, trials: int, seed: int) -> float:
    total = 0.0
    for rng in spawn_rngs(seed, trials):
        proto = FETProtocol(ell)
        pop = make_population(n, 1)
        state = {"prev_count": rng.binomial(ell, 1 / n, size=n).astype(np.int64)}
        engine = SynchronousEngine(proto, pop, rng=rng, state=state)
        rounds = 0
        prev_ones = pop.at_correct_consensus()
        while rounds < 5000:
            engine.step()
            rounds += 1
            now_ones = pop.at_correct_consensus()
            if prev_ones and now_ones:
                break
            prev_ones = now_ones
        total += rounds
    return total / trials


def test_exact_chain_vs_simulation(benchmark):
    def build():
        rows = []
        for n, ell in CASES:
            chain = ExactPairChain(n=n, ell=ell)
            exact = chain.expected_time_from_all_wrong()
            simulated = _simulate_mean_absorption(n, ell, TRIALS, seed=n * 13 + ell)
            rows.append((n, ell, exact, simulated, simulated / (exact + 1)))
        return rows

    rows = run_once(benchmark, build)
    print(banner("Observation 1 — exact absorption times vs. simulated means"))
    print(format_table(
        ["n", "ell", "exact E[T] from (1,1)", f"simulated mean ({TRIALS} trials)", "sim/(exact+1)"],
        [[n, e, round(x, 3), round(s, 3), round(r, 3)] for n, e, x, s, r in rows],
    ))
    print("(+1: the simulator counts the final pair-transition into (n, n))")
    write_rows(results_path("exact_markov.csv"), ("n", "ell", "exact", "simulated"), rows)

    for n, ell, exact, simulated, ratio in rows:
        assert abs(ratio - 1.0) < 0.12, f"n={n}: simulator disagrees with the exact chain"


def test_absorption_time_heatmap(benchmark):
    """Expected time from every pair state at n = 10 — the exact analogue of
    the per-domain dwell analysis at toy scale."""

    def build():
        chain = ExactPairChain(n=10, ell=4)
        times = chain.expected_absorption_times()
        return chain, times

    chain, times = run_once(benchmark, build)
    print(banner("Exact E[absorption time] over all pair states, n=10, ell=4"))
    header = ["i\\j"] + [str(j) for j in range(1, 11)]
    table = []
    for i in range(1, 11):
        row = [str(i)] + [
            f"{times[chain.state_index(i, j)]:.1f}" for j in range(1, 11)
        ]
        table.append(row)
    print(format_table(header, table))
    write_rows(
        results_path("exact_markov_heatmap.csv"),
        ("i", "j", "expected_time"),
        [
            (i, j, float(times[chain.state_index(i, j)]))
            for i in range(1, 11)
            for j in range(1, 11)
        ],
    )
    # Structure: the absorbing corner is 0; the hardest states sit on the
    # downward-trend side (high i, low j).
    assert times[chain.absorbing_index] == 0.0
    assert times[chain.state_index(10, 1)] > times[chain.state_index(1, 10)]
