"""E-sweep — wall-clock scaling of the sweep orchestrator vs ``--jobs``.

Not a paper artifact: like E-throughput this benchmark tracks the simulation
machinery itself — here the process-pool dispatch layer introduced with
``repro.sweep``. It runs one fixed FET grid (8 cells: four population sizes
from the two canonical starts, every cell on the batched engine) through
:func:`repro.sweep.run_sweep` at ``jobs = 1, 2, 4``, checks the aggregate
CSV is byte-identical across job counts (the orchestrator's ordering
guarantee), and records wall-clock seconds plus the speedup over the serial
run.

Cells are embarrassingly parallel, so on a machine with free cores the
speedup at 4 jobs approaches min(4, cores) times the serial throughput
(minus pool startup and the straggler tail). The JSON records
``cpu_count`` alongside the timings because the measurement is
hardware-bound: on a single-core container the pool cannot beat serial
execution, and the numbers say so honestly.

Emits ``results/BENCH_sweep.json``. Run directly
(``PYTHONPATH=src python benchmarks/bench_sweep_scaling.py``) or through
pytest-benchmark.
"""

from __future__ import annotations

import json
import os
import sys
import tempfile
import time
from pathlib import Path

from bench_common import banner, results_path, run_once
from repro.sweep import SweepSpec, run_sweep
from repro.viz.tables import format_table

JOB_COUNTS = (1, 2, 4)
SEED = 20260729
#: timing repetitions per job count; min-of-k filters scheduler noise
REPEATS = 2


def sweep_grid() -> SweepSpec:
    """The fixed FET grid: 8 cells of comparable, non-trivial cost."""
    return SweepSpec(
        name="sweep-scaling-grid",
        seed=SEED,
        trials=600,
        axes={
            "protocol": ["fet"],
            "n": [800, 1000, 1200, 1400],
            "initializer": ["all-wrong", {"name": "bernoulli", "p": 0.5}],
        },
        max_rounds=2000,
        engine="batched",
    )


def run_benchmark() -> dict:
    spec = sweep_grid()
    rows = []
    csvs: dict[int, bytes] = {}
    timings: dict[int, float] = {}
    with tempfile.TemporaryDirectory() as scratch:
        for jobs in JOB_COUNTS:
            seconds = float("inf")
            for _ in range(REPEATS):
                start = time.perf_counter()
                result = run_sweep(spec, jobs=jobs)
                seconds = min(seconds, time.perf_counter() - start)
            path = result.write_csv(Path(scratch) / f"jobs{jobs}.csv")
            csvs[jobs] = path.read_bytes()
            timings[jobs] = seconds
            rows.append(
                {
                    "jobs": jobs,
                    "cells": len(result.cells),
                    "seconds": round(seconds, 4),
                    "cells_per_sec": round(len(result.cells) / seconds, 2),
                }
            )
    for row in rows:
        row["speedup"] = round(timings[1] / timings[row["jobs"]], 2)
    identical = all(csvs[jobs] == csvs[1] for jobs in JOB_COUNTS)
    return {
        "grid": {
            "name": spec.name,
            "cells": rows[0]["cells"],
            "trials_per_cell": spec.trials,
            "ns": spec.axes["n"],
        },
        "cpu_count": os.cpu_count(),
        "csv_identical_across_jobs": identical,
        "jobs": rows,
        "speedup_at_4_jobs": round(timings[1] / timings[4], 2),
        "speedup_target_at_4_jobs": 2.5,  # expects >= 4 free cores
    }


def should_record(path: Path, payload: dict) -> bool:
    """Refuse to clobber a multi-core record with a single-core one.

    The recorded speedup is hardware-bound: numbers measured on a 1-core
    container say nothing about the dispatcher and would silently replace a
    meaningful multi-core measurement (exactly what happened to the first
    recording of this benchmark).
    """
    if not path.exists():
        return True
    try:
        existing = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return True
    old_cores = existing.get("cpu_count") or 1
    new_cores = payload.get("cpu_count") or 1
    return not (old_cores > 1 and new_cores <= 1)


def report(payload: dict) -> None:
    print(banner("Sweep orchestrator — wall-clock vs --jobs (fixed FET grid)"))
    print(
        format_table(
            ["jobs", "cells", "sec", "cells/s", "speedup"],
            [
                [row["jobs"], row["cells"], row["seconds"], row["cells_per_sec"], row["speedup"]]
                for row in payload["jobs"]
            ],
        )
    )
    print(f"\ncpu_count={payload['cpu_count']}, "
          f"CSV byte-identical across job counts: {payload['csv_identical_across_jobs']}")
    print(f"speedup at 4 jobs: {payload['speedup_at_4_jobs']}x "
          f"(hardware-bound; needs >= 4 free cores to approach 4x)")
    path = results_path("BENCH_sweep.json")
    if should_record(path, payload):
        path.write_text(json.dumps(payload, indent=2))
        print(f"wrote {path}")
    else:
        print(
            f"kept {path}: existing record was measured on more cores; "
            "refusing to overwrite it with this lower-parallelism run"
        )


def test_sweep_scaling(benchmark):
    payload = run_once(benchmark, run_benchmark)
    report(payload)
    # The correctness half of the acceptance holds everywhere: identical
    # aggregates regardless of job count.
    assert payload["csv_identical_across_jobs"]
    # The performance half is hardware-bound; only assert scaling where the
    # cores exist to scale onto. Headline target on >= 4 free cores is 2.5x;
    # the gate floor is looser (same convention as E-throughput: 5x headline,
    # 2x floor) so shared/noisy CI machines don't flake.
    if payload["cpu_count"] and payload["cpu_count"] >= 4:
        assert payload["speedup_at_4_jobs"] >= 2.0


if __name__ == "__main__":
    report(run_benchmark())
    sys.exit(0)
