"""E-ablate — why split the sample? FET vs. the single-counter variant.

Paper context (Section 1.3): the first trend protocol reuses one counter in
two consecutive comparisons, creating a dependence between Y_t and Y_{t+1}
that blocks the analysis; FET removes it by splitting each round's 2ℓ samples
into two blocks. The paper changes the protocol *for the proof's sake* and
expects no behavioural regression. This ablation measures both variants —
same per-comparison sample size ℓ — from benign and adversarial starts.
"""

from __future__ import annotations

from bench_common import banner, results_path, run_once
from repro.experiments.harness import run_trials
from repro.initializers.adversarial import ZeroSpeedCenter
from repro.initializers.standard import AllWrong, BernoulliRandom
from repro.protocols.fet import FETProtocol, ell_for
from repro.protocols.simple_trend import SimpleTrendProtocol
from repro.viz.csv_out import write_rows
from repro.viz.tables import format_table

NS = [1024, 4096]
TRIALS = 12
MAX_ROUNDS = 20_000

INITS = [AllWrong(), BernoulliRandom(0.5), ZeroSpeedCenter()]


def test_split_sample_ablation(benchmark):
    def build():
        out = []
        for n in NS:
            ell = ell_for(n)
            for init_index, init in enumerate(INITS):
                for label, factory in (
                    ("FET", lambda ell=ell: FETProtocol(ell)),
                    ("simple-trend", lambda ell=ell: SimpleTrendProtocol(ell)),
                ):
                    stats = run_trials(
                        factory,
                        n,
                        init,
                        trials=TRIALS,
                        max_rounds=MAX_ROUNDS,
                        seed=900 + init_index,
                    )
                    out.append((n, init.name, label, stats))
        return out

    results = run_once(benchmark, build)
    print(banner("Ablation — sample split (FET) vs single counter (simple-trend)"))
    table = []
    csv_rows = []
    for n, init_name, label, stats in results:
        summary = stats.time_summary()
        table.append([n, init_name, label, stats.row()["success"], summary.median, summary.p95])
        csv_rows.append((n, init_name, label, stats.successes, stats.trials, summary.median))
    print(format_table(["n", "init", "variant", "success", "median T", "p95 T"], table))
    print("\n(The split costs 2x samples per round and exists to decouple")
    print(" consecutive comparisons for the analysis; behaviour should match.)")
    write_rows(
        results_path("ablation_split.csv"),
        ("n", "init", "variant", "successes", "trials", "median"),
        csv_rows,
    )

    for n, init_name, label, stats in results:
        assert stats.successes == stats.trials, f"{label} failed from {init_name} at n={n}"
    # Same-order convergence times: medians within 4x of each other per cell.
    cells = {}
    for n, init_name, label, stats in results:
        cells.setdefault((n, init_name), {})[label] = stats.time_summary().median
    for (n, init_name), pair in cells.items():
        hi = max(pair.values())
        lo = max(1.0, min(pair.values()))
        assert hi / lo < 4.0, f"variants diverge at n={n}, init={init_name}"
