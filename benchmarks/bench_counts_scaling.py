"""E-counts — sufficient-statistic engine scaling to million-agent populations.

Not a paper artifact: like ``bench_engine_throughput``, this tracks the
simulation machinery. The counts engine steps ``(R, S)`` state-count matrices
with multinomial draws, so one round costs O(trials x num_states) regardless
of ``n`` — the regime the paper's asymptotic claims actually live in. This
benchmark measures that promise end to end on the FET dissemination workload
(all-wrong start, ``ell = ell_for(n)``):

* **counts vs batched wall-clock** on the overlap grid (n up to 1e5, where
  the per-agent batched engine is still affordable) — the headline speedup;
* **counts-only scaling** on the full grid up to n = 1e7, where per-agent
  engines stop being an option at all;
* **state memory** per cell: the count matrix is ``trials x 2(ell+1)``
  int64 entries, growing only with ``ell = Theta(log n)`` — kilobytes at
  ten million agents, vs gigabytes for per-agent opinion/counter arrays.

Emits ``results/BENCH_counts.json``. The gate asserts a >= 10x counts-over-
batched speedup at every n >= 1e5 overlap cell (measured orders of magnitude
higher; the floor leaves CI headroom), that the n = 1e7 cell still converges
every trial, and that its count matrix stays within a few hundred KiB
(measured 130 KiB — four orders of magnitude under the per-agent state).

Run directly (``PYTHONPATH=src python benchmarks/bench_counts_scaling.py``)
or through pytest-benchmark.
"""

from __future__ import annotations

import json
import sys
import time

from bench_common import banner, results_path, run_once
from repro.config import RunSpec
from repro.experiments.harness import TrialStats
from repro.protocols.fet import ell_for
from repro.viz.tables import format_table

TRIALS = 64
MAX_ROUNDS = 2000
SEED = 20260808
#: full counts grid; the batched engine only runs where a per-agent batch of
#: TRIALS x n agents is still reasonable to allocate and step
NS = [10**3, 10**4, 10**5, 10**6, 10**7]
BATCHED_MAX_N = 10**5
#: timing repetitions per cell; min-of-k filters scheduler noise and warm-up
REPEATS = 3


def _spec(n: int, engine: str) -> RunSpec:
    return RunSpec(
        protocol={"name": "fet"},
        n=n,
        trials=TRIALS,
        max_rounds=MAX_ROUNDS,
        seed=SEED,
        engine=engine,
    )


def _time(spec: RunSpec) -> tuple[float, TrialStats]:
    seconds = float("inf")
    stats = None
    for _ in range(REPEATS):
        start = time.perf_counter()
        stats = spec.execute()
        seconds = min(seconds, time.perf_counter() - start)
    return seconds, stats


def run_cell(n: int) -> dict:
    ell = ell_for(n)
    states = 2 * (ell + 1)
    counts_sec, counts_stats = _time(_spec(n, "counts"))
    row = {
        "n": n,
        "ell": ell,
        "num_states": states,
        "trials": TRIALS,
        "counts_successes": counts_stats.successes,
        "counts_mean_rounds": round(float(counts_stats.times.mean()), 2),
        "counts_seconds": round(counts_sec, 4),
        # the engine's whole per-replica state: one int64 per count state
        "counts_state_bytes": TRIALS * states * 8,
        # what a per-agent engine must hold: opinions + prev counters
        "per_agent_state_bytes": TRIALS * n * 2 * 8,
    }
    if n <= BATCHED_MAX_N:
        batched_sec, batched_stats = _time(_spec(n, "batched"))
        row["batched_successes"] = batched_stats.successes
        row["batched_mean_rounds"] = round(float(batched_stats.times.mean()), 2)
        row["batched_seconds"] = round(batched_sec, 4)
        row["speedup"] = round(batched_sec / counts_sec, 1)
    return row


def run_benchmark() -> dict:
    return {"cells": [run_cell(n) for n in NS]}


def report(payload: dict) -> None:
    rows = payload["cells"]
    print(banner("Counts engine scaling — FET all-wrong, counts vs batched"))
    table = [
        [
            row["n"],
            row["ell"],
            row["num_states"],
            f"{row['counts_successes']}/{row['trials']}",
            row["counts_seconds"],
            row.get("batched_seconds", "-"),
            row.get("speedup", "-"),
            row["counts_state_bytes"],
            row["per_agent_state_bytes"],
        ]
        for row in rows
    ]
    print(
        format_table(
            ["n", "ell", "S", "success", "counts sec", "batched sec",
             "speedup", "counts bytes", "per-agent bytes"],
            table,
        )
    )
    overlap = [row for row in rows if "speedup" in row]
    if overlap:
        top = overlap[-1]
        print(
            f"\nheadline (n={top['n']}): {top['speedup']}x over batched; "
            f"state memory {rows[-1]['counts_state_bytes'] / 1024:.1f} KiB "
            f"at n={rows[-1]['n']:.0e}"
        )
    path = results_path("BENCH_counts.json")
    path.write_text(json.dumps(payload, indent=2))
    print(f"wrote {path}")


def test_counts_scaling(benchmark):
    payload = run_once(benchmark, run_benchmark)
    report(payload)
    rows = {row["n"]: row for row in payload["cells"]}
    # Every cell converges every trial, per-agent engines present or not.
    for row in rows.values():
        assert row["counts_successes"] == row["trials"], row
    # Acceptance: >= 10x over the batched engine from n = 1e5 on (measured
    # far higher; the loose floor keeps slower CI machines green while still
    # catching any regression that erases the sufficient-statistic payoff).
    for row in rows.values():
        if "speedup" in row and row["n"] >= 10**5:
            assert row["speedup"] >= 10.0, row
    # Memory is O(num_states) = O(log n), never O(n): the ten-million-agent
    # cell's whole engine state fits in a few hundred kilobytes.
    assert rows[10**7]["counts_state_bytes"] <= 256 * 1024
    assert (
        rows[10**7]["counts_state_bytes"]
        < rows[10**7]["per_agent_state_bytes"] / 10**4
    )


if __name__ == "__main__":
    report(run_benchmark())
    sys.exit(0)
