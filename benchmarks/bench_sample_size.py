"""E-ell — sample-size ablation: how small can ℓ be?

Paper context: Theorem 1 uses ℓ = Θ(log n); the discussion section leaves
"poly-logarithmic time with O(1) samples" open. We sweep ℓ from 1 to the
theorem's c·ln n at fixed n and report success rates and times, mapping where
the protocol degrades.

The grid is declared as a :class:`~repro.sweep.spec.SweepSpec`
(``sample_size_spec``, built on the dotted ``protocol.ell`` parameter axis)
and run through the sweep orchestrator — parallel over
``REPRO_BENCH_JOBS``, resumable through ``REPRO_BENCH_STORE``.
"""

from __future__ import annotations

import math

from bench_common import banner, results_path, run_once, sweep_knobs
from repro.experiments.convergence import sample_size_spec, scaling_rows
from repro.initializers.standard import BernoulliRandom
from repro.protocols.fet import ell_for
from repro.sweep import run_sweep
from repro.viz.csv_out import write_rows
from repro.viz.tables import format_table

N = 1024
TRIALS = 12
MAX_ROUNDS = 20_000


def test_sample_size_ablation(benchmark):
    ells = [1, 2, 4, 8, 16, 32, ell_for(N)]
    spec = sample_size_spec(
        N,
        ells,
        trials=TRIALS,
        seed=7,
        initializer=BernoulliRandom(0.5),
        max_rounds=MAX_ROUNDS,
    )
    jobs, store = sweep_knobs()

    def build():
        return scaling_rows(run_sweep(spec, jobs=jobs, store=store))

    rows = run_once(benchmark, build)
    print(banner(f"Sample-size ablation — FET at n={N} (ln n = {math.log(N):.1f})"))
    table = []
    csv_rows = []
    for row in rows:
        summary = row.stats.time_summary()
        table.append(
            [row.ell, row.stats.row()["success"], summary.median, summary.p95, summary.maximum]
        )
        csv_rows.append((row.ell, row.stats.successes, row.stats.trials, summary.median))
    print(format_table(["ell", "success", "median T", "p95 T", "max T"], table))
    print(f"(budget {MAX_ROUNDS} rounds; theorem setting ell = {ell_for(N)})")
    write_rows(
        results_path("sample_size_ablation.csv"),
        ("ell", "successes", "trials", "median"),
        csv_rows,
    )

    by_ell = {row.ell: row.stats for row in rows}
    # The theorem's regime must be solid.
    assert by_ell[ell_for(N)].successes == TRIALS
    assert by_ell[32].successes == TRIALS
    # Larger ell never hurts the success count in this budget.
    counts = [by_ell[e].successes for e in ells]
    assert counts[-1] >= counts[0]
