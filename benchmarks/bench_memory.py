"""E-mem — the memory claim of Theorem 1: O(log ℓ) bits per agent.

FET stores exactly one counter in {0, …, ℓ}, i.e. log2(ℓ+1) bits, on top of
the opinion bit. We tabulate the internal memory of every protocol in the
repository and check FET's growth in ℓ is logarithmic (doubling ℓ adds about
one bit).
"""

from __future__ import annotations

import math

from bench_common import banner, results_path, run_once
from repro.protocols.clock_sync import ClockSyncProtocol
from repro.protocols.fet import FETProtocol, ell_for
from repro.protocols.majority import MajorityProtocol
from repro.protocols.majority_sampling import MajoritySamplingProtocol
from repro.protocols.oracle_clock import OracleClockProtocol
from repro.protocols.simple_trend import SimpleTrendProtocol
from repro.protocols.undecided import UndecidedStateProtocol
from repro.protocols.voter import VoterProtocol
from repro.viz.csv_out import write_rows
from repro.viz.tables import format_table

N = 4096


def test_memory_accounting(benchmark):
    ell = ell_for(N)

    def build():
        protocols = [
            FETProtocol(ell),
            SimpleTrendProtocol(ell),
            VoterProtocol(),
            MajorityProtocol(3),
            MajoritySamplingProtocol(ell),
            UndecidedStateProtocol(),
            OracleClockProtocol(N),
            ClockSyncProtocol(N, ell),
        ]
        return [p.describe() for p in protocols]

    rows = run_once(benchmark, build)
    print(banner(f"Memory — internal bits per agent (n={N}, ell={ell})"))
    table = [
        [d["name"], "yes" if d["passive"] else "no", d["samples_per_round"], round(d["memory_bits"], 2)]
        for d in rows
    ]
    print(format_table(["protocol", "passive", "samples/round", "memory bits"], table))
    write_rows(
        results_path("memory.csv"),
        ("protocol", "passive", "samples_per_round", "memory_bits"),
        [(d["name"], d["passive"], d["samples_per_round"], d["memory_bits"]) for d in rows],
    )

    fet = rows[0]
    assert fet["memory_bits"] == math.log2(ell + 1)


def test_memory_growth_is_logarithmic(benchmark):
    def build():
        return [(ell, FETProtocol(ell).memory_bits()) for ell in (8, 16, 32, 64, 128, 256)]

    pairs = run_once(benchmark, build)
    print(banner("FET memory growth: doubling ell adds ~1 bit (O(log ell))"))
    print(format_table(["ell", "bits"], [[e, round(b, 3)] for e, b in pairs]))
    for (e1, b1), (e2, b2) in zip(pairs, pairs[1:]):
        assert 0.5 < b2 - b1 < 1.5  # approximately one extra bit per doubling
