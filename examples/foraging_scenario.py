#!/usr/bin/env python3
"""The paper's motivating story: animals choosing a foraging side.

A group of animals forages in an area whose *eastern* side is better (more
food, fewer predators). A single knowledgeable animal always forages east.
The others cannot tell who is knowledgeable; each of them can only scan the
area — observe where a few random group members are — and move. Their scan is
passive communication: the only information an animal reveals is its current
side.

We encode east = opinion 1 and run three mornings:

1. a naive group that copies the majority of its scan (sample-majority),
2. a trend-following group running FET,
3. a mid-run *environment change*: the good side flips to west, modelled by
   replacing the knowledgeable animal's preference, and the FET group adapts.

Run:  python examples/foraging_scenario.py
"""

from __future__ import annotations

import numpy as np

from repro import FETProtocol, MajoritySamplingProtocol, ell_for, make_population
from repro.core import SynchronousEngine, make_rng
from repro.initializers import AllWrong
from repro.viz import render_trajectory

N_ANIMALS = 2000
EAST, WEST = 1, 0


def morning(title: str, protocol, rounds: int, seed: int):
    rng = make_rng(seed)
    group = make_population(N_ANIMALS, correct_opinion=EAST)
    state = protocol.init_state(N_ANIMALS, rng)
    AllWrong()(group, protocol, state, rng)  # everyone starts on the west side

    engine = SynchronousEngine(protocol, group, rng=rng, state=state)
    result = engine.run(rounds)
    east_share = group.opinions.mean()
    print(f"\n--- {title} ---")
    print(f"after {len(result.trajectory) - 1} scans: {east_share:.1%} forage east "
          f"({'converged' if result.converged else 'not converged'})")
    return engine, result


def main() -> None:
    print(f"{N_ANIMALS} animals; the east side is preferable; one animal knows it.")

    # Naive strategy: follow the majority of your scan. The wrong-side
    # majority reinforces itself; the knowledgeable animal is drowned out.
    morning(
        "naive group (copy the scan majority)",
        MajoritySamplingProtocol(ell_for(N_ANIMALS)),
        rounds=300,
        seed=1,
    )

    # Trend followers: compare today's scan with yesterday's and move with
    # the emerging trend (FET). The knowledgeable animal seeds a drift that
    # the trend rule amplifies.
    engine, result = morning(
        "trend followers (FET)",
        FETProtocol(ell_for(N_ANIMALS)),
        rounds=2000,
        seed=2,
    )
    print(render_trajectory(result.trajectory, height=12))

    # The environment changes: now the WEST side is better. The knowledgeable
    # animal switches sides; nobody announces anything — self-stabilization
    # means the group re-converges from its current (now wrong) consensus.
    print("\n--- the environment changes: west becomes preferable ---")
    group = engine.population
    group.source_preferences[group.source_mask] = WEST
    group.correct_opinion = WEST
    group.pin_sources()
    adapt = engine.run(2000)
    west_share = 1 - group.opinions.mean()
    print(f"after {len(adapt.trajectory) - 1} more scans: {west_share:.1%} forage west "
          f"({'re-converged' if adapt.converged else 'not converged'})")
    print(render_trajectory(adapt.trajectory, height=12))
    print("\n(The re-convergence IS the self-stabilization property: the old")
    print(" consensus plus stale counters are just another adversarial start.)")


if __name__ == "__main__":
    main()
