#!/usr/bin/env python3
"""Anatomy of a run: watch the Markov chain cross the Figure 1a domains.

Runs FET once from the all-wrong start, classifies every consecutive pair
(x_t, x_{t+1}) into the paper's domains, and prints (a) the domain map with
the trajectory's itinerary, (b) the per-domain dwell times next to the
lemma bounds, and (c) the mean-field drift the analysis predicts at each
visited point. This is the proof of Theorem 1, replayed on live data.

Run:  python examples/trend_anatomy.py
"""

from __future__ import annotations

import math

from repro import DomainPartition, FETProtocol, drift_g, ell_for
from repro.analysis import cyan_dwell_bound, yellow_dwell_bound
from repro.experiments import run_annotated
from repro.initializers import AllWrong, ZeroSpeedCenter
from repro.viz import format_table, render_domain_map


def dissect(title: str, initializer, n: int, seed: int) -> None:
    ell = ell_for(n)
    annotated = run_annotated(
        FETProtocol(ell), n, initializer, max_rounds=20_000, seed=seed
    )
    result = annotated.result
    print(f"\n=== {title} (n={n}, ell={ell}) ===")
    print(f"converged in {result.rounds} rounds "
          f"(ln(n)^2.5 = {math.log(n) ** 2.5:.0f})")

    itinerary = annotated.dwell_segments()
    rows = []
    pair_index = 0
    pairs = result.pairs()
    for domain, dwell in itinerary:
        x, y = pairs[pair_index]
        drift = drift_g(float(x), float(y), ell, n) - float(y)
        rows.append(
            [
                domain.value,
                dwell,
                f"({x:.3f}, {y:.3f})",
                f"{drift:+.3f}",
            ]
        )
        pair_index += dwell
    print(format_table(
        ["domain", "dwell (rounds)", "entry point (x_t, x_t+1)", "mean-field drift at entry"],
        rows,
    ))


def main() -> None:
    n = 4000
    partition = DomainPartition(n=n)
    print("Figure 1a — the territory the chain must cross:")
    print(render_domain_map(partition, resolution=41))

    dissect("all-wrong start (Cyan bounce)", AllWrong(), n, seed=3)
    dissect("zero-speed Yellow centre (hardest start)", ZeroSpeedCenter(), n, seed=4)

    print("\nlemma bounds at this n:")
    print(f"  Cyan dwell   <= log n / log log n      = {cyan_dwell_bound(n):.1f}")
    print(f"  Yellow dwell <= O(log^(5/2) n), scale    {yellow_dwell_bound(n, 1.0):.0f}")
    print("\nReading: from all-wrong the chain bounces out of Cyan in a few")
    print("rounds (growth factor ~K log n per round, Lemma 4), grabs speed in")
    print("Green, and absorbs. From the Yellow centre it first has to random-")
    print("walk its speed up through areas A/B/C (Section 3) — the slow part.")


if __name__ == "__main__":
    main()
