#!/usr/bin/env python3
"""Compare FET against every baseline protocol in the repository.

Runs each protocol from the all-wrong adversarial start at a single
population size and prints the comparison table the paper makes
qualitatively: trend-following succeeds under passive communication where
level-following dynamics lock onto the wrong consensus, while the fast prior
protocols need either an oracle clock or non-passive (decoupled) messages.

Run:  python examples/baseline_comparison.py
"""

from __future__ import annotations

from repro import (
    ClockSyncProtocol,
    FETProtocol,
    MajorityProtocol,
    MajoritySamplingProtocol,
    OracleClockProtocol,
    SimpleTrendProtocol,
    UndecidedStateProtocol,
    VoterProtocol,
    ell_for,
)
from repro.experiments import run_trials
from repro.initializers import AllWrong
from repro.viz import format_table

N = 1500
TRIALS = 8
MAX_ROUNDS = 800  # a poly-log budget: ~4x ln(N)^2.5


def main() -> None:
    ell = ell_for(N)
    lineup = [
        ("FET (paper)", lambda: FETProtocol(ell)),
        ("simple-trend", lambda: SimpleTrendProtocol(ell)),
        ("voter", lambda: VoterProtocol()),
        ("3-majority", lambda: MajorityProtocol(3)),
        ("sample-majority", lambda: MajoritySamplingProtocol(ell)),
        ("undecided-state", lambda: UndecidedStateProtocol()),
        ("oracle-clock", lambda: OracleClockProtocol(N, ell=1)),
        ("clock-sync (non-passive)", lambda: ClockSyncProtocol(N, ell)),
    ]

    rows = []
    for index, (label, factory) in enumerate(lineup):
        stats = run_trials(
            factory,
            N,
            AllWrong(),
            trials=TRIALS,
            max_rounds=MAX_ROUNDS,
            seed=42 + index,
        )
        summary = stats.time_summary()
        proto = factory()
        rows.append(
            [
                label,
                "yes" if proto.passive else "no",
                proto.samples_per_round(),
                f"{stats.successes}/{stats.trials}",
                "-" if summary.count == 0 else f"{summary.median:.0f}",
            ]
        )

    print(f"all protocols, n={N}, all-wrong start, budget {MAX_ROUNDS} rounds\n")
    print(format_table(["protocol", "passive", "samples/round", "converged", "median rounds"], rows))
    print(
        "\nReading: only the trend protocols solve the task under passive\n"
        "communication without extra assumptions. The consensus dynamics\n"
        "(voter/majority/USD) follow the initial majority, not the source;\n"
        "oracle-clock needs a shared clock; clock-sync reveals extra bits."
    )


if __name__ == "__main__":
    main()
