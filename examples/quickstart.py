#!/usr/bin/env python3
"""Quickstart: run FET once and watch the population adopt the source's opinion.

Builds a population of n agents with one source that knows the correct
opinion, starts everyone else on the *wrong* opinion with adversarial
internal state, runs the Follow-the-Emerging-Trend protocol (Protocol 1 of
Korman & Vacus, PODC 2022), and prints the trajectory of the fraction of
correct opinions.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import FETProtocol, ell_for, make_population, run_protocol
from repro.core import make_rng
from repro.initializers import AllWrong
from repro.viz import render_trajectory


def main() -> None:
    n = 5000
    seed = 7

    rng = make_rng(seed)
    protocol = FETProtocol(ell_for(n))  # ell = ceil(c * ln n) samples per block
    population = make_population(n, correct_opinion=1)

    # Self-stabilizing setting: the adversary picks the initial opinions AND
    # the protocol's internal counters. AllWrong is the canonical start.
    state = protocol.init_state(n, rng)
    AllWrong()(population, protocol, state, rng)

    print(f"n = {n} agents, 1 source, ell = {protocol.ell} samples per block")
    print(f"initial fraction holding the correct opinion: {population.fraction_ones():.4f}")

    result = run_protocol(protocol, population, max_rounds=2000, rng=rng, state=state)

    print(f"\nconverged: {result.converged} in {result.rounds} rounds")
    print(f"(Theorem 1 scale for comparison: ln(n)^2.5 = {__import__('math').log(n) ** 2.5:.0f})")
    print("\ntrajectory of x_t (fraction with opinion 1):")
    print(render_trajectory(result.trajectory))


if __name__ == "__main__":
    main()
