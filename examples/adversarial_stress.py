#!/usr/bin/env python3
"""Stress FET with the worst initial configurations the analysis identifies.

The self-stabilizing adversary controls the full initial state: every
opinion and every internal counter. This example sweeps a grid of crafted
(x_prev, x_now) starting pairs — dropping the Markov chain into each domain
of the paper's Figure 1a — plus the two structurally nastiest configurations
(the zero-speed Yellow centre and saturated "poisoned" counters), and prints
the convergence time for each.

Run:  python examples/adversarial_stress.py
"""

from __future__ import annotations

import math

from repro import DomainPartition, FETProtocol, ell_for, make_population, run_protocol
from repro.core import make_rng
from repro.initializers import PoisonedCounters, TwoRoundTarget, ZeroSpeedCenter
from repro.viz import format_table

N = 3000


def run_from(initializer, seed: int):
    rng = make_rng(seed)
    protocol = FETProtocol(ell_for(N))
    population = make_population(N, correct_opinion=1)
    state = protocol.init_state(N, rng)
    initializer(population, protocol, state, rng)
    return run_protocol(protocol, population, max_rounds=20_000, rng=rng, state=state)


def main() -> None:
    partition = DomainPartition(n=N)
    grid = [0.0, 0.1, 0.3, 0.5, 0.7, 0.9, 1.0]

    print(f"FET, n={N}, ell={ell_for(N)}; paper scale ln(n)^2.5 = {math.log(N) ** 2.5:.0f}\n")

    rows = []
    for x_prev in grid:
        for x_now in grid:
            domain = partition.classify(x_prev, x_now)
            result = run_from(TwoRoundTarget(x_prev, x_now), seed=int(x_prev * 10) * 31 + int(x_now * 10))
            rows.append(
                [
                    f"({x_prev}, {x_now})",
                    domain.value,
                    "yes" if result.converged else "NO",
                    result.rounds,
                ]
            )
    for name, init, seed in [
        ("zero-speed centre", ZeroSpeedCenter(), 999),
        ("poisoned counters", PoisonedCounters(), 998),
    ]:
        result = run_from(init, seed)
        rows.append([name, "-", "yes" if result.converged else "NO", result.rounds])

    print(format_table(["start (x_prev, x_now)", "domain", "converged", "rounds"], rows))

    worst = max((r for r in rows if r[2] == "yes"), key=lambda r: r[3])
    print(f"\nworst converged start: {worst[0]} in {worst[3]} rounds")
    print("Every cell of the grid — every domain of Figure 1a — recovers:")
    print("that is the self-stabilization claim of Theorem 1, empirically.")


if __name__ == "__main__":
    main()
