"""Vectorized trace-derived measures.

Everything the trajectory-shaped half of the paper's workloads measures —
time to a θ threshold, the level a run settles at, how noisy it stays after
settling — is a function of the per-replica one-fraction curves. These
helpers compute those functions *vectorized over the replica axis* of a
:class:`~repro.trace.recorder.BatchTrace`, which is what lets the ``theta``
/ settle-window sweep cells run on the batched engine: the batched run
records one ``(R, T)`` matrix, and the measures reduce it with a handful of
numpy calls instead of R per-trial Python loops.

All round arguments and results are *engine round indices* (the values in
``trace.rounds``), not column positions, so the measures behave identically
on full, strided, and ring-buffer traces — modulo the resolution those
recorders retain.
"""

from __future__ import annotations

import numpy as np

from .recorder import BatchTrace

__all__ = [
    "nonsource_correct_fractions",
    "post_settle_flip_rate",
    "settle_rounds",
    "time_to_threshold",
    "window_mean_after",
]


def nonsource_correct_fractions(trace: BatchTrace) -> np.ndarray:
    """Per-replica, per-round fraction of non-source agents that are correct.

    Shape ``(R, K)``, derived affinely from the recorded one-fractions: with
    sources re-pinned every round their contribution to the one-count is the
    constant ``sources_correct`` (or its complement), so the non-source
    correct count is recoverable exactly from ``x_t`` — no opinion matrices
    needed. This is the quantity the θ-convergence / settle-level
    measurements of :mod:`repro.experiments.robustness` are defined on.
    """
    meta = trace.meta
    if not meta["pin_each_round"]:
        raise ValueError(
            "non-source correct fractions are only derivable from x_t when "
            "sources are pinned each round"
        )
    n = meta["n"]
    num_sources = meta["num_sources"]
    if n - num_sources <= 0:
        return np.ones_like(trace.x)
    # x was computed as ones/n, so x*n is within float eps of the integer
    # one-count; rint recovers it exactly.
    ones = np.rint(trace.x * n)
    correct_total = ones if meta["correct_opinion"] == 1 else n - ones
    return (correct_total - meta["sources_correct"]) / (n - num_sources)


def time_to_threshold(
    values: np.ndarray,
    rounds: np.ndarray,
    threshold: float,
) -> np.ndarray:
    """First recorded round at which ``values >= threshold``, per replica.

    ``(R,)`` int array of engine round indices; ``-1`` where the threshold is
    never reached within the trace. On a strided or ring-buffer trace the
    answer is quantized to (and windowed by) the recorded rounds.
    """
    hit = values >= threshold
    reached = hit.any(axis=1)
    first_col = hit.argmax(axis=1)
    return np.where(reached, np.asarray(rounds)[first_col], -1)


def window_mean_after(
    values: np.ndarray,
    rounds: np.ndarray,
    start_rounds: np.ndarray,
    window: int,
) -> np.ndarray:
    """Per-replica mean of ``values`` over rounds in ``(start, start + window]``.

    The settle-level measurement: after replica ``r`` first satisfied its
    stop condition at ``start_rounds[r]``, how high does its curve sit over
    the next ``window`` rounds? Returns ``(R,)`` floats; NaN where
    ``start_rounds[r] < 0`` (never started) or the window contains no
    recorded columns (e.g. ``window == 0``).
    """
    if window < 0:
        raise ValueError(f"window must be >= 0, got {window}")
    values = np.asarray(values, dtype=float)
    rounds = np.asarray(rounds)
    start_rounds = np.asarray(start_rounds)
    replicas = values.shape[0]
    # Column range (lo, hi] per replica via binary search over recorded rounds.
    lo = np.searchsorted(rounds, start_rounds, side="right")
    hi = np.searchsorted(rounds, start_rounds + window, side="right")
    counts = hi - lo
    prefix = np.concatenate(
        [np.zeros((replicas, 1)), np.cumsum(values, axis=1)], axis=1
    )
    sums = (
        np.take_along_axis(prefix, hi[:, None], axis=1)
        - np.take_along_axis(prefix, lo[:, None], axis=1)
    )[:, 0]
    valid = (start_rounds >= 0) & (counts > 0)
    out = np.full(replicas, np.nan)
    out[valid] = sums[valid] / counts[valid]
    return out


def settle_rounds(
    values: np.ndarray,
    rounds: np.ndarray,
    *,
    tolerance: float = 0.0,
) -> np.ndarray:
    """First recorded round from which each curve stays within a band.

    Replica ``r`` has *settled* at the first recorded round ``t`` such that
    ``max - min`` of its values over all recorded rounds ``>= t`` is at most
    ``tolerance``. With the default tolerance 0 this is the round the curve
    freezes — for a converged batched replica, exactly its retirement plateau.
    Always defined (the last column alone trivially satisfies the band).
    Returns ``(R,)`` engine round indices.
    """
    if tolerance < 0:
        raise ValueError(f"tolerance must be >= 0, got {tolerance}")
    values = np.asarray(values, dtype=float)
    if values.shape[1] == 0:
        return np.full(values.shape[0], -1, dtype=np.int64)
    suffix_max = np.maximum.accumulate(values[:, ::-1], axis=1)[:, ::-1]
    suffix_min = np.minimum.accumulate(values[:, ::-1], axis=1)[:, ::-1]
    settled = (suffix_max - suffix_min) <= tolerance
    # ``settled`` is monotone along the column axis, so argmax finds the
    # first settled column; the last column is always True.
    first_col = settled.argmax(axis=1)
    return np.asarray(rounds)[first_col]


def post_settle_flip_rate(
    trace: BatchTrace,
    settle_at: np.ndarray | None = None,
) -> np.ndarray:
    """Per-replica opinion flips per round after the settle point.

    Quantifies how quiet a configuration is once it stops moving — the
    paper's absorbing consensus has rate 0, while noisy near-consensus keeps
    a positive flip rate. ``settle_at`` defaults to
    :func:`settle_rounds` of the trace; the rate for replica ``r`` is the
    total recorded flips over rounds ``> settle_at[r]`` divided by the rounds
    elapsed. NaN where no rounds follow the settle point. Requires the flip
    channel.
    """
    if trace.flips is None:
        raise ValueError("trace has no flip channel; record with record_flips=True")
    if settle_at is None:
        settle_at = settle_rounds(trace.x, trace.rounds)
    settle_at = np.asarray(settle_at)
    rounds = np.asarray(trace.rounds)
    replicas = trace.replicas
    # Flip column k covers rounds (rounds[k-1], rounds[k]]; summing columns
    # with rounds[k] > settle_at captures every flip after the settle point.
    lo = np.searchsorted(rounds, settle_at, side="right")
    prefix = np.concatenate(
        [np.zeros((replicas, 1), dtype=np.int64), np.cumsum(trace.flips, axis=1)], axis=1
    )
    total = prefix[:, -1] - np.take_along_axis(prefix, lo[:, None], axis=1)[:, 0]
    elapsed = rounds[-1] - settle_at if rounds.size else np.zeros_like(settle_at)
    out = np.full(replicas, np.nan)
    valid = elapsed > 0
    out[valid] = total[valid] / elapsed[valid]
    return out
