"""Trace capture: batched per-round trajectory recording for both engines.

The paper's headline figures are *trajectories* — per-round one-fraction
curves showing self-stabilizing convergence and phase transitions. The
sequential engine logs them for free (one Python append per round); the
batched engine advances R replicas in lock-step and *retires* finished rows,
so trajectory capture has to be a layer over the round loop rather than an
engine flag. That layer is this module:

* a :class:`TraceRecorder` is handed to ``BatchedEngine.run(recorder=...)``
  (or ``SynchronousEngine.run(recorder=...)``, which records an ``R = 1``
  batch). Each round the engine reports the full ``(R,)`` vector of
  per-replica one-fractions — retired replicas keep their frozen final value,
  so the recorded matrix *survives retirement*: a retired row simply stays
  constant from its retirement round on.
* :class:`FullTrace` keeps every recorded column — the ``(R, T)`` matrix the
  trajectory/transition experiments consume. :class:`RingBufferTrace` keeps
  only the most recent ``capacity`` columns, so million-round runs stay
  memory-bounded while settle-window measures still see the recent history.
* both support ``stride`` downsampling (record rounds divisible by the
  stride, plus the final reported round when it falls between stride marks —
  a partial tail column). The optional flip channel accumulates per-replica
  opinion flips *between* recorded columns, so flip totals are preserved
  exactly under any stride.

Recorders produce a :class:`BatchTrace` — plain arrays plus metadata — which
the vectorized measures in :mod:`repro.trace.measures` consume, and which can
be exported through :mod:`repro.viz` (``write_trace_csv``,
``render_batch_trace``) or converted back into per-replica sequential-style
:class:`~repro.core.records.RunResult` objects via
:meth:`BatchTrace.to_run_results`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..core.records import RunResult

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.batch import BatchRunResult

__all__ = ["BatchTrace", "TraceRecorder", "FullTrace", "RingBufferTrace", "make_recorder"]


def make_recorder(
    *,
    ring: int | None = None,
    stride: int = 1,
    record_flips: bool = False,
) -> "TraceRecorder":
    """Build the recorder described by the common knob set.

    The shared constructor behind the ``repro trace`` CLI and the sweep
    ``trace`` measure: a :class:`RingBufferTrace` of capacity ``ring`` when a
    ring is requested, else a :class:`FullTrace`; both with the given
    ``stride`` and flip channel.
    """
    if ring is not None:
        return RingBufferTrace(int(ring), stride=stride, record_flips=record_flips)
    return FullTrace(stride=stride, record_flips=record_flips)


@dataclass
class BatchTrace:
    """Recorded per-replica trajectories of one batched (or sequential) run.

    Attributes
    ----------
    x:
        ``(R, K)`` float matrix — per-replica one-fraction at each recorded
        round. Rows of retired replicas are frozen (constant) from their
        retirement round on.
    rounds:
        ``(K,)`` int vector — the engine round index of each column. With a
        full recorder at stride 1 this is simply ``0 .. T``; ring buffers
        retain only the most recent window, strides only every s-th round.
    flips:
        ``(R, K)`` int matrix or ``None`` — per-replica number of opinion
        flips accumulated since the *previous* recorded column (column 0 is
        all zeros). Sums are preserved exactly under downsampling: column k
        holds the total flips over rounds ``(rounds[k-1], rounds[k]]``, and
        the final round is always recorded (possibly as a partial tail
        column), so no flips fall outside the trace.
    stride:
        The recording stride the trace was captured with.
    meta:
        Population facts captured at bind time: ``replicas``, ``n``,
        ``num_sources``, ``sources_correct`` (sources whose preference is the
        correct opinion), ``correct_opinion``, ``pin_each_round``. Trace
        measures use them to derive e.g. non-source correct fractions without
        the opinion matrices.
    """

    x: np.ndarray
    rounds: np.ndarray
    flips: np.ndarray | None
    stride: int
    meta: dict

    @property
    def replicas(self) -> int:
        return int(self.x.shape[0])

    @property
    def columns(self) -> int:
        return int(self.x.shape[1])

    @property
    def first_round(self) -> int:
        return int(self.rounds[0]) if self.rounds.size else 0

    @property
    def last_round(self) -> int:
        return int(self.rounds[-1]) if self.rounds.size else 0

    def trajectory(self, r: int) -> np.ndarray:
        """Row ``r`` as a plain trajectory array (frozen tail included)."""
        return self.x[r]

    def to_run_results(self, result: "BatchRunResult") -> list[RunResult]:
        """Per-replica sequential-style :class:`RunResult` objects.

        Requires a complete stride-1 trace starting at round 0 (a ring buffer
        that wrapped, or any stride > 1, has lost rounds and raises). Each
        replica's trajectory is trimmed to the rounds it actually executed —
        exactly what a per-trial :class:`~repro.core.engine.SynchronousEngine`
        run would have logged — so ``keep_results`` consumers (domain
        classification, Figure 1b transitions) work unchanged on traces.
        """
        if self.stride != 1:
            raise ValueError(
                f"per-replica RunResults need a stride-1 trace, got stride {self.stride}"
            )
        if self.first_round != 0 or self.columns != self.last_round + 1:
            raise ValueError(
                "per-replica RunResults need the complete history from round 0; "
                "this trace is windowed (ring buffer wrapped)"
            )
        if self.replicas != result.replicas:
            raise ValueError(
                f"trace holds {self.replicas} replicas, result {result.replicas}"
            )
        if int(result.rounds_executed.max(initial=0)) > self.last_round:
            raise ValueError("trace ends before the last executed round")
        results = []
        empty = np.zeros(0, dtype=np.int64)
        for r in range(self.replicas):
            executed = int(result.rounds_executed[r])
            results.append(
                RunResult(
                    converged=bool(result.converged[r]),
                    rounds=int(result.rounds[r]),
                    trajectory=self.x[r, : executed + 1].copy(),
                    flips=(
                        self.flips[r, 1 : executed + 1].copy()
                        if self.flips is not None
                        else empty
                    ),
                )
            )
        return results


class TraceRecorder(ABC):
    """Round-by-round capture hook for the engines.

    Lifecycle: an engine calls :meth:`bind` once with the batch facts, then
    :meth:`on_round` for round 0 (the initial configuration) and after every
    executed round with the *full-batch* ``(R,)`` value vectors (retired rows
    frozen by the engine). :meth:`trace` packages whatever was retained.

    ``stride`` downsamples recording to rounds divisible by it; the flip
    channel (``record_flips=True``) is accumulated across skipped rounds so
    no flips are lost. Recorders are single-use, like the batched engine.
    """

    def __init__(self, *, stride: int = 1, record_flips: bool = False) -> None:
        if stride < 1:
            raise ValueError(f"stride must be >= 1, got {stride}")
        self.stride = int(stride)
        self.record_flips = bool(record_flips)
        self.meta: dict | None = None
        self._flip_accum: np.ndarray | None = None
        # Last reported-but-skipped round, flushed as a partial tail column
        # by trace() so the final state (and its accumulated flips) is never
        # lost to a stride.
        self._pending_round: int | None = None
        self._pending_x: np.ndarray | None = None

    # ------------------------------------------------------------- engine API

    def bind(
        self,
        *,
        replicas: int,
        n: int,
        num_sources: int,
        sources_correct: int,
        correct_opinion: int,
        pin_each_round: bool,
    ) -> None:
        """Attach to a run; called once by the engine before round 0."""
        if self.meta is not None:
            raise RuntimeError(
                f"{type(self).__name__} is single-use and already bound to a run"
            )
        self.meta = {
            "replicas": int(replicas),
            "n": int(n),
            "num_sources": int(num_sources),
            "sources_correct": int(sources_correct),
            "correct_opinion": int(correct_opinion),
            "pin_each_round": bool(pin_each_round),
        }
        if self.record_flips:
            self._flip_accum = np.zeros(replicas, dtype=np.int64)
        self._allocate(int(replicas))

    def on_round(
        self,
        round_index: int,
        x: np.ndarray,
        flips: np.ndarray | None = None,
    ) -> None:
        """Report round ``round_index``; the recorder decides what to retain."""
        if self.meta is None:
            raise RuntimeError("recorder is not bound to a run; call bind first")
        if self.record_flips:
            if flips is None:
                raise ValueError("recorder wants flips but the engine sent none")
            self._flip_accum += flips
        if round_index % self.stride:
            self._pending_round = int(round_index)
            self._pending_x = np.array(x, dtype=float)
            return
        self._pending_round = None
        self._pending_x = None
        if self.record_flips:
            self._store(round_index, x, self._flip_accum)
            self._flip_accum = np.zeros_like(self._flip_accum)
        else:
            self._store(round_index, x, None)

    def _flush_tail(self) -> None:
        """Store the pending final round (if any) as a partial tail column.

        Called by :meth:`trace` so a strided trace always ends at the last
        reported round with its accumulated flips — idempotent.
        """
        if self._pending_x is None:
            return
        if self.record_flips:
            self._store(self._pending_round, self._pending_x, self._flip_accum)
            self._flip_accum = np.zeros_like(self._flip_accum)
        else:
            self._store(self._pending_round, self._pending_x, None)
        self._pending_round = None
        self._pending_x = None

    # ------------------------------------------------------------ subclass API

    @abstractmethod
    def _allocate(self, replicas: int) -> None:
        """Prepare storage for ``replicas`` rows."""

    @abstractmethod
    def _store(self, round_index: int, x: np.ndarray, flips: np.ndarray | None) -> None:
        """Retain one recorded column (must copy: the engine reuses buffers)."""

    @abstractmethod
    def trace(self) -> BatchTrace:
        """Package the retained columns as a :class:`BatchTrace`."""

    def _require_bound(self) -> dict:
        if self.meta is None:
            raise RuntimeError("recorder is not bound to a run; call bind first")
        return self.meta


class FullTrace(TraceRecorder):
    """Keep every recorded column — the ``(R, T)`` trajectory matrix.

    Memory is ``R × (T / stride)`` floats (plus the same in int64 when the
    flip channel is on); use a stride or a :class:`RingBufferTrace` for
    million-round runs.
    """

    def _allocate(self, replicas: int) -> None:
        self._x_cols: list[np.ndarray] = []
        self._flip_cols: list[np.ndarray] = []
        self._rounds: list[int] = []

    def _store(self, round_index: int, x: np.ndarray, flips: np.ndarray | None) -> None:
        self._rounds.append(int(round_index))
        self._x_cols.append(np.array(x, dtype=float))
        if flips is not None:
            self._flip_cols.append(np.array(flips, dtype=np.int64))

    def trace(self) -> BatchTrace:
        meta = self._require_bound()
        self._flush_tail()
        replicas = meta["replicas"]
        if self._x_cols:
            x = np.stack(self._x_cols, axis=1)
        else:
            x = np.zeros((replicas, 0), dtype=float)
        flips = np.stack(self._flip_cols, axis=1) if self._flip_cols else None
        if self.record_flips and flips is None:
            flips = np.zeros((replicas, 0), dtype=np.int64)
        return BatchTrace(
            x=x,
            rounds=np.asarray(self._rounds, dtype=np.int64),
            flips=flips,
            stride=self.stride,
            meta=dict(meta),
        )


class RingBufferTrace(TraceRecorder):
    """Keep only the most recent ``capacity`` recorded columns.

    Memory is bounded at ``R × capacity`` regardless of run length: the
    buffer is circular over recorded columns, so with stride ``s`` it covers
    the last ``capacity × s`` rounds. Within that window the retained
    columns are *identical* to a :class:`FullTrace`'s — the window is a view
    of the same logical trace, which is what the ring-vs-full equivalence
    tests pin down.
    """

    def __init__(self, capacity: int, *, stride: int = 1, record_flips: bool = False) -> None:
        super().__init__(stride=stride, record_flips=record_flips)
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)

    def _allocate(self, replicas: int) -> None:
        self._x = np.zeros((replicas, self.capacity), dtype=float)
        self._flips = (
            np.zeros((replicas, self.capacity), dtype=np.int64) if self.record_flips else None
        )
        self._round_buf = np.zeros(self.capacity, dtype=np.int64)
        self._recorded = 0  # total columns ever stored (cursor = recorded % capacity)

    def _store(self, round_index: int, x: np.ndarray, flips: np.ndarray | None) -> None:
        cursor = self._recorded % self.capacity
        self._x[:, cursor] = x
        if flips is not None and self._flips is not None:
            self._flips[:, cursor] = flips
        self._round_buf[cursor] = round_index
        self._recorded += 1

    def trace(self) -> BatchTrace:
        meta = self._require_bound()
        self._flush_tail()
        kept = min(self._recorded, self.capacity)
        if self._recorded <= self.capacity:
            order = np.arange(kept)
        else:
            # chronological unroll: the oldest retained column sits at cursor
            cursor = self._recorded % self.capacity
            order = (cursor + np.arange(self.capacity)) % self.capacity
        return BatchTrace(
            x=self._x[:, order].copy(),
            rounds=self._round_buf[order].copy(),
            flips=self._flips[:, order].copy() if self._flips is not None else None,
            stride=self.stride,
            meta=dict(meta),
        )
