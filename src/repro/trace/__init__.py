"""Trace subsystem: batched trajectory recording and trace-derived measures.

Measurement as a first-class layer over the engines (rather than an engine
flag): :mod:`~repro.trace.recorder` captures per-replica one-fraction (and
optionally flip) curves from the batched or sequential round loop —
surviving replica retirement, optionally strided or ring-buffered — and
:mod:`~repro.trace.measures` reduces the recorded ``(R, T)`` matrices into
the trajectory-shaped quantities the experiments report (time-to-θ, settle
level, post-settle flip rate). This is what moves the ``keep_results``
consumers, the Figure 1b transition experiment, and the ``theta`` sweep
measure onto the batched fast path.
"""

from .measures import (
    nonsource_correct_fractions,
    post_settle_flip_rate,
    settle_rounds,
    time_to_threshold,
    window_mean_after,
)
from .recorder import BatchTrace, FullTrace, RingBufferTrace, TraceRecorder, make_recorder

__all__ = [
    "BatchTrace",
    "FullTrace",
    "RingBufferTrace",
    "TraceRecorder",
    "make_recorder",
    "nonsource_correct_fractions",
    "post_settle_flip_rate",
    "settle_rounds",
    "time_to_threshold",
    "window_mean_after",
]
