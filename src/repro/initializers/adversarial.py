"""Crafted adversarial configurations.

These target the structurally hard starting points identified by the paper's
analysis, plus the impossibility construction of Section 1.2. All of them
control both opinions and internal protocol state (the full power the
self-stabilizing adversary has).

Like the standard classes, the crafted constructions support *batched*
application (``supports_batch`` / ``apply_batch``): one vectorized call
installs every replica of a :class:`~repro.core.batch.BatchedPopulation`,
so adversarial sweep cells run the batched fast path end to end instead of
falling back to per-trial setup.
"""

from __future__ import annotations

import numpy as np

from ..core.batch import BatchedPopulation
from ..core.population import PopulationState
from ..core.protocol import Protocol, ProtocolState
from .standard import Initializer

__all__ = [
    "TwoRoundTarget",
    "ZeroSpeedCenter",
    "FrozenUnanimity",
    "PoisonedCounters",
]


def _set_fraction(population: PopulationState, x: float, rng: np.random.Generator) -> None:
    n = population.n
    ones = int(round(x * n))
    opinions = np.zeros(n, dtype=np.uint8)
    if ones > 0:
        opinions[rng.choice(n, size=ones, replace=False)] = 1
    population.adversarial_opinions(opinions)


def _set_fraction_batch(batch: BatchedPopulation, x: float, rng: np.random.Generator) -> None:
    ones = int(round(x * batch.n))
    row = np.zeros(batch.n, dtype=np.uint8)
    row[:ones] = 1
    # A uniform within-row shuffle of a fixed-weight row matches the scalar
    # rule's "ones at uniformly random positions", independently per replica.
    opinions = np.tile(row, (batch.replicas, 1))
    rng.permuted(opinions, axis=1, out=opinions)
    batch.adversarial_opinions(opinions, validate=False)


class TwoRoundTarget(Initializer):
    """Start the chain near a chosen grid point ``(x_prev, x_now)``.

    The paper's Markov chain lives on pairs of consecutive fractions; this
    initializer installs opinions with fraction ``x_now`` and counter state
    distributed as if the previous round's fraction had been ``x_prev``
    (``prev_count ~ Binomial(ℓ, x_prev)`` for the trend protocols). It lets
    experiments drop the chain into any domain of Figure 1a directly.
    """

    supports_batch = True

    def __init__(self, x_prev: float, x_now: float) -> None:
        for label, v in (("x_prev", x_prev), ("x_now", x_now)):
            if not 0.0 <= v <= 1.0:
                raise ValueError(f"{label} must be in [0, 1], got {v}")
        self.x_prev = x_prev
        self.x_now = x_now
        self.name = f"two-round(x_prev={x_prev}, x_now={x_now})"

    def apply(self, population, protocol, state, rng) -> None:
        _set_fraction(population, self.x_now, rng)
        if "prev_count" in state:
            ell = getattr(protocol, "ell", None)
            if ell is None:
                raise ValueError("TwoRoundTarget needs a protocol exposing .ell")
            state["prev_count"] = rng.binomial(ell, self.x_prev, size=population.n).astype(np.int64)
        else:
            state.update(protocol.randomize_state(population.n, rng))

    def apply_batch(self, batch, protocol, states, rng) -> None:
        _set_fraction_batch(batch, self.x_now, rng)
        if "prev_count" in states:
            ell = getattr(protocol, "ell", None)
            if ell is None:
                raise ValueError("TwoRoundTarget needs a protocol exposing .ell")
            states["prev_count"] = rng.binomial(
                ell, self.x_prev, size=(batch.replicas, batch.n)
            ).astype(np.int64)
        else:
            states.update(protocol.randomize_state_batch(batch.replicas, batch.n, rng))

    def spec(self) -> dict:
        return {"name": "two-round", "x_prev": self.x_prev, "x_now": self.x_now}


class ZeroSpeedCenter(Initializer):
    """The hardest region of Figure 1a: the Yellow centre with zero speed.

    Opinions split exactly in half and counters consistent with the previous
    round also having been at 1/2 — the chain starts at ``(1/2, 1/2)`` where
    the drift vanishes and only the noise analysis of Section 3 (areas A/B/C)
    gets the process moving. Dominates the paper's O(log^{5/2} n) bound.
    """

    name = "zero-speed-center"
    supports_batch = True

    def __init__(self) -> None:
        self._inner = TwoRoundTarget(0.5, 0.5)

    def apply(self, population, protocol, state, rng) -> None:
        self._inner.apply(population, protocol, state, rng)

    def apply_batch(self, batch, protocol, states, rng) -> None:
        self._inner.apply_batch(batch, protocol, states, rng)

    def spec(self) -> dict:
        return {"name": "zero-speed-center"}


class PoisonedCounters(Initializer):
    """Wrong consensus with counters asserting a saturated history.

    All non-source opinions are wrong, and every trend counter is forced to
    the maximum ℓ, so in the first round every comparison reads "the trend is
    collapsing" regardless of what is sampled. Exercises the bounce-back of
    the Cyan analysis (Lemma 4) from the most misleading counter state.
    """

    name = "poisoned-counters"
    supports_batch = True

    def apply(self, population, protocol, state, rng) -> None:
        wrong = 1 - population.correct_opinion
        opinions = np.full(population.n, wrong, dtype=np.uint8)
        population.adversarial_opinions(opinions)
        if "prev_count" in state:
            ell = getattr(protocol, "ell", 1)
            state["prev_count"] = np.full(population.n, ell, dtype=np.int64)
        else:
            state.update(protocol.randomize_state(population.n, rng))

    def apply_batch(self, batch, protocol, states, rng) -> None:
        wrong = 1 - batch.correct_opinion
        opinions = np.full((batch.replicas, batch.n), wrong, dtype=np.uint8)
        batch.adversarial_opinions(opinions, validate=False)
        if "prev_count" in states:
            ell = getattr(protocol, "ell", 1)
            states["prev_count"] = np.full((batch.replicas, batch.n), ell, dtype=np.int64)
        else:
            states.update(protocol.randomize_state_batch(batch.replicas, batch.n, rng))

    def spec(self) -> dict:
        return {"name": "poisoned-counters"}


class FrozenUnanimity(Initializer):
    """The impossibility construction of Section 1.2 (majority variant).

    Every agent — including sources whose *preference* is the minority bit —
    displays opinion ``opinion``, and every counter asserts a unanimous
    history (``prev_count = ℓ``). All observations are then unanimously
    ``opinion``; comparisons tie forever; no agent ever changes. This is the
    concrete witness of the indistinguishability argument: a passive protocol
    cannot escape, even though the majority of sources prefers the other bit.

    Must be used with ``pin_each_round=False`` populations (the majority
    variant); the initializer asserts this to prevent silent misuse.
    """

    supports_batch = True

    def __init__(self, opinion: int = 1) -> None:
        if opinion not in (0, 1):
            raise ValueError(f"opinion must be 0 or 1, got {opinion}")
        self.opinion = opinion
        self.name = f"frozen-unanimity(opinion={opinion})"

    def apply(self, population, protocol, state, rng) -> None:
        if population.pin_each_round:
            raise ValueError(
                "FrozenUnanimity models the majority variant; build the population "
                "with make_majority_population (pin_each_round=False)"
            )
        opinions = np.full(population.n, self.opinion, dtype=np.uint8)
        population.adversarial_opinions(opinions, pin_sources=False)
        if "prev_count" in state:
            ell = getattr(protocol, "ell", 1)
            value = ell if self.opinion == 1 else 0
            state["prev_count"] = np.full(population.n, value, dtype=np.int64)
        else:
            state.update(protocol.randomize_state(population.n, rng))

    def apply_batch(self, batch, protocol, states, rng) -> None:
        if batch.pin_each_round:
            raise ValueError(
                "FrozenUnanimity models the majority variant; build the population "
                "with make_majority_population (pin_each_round=False)"
            )
        opinions = np.full((batch.replicas, batch.n), self.opinion, dtype=np.uint8)
        batch.adversarial_opinions(opinions, pin_sources=False, validate=False)
        if "prev_count" in states:
            ell = getattr(protocol, "ell", 1)
            value = ell if self.opinion == 1 else 0
            states["prev_count"] = np.full((batch.replicas, batch.n), value, dtype=np.int64)
        else:
            states.update(protocol.randomize_state_batch(batch.replicas, batch.n, rng))
