"""Initial-configuration builders, standard and adversarial."""

from .adversarial import FrozenUnanimity, PoisonedCounters, TwoRoundTarget, ZeroSpeedCenter
from .standard import (
    AllCorrect,
    AllWrong,
    BernoulliRandom,
    ExactFraction,
    Initializer,
    RandomizeProtocolState,
)

__all__ = [
    "AllCorrect",
    "AllWrong",
    "BernoulliRandom",
    "ExactFraction",
    "FrozenUnanimity",
    "Initializer",
    "PoisonedCounters",
    "RandomizeProtocolState",
    "TwoRoundTarget",
    "ZeroSpeedCenter",
]
