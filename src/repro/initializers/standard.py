"""Standard initial-configuration builders.

An initializer installs an initial opinion vector (and optionally internal
protocol state) into a population before a run. The self-stabilizing setting
means the adversary controls everything, so experiments sweep over these
classes; the crafted worst-case constructions live in
:mod:`repro.initializers.adversarial`.

Every initializer is a callable ``(population, protocol, state, rng) -> None``
mutating its arguments in place; :class:`Initializer` provides the naming
plumbing used by benchmark tables. The standard classes additionally support
*batched* application (``supports_batch`` / :meth:`Initializer.apply_batch`):
one call initializes every replica of a
:class:`~repro.core.batch.BatchedPopulation` with vectorized draws, which
keeps many-trial setup off the per-trial Python path.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from typing import TYPE_CHECKING

from ..core.batch import BatchedPopulation
from ..core.population import PopulationState
from ..core.protocol import Protocol, ProtocolState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.counts import CountPopulation

__all__ = [
    "Initializer",
    "AllWrong",
    "AllCorrect",
    "BernoulliRandom",
    "ExactFraction",
    "RandomizeProtocolState",
]


class Initializer(ABC):
    """Base class: installs opinions and/or protocol state in place."""

    name: str = "initializer"
    #: ``True`` when :meth:`apply_batch` installs every replica of a batch in
    #: one vectorized call; harnesses fall back to per-replica :meth:`apply`
    #: otherwise.
    supports_batch: bool = False
    #: ``True`` when :meth:`apply_counts` can express the initial distribution
    #: at the count level (exchangeable over non-source agents). Crafted
    #: per-agent constructions stay ``False`` and are rejected by the counts
    #: engine dispatch.
    supports_counts: bool = False

    @abstractmethod
    def apply(
        self,
        population: PopulationState,
        protocol: Protocol,
        state: ProtocolState,
        rng: np.random.Generator,
    ) -> None:
        """Mutate ``population`` / ``state`` to the initial configuration."""

    def apply_batch(
        self,
        batch: BatchedPopulation,
        protocol: Protocol,
        states: ProtocolState,
        rng: np.random.Generator,
    ) -> None:
        """Install the initial configuration into every replica at once.

        ``states`` holds the protocol's batched state (leading replica axis).
        Only available when ``supports_batch`` is ``True``.
        """
        raise NotImplementedError(f"{type(self).__name__} does not support batched application")

    def apply_counts(
        self,
        population: "CountPopulation",
        protocol: Protocol,
        rng: np.random.Generator,
    ) -> None:
        """Install the initial state-count distribution into every replica.

        The counts analogue of :meth:`apply_batch`: draws each replica's
        ``(S,)`` state-count vector directly (multinomial over the joint
        opinion/internal-state distribution this initializer induces), with
        no per-agent arrays. Exact in distribution for exchangeable
        initializers; only available when ``supports_counts`` is ``True``.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support count-level application "
            "(supports_counts=False)"
        )

    def spec(self) -> dict:
        """Declarative ``{"name": ..., params}`` form for sweep cells.

        The inverse of ``repro.sweep.registry.build_initializer``: it lets
        experiment drivers that accept initializer *objects* hand the same
        configuration to the declarative sweep orchestrator. Initializers
        without a registry entry raise.
        """
        raise NotImplementedError(
            f"{type(self).__name__} has no declarative sweep spec; "
            "see repro.sweep.registry for the supported initializers"
        )

    def __call__(
        self,
        population: PopulationState,
        protocol: Protocol,
        state: ProtocolState,
        rng: np.random.Generator,
    ) -> None:
        self.apply(population, protocol, state, rng)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"


class AllWrong(Initializer):
    """Every non-source agent starts on the wrong opinion.

    The canonical dissemination start: the source's information has to spread
    against a unanimous wrong consensus. Corresponds to the Cyan region of the
    grid (``x_t ≈ x_{t+1} ≈ 0`` when correct = 1).
    """

    name = "all-wrong"
    supports_batch = True
    supports_counts = True

    def apply(self, population, protocol, state, rng) -> None:
        wrong = 1 - population.correct_opinion
        opinions = np.full(population.n, wrong, dtype=np.uint8)
        population.adversarial_opinions(opinions, validate=False)
        state.update(protocol.randomize_state(population.n, rng))

    def apply_batch(self, batch, protocol, states, rng) -> None:
        wrong = 1 - batch.correct_opinion
        opinions = np.full((batch.replicas, batch.n), wrong, dtype=np.uint8)
        batch.adversarial_opinions(opinions, validate=False)
        states.update(protocol.randomize_state_batch(batch.replicas, batch.n, rng))

    def apply_counts(self, population, protocol, rng) -> None:
        # Every non-source shows the wrong opinion with adversarial-uniform
        # internal state: one multinomial over that opinion's state row.
        wrong = 1 - population.correct_opinion
        pmf = protocol.count_random_state_pmf()[wrong]
        population.set_counts(
            rng.multinomial(population.n_free, pmf, size=population.replicas)
        )

    def spec(self) -> dict:
        return {"name": "all-wrong"}


class AllCorrect(Initializer):
    """Every agent starts on the correct opinion (stability check)."""

    name = "all-correct"
    supports_batch = True
    supports_counts = True

    def apply(self, population, protocol, state, rng) -> None:
        opinions = np.full(population.n, population.correct_opinion, dtype=np.uint8)
        population.adversarial_opinions(opinions, validate=False)
        state.update(protocol.randomize_state(population.n, rng))

    def apply_batch(self, batch, protocol, states, rng) -> None:
        opinions = np.full((batch.replicas, batch.n), batch.correct_opinion, dtype=np.uint8)
        batch.adversarial_opinions(opinions, validate=False)
        states.update(protocol.randomize_state_batch(batch.replicas, batch.n, rng))

    def apply_counts(self, population, protocol, rng) -> None:
        pmf = protocol.count_random_state_pmf()[population.correct_opinion]
        population.set_counts(
            rng.multinomial(population.n_free, pmf, size=population.replicas)
        )

    def spec(self) -> dict:
        return {"name": "all-correct"}


class BernoulliRandom(Initializer):
    """Each non-source opinion independently 1 with probability ``p``."""

    def __init__(self, p: float = 0.5) -> None:
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"p must be in [0, 1], got {p}")
        self.p = p
        self.name = f"bernoulli(p={p})"
        self.supports_batch = True
        self.supports_counts = True

    def apply(self, population, protocol, state, rng) -> None:
        opinions = (rng.random(population.n) < self.p).astype(np.uint8)
        population.adversarial_opinions(opinions, validate=False)
        state.update(protocol.randomize_state(population.n, rng))

    def apply_batch(self, batch, protocol, states, rng) -> None:
        opinions = (rng.random((batch.replicas, batch.n)) < self.p).astype(np.uint8)
        batch.adversarial_opinions(opinions, validate=False)
        states.update(protocol.randomize_state_batch(batch.replicas, batch.n, rng))

    def apply_counts(self, population, protocol, rng) -> None:
        # Non-source opinions are iid Bernoulli(p); with adversarial internal
        # state the per-agent state distribution is the p-mixture of the two
        # opinion rows, so each replica is one multinomial draw from it.
        rows = protocol.count_random_state_pmf()
        pmf = self.p * rows[1] + (1.0 - self.p) * rows[0]
        population.set_counts(
            rng.multinomial(population.n_free, pmf, size=population.replicas)
        )

    def spec(self) -> dict:
        return {"name": "bernoulli", "p": self.p}


class ExactFraction(Initializer):
    """Exactly ``round(x * n)`` agents start with opinion 1, placed at random.

    Used to pin the chain's starting point ``x_0`` precisely, e.g. to start in
    a chosen grid domain.
    """

    def __init__(self, x: float) -> None:
        if not 0.0 <= x <= 1.0:
            raise ValueError(f"x must be in [0, 1], got {x}")
        self.x = x
        self.name = f"fraction(x={x})"
        self.supports_batch = True
        self.supports_counts = True

    def apply(self, population, protocol, state, rng) -> None:
        n = population.n
        ones = int(round(self.x * n))
        opinions = np.zeros(n, dtype=np.uint8)
        chosen = rng.choice(n, size=ones, replace=False)
        opinions[chosen] = 1
        population.adversarial_opinions(opinions, validate=False)
        state.update(protocol.randomize_state(population.n, rng))

    def apply_batch(self, batch, protocol, states, rng) -> None:
        ones = int(round(self.x * batch.n))
        row = np.zeros(batch.n, dtype=np.uint8)
        row[:ones] = 1
        # A uniform within-row shuffle of a fixed-weight row is exactly the
        # scalar rule's "ones at uniformly random positions".
        opinions = np.tile(row, (batch.replicas, 1))
        rng.permuted(opinions, axis=1, out=opinions)
        batch.adversarial_opinions(opinions, validate=False)
        states.update(protocol.randomize_state_batch(batch.replicas, batch.n, rng))

    def apply_counts(self, population, protocol, rng) -> None:
        # The scalar rule places round(x·n) ones uniformly among all n agents
        # and then pins sources, so the number landing on non-sources is
        # hypergeometric; internal state is adversarial-uniform per opinion.
        ones = int(round(self.x * population.n))
        n_free = population.n_free
        replicas = population.replicas
        if ones <= 0:
            ones_free = np.zeros(replicas, dtype=np.int64)
        elif ones >= population.n:
            ones_free = np.full(replicas, n_free, dtype=np.int64)
        else:
            ones_free = rng.hypergeometric(
                n_free, population.num_sources, ones, size=replicas
            )
        rows = protocol.count_random_state_pmf()
        counts = rng.multinomial(ones_free, rows[1]) + rng.multinomial(
            n_free - ones_free, rows[0]
        )
        population.set_counts(counts)

    def spec(self) -> dict:
        return {"name": "fraction", "x": self.x}


class RandomizeProtocolState(Initializer):
    """Leave opinions untouched; randomize only the internal protocol state."""

    name = "randomize-state"
    supports_batch = True
    supports_counts = True

    def apply(self, population, protocol, state, rng) -> None:
        state.update(protocol.randomize_state(population.n, rng))

    def apply_batch(self, batch, protocol, states, rng) -> None:
        states.update(protocol.randomize_state_batch(batch.replicas, batch.n, rng))

    def apply_counts(self, population, protocol, rng) -> None:
        # Opinions keep their current per-replica totals; internal state is
        # redrawn adversarial-uniform within each opinion class.
        rows = protocol.count_random_state_pmf()
        ones_mass = population.counts @ (population.display == 1).astype(np.int64)
        counts = rng.multinomial(ones_mass, rows[1]) + rng.multinomial(
            population.n_free - ones_mass, rows[0]
        )
        population.set_counts(counts)

    def spec(self) -> dict:
        return {"name": "randomize-state"}
