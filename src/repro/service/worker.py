"""Background worker pool: claims jobs and runs them through the orchestrator.

Each worker thread loops ``claim → execute → mark terminal``. Execution is
a plain :func:`~repro.sweep.orchestrator.run_sweep` call against the shared
results store under the service's :class:`~repro.sweep.dispatch.FaultPolicy`
— retries, per-cell timeouts, crash isolation, and structured failure
records all come from the machinery sweeps already have; the service adds
only job bookkeeping around it. A single-``RunSpec`` job rides the same
path through a duck-typed one-cell "grid" (:class:`_RunJobSpec`), so runs
and sweeps share cache-check, persistence, fault handling, and telemetry.

Observability: every job executes under its *own* metrics registry and
event log (the shared service registry is lock-free by design, so worker
threads must not write it concurrently); a tiny
:class:`~repro.telemetry.ObservabilityServer`-shaped proxy captures the
orchestrator's live :class:`~repro.telemetry.ProgressLine` stats. When the
job finishes, its registry snapshot merges into the service registry under
the pool's lock — ``/metrics`` shows service-lifetime aggregates while
``/progress`` and ``/runs/{id}`` show per-job live state.
"""

from __future__ import annotations

import threading
from typing import Any, Callable

from ..sweep.dispatch import FaultPolicy
from ..sweep.orchestrator import run_sweep
from ..sweep.spec import Cell, SweepSpec
from ..sweep.store import ResultsStore
from ..telemetry.events import EventLog
from ..telemetry.registry import MetricsRegistry
from .jobs import Job
from .queue import JobQueue

__all__ = ["WorkerPool"]

#: How long a worker sleeps in ``claim`` before re-checking the stop flag.
_CLAIM_TICK_S = 0.2

#: Events kept per finished job for the /runs/{id}/stream tail.
_EVENT_KEEP = 256


class _RunJobSpec:
    """One-cell duck-typed grid so a run job reuses the whole sweep path."""

    def __init__(self, cell: Cell) -> None:
        self._cell = cell
        self.name = f"run-{cell.key()[:12]}"

    def expand(self) -> list[Cell]:
        return [self._cell]


class _ProgressProxy:
    """Duck-types the orchestrator's ``serve=`` seam to capture progress.

    ``run_sweep`` calls ``attach(registry=..., progress=tracker.stats)``
    then ``start()`` on whatever it was given; this proxy just keeps the
    stats callable (and forces the tracker into existence by being passed
    at all) instead of binding a port.
    """

    def __init__(self) -> None:
        self.progress: Callable[[], dict[str, Any]] | None = None

    def attach(self, registry=None, progress=None) -> None:
        if progress is not None:
            self.progress = progress

    def start(self) -> int:
        return 0


class WorkerPool:
    """Daemon worker threads executing queued jobs against the store."""

    def __init__(
        self,
        queue: JobQueue,
        store: ResultsStore | None,
        *,
        workers: int = 1,
        policy: FaultPolicy | None = None,
        sweep_jobs: int = 1,
        registry: MetricsRegistry | None = None,
        work_fn: Callable | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.queue = queue
        self.store = store
        self.workers = workers
        #: Record-don't-abort by default: one crashing cell must produce a
        #: failed *job* with a record, not a dead worker thread.
        self.policy = policy if policy is not None else FaultPolicy(on_failure="record")
        self.sweep_jobs = sweep_jobs
        self.registry = registry
        self.work_fn = work_fn  # test seam, forwarded to run_sweep
        self._threads: list[threading.Thread] = []
        self._stop = threading.Event()
        self._merge_lock = threading.Lock()
        #: job_id -> live ProgressLine.stats callable (while running)
        self._progress: dict[str, Callable[[], dict[str, Any]]] = {}
        #: job_id -> structured event tail (kept after completion)
        self._events: dict[str, list[dict]] = {}

    # ---------------------------------------------------------------- control

    def start(self) -> None:
        if self._threads:
            return
        self._stop.clear()
        for index in range(self.workers):
            thread = threading.Thread(
                target=self._loop, name=f"repro-service-worker-{index}", daemon=True
            )
            thread.start()
            self._threads.append(thread)

    def stop(self, timeout: float = 10.0) -> None:
        self._stop.set()
        self.queue.close()
        for thread in self._threads:
            thread.join(timeout=timeout)
        self._threads = []

    def __enter__(self) -> "WorkerPool":
        self.start()
        return self

    def __exit__(self, *exc: object) -> None:
        self.stop()

    # ------------------------------------------------------------- inspection

    def progress(self, job_id: str) -> dict[str, Any] | None:
        """Live progress stats for a running job, or None."""
        source = self._progress.get(job_id)
        if source is None:
            return None
        try:
            return source()
        except RuntimeError:
            return None  # raced the owning thread's registry mutation

    def progress_all(self) -> list[dict[str, Any]]:
        """Stats for every currently-running job (the /progress body)."""
        stats = []
        for job_id in list(self._progress):
            entry = self.progress(job_id)
            if entry:  # skip None and the not-yet-attached empty dict
                stats.append(entry)
        return stats

    def events(self, job_id: str) -> list[dict]:
        """Structured event tail of a running or finished job."""
        return list(self._events.get(job_id, ()))

    # -------------------------------------------------------------- execution

    def _loop(self) -> None:
        while not self._stop.is_set():
            job = self.queue.claim(timeout=_CLAIM_TICK_S)
            if job is None:
                continue
            try:
                self._execute(job)
            except Exception as exc:  # noqa: BLE001 - worker must survive
                # Anything escaping here is a service-side bug or a bad
                # spec; fail the job with the plain exception so the
                # submitter sees it, and keep the worker alive.
                try:
                    self.queue.mark_failed(
                        job.job_id,
                        {"type": type(exc).__name__, "message": str(exc)},
                    )
                except Exception:
                    pass

    def _execute(self, job: Job) -> None:
        if job.kind == "sweep":
            spec: Any = SweepSpec.from_dict(job.spec)
        else:
            from ..config import RunSpec

            spec = _RunJobSpec(RunSpec.from_dict(job.spec))
        job_registry = MetricsRegistry()
        job_events = EventLog()
        proxy = _ProgressProxy()
        self._progress[job.job_id] = lambda: (
            proxy.progress() if proxy.progress is not None else {}
        )
        try:
            result = run_sweep(
                spec,
                jobs=self.sweep_jobs,
                store=self.store,
                policy=self.policy,
                work_fn=self.work_fn,
                metrics=job_registry,
                events=job_events,
                serve=proxy,
                job_id=job.job_id,
            )
        finally:
            self._progress.pop(job.job_id, None)
            self._events[job.job_id] = (job_events.events() or [])[-_EVENT_KEEP:]
            self._merge(job_registry)
        summary = {
            "cells": len(result.cells),
            "executed": result.executed,
            "cached": result.cached,
            "failed": result.failed,
            "source": "computed" if result.executed else "store",
        }
        if result.failed:
            failures = [
                {"key": res.key, "cell": cell.label(), "error": res.error}
                for cell, res in result.failures()
            ]
            self.queue.mark_failed(
                job.job_id,
                {
                    "type": "CellFailures",
                    "message": f"{result.failed}/{len(result.cells)} cells failed",
                    "summary": summary,
                    "failures": failures,
                },
            )
        else:
            self.queue.mark_done(job.job_id, summary)

    def _merge(self, job_registry: MetricsRegistry) -> None:
        """Fold a finished job's telemetry into the service registry.

        Serialized under the pool lock because the shared registry is
        lock-free — concurrent merges from two finishing jobs would race
        its family dicts.
        """
        if self.registry is None:
            return
        snapshot = job_registry.snapshot()
        with self._merge_lock:
            self.registry.merge_snapshot(snapshot)
            self.registry.counter(
                "repro_service_jobs_executed_total",
                "Jobs a worker actually executed (dedup hits never get here).",
            ).inc()
