"""Run service: a long-lived HTTP front door over the sweep orchestrator.

The batch CLI recomputes a condition for whoever invokes it; the service
turns the same substrate into compute-once-serve-forever infrastructure:

* :mod:`repro.service.jobs` — submissions become :class:`Job` records with
  content-hash-derived ids (identical specs *are* the same job) and a
  ``queued → running → done | failed | cancelled`` state machine;
* :mod:`repro.service.queue` — a persistent JSONL-journaled
  :class:`JobQueue` that dedups at submission time: a spec whose hash
  already completed, or whose cells are all in the
  :class:`~repro.sweep.store.ResultsStore`, resolves immediately to the
  cached result without touching a worker;
* :mod:`repro.service.worker` — a background :class:`WorkerPool` executing
  claimed jobs through the existing :func:`~repro.sweep.orchestrator.run_sweep`
  under a :class:`~repro.sweep.dispatch.FaultPolicy`, publishing per-job
  telemetry and live progress;
* :mod:`repro.service.server` — :class:`RunServiceServer`, the HTTP API
  (``POST /runs``, status/result routes, ``GET /runs/{id}/stream`` SSE)
  extending the :class:`~repro.telemetry.ObservabilityServer` routes;
* :mod:`repro.service.client` — a thin ``urllib`` client backing the
  ``repro submit`` CLI and the end-to-end tests.

Everything is stdlib-only (``http.server``/``urllib``), keeping the
package's no-new-dependencies contract.
"""

from .client import RunServiceClient, ServiceError
from .jobs import Job, JobError, job_cells, normalize_submission, spec_hash
from .queue import JobQueue
from .server import RunServiceServer
from .worker import WorkerPool

__all__ = [
    "Job",
    "JobError",
    "JobQueue",
    "RunServiceClient",
    "RunServiceServer",
    "ServiceError",
    "WorkerPool",
    "job_cells",
    "normalize_submission",
    "spec_hash",
]
