"""Thin stdlib client for the run service (``urllib`` only).

Backs the ``repro submit`` CLI and the end-to-end tests; the API surface
mirrors the routes one-to-one so anything the service can do is one method
call away. Streaming uses the SSE route — ``urllib`` de-chunks the
response transparently, so :meth:`RunServiceClient.stream` is a plain
generator of ``(event, payload)`` pairs.
"""

from __future__ import annotations

import json
import time
from typing import Any, Iterator
from urllib import error, request

__all__ = ["RunServiceClient", "ServiceError"]


class ServiceError(RuntimeError):
    """A non-success HTTP reply from the service."""

    def __init__(self, status: int, message: str):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class RunServiceClient:
    """Typed wrapper over the run-service HTTP routes."""

    def __init__(self, base_url: str, *, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------------ http

    def _request(
        self, method: str, path: str, payload: dict | None = None
    ) -> tuple[int, bytes]:
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        req = request.Request(
            self.base_url + path, data=data, headers=headers, method=method
        )
        try:
            with request.urlopen(req, timeout=self.timeout) as resp:
                return resp.status, resp.read()
        except error.HTTPError as exc:
            body = exc.read()
            try:
                message = json.loads(body.decode("utf-8")).get("error", "")
            except (json.JSONDecodeError, UnicodeDecodeError):
                message = body.decode("utf-8", "replace").strip()
            raise ServiceError(exc.code, message or exc.reason) from exc
        except error.URLError as exc:
            raise ServiceError(0, f"service unreachable: {exc.reason}") from exc

    def _json(self, method: str, path: str, payload: dict | None = None) -> dict:
        _, body = self._request(method, path, payload)
        return json.loads(body.decode("utf-8"))

    # ------------------------------------------------------------------- api

    def submit(self, submission: dict) -> dict:
        """POST a ``{"run"|"sweep": spec}`` (or bare spec) body; job status."""
        return self._json("POST", "/runs", submission)

    def jobs(self) -> list[dict]:
        return self._json("GET", "/runs")["jobs"]

    def job(self, job_id: str) -> dict:
        return self._json("GET", f"/runs/{job_id}")

    def cancel(self, job_id: str) -> dict:
        return self._json("POST", f"/runs/{job_id}/cancel")

    def result_csv(self, job_id: str) -> bytes:
        """The completed job's CSV, byte-identical to a direct sweep's."""
        _, body = self._request("GET", f"/runs/{job_id}/result?format=csv")
        return body

    def result_rows(self, job_id: str) -> dict:
        return self._json("GET", f"/runs/{job_id}/result?format=json")

    def wait(self, job_id: str, *, timeout: float = 300.0, poll: float = 0.2) -> dict:
        """Poll until the job is terminal; returns its final status body."""
        deadline = time.monotonic() + timeout
        while True:
            status = self.job(job_id)
            if status["state"] in ("done", "failed", "cancelled"):
                return status
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id[:12]} still {status['state']} after {timeout:g}s"
                )
            time.sleep(poll)

    def stream(
        self, job_id: str, *, timeout: float = 600.0
    ) -> Iterator[tuple[str, dict]]:
        """Follow the SSE route; yields ``(event, payload)`` until it ends."""
        req = request.Request(
            f"{self.base_url}/runs/{job_id}/stream?timeout={timeout:g}",
            headers={"Accept": "text/event-stream"},
        )
        try:
            resp = request.urlopen(req, timeout=timeout + self.timeout)
        except error.HTTPError as exc:
            raise ServiceError(exc.code, exc.read().decode("utf-8", "replace")) from exc
        with resp:
            event: str | None = None
            data_lines: list[str] = []
            for raw in resp:
                line = raw.decode("utf-8").rstrip("\r\n")
                if line.startswith("event:"):
                    event = line[len("event:"):].strip()
                elif line.startswith("data:"):
                    data_lines.append(line[len("data:"):].strip())
                elif not line and event is not None:
                    payload: Any = "\n".join(data_lines)
                    try:
                        payload = json.loads(payload)
                    except json.JSONDecodeError:
                        pass
                    yield event, payload
                    if event in ("done", "timeout"):
                        return
                    event, data_lines = None, []
