"""Job records: content-addressed submissions with a small state machine.

A job wraps one submitted condition — a single :class:`~repro.config.RunSpec`
or a :class:`~repro.sweep.spec.SweepSpec` grid — in transport/journal form.
Its identity is the SHA-256 of the *canonicalized* spec
(:func:`spec_hash`), so two requests that mean the same computation are the
same job no matter how their JSON was spelled: field order, elided
defaults, and string-vs-structured component forms all normalize away
through the spec classes' own ``from_dict``/``to_dict`` round-trip before
hashing. Content addressing is what makes dedup trivial for the queue —
and what makes the id stable across service restarts, client retries, and
machines.

States move ``queued → running → done | failed``, with ``cancelled``
reachable only from ``queued`` (a running sweep is not preemptible — its
cells checkpoint to the store either way, so the useful cancel is "don't
start"). Transitions are validated; the queue journals each one.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field

from ..config import RunSpec, canonical_json
from ..sweep.spec import Cell, SweepSpec

__all__ = [
    "Job",
    "JobError",
    "STATES",
    "TERMINAL_STATES",
    "job_cells",
    "normalize_submission",
    "spec_hash",
]

STATES = ("queued", "running", "done", "failed", "cancelled")
TERMINAL_STATES = ("done", "failed", "cancelled")

#: state -> states it may legally move to
_TRANSITIONS = {
    "queued": ("running", "cancelled"),
    "running": ("done", "failed", "queued"),  # -> queued: crash-recovery requeue
    "done": (),
    "failed": ("queued",),  # resubmission retries a failed job
    "cancelled": ("queued",),  # resubmission revives a cancelled job
}


class JobError(ValueError):
    """An invalid submission or an illegal job operation."""


def normalize_submission(body: dict) -> tuple[str, dict]:
    """Validate a submission body into ``(kind, canonical_spec_dict)``.

    Accepts ``{"run": {...}}``, ``{"sweep": {...}}``, or a bare spec dict
    (autodetected: a ``axes`` key means sweep, else run). The spec is
    round-tripped through its dataclass so every equivalent spelling —
    reordered keys, elided defaults, shorthand component strings — lands on
    one canonical dict, which is what :func:`spec_hash` hashes. Raises
    :class:`JobError` with a client-presentable message on anything invalid.
    """
    if not isinstance(body, dict):
        raise JobError(f"submission must be a JSON object, got {type(body).__name__}")
    if "run" in body and "sweep" in body:
        raise JobError("submission carries both 'run' and 'sweep'; send one")
    if "run" in body:
        kind, spec = "run", body["run"]
    elif "sweep" in body:
        kind, spec = "sweep", body["sweep"]
    else:
        kind, spec = ("sweep" if "axes" in body else "run"), body
    if not isinstance(spec, dict):
        raise JobError(f"{kind} spec must be a JSON object, got {type(spec).__name__}")
    try:
        if kind == "sweep":
            canonical = SweepSpec.from_dict(spec).to_dict()
        else:
            canonical = RunSpec.from_dict(spec).to_dict()
    except (JobError, TypeError, ValueError, KeyError) as exc:
        raise JobError(f"invalid {kind} spec: {exc}") from exc
    return kind, canonical


def spec_hash(kind: str, spec: dict) -> str:
    """Content hash of a normalized submission — the job id.

    Hashes the canonical JSON of ``{"kind": ..., "spec": ...}`` so a run
    and a sweep that would expand to the same single cell still get
    distinct ids (they have different result shapes and routes).
    """
    return hashlib.sha256(
        canonical_json({"kind": kind, "spec": spec}).encode()
    ).hexdigest()


def job_cells(kind: str, spec: dict) -> list[Cell]:
    """The cells a job computes, in canonical order (one for a run job)."""
    if kind == "sweep":
        return SweepSpec.from_dict(spec).expand()
    return [RunSpec.from_dict(spec)]


@dataclass
class Job:
    """One submission in journal/transport form."""

    job_id: str
    kind: str  # "run" | "sweep"
    spec: dict
    state: str = "queued"
    created_ts: float = field(default_factory=time.time)
    started_ts: float | None = None
    finished_ts: float | None = None
    #: Completion summary (cell counts, source) once ``done``.
    result: dict | None = None
    #: Structured failure description once ``failed`` (error type/message,
    #: plus per-cell failure records when cells exhausted their retries).
    error: dict | None = None
    #: Whether submission resolved straight from the store, never queueing.
    deduplicated: bool = False

    @classmethod
    def from_submission(cls, kind: str, spec: dict) -> "Job":
        return cls(job_id=spec_hash(kind, spec), kind=kind, spec=spec)

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def transition(self, state: str, *, ts: float | None = None) -> None:
        """Move to ``state``, enforcing the legal transition graph."""
        if state not in STATES:
            raise JobError(f"unknown job state {state!r}")
        if state not in _TRANSITIONS[self.state]:
            raise JobError(f"job {self.job_id[:12]} cannot move {self.state} -> {state}")
        now = time.time() if ts is None else ts
        self.state = state
        if state == "running":
            self.started_ts = now
        elif state == "queued":
            # Requeue (retry or crash recovery): the record starts over.
            self.started_ts = None
            self.finished_ts = None
            self.result = None
            self.error = None
        elif state in TERMINAL_STATES:
            self.finished_ts = now

    def to_dict(self) -> dict:
        data: dict = {
            "job_id": self.job_id,
            "kind": self.kind,
            "spec": self.spec,
            "state": self.state,
            "created_ts": self.created_ts,
            "deduplicated": self.deduplicated,
        }
        if self.started_ts is not None:
            data["started_ts"] = self.started_ts
        if self.finished_ts is not None:
            data["finished_ts"] = self.finished_ts
        if self.result is not None:
            data["result"] = self.result
        if self.error is not None:
            data["error"] = self.error
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "Job":
        return cls(
            job_id=data["job_id"],
            kind=data["kind"],
            spec=data["spec"],
            state=data.get("state", "queued"),
            created_ts=data.get("created_ts", 0.0),
            started_ts=data.get("started_ts"),
            finished_ts=data.get("finished_ts"),
            result=data.get("result"),
            error=data.get("error"),
            deduplicated=bool(data.get("deduplicated", False)),
        )
