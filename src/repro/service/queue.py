"""Persistent job queue with submission-time spec-hash dedup.

The queue journals to a JSON-lines file with the same append discipline as
the :class:`~repro.sweep.store.ResultsStore`: one line per event — a full
job record on submission, a ``{job_id, state, ts}`` transition line per
state change (terminal transitions carry the result summary or error) —
flushed as written, torn tails skipped on replay. Replay folds the lines
back into jobs (last state wins); jobs found ``running`` are reset to
``queued``, because a journal that ends mid-run means the service died
with the job in flight — its finished cells are already checkpointed in
the results store, so requeueing recomputes only what's missing.

Dedup is the submission path's whole job, and it is what makes the
service the millions-of-users front door: a submission whose hash already
has a completed job returns that job verbatim; one whose hash is queued or
running coalesces onto the in-flight job (two clients asking for the same
grid fund one computation); and a *new* hash whose cells are all present
in the results store is born ``done`` without ever touching a worker —
the store, not the worker pool, is the source of truth for "already
computed". Failed and cancelled jobs requeue on resubmission (that is the
retry knob).
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path

from ..sweep.store import ResultsStore
from ..telemetry.registry import MetricsRegistry
from .jobs import Job, JobError, job_cells

__all__ = ["JobQueue"]


class JobQueue:
    """JSONL-journaled queue of :class:`Job` records with dedup-on-submit."""

    def __init__(
        self,
        path: str | Path,
        *,
        store: ResultsStore | None = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.path = Path(path)
        self.store = store
        self.registry = registry
        self.corrupt_lines = 0
        self._jobs: dict[str, Job] = {}
        self._pending: list[str] = []  # job ids in submission order
        self._lock = threading.RLock()
        self._ready = threading.Condition(self._lock)
        self._closed = False
        self._load()

    # ---------------------------------------------------------------- journal

    def _load(self) -> None:
        if not self.path.exists():
            return
        with self.path.open("r", encoding="utf-8") as handle:
            for raw in handle:
                line = raw.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                    job_id = entry["job_id"]
                except (json.JSONDecodeError, KeyError, TypeError):
                    self.corrupt_lines += 1
                    continue
                if "spec" in entry:
                    try:
                        self._jobs[job_id] = Job.from_dict(entry)
                    except (KeyError, TypeError):
                        self.corrupt_lines += 1
                    continue
                job = self._jobs.get(job_id)
                if job is None:
                    self.corrupt_lines += 1  # transition without its job line
                    continue
                job.state = entry.get("state", job.state)
                job.started_ts = entry.get("started_ts", job.started_ts)
                job.finished_ts = entry.get("finished_ts", job.finished_ts)
                if "result" in entry:
                    job.result = entry["result"]
                if "error" in entry:
                    job.error = entry["error"]
        # Crash recovery: a job the journal last saw running died with the
        # service. Its completed cells are in the results store; requeue so
        # a worker fills in the rest.
        for job in self._jobs.values():
            if job.state == "running":
                job.transition("queued")
                self._append(
                    {"job_id": job.job_id, "state": "queued", "ts": time.time()}
                )
        for job in sorted(self._jobs.values(), key=lambda j: j.created_ts):
            if job.state == "queued":
                self._pending.append(job.job_id)

    def _append(self, entry: dict) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps(entry, sort_keys=True) + "\n")
            handle.flush()

    def _journal_transition(self, job: Job) -> None:
        entry: dict = {"job_id": job.job_id, "state": job.state, "ts": time.time()}
        if job.started_ts is not None:
            entry["started_ts"] = job.started_ts
        if job.finished_ts is not None:
            entry["finished_ts"] = job.finished_ts
        if job.result is not None:
            entry["result"] = job.result
        if job.error is not None:
            entry["error"] = job.error
        self._append(entry)

    def _count(self, name: str, help_text: str, **labels: str) -> None:
        if self.registry is not None:
            self.registry.counter(name, help_text, **labels).inc()

    # ----------------------------------------------------------------- submit

    def _store_result(self, kind: str, spec: dict) -> dict | None:
        """Completion summary if the store already holds every cell, else None.

        This is the spec-hash dedup path's second leg: a brand-new job id
        whose cells were all computed before (by any sweep that overlapped
        this grid, not just an identical submission) resolves from the
        store alone. Failure records do not count as coverage — a job over
        them should run and retry.
        """
        if self.store is None:
            return None
        try:
            cells = job_cells(kind, spec)
        except (TypeError, ValueError, KeyError) as exc:
            raise JobError(f"invalid {kind} spec: {exc}") from exc
        for cell in cells:
            record = self.store.get(cell.key())
            if record is None or "error" in record:
                return None
        return {"cells": len(cells), "executed": 0, "cached": len(cells), "failed": 0, "source": "store"}

    def submit(self, kind: str, spec: dict) -> tuple[Job, bool]:
        """Submit a normalized spec; returns ``(job, deduplicated)``.

        ``deduplicated`` is True when no new work was scheduled: the hash
        matched a completed job, coalesced onto a queued/running one, or
        every cell was already in the results store. Failed/cancelled
        matches requeue instead (resubmission is the retry path).
        """
        with self._lock:
            if self._closed:
                raise JobError("queue is closed")
            job = Job.from_submission(kind, spec)
            existing = self._jobs.get(job.job_id)
            if existing is not None:
                if existing.state == "done":
                    self._count(
                        "repro_service_dedup_hits_total",
                        "Submissions resolved to an already-computed result "
                        "without scheduling any work.",
                        source="job",
                    )
                    return existing, True
                if existing.state in ("queued", "running"):
                    self._count(
                        "repro_service_coalesced_total",
                        "Submissions coalesced onto an identical in-flight job.",
                    )
                    return existing, True
                # failed | cancelled -> requeue
                existing.transition("queued")
                self._journal_transition(existing)
                self._pending.append(existing.job_id)
                self._count(
                    "repro_service_jobs_submitted_total",
                    "Jobs accepted for execution (fresh or requeued).",
                    kind=kind,
                )
                self._ready.notify()
                return existing, False
            cached = self._store_result(kind, spec)
            if cached is not None:
                job.state = "done"
                job.finished_ts = time.time()
                job.result = cached
                job.deduplicated = True
                self._jobs[job.job_id] = job
                self._append(job.to_dict())
                self._count(
                    "repro_service_dedup_hits_total",
                    "Submissions resolved to an already-computed result "
                    "without scheduling any work.",
                    source="store",
                )
                return job, True
            self._jobs[job.job_id] = job
            self._append(job.to_dict())
            self._pending.append(job.job_id)
            self._count(
                "repro_service_jobs_submitted_total",
                "Jobs accepted for execution (fresh or requeued).",
                kind=kind,
            )
            self._ready.notify()
            return job, False

    # ------------------------------------------------------------ worker side

    def claim(self, timeout: float | None = None) -> Job | None:
        """Pop the oldest queued job and mark it running; None on timeout.

        Blocks until a job is available, the timeout elapses, or the queue
        is closed (workers use a short timeout and loop, so ``close()``
        drains them promptly).
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            while True:
                if self._closed:
                    return None
                if self._pending:
                    job = self._jobs[self._pending.pop(0)]
                    job.transition("running")
                    self._journal_transition(job)
                    return job
                if deadline is None:
                    self._ready.wait()
                else:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or not self._ready.wait(remaining):
                        return None

    def mark_done(self, job_id: str, result: dict) -> Job:
        with self._lock:
            job = self._require(job_id)
            job.result = result
            job.transition("done")
            self._journal_transition(job)
            self._count(
                "repro_service_jobs_finished_total",
                "Jobs that reached a terminal state, by outcome.",
                outcome="done",
            )
            return job

    def mark_failed(self, job_id: str, error: dict) -> Job:
        with self._lock:
            job = self._require(job_id)
            job.error = error
            job.transition("failed")
            self._journal_transition(job)
            self._count(
                "repro_service_jobs_finished_total",
                "Jobs that reached a terminal state, by outcome.",
                outcome="failed",
            )
            return job

    # ------------------------------------------------------------ client side

    def cancel(self, job_id: str) -> Job:
        """Cancel a queued job. Running jobs are not preemptible."""
        with self._lock:
            job = self._require(job_id)
            if job.state != "queued":
                raise JobError(
                    f"job {job_id[:12]} is {job.state}; only queued jobs can be cancelled"
                )
            self._pending.remove(job_id)
            job.transition("cancelled")
            self._journal_transition(job)
            self._count(
                "repro_service_jobs_finished_total",
                "Jobs that reached a terminal state, by outcome.",
                outcome="cancelled",
            )
            return job

    def get(self, job_id: str) -> Job | None:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> list[Job]:
        """All known jobs, oldest submission first."""
        with self._lock:
            return sorted(self._jobs.values(), key=lambda j: (j.created_ts, j.job_id))

    def position(self, job_id: str) -> int | None:
        """0-based place in the pending line, or None if not queued."""
        with self._lock:
            try:
                return self._pending.index(job_id)
            except ValueError:
                return None

    def close(self) -> None:
        """Stop handing out work; blocked :meth:`claim` calls return None."""
        with self._lock:
            self._closed = True
            self._ready.notify_all()

    def _require(self, job_id: str) -> Job:
        job = self._jobs.get(job_id)
        if job is None:
            raise JobError(f"unknown job {job_id!r}")
        return job

    def __len__(self) -> int:
        with self._lock:
            return len(self._jobs)
