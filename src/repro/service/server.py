"""HTTP API of the run service, extending the observability routes.

:class:`RunServiceServer` subclasses
:class:`~repro.telemetry.ObservabilityServer`, so one port serves both the
scrape surface (``/metrics``, ``/healthz``, ``/progress``) and the job API:

* ``POST /runs`` — submit RunSpec/SweepSpec JSON; 202 with the job id, or
  200 when spec-hash dedup resolved it without scheduling work;
* ``GET /runs`` — all jobs, oldest first;
* ``GET /runs/{id}`` — status: state, queue position, live progress,
  result summary or failure records;
* ``GET /runs/{id}/result`` — the completed rows, as CSV (byte-identical
  to :meth:`~repro.sweep.orchestrator.SweepResult.write_csv` of a direct
  sweep) or JSON (``?format=json``);
* ``POST /runs/{id}/cancel`` — cancel a still-queued job;
* ``GET /runs/{id}/stream`` — live Server-Sent Events until the job
  reaches a terminal state.

Streaming is SSE over chunked HTTP/1.1 rather than websockets: the
service's contract is stdlib-only, and ``http.server`` cannot speak the
websocket upgrade — SSE delivers the same one-directional progress feed
over plain HTTP (``urllib`` and ``curl -N`` both follow it). The
substitution is recorded in ROADMAP item 2.
"""

from __future__ import annotations

import csv
import io
import json
import math
import time
from http.server import BaseHTTPRequestHandler
from typing import Any
from urllib.parse import parse_qs

from ..sweep.orchestrator import SweepResult
from ..sweep.runner import CellResult
from ..telemetry.server import STREAMED, ObservabilityServer, RouteError
from .jobs import Job, JobError, job_cells, normalize_submission
from .queue import JobQueue
from .worker import WorkerPool

__all__ = ["RunServiceServer"]

#: Seconds between SSE poll ticks while a job runs.
_STREAM_TICK_S = 0.1

#: Default wall-clock cap on one SSE connection (client can override with
#: ``?timeout=``); a stream of a job that never terminates must not pin a
#: handler thread forever.
_STREAM_TIMEOUT_S = 600.0

_INDEX_EXTRA = "\n".join(
    [
        "  POST /runs              submit RunSpec/SweepSpec JSON",
        "  GET  /runs              list jobs",
        "  GET  /runs/{id}         job status",
        "  GET  /runs/{id}/result  result rows (?format=csv|json)",
        "  POST /runs/{id}/cancel  cancel a queued job",
        "  GET  /runs/{id}/stream  live progress (Server-Sent Events)",
        "",
    ]
)


def _json_safe(value: Any) -> Any:
    """NaN/Inf-free copy: JSON has no NaN, so payload NaNs become null."""
    if isinstance(value, float) and not math.isfinite(value):
        return None
    if isinstance(value, dict):
        return {key: _json_safe(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(item) for item in value]
    return value


class RunServiceServer(ObservabilityServer):
    """The run-service HTTP surface over a queue and worker pool."""

    def __init__(
        self,
        *,
        queue: JobQueue,
        pool: WorkerPool,
        host: str = "127.0.0.1",
        port: int = 0,
        **kwargs: Any,
    ) -> None:
        super().__init__(host=host, port=port, **kwargs)
        self.queue = queue
        self.pool = pool

    # ---------------------------------------------------------------- routing

    def handle_route(
        self,
        method: str,
        path: str,
        query: str,
        body: bytes,
        handler: BaseHTTPRequestHandler,
    ):
        if path == "/runs":
            if method == "POST":
                return self._submit(body)
            if method == "GET":
                return self._list()
            return None
        if path.startswith("/runs/"):
            parts = path[len("/runs/"):].split("/")
            job_id, rest = parts[0], parts[1:]
            if not rest and method == "GET":
                return self._status(job_id)
            if rest == ["result"] and method == "GET":
                return self._result(job_id, query)
            if rest == ["cancel"] and method == "POST":
                return self._cancel(job_id)
            if rest == ["stream"] and method == "GET":
                return self._stream(job_id, query, handler)
            return None
        return super().handle_route(method, path, query, body, handler)

    def index_text(self) -> str:
        return super().index_text() + _INDEX_EXTRA

    def progress_json(self) -> dict[str, Any]:
        """Per-job live progress — several jobs can run concurrently, so
        the body is a list keyed by ``job_id`` rather than one flat dict."""
        jobs = self.pool.progress_all()
        return {"active": bool(jobs), "jobs": jobs}

    # ----------------------------------------------------------------- bodies

    @staticmethod
    def _reply(status: int, payload: dict) -> tuple[int, str, str]:
        return status, "application/json", json.dumps(payload, sort_keys=True) + "\n"

    def _job_or_404(self, job_id: str) -> Job:
        job = self.queue.get(job_id)
        if job is None:
            raise RouteError(404, f"unknown job {job_id!r}")
        return job

    def _job_body(self, job: Job, *, spec: bool = False) -> dict:
        body = job.to_dict()
        if not spec:
            body.pop("spec", None)
        position = self.queue.position(job.job_id)
        if position is not None:
            body["queue_position"] = position
        progress = self.pool.progress(job.job_id)
        if progress:
            body["progress"] = progress
        return _json_safe(body)

    def _submit(self, body: bytes) -> tuple[int, str, str]:
        try:
            parsed = json.loads(body.decode("utf-8")) if body else None
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise RouteError(400, f"request body is not valid JSON: {exc}") from exc
        try:
            kind, spec = normalize_submission(parsed)
            job, deduplicated = self.queue.submit(kind, spec)
        except JobError as exc:
            raise RouteError(400, str(exc)) from exc
        reply = self._job_body(job)
        reply["deduplicated"] = deduplicated
        # 200: nothing was scheduled (already done / coalesced); 202: queued.
        return self._reply(200 if deduplicated else 202, reply)

    def _list(self) -> tuple[int, str, str]:
        jobs = [self._job_body(job) for job in self.queue.jobs()]
        return self._reply(200, {"jobs": jobs})

    def _status(self, job_id: str) -> tuple[int, str, str]:
        return self._reply(200, self._job_body(self._job_or_404(job_id), spec=True))

    def _cancel(self, job_id: str) -> tuple[int, str, str]:
        job = self._job_or_404(job_id)
        try:
            self.queue.cancel(job.job_id)
        except JobError as exc:
            raise RouteError(409, str(exc)) from exc
        return self._reply(200, self._job_body(job))

    # ----------------------------------------------------------------- result

    def _stored_result(self, job: Job) -> SweepResult:
        """Rebuild the job's :class:`SweepResult` from the results store.

        The store is the single source of truth for result bytes — whether
        the job computed its cells, resumed them, or dedup'd onto records
        some earlier sweep wrote. Rebuilding through the same
        :class:`CellResult` cached path the orchestrator uses keeps the
        CSV rendering byte-identical to a direct ``run_sweep().write_csv``.
        """
        if self.pool.store is None:
            raise RouteError(409, "service is running without a results store")
        try:
            cells = job_cells(job.kind, job.spec)
        except (TypeError, ValueError, KeyError) as exc:
            raise RouteError(500, f"stored spec no longer expands: {exc}") from exc
        results: list[CellResult] = []
        for cell in cells:
            key = cell.key()
            record = self.pool.store.get(key)
            if record is None:
                raise RouteError(
                    409, f"result incomplete: cell {key[:12]} is missing from the store"
                )
            provenance = record.get("provenance") or {}
            if "error" in record:
                results.append(
                    CellResult(
                        key=key, cell=record["cell"], payload={}, cached=True,
                        error=record["error"],
                    )
                )
            else:
                results.append(
                    CellResult(
                        key=key, cell=record["cell"], payload=record["payload"],
                        cached=True, metrics=record.get("metrics"),
                        elapsed_s=provenance.get("elapsed_s"),
                    )
                )
        return SweepResult(spec=None, cells=cells, results=results)  # type: ignore[arg-type]

    def _result(self, job_id: str, query: str) -> tuple[int, str, str]:
        job = self._job_or_404(job_id)
        if job.state != "done":
            raise RouteError(409, f"job {job_id[:12]} is {job.state}, not done")
        fmt = parse_qs(query).get("format", ["csv"])[0]
        result = self._stored_result(job)
        if fmt == "json":
            return self._reply(
                200,
                {
                    "job_id": job.job_id,
                    "columns": result._columns(),
                    "rows": _json_safe(result.rows()),
                },
            )
        if fmt != "csv":
            raise RouteError(400, f"format must be 'csv' or 'json', got {fmt!r}")
        columns = result._columns()
        buffer = io.StringIO()
        # Same renderer as SweepResult.write_csv (csv.writer defaults, NaN
        # blank), just into memory — the bytes must match a direct sweep's
        # file exactly.
        writer = csv.writer(buffer)
        writer.writerow(columns)
        for row in result.rows():
            writer.writerow(
                [
                    "" if isinstance(value, float) and math.isnan(value) else value
                    for value in (row[column] for column in columns)
                ]
            )
        return 200, "text/csv; charset=utf-8", buffer.getvalue()

    # ----------------------------------------------------------------- stream

    def _stream(
        self, job_id: str, query: str, handler: BaseHTTPRequestHandler
    ) -> object:
        """Follow a job over SSE until it terminates (chunked HTTP/1.1).

        Emits ``state`` events on every state change, ``progress`` events
        while cells execute, and a final ``done`` event carrying the full
        status body. The response is hand-chunked because the base handler
        speaks HTTP/1.0 framing; SSE needs an open-ended body the client
        (urllib, curl -N, EventSource) de-chunks incrementally.
        """
        job = self._job_or_404(job_id)
        params = parse_qs(query)
        try:
            timeout = float(params.get("timeout", [_STREAM_TIMEOUT_S])[0])
        except ValueError as exc:
            raise RouteError(400, f"timeout must be a number: {exc}") from exc

        handler.protocol_version = "HTTP/1.1"
        handler.send_response(200)
        handler.send_header("Content-Type", "text/event-stream")
        handler.send_header("Cache-Control", "no-cache")
        handler.send_header("Transfer-Encoding", "chunked")
        handler.send_header("Connection", "close")
        handler.end_headers()

        def chunk(text: str) -> None:
            data = text.encode("utf-8")
            handler.wfile.write(f"{len(data):X}\r\n".encode("ascii") + data + b"\r\n")
            handler.wfile.flush()

        def emit(event: str, payload: dict) -> None:
            chunk(f"event: {event}\ndata: {json.dumps(_json_safe(payload), sort_keys=True)}\n\n")

        deadline = time.monotonic() + timeout
        last_state: str | None = None
        last_progress: dict | None = None
        try:
            while True:
                job = self._job_or_404(job_id)
                if job.state != last_state:
                    last_state = job.state
                    emit("state", {"job_id": job.job_id, "state": job.state})
                if job.terminal:
                    emit("done", self._job_body(job))
                    break
                progress = self.pool.progress(job.job_id)
                if progress and progress != last_progress:
                    last_progress = progress
                    emit("progress", progress)
                if time.monotonic() >= deadline:
                    emit("timeout", {"job_id": job.job_id, "state": job.state})
                    break
                time.sleep(_STREAM_TICK_S)
            handler.wfile.write(b"0\r\n\r\n")
            handler.wfile.flush()
        except (BrokenPipeError, ConnectionResetError, OSError):
            pass  # client hung up mid-stream; nothing to clean up
        handler.close_connection = True
        return STREAMED
