"""Command-line interface: ``python -m repro <command>``.

Small, dependency-free front door for the library's main entry points:

* ``demo``   — one FET run with a trajectory chart.
* ``map``    — the Figure 1a domain map for a given n.
* ``scale``  — a quick Theorem-1 scaling sweep with exponent fit.
* ``compare``— FET vs. the baseline protocols from the all-wrong start.
* ``sweep``  — a declarative experiment grid (JSON spec or the built-in FET
  demo grid) run through the parallel, resumable sweep orchestrator, with
  optional live progress (``--progress``) and metrics export
  (``--metrics-out``).
* ``metrics``— run a grid with telemetry on and dump the aggregated
  counters in Prometheus text exposition format.
* ``trace``  — record per-replica trajectories of a batched run (full,
  strided, or ring-buffered), chart the reduced curve, and export CSV.
* ``timeline`` — render a per-worker timeline (ASCII or JSON lanes) from
  a Chrome trace JSON written by ``sweep --trace-out``.
* ``serve-metrics`` — stdlib HTTP observability endpoint serving
  ``/metrics`` (Prometheus exposition), ``/healthz`` and ``/progress``;
  ``sweep --metrics-port`` exposes the same surface on a *live* run.
* ``serve`` — the run service: an HTTP job queue accepting RunSpec/
  SweepSpec JSON with spec-hash dedup against the results store, a
  background worker pool, and live SSE progress streaming.
* ``submit`` — client for ``serve``: submit a spec file, optionally
  follow it live (``--follow``) and save the result CSV (``--out``).

Each command accepts ``--seed`` and prints plain text; exit code 0 on
success. The heavy, assertion-carrying versions of these experiments live in
``benchmarks/``.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys
import time
from pathlib import Path
from typing import Sequence

from .analysis.domains import DomainPartition
from .config import RunSpec
from .core.engine import run_protocol
from .core.population import make_population
from .core.rng import make_rng
from .experiments.convergence import default_round_budget, fit_scaling, sweep_population_sizes
from .experiments.harness import run_trials
from .initializers.standard import AllWrong
from .protocols.fet import FETProtocol, ell_for
from .protocols.majority_sampling import MajoritySamplingProtocol
from .protocols.oracle_clock import OracleClockProtocol
from .protocols.voter import VoterProtocol
from .sweep import (
    FaultPolicy,
    ResultsStore,
    component_catalog,
    fet_demo_spec,
    initializer_names,
    load_spec,
    measure_kinds,
    protocol_names,
    run_sweep,
)
from .telemetry import (
    EventLog,
    MetricsRegistry,
    MetricsSnapshot,
    ObservabilityServer,
    SpanTracer,
    render_prometheus,
    render_timeline,
    timeline_lanes,
    write_chrome_trace,
    write_events_jsonl,
)
from .trace import make_recorder, settle_rounds
from .viz.ascii_grid import render_batch_trace, render_domain_map, render_trajectory
from .viz.csv_out import write_trace_csv
from .viz.tables import format_table

__all__ = ["main", "build_parser"]


def _jobs(value: str) -> int:
    """Worker-count argument: positive counts pass through, ``0`` means "use
    every core", and negatives fail at parse time instead of reaching the
    dispatcher (which would silently build a broken pool)."""
    try:
        jobs = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(f"--jobs must be an integer, got {value!r}")
    if jobs < 0:
        raise argparse.ArgumentTypeError(f"--jobs must be >= 0, got {jobs}")
    if jobs == 0:
        return os.cpu_count() or 1
    return jobs


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of Korman & Vacus (PODC 2022): FET under passive communication.",
    )
    parser.add_argument("--seed", type=int, default=0, help="base RNG seed (default 0)")
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="run FET once from the all-wrong start")
    demo.add_argument("-n", type=int, default=5000, help="population size (default 5000)")

    map_cmd = sub.add_parser("map", help="print the Figure 1a domain map")
    map_cmd.add_argument("-n", type=int, default=1000, help="population size (default 1000)")
    map_cmd.add_argument("--delta", type=float, default=0.05, help="partition delta (default 0.05)")
    map_cmd.add_argument("--resolution", type=int, default=61, help="grid columns (default 61)")

    scale = sub.add_parser("scale", help="quick Theorem-1 scaling sweep")
    scale.add_argument("--trials", type=int, default=8, help="trials per size (default 8)")
    scale.add_argument(
        "--jobs", type=_jobs, default=1,
        help="worker processes (default 1; 0 means one per CPU core)",
    )

    sweep_cmd = sub.add_parser(
        "sweep", help="run a declarative experiment grid (parallel, resumable)"
    )
    sweep_cmd.add_argument(
        "--spec",
        type=str,
        default=None,
        help="path to a sweep spec JSON file (default: the built-in FET demo grid)",
    )
    sweep_cmd.add_argument(
        "--jobs", type=_jobs, default=1,
        help="worker processes (default 1; 0 means one per CPU core)",
    )
    sweep_cmd.add_argument(
        "--store",
        type=str,
        default=None,
        help="JSON-lines results store: completed cells are skipped, interrupted runs resume",
    )
    sweep_cmd.add_argument("--out", type=str, default=None, help="write the aggregate CSV here")
    sweep_cmd.add_argument(
        "--force", action="store_true", help="recompute cells even when the store has them"
    )
    sweep_cmd.add_argument(
        "--max-retries",
        type=int,
        default=0,
        help="retries per cell after a worker exception, crash, or timeout (default 0)",
    )
    sweep_cmd.add_argument(
        "--cell-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-cell wall-clock budget; hung cells are abandoned and retried "
        "(with --jobs >= 2 the watchdog kills worker processes; serial runs "
        "abandon the hung thread and move on)",
    )
    sweep_cmd.add_argument(
        "--keep-going",
        action="store_true",
        help="record cells that exhaust their retries as failure records and "
        "finish the grid instead of aborting (exit code 1 if any cell failed)",
    )
    sweep_cmd.add_argument(
        "--retry-failed",
        action="store_true",
        help="re-run cells the store remembers as failures (successes stay cached)",
    )
    sweep_cmd.add_argument(
        "--compact",
        action="store_true",
        help="rewrite the --store file keeping only the latest record per key, then exit",
    )
    sweep_cmd.add_argument(
        "--durable",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="fsync the --store file after every appended cell so records "
        "survive machine crashes, not just process kills; costs one disk "
        "barrier (~1-10 ms) per cell (default on; --no-durable for "
        "throwaway stores)",
    )
    sweep_cmd.add_argument(
        "--progress",
        action="store_true",
        help="live progress line on stderr: cells done/total, failures, "
        "retries, throughput, ETA",
    )
    sweep_cmd.add_argument(
        "--metrics-out",
        type=str,
        default=None,
        metavar="FILE",
        help="write the run's aggregated telemetry here in Prometheus text "
        "exposition format, plus a .json sibling with the raw snapshot "
        "(give a .json path to swap which gets the sibling suffix)",
    )
    sweep_cmd.add_argument(
        "--events-out",
        type=str,
        default=None,
        metavar="FILE",
        help="write the run's structured event log here as JSON lines "
        "(retries, backoff, crashes, watchdog expiries, cache hits, store appends)",
    )
    sweep_cmd.add_argument(
        "--trace-out",
        type=str,
        default=None,
        metavar="FILE",
        help="write the run's merged span timeline here as Chrome trace-event "
        "JSON (load in Perfetto / chrome://tracing, or render with 'repro timeline')",
    )
    sweep_cmd.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        metavar="PORT",
        help="serve /metrics, /healthz and /progress over HTTP for the "
        "duration of the run so it can be scraped live (0 picks a free port)",
    )
    sweep_cmd.add_argument(
        "--list",
        action="store_true",
        dest="list_components",
        help="print the registered protocol/initializer/sampler components and exit",
    )

    metrics_cmd = sub.add_parser(
        "metrics",
        help="run a sweep with telemetry on and print Prometheus exposition",
    )
    metrics_cmd.add_argument(
        "--spec",
        type=str,
        default=None,
        help="path to a sweep spec JSON file (default: the built-in FET demo grid)",
    )
    metrics_cmd.add_argument(
        "--jobs", type=_jobs, default=1,
        help="worker processes (default 1; 0 means one per CPU core)",
    )
    metrics_cmd.add_argument(
        "--out",
        type=str,
        default=None,
        metavar="FILE",
        help="write the exposition here instead of stdout (a .json sibling "
        "with the raw snapshot rides along)",
    )
    metrics_cmd.add_argument(
        "--progress",
        action="store_true",
        help="live progress line on stderr while the grid runs "
        "(same rendering as 'sweep --progress')",
    )

    trace_cmd = sub.add_parser(
        "trace", help="record batched trajectories: chart the reduced curve, export CSV"
    )
    trace_cmd.add_argument("-n", type=int, default=1000, help="population size (default 1000)")
    trace_cmd.add_argument(
        "--protocol",
        type=str,
        default="fet",
        help=f"protocol name (default fet; known: {', '.join(protocol_names())})",
    )
    trace_cmd.add_argument(
        "--init",
        type=str,
        default="all-wrong",
        help=f"initializer name (default all-wrong; known: {', '.join(initializer_names())})",
    )
    trace_cmd.add_argument(
        "--replicas", type=int, default=8, help="independent trials to record (default 8)"
    )
    trace_cmd.add_argument(
        "--max-rounds",
        type=int,
        default=None,
        help="round budget (default: the poly-log rule max(200, 40*(ln n)^2.5))",
    )
    trace_cmd.add_argument(
        "--stride", type=int, default=1, help="record every S-th round (default 1)"
    )
    trace_cmd.add_argument(
        "--ring",
        type=int,
        default=None,
        help="keep only the most recent CAP recorded rounds (default: keep all)",
    )
    trace_cmd.add_argument(
        "--flips", action="store_true", help="also record per-replica opinion flips"
    )
    trace_cmd.add_argument(
        "--noise", type=float, default=0.0, help="per-bit observation noise epsilon (default 0)"
    )
    trace_cmd.add_argument(
        "--reducer",
        choices=["mean", "median", "min", "max"],
        default="mean",
        help="cross-replica statistic for the chart (default mean)",
    )
    trace_cmd.add_argument("--out", type=str, default=None, help="write the long-form trace CSV here")

    timeline_cmd = sub.add_parser(
        "timeline", help="render a per-worker timeline from a sweep's Chrome trace JSON"
    )
    timeline_cmd.add_argument(
        "trace", type=str, help="trace JSON written by 'repro sweep --trace-out'"
    )
    timeline_cmd.add_argument(
        "--width", type=int, default=100, help="chart width in columns (default 100)"
    )
    timeline_cmd.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="emit the lane structure as JSON instead of the ASCII chart",
    )

    serve_cmd = sub.add_parser(
        "serve-metrics",
        help="serve /metrics, /healthz and /progress over HTTP (stdlib, dependency-free)",
    )
    serve_cmd.add_argument(
        "--host", type=str, default="127.0.0.1", help="bind address (default 127.0.0.1)"
    )
    serve_cmd.add_argument(
        "--port", type=int, default=9464, help="port to bind (default 9464; 0 picks a free port)"
    )
    serve_cmd.add_argument(
        "--snapshot",
        type=str,
        default=None,
        metavar="FILE",
        help="serve a recorded metrics snapshot (the .json written by "
        "--metrics-out / 'repro metrics --out') instead of an empty registry",
    )
    serve_cmd.add_argument(
        "--for-seconds",
        type=float,
        default=None,
        metavar="SECONDS",
        help="serve for this long and exit 0 (default: serve until interrupted)",
    )

    service_cmd = sub.add_parser(
        "serve",
        help="run the HTTP run service: job queue, spec-hash dedup, workers, SSE streaming",
    )
    service_cmd.add_argument(
        "--host", type=str, default="127.0.0.1", help="bind address (default 127.0.0.1)"
    )
    service_cmd.add_argument(
        "--port", type=int, default=9470, help="port to bind (default 9470; 0 picks a free port)"
    )
    service_cmd.add_argument(
        "--store",
        type=str,
        required=True,
        metavar="FILE",
        help="results store JSONL path (the dedup source of truth; created if missing)",
    )
    service_cmd.add_argument(
        "--queue",
        type=str,
        default=None,
        metavar="FILE",
        help="job-queue journal path (default: <store>.queue.jsonl)",
    )
    service_cmd.add_argument(
        "--workers", type=int, default=1, help="concurrent job worker threads (default 1)"
    )
    service_cmd.add_argument(
        "--jobs",
        type=_jobs,
        default=1,
        help="worker processes per executing sweep (default 1; 0 = all cores)",
    )
    service_cmd.add_argument(
        "--max-retries",
        type=int,
        default=2,
        help="retries per cell before it becomes a failure record (default 2)",
    )
    service_cmd.add_argument(
        "--cell-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-cell wall-clock budget (default: none)",
    )
    service_cmd.add_argument(
        "--for-seconds",
        type=float,
        default=None,
        metavar="SECONDS",
        help="serve for this long and exit 0 (default: serve until interrupted)",
    )

    submit_cmd = sub.add_parser(
        "submit", help="submit a RunSpec/SweepSpec JSON to a running 'repro serve'"
    )
    submit_cmd.add_argument(
        "--url",
        type=str,
        default="http://127.0.0.1:9470",
        help="service base URL (default http://127.0.0.1:9470)",
    )
    spec_source = submit_cmd.add_mutually_exclusive_group(required=True)
    spec_source.add_argument(
        "--spec", type=str, metavar="FILE", help="SweepSpec JSON file to submit"
    )
    spec_source.add_argument(
        "--run", type=str, metavar="FILE", help="single RunSpec JSON file to submit"
    )
    submit_cmd.add_argument(
        "--follow",
        action="store_true",
        help="stream live progress over SSE until the job terminates",
    )
    submit_cmd.add_argument(
        "--wait",
        action="store_true",
        help="poll until the job terminates (quiet alternative to --follow)",
    )
    submit_cmd.add_argument(
        "--out",
        type=str,
        default=None,
        metavar="FILE",
        help="write the result CSV here once the job is done (implies --wait)",
    )
    submit_cmd.add_argument(
        "--timeout",
        type=float,
        default=600.0,
        metavar="SECONDS",
        help="wait/follow budget in seconds (default 600)",
    )

    compare = sub.add_parser("compare", help="FET vs baselines from the all-wrong start")
    compare.add_argument("-n", type=int, default=1000, help="population size (default 1000)")
    compare.add_argument("--trials", type=int, default=5, help="trials per protocol (default 5)")
    compare.add_argument(
        "--engine",
        choices=["auto", "batched", "sequential", "counts"],
        default="auto",
        help=(
            "trial execution engine (default auto: batched when the protocol "
            "supports it; counts runs the sufficient-statistic engine and "
            "skips protocols without a count model)"
        ),
    )

    return parser


def _cmd_demo(args: argparse.Namespace) -> int:
    n = args.n
    rng = make_rng(args.seed)
    protocol = FETProtocol(ell_for(n))
    population = make_population(n, correct_opinion=1)
    state = protocol.init_state(n, rng)
    AllWrong()(population, protocol, state, rng)
    result = run_protocol(protocol, population, max_rounds=20_000, rng=rng, state=state)
    print(f"FET: n={n}, ell={protocol.ell}, all-wrong start")
    print(f"converged={result.converged} in {result.rounds} rounds "
          f"(ln^2.5 n = {math.log(n) ** 2.5:.0f})")
    print(render_trajectory(result.trajectory))
    return 0 if result.converged else 1


def _cmd_map(args: argparse.Namespace) -> int:
    partition = DomainPartition(n=args.n, delta=args.delta)
    print(render_domain_map(partition, resolution=args.resolution))
    return 0


def _cmd_scale(args: argparse.Namespace) -> int:
    ns = [128, 256, 512, 1024, 2048, 4096]
    rows = sweep_population_sizes(ns, trials=args.trials, seed=args.seed, jobs=args.jobs)
    table = []
    for row in rows:
        summary = row.stats.time_summary()
        table.append([row.n, row.ell, row.stats.row()["success"], summary.median, summary.p95])
    print(format_table(["n", "ell", "success", "median T", "p95 T"], table))
    fit = fit_scaling(rows)
    print(f"\nfit T(n) = a*(ln n)^b: a={fit.a:.3f}, b={fit.b:.3f}, R^2={fit.r_squared:.3f}")
    print("paper upper bound: b <= 2.5")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    n = args.n
    ell = ell_for(n)
    budget = max(200, int(3 * math.log(n) ** 2.5))
    lineup = [
        ("FET", lambda: FETProtocol(ell)),
        ("voter", lambda: VoterProtocol()),
        ("sample-majority", lambda: MajoritySamplingProtocol(ell)),
        ("oracle-clock", lambda: OracleClockProtocol(n, ell=1)),
    ]
    table = []
    for index, (label, factory) in enumerate(lineup):
        if args.engine == "counts" and not factory().counts_supported:
            table.append([label, "no count model", "-"])
            continue
        stats = run_trials(
            factory,
            n,
            AllWrong(),
            trials=args.trials,
            max_rounds=budget,
            seed=args.seed + index,
            engine=args.engine,
        )
        summary = stats.time_summary()
        table.append([
            label,
            stats.row()["success"],
            "-" if summary.count == 0 else f"{summary.median:.0f}",
        ])
    print(f"n={n}, all-wrong start, poly-log budget {budget} rounds")
    print(format_table(["protocol", "converged", "median T"], table))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    budget = args.max_rounds if args.max_rounds is not None else default_round_budget(args.n)
    spec = RunSpec(
        protocol={"name": args.protocol},
        n=args.n,
        noise=args.noise,
        initializer={"name": args.init},
        trials=args.replicas,
        max_rounds=budget,
        seed=args.seed,
    )
    recorder = make_recorder(ring=args.ring, stride=args.stride, record_flips=args.flips)
    engine = spec.batched_engine()
    result = engine.run(budget, recorder=recorder)
    trace = recorder.trace()
    settled = settle_rounds(trace.x, trace.rounds)
    print(
        f"{engine.protocol.name}: n={args.n}, {args.init} start, {args.replicas} replica(s), "
        f"budget {budget} rounds"
        + (f", noise eps={args.noise}" if args.noise else "")
    )
    table = [
        [
            r,
            bool(result.converged[r]),
            int(result.rounds[r]),
            f"{trace.x[r, -1]:.3f}",
            int(settled[r]),
        ]
        for r in range(trace.replicas)
    ]
    print(format_table(["replica", "converged", "t_con", "final x", "settled at"], table))
    print()
    print(render_batch_trace(trace, reducer=args.reducer))
    if args.out:
        path = write_trace_csv(args.out, trace)
        print(f"wrote {path}")
    return 0 if result.converged.all() else 1


def _cmd_sweep_list() -> int:
    """Print the component catalog straight from the registries."""
    catalog = component_catalog()
    for kind in ("protocol", "initializer", "sampler", "population"):
        rows = [
            [name, ", ".join(params) if params else "-"]
            for name, params in catalog[kind].items()
        ]
        print(f"{kind}s:")
        print(format_table(["name", "accepted params"], rows))
        print()
    print(f"measures: {', '.join(measure_kinds())}")
    return 0


def _cmd_sweep_compact(store_path: str | None) -> int:
    if not store_path:
        print("error: --compact needs --store pointing at the JSONL file to rewrite",
              file=sys.stderr)
        return 2
    store = ResultsStore(store_path)
    summary = store.compact()
    dropped = summary["lines_before"] - summary["records"]
    print(
        f"compacted {store_path}: kept {summary['records']} record(s), "
        f"dropped {dropped} superseded line(s), "
        f"{summary['corrupt_lines']} corrupt line(s) and "
        f"{summary['checksum_failures']} checksum failure(s)"
    )
    return 0


def _write_metrics(snapshot, out_path: str) -> tuple[Path, Path]:
    """Write a metrics snapshot as Prometheus exposition + raw-JSON sibling.

    The given path names the exposition file and the ``.json`` sibling gets
    the snapshot — unless the path itself ends in ``.json``, in which case
    the roles swap and the sibling is the ``.prom`` file.
    """
    path = Path(out_path)
    if path.suffix == ".json":
        json_path, prom_path = path, path.with_suffix(".prom")
    else:
        prom_path, json_path = path, path.with_suffix(".json")
    prom_path.parent.mkdir(parents=True, exist_ok=True)
    prom_path.write_text(render_prometheus(snapshot))
    json_path.write_text(json.dumps(snapshot.to_dict(), indent=2, sort_keys=True) + "\n")
    return prom_path, json_path


def _cmd_sweep(args: argparse.Namespace) -> int:
    if args.list_components:
        return _cmd_sweep_list()
    if args.compact:
        return _cmd_sweep_compact(args.store)
    if args.max_retries < 0:
        print(f"error: --max-retries must be >= 0, got {args.max_retries}", file=sys.stderr)
        return 2
    if args.cell_timeout is not None and args.cell_timeout <= 0:
        print(f"error: --cell-timeout must be positive, got {args.cell_timeout}", file=sys.stderr)
        return 2
    policy = FaultPolicy(
        max_retries=args.max_retries,
        timeout=args.cell_timeout,
        on_failure="record" if args.keep_going else "raise",
    )
    spec = load_spec(args.spec) if args.spec else fet_demo_spec(args.seed)
    registry = MetricsRegistry() if args.metrics_out else None
    tracer = SpanTracer() if args.trace_out else None
    events = EventLog() if args.events_out else None
    server = None
    if args.metrics_port is not None:
        if args.metrics_port < 0:
            print(f"error: --metrics-port must be >= 0, got {args.metrics_port}",
                  file=sys.stderr)
            return 2
        # Started here (not by the orchestrator) so the bound port prints
        # before any cell executes — a scraper can attach from round one.
        server = ObservabilityServer(port=args.metrics_port)
        port = server.start()
        print(f"serving observability on http://127.0.0.1:{port} "
              "(/metrics /healthz /progress)", flush=True)
    try:
        result = run_sweep(
            spec,
            jobs=args.jobs,
            store=args.store,
            force=args.force,
            policy=policy,
            retry_failed=args.retry_failed,
            durable=args.durable,
            metrics=registry,
            progress=args.progress,
            tracer=tracer,
            events=events,
            serve=server,
        )
    finally:
        if server is not None:
            server.stop()
    print(f"sweep {spec.name!r}: {len(result.cells)} cells, jobs={args.jobs}")
    print(result.table())
    summary = f"\nexecuted {result.executed} cell(s), {result.cached} served from store"
    if args.store:
        summary += f" ({args.store})"
    if result.failed:
        summary += f"; {result.failed} cell(s) failed (see the error column)"
    print(summary)
    if args.out:
        path = result.write_csv(args.out)
        print(f"wrote {path}")
    if args.metrics_out and result.metrics is not None:
        prom_path, json_path = _write_metrics(result.metrics, args.metrics_out)
        print(f"wrote {prom_path} and {json_path}")
    if args.events_out:
        path = write_events_jsonl(args.events_out, result.events or [])
        print(f"wrote {path} ({len(result.events or [])} event(s))")
    if args.trace_out:
        path = write_chrome_trace(args.trace_out, result.spans, result.events or [])
        print(f"wrote {path} (load in Perfetto, or run: repro timeline {path})")
    return 1 if result.failed else 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    spec = load_spec(args.spec) if args.spec else fet_demo_spec(args.seed)
    registry = MetricsRegistry()
    result = run_sweep(spec, jobs=args.jobs, metrics=registry, progress=args.progress)
    assert result.metrics is not None
    if args.out:
        prom_path, json_path = _write_metrics(result.metrics, args.out)
        print(f"wrote {prom_path} and {json_path}")
    else:
        sys.stdout.write(render_prometheus(result.metrics))
    return 1 if result.failed else 0


def _cmd_timeline(args: argparse.Namespace) -> int:
    try:
        trace = json.loads(Path(args.trace).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: cannot read trace {args.trace!r}: {exc}", file=sys.stderr)
        return 2
    if not isinstance(trace, dict) or "traceEvents" not in trace:
        print(
            f"error: {args.trace!r} is not a Chrome trace JSON "
            "(expected a top-level 'traceEvents' list; "
            "write one with 'repro sweep --trace-out')",
            file=sys.stderr,
        )
        return 2
    if args.as_json:
        print(json.dumps(timeline_lanes(trace), indent=2, sort_keys=True))
    else:
        sys.stdout.write(render_timeline(trace, width=args.width))
    return 0


def _cmd_serve_metrics(args: argparse.Namespace) -> int:
    registry = MetricsRegistry()
    if args.snapshot:
        try:
            payload = json.loads(Path(args.snapshot).read_text(encoding="utf-8"))
            registry.merge_snapshot(MetricsSnapshot.from_dict(payload))
        except (OSError, json.JSONDecodeError, KeyError, ValueError) as exc:
            print(f"error: cannot load snapshot {args.snapshot!r}: {exc}", file=sys.stderr)
            return 2
    started = time.monotonic()
    uptime = registry.gauge(
        "repro_process_uptime_seconds", "Seconds since serve-metrics started."
    )
    server = ObservabilityServer(
        host=args.host,
        port=args.port,
        registry=registry,
        refresh=lambda: uptime.set(round(time.monotonic() - started, 3)),
    )
    try:
        port = server.start()
    except OSError as exc:
        print(f"error: cannot bind {args.host}:{args.port}: {exc}", file=sys.stderr)
        return 2
    print(
        f"serving metrics on http://{args.host}:{port}/metrics "
        "(also /healthz and /progress; Ctrl-C to stop)",
        flush=True,
    )
    try:
        if args.for_seconds is not None:
            time.sleep(max(args.for_seconds, 0.0))
        else:
            while True:  # pragma: no cover - interactive foreground mode
                time.sleep(3600)
    except KeyboardInterrupt:  # pragma: no cover - interactive stop
        pass
    finally:
        server.stop()
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .service import JobQueue, RunServiceServer, WorkerPool

    registry = MetricsRegistry()
    store = ResultsStore(args.store)
    queue_path = args.queue if args.queue else f"{args.store}.queue.jsonl"
    queue = JobQueue(queue_path, store=store, registry=registry)
    policy = FaultPolicy(
        max_retries=args.max_retries,
        timeout=args.cell_timeout,
        on_failure="record",
    )
    pool = WorkerPool(
        queue,
        store,
        workers=max(args.workers, 1),
        policy=policy,
        sweep_jobs=args.jobs,
        registry=registry,
    )
    server = RunServiceServer(
        queue=queue, pool=pool, host=args.host, port=args.port, registry=registry
    )
    try:
        port = server.start()
    except OSError as exc:
        print(f"error: cannot bind {args.host}:{args.port}: {exc}", file=sys.stderr)
        return 2
    pool.start()
    print(
        f"run service on http://{args.host}:{port}/runs "
        f"({len(store)} stored cells, {len(queue)} known jobs; "
        "also /metrics, /healthz, /progress; Ctrl-C to stop)",
        flush=True,
    )
    try:
        if args.for_seconds is not None:
            time.sleep(max(args.for_seconds, 0.0))
        else:
            while True:  # pragma: no cover - interactive foreground mode
                time.sleep(3600)
    except KeyboardInterrupt:  # pragma: no cover - interactive stop
        pass
    finally:
        pool.stop()
        server.stop()
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    from .service import RunServiceClient, ServiceError

    path = args.spec if args.spec else args.run
    try:
        spec = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: cannot load spec {path!r}: {exc}", file=sys.stderr)
        return 2
    client = RunServiceClient(args.url)
    try:
        status = client.submit({"sweep": spec} if args.spec else {"run": spec})
    except ServiceError as exc:
        print(f"error: submission rejected: {exc}", file=sys.stderr)
        return 2
    job_id = status["job_id"]
    print(f"job {job_id} {status['state']}" + (" (deduplicated)" if status["deduplicated"] else ""))
    try:
        if args.follow and not status["deduplicated"]:
            for event, payload in client.stream(job_id, timeout=args.timeout):
                if event == "progress":
                    print(
                        f"  {payload.get('done', '?')}/{payload.get('total', '?')} cells "
                        f"({payload.get('rate_cells_per_s', 0)} cells/s)",
                        flush=True,
                    )
                elif event == "state":
                    print(f"  state: {payload['state']}", flush=True)
            status = client.job(job_id)
        elif args.wait or args.out or args.follow:
            status = client.wait(job_id, timeout=args.timeout)
    except (ServiceError, TimeoutError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if status["state"] == "failed":
        error = status.get("error") or {}
        print(
            f"job failed: {error.get('type')}: {error.get('message')}", file=sys.stderr
        )
        return 1
    if status["state"] == "done" and args.out:
        try:
            csv_bytes = client.result_csv(job_id)
        except ServiceError as exc:
            print(f"error: cannot fetch result: {exc}", file=sys.stderr)
            return 1
        out = Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_bytes(csv_bytes)
        print(f"result CSV -> {out}")
    elif status["state"] == "done":
        result = status.get("result") or {}
        print(
            f"done: {result.get('cells')} cells "
            f"({result.get('executed')} executed, {result.get('cached')} cached)"
        )
    return 0


_COMMANDS = {
    "demo": _cmd_demo,
    "map": _cmd_map,
    "scale": _cmd_scale,
    "compare": _cmd_compare,
    "metrics": _cmd_metrics,
    "serve": _cmd_serve,
    "serve-metrics": _cmd_serve_metrics,
    "submit": _cmd_submit,
    "sweep": _cmd_sweep,
    "timeline": _cmd_timeline,
    "trace": _cmd_trace,
}


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
