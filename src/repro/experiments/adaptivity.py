"""Dynamic-environment experiment (extension E-adapt).

The paper's title is *Early Adapting to Trends*, and its motivating story is
an environment that can change (the preferable foraging side): whenever the
correct opinion flips, the previous consensus plus stale counters are just
another adversarial configuration, and self-stabilization guarantees
re-convergence. This experiment makes that quantitative: the source's
correct opinion flips every ``period`` rounds, and we measure the
*adaptation lag* — the number of rounds after each flip until the population
re-converges on the new correct opinion — along with the fraction of total
time spent correct.

The lag is exactly a convergence-from-all-wrong-consensus episode, so it
should match the Cyan-bounce times of the static experiments and stay flat
in the number of flips (no degradation over repeated changes).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.engine import SynchronousEngine
from ..core.population import make_population
from ..core.rng import as_rng
from ..protocols.fet import FETProtocol

__all__ = ["AdaptivityResult", "run_changing_environment"]


@dataclass
class AdaptivityResult:
    """Outcome of a changing-environment run.

    ``lags[i]`` is the number of rounds after the i-th flip until the whole
    population first holds the new correct opinion (``period`` when it never
    re-converged within the cycle — counted in ``missed``).
    """

    n: int
    period: int
    flips: int
    lags: list[int] = field(default_factory=list)
    missed: int = 0
    correct_time_fraction: float = 0.0

    @property
    def mean_lag(self) -> float:
        return float(np.mean(self.lags)) if self.lags else float("nan")

    @property
    def max_lag(self) -> int:
        return max(self.lags) if self.lags else 0


def run_changing_environment(
    n: int,
    ell: int,
    *,
    period: int,
    flips: int,
    seed: int | np.random.Generator,
) -> AdaptivityResult:
    """Run FET while the correct opinion flips every ``period`` rounds.

    The run starts converged on opinion 1. Each cycle flips the source's
    preference (and the population's ``correct_opinion``), then runs
    ``period`` rounds, recording when the population first fully matches the
    new correct opinion and how many rounds of the cycle were spent correct.
    """
    if period < 1:
        raise ValueError(f"period must be >= 1, got {period}")
    if flips < 1:
        raise ValueError(f"flips must be >= 1, got {flips}")
    rng = as_rng(seed)
    protocol = FETProtocol(ell)
    population = make_population(n, correct_opinion=1)
    population.set_opinions(np.ones(n, dtype=np.uint8))
    state = {"prev_count": np.full(n, ell, dtype=np.int64)}
    engine = SynchronousEngine(protocol, population, rng=rng, state=state)

    result = AdaptivityResult(n=n, period=period, flips=flips)
    correct_rounds = 0
    total_rounds = 0
    for _ in range(flips):
        new_correct = 1 - population.correct_opinion
        population.correct_opinion = new_correct
        population.source_preferences[population.source_mask] = new_correct
        population.pin_sources()

        lag = None
        for t in range(period):
            engine.step()
            total_rounds += 1
            if population.at_correct_consensus():
                correct_rounds += 1
                if lag is None:
                    lag = t + 1
        if lag is None:
            result.missed += 1
            result.lags.append(period)
        else:
            result.lags.append(lag)
    result.correct_time_fraction = correct_rounds / total_rounds if total_rounds else 0.0
    return result
