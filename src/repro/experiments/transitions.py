"""Empirical domain-transition statistics — the data behind Figure 1b.

Figure 1b sketches the proof of Theorem 1 as a transition diagram between
domains, annotated with dwell-time bounds (Lemmas 1–5). This experiment runs
many FET trajectories from adversarial starts, classifies every consecutive
pair, and aggregates (a) how long the chain dwells in each domain family and
(b) where it goes when it leaves — the measured counterpart of the diagram.

Trajectories come from the batched engine by default (one trace-recorded
lock-step run per initializer instead of ``trials_per_init`` sequential
runs); ``engine="sequential"`` keeps the original per-trial path as a
cross-check.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field

import numpy as np

from ..core.rng import spawn_rngs
from ..initializers.standard import Initializer
from ..protocols.fet import FETProtocol
from .trajectories import AnnotatedRun, run_annotated, run_annotated_batch

__all__ = ["TransitionSummary", "collect_transitions"]


@dataclass
class TransitionSummary:
    """Aggregated dwell times and inter-domain transition counts.

    Keys are domain *family* names ('Green', 'Purple', 'Red', 'Cyan',
    'Yellow', 'None'); side-0/1 variants are merged because the diagram of
    Figure 1b treats them symmetrically (the source is w.l.o.g. 1, so the
    chain's consensus target lives on side 1).
    """

    dwell_times: dict[str, list[int]] = field(default_factory=lambda: defaultdict(list))
    transitions: Counter = field(default_factory=Counter)  # (from, to) -> count
    runs: int = 0
    converged_runs: int = 0

    def transition_probability(self, source: str, target: str) -> float:
        """Empirical P(next family = target | leaving family = source)."""
        total = sum(count for (src, _), count in self.transitions.items() if src == source)
        if total == 0:
            return float("nan")
        return self.transitions[(source, target)] / total

    def max_dwell(self, family: str) -> int:
        times = self.dwell_times.get(family, [])
        return max(times) if times else 0

    def mean_dwell(self, family: str) -> float:
        times = self.dwell_times.get(family, [])
        return float(np.mean(times)) if times else float("nan")

    def families(self) -> list[str]:
        seen = set(self.dwell_times)
        for src, dst in self.transitions:
            seen.add(src)
            seen.add(dst)
        return sorted(seen)


def _accumulate(summary: TransitionSummary, annotated: AnnotatedRun) -> None:
    """Fold one annotated trajectory into the running aggregate."""
    summary.runs += 1
    if annotated.result.converged:
        summary.converged_runs += 1
    segments = annotated.dwell_segments()
    for domain, dwell in segments:
        summary.dwell_times[domain.family].append(dwell)
    for (src, _), (dst, _) in zip(segments, segments[1:]):
        summary.transitions[(src.family, dst.family)] += 1


def collect_transitions(
    n: int,
    ell: int,
    initializers: list[Initializer],
    *,
    trials_per_init: int,
    max_rounds: int,
    seed: int,
    delta: float = 0.05,
    engine: str = "auto",
) -> TransitionSummary:
    """Run FET from each initializer and aggregate domain-transition data.

    ``engine="auto"`` (default) and ``"batched"`` record all of an
    initializer's trials in one trace-recorded batched run — statistically
    equivalent and several times faster; ``"sequential"`` keeps the original
    per-trial engine (the cross-check path the equivalence tests compare
    against).
    """
    if engine not in ("auto", "batched", "sequential"):
        raise ValueError(f"engine must be 'auto', 'batched' or 'sequential', got {engine!r}")
    use_batched = engine == "batched" or (
        engine == "auto" and FETProtocol(ell).batch_vectorized
    )
    summary = TransitionSummary()
    if trials_per_init == 0:
        return summary
    for init_index, initializer in enumerate(initializers):
        if use_batched:
            annotated_runs = run_annotated_batch(
                FETProtocol(ell),
                n,
                initializer,
                trials_per_init,
                max_rounds=max_rounds,
                seed=seed + init_index,
                delta=delta,
            )
        else:
            annotated_runs = (
                run_annotated(
                    FETProtocol(ell),
                    n,
                    initializer,
                    max_rounds=max_rounds,
                    seed=rng,
                    delta=delta,
                )
                for rng in spawn_rngs(seed + init_index, trials_per_init)
            )
        for annotated in annotated_runs:
            _accumulate(summary, annotated)
    return summary
