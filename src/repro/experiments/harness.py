"""Multi-trial experiment harness.

Runs many independent trials of a protocol from a chosen initializer, each on
its own spawned RNG stream, and aggregates convergence statistics. This is
the workhorse behind every benchmark table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..core.engine import SynchronousEngine
from ..core.population import PopulationState, make_population
from ..core.protocol import Protocol
from ..core.records import RunResult
from ..core.rng import spawn_rngs
from ..core.sampling import Sampler
from ..initializers.standard import Initializer
from ..stats.summary import TimesSummary, describe_times, wilson_interval

__all__ = ["TrialStats", "run_trials"]


@dataclass
class TrialStats:
    """Aggregated outcome of a batch of trials."""

    protocol_name: str
    initializer_name: str
    n: int
    trials: int
    max_rounds: int
    successes: int
    times: np.ndarray  # convergence rounds of the successful trials
    results: list[RunResult] = field(default_factory=list, repr=False)

    @property
    def success_rate(self) -> float:
        return self.successes / self.trials if self.trials else float("nan")

    @property
    def success_interval(self) -> tuple[float, float]:
        return wilson_interval(self.successes, self.trials)

    def time_summary(self) -> TimesSummary:
        return describe_times(self.times)

    def row(self) -> dict:
        """Flat dict for table rendering."""
        summary = self.time_summary()
        lo, hi = self.success_interval
        return {
            "protocol": self.protocol_name,
            "init": self.initializer_name,
            "n": self.n,
            "trials": self.trials,
            "success": f"{self.successes}/{self.trials}",
            "rate_ci": f"[{lo:.2f},{hi:.2f}]",
            "median": summary.median,
            "mean": summary.mean,
            "p95": summary.p95,
            "max": summary.maximum,
        }


def run_trials(
    protocol_factory: Callable[[], Protocol],
    n: int,
    initializer: Initializer,
    *,
    trials: int,
    max_rounds: int,
    seed: int,
    correct_opinion: int = 1,
    sampler_factory: Callable[[], Sampler] | None = None,
    population_factory: Callable[[], PopulationState] | None = None,
    stability_rounds: int = 2,
    keep_results: bool = False,
) -> TrialStats:
    """Run ``trials`` independent runs and aggregate their outcomes.

    Each trial builds a fresh population and protocol (factories keep trials
    independent even for stateful protocols), applies ``initializer`` under
    its own RNG stream, and runs to convergence or ``max_rounds``.
    """
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    rngs = spawn_rngs(seed, trials)
    times: list[int] = []
    successes = 0
    results: list[RunResult] = []
    protocol_name = ""
    init_name = initializer.name
    for rng in rngs:
        protocol = protocol_factory()
        protocol_name = protocol.name
        population = (
            population_factory() if population_factory is not None else make_population(n, correct_opinion)
        )
        state = protocol.init_state(population.n, rng)
        initializer(population, protocol, state, rng)
        engine = SynchronousEngine(
            protocol,
            population,
            sampler=sampler_factory() if sampler_factory is not None else None,
            rng=rng,
            state=state,
        )
        result = engine.run(max_rounds, stability_rounds=stability_rounds)
        if result.converged:
            successes += 1
            times.append(result.rounds)
        if keep_results:
            results.append(result)
    return TrialStats(
        protocol_name=protocol_name,
        initializer_name=init_name,
        n=n,
        trials=trials,
        max_rounds=max_rounds,
        successes=successes,
        times=np.asarray(times, dtype=float),
        results=results,
    )
