"""Multi-trial experiment harness.

Runs many independent trials of a protocol from a chosen initializer and
aggregates convergence statistics. This is the workhorse behind every
benchmark table — and the **only** layer that assembles engines and pairs
scalar/batched observation models. Everything above it speaks
:class:`~repro.config.RunSpec`:

* :func:`execute_run` — the execution core behind
  :meth:`RunSpec.execute`: resolves the spec's declarative components
  (with optional live-object overrides), picks the engine, and runs the
  batch of trials;
* :func:`make_batched_engine` — the core behind
  :meth:`RunSpec.batched_engine`: a fully prepared lock-step engine for
  trace/θ consumers;
* :func:`run_trials` — the legacy factory-kwargs signature, kept working
  as a thin adapter over :meth:`RunSpec.execute`.

Two execution engines are available (``engine`` policy):

* ``"sequential"`` — one :class:`SynchronousEngine` per trial, each on its own
  spawned RNG stream.
* ``"batched"`` — all trials as one ``(R, n)`` system on the
  :class:`~repro.core.batch.BatchedEngine`: initial configurations are built
  per trial on the *same* spawned streams as the sequential path (so the
  initial-condition distribution is bitwise identical), then all replicas
  advance in lock-step and retire individually on convergence. Statistically
  equivalent, several times faster for many-trial sweeps. Per-trial
  trajectory consumers (``keep_results=True``) are served by attaching a
  :class:`~repro.trace.FullTrace` recorder and converting the recorded
  ``(R, T)`` matrix back into per-trial :class:`RunResult` objects.
* ``"auto"`` (default) — batched when the protocol ships a vectorized
  ``step_batch`` (``Protocol.batch_vectorized``) and the observation model
  has a batched side; sequential otherwise. ``engine="sequential"`` remains
  the explicit escape hatch for bitwise per-trial streams.
* ``"counts"`` — explicit opt-in to the sufficient-statistic
  :class:`~repro.core.counts.CountEngine`: replicas are ``(S,)`` state-count
  vectors, one multinomial-family transition per round, O(num_states) memory
  regardless of ``n``. Exact in distribution for exchangeable populations
  but a *different* RNG consumption pattern, so per-trial streams do not
  match the other engines bitwise (aggregates are KS-equivalent). Requires
  a count-model protocol (``Protocol.counts_supported``), a count-capable
  initializer (``Initializer.supports_counts``), and a fraction-keyed
  observation model; ``"auto"`` never selects it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..config import RunSpec
from ..core.batch import BatchedEngine, BatchedPopulation, stack_states
from ..core.counts import CountEngine, CountPopulation, make_count_population
from ..core.engine import SynchronousEngine
from ..core.population import PopulationState, make_population
from ..core.protocol import Protocol, ProtocolState
from ..core.records import RunResult
from ..core.rng import spawn_rngs
from ..core.sampling import BatchedBinomialSampler, BatchedSampler, Sampler
from ..initializers.standard import Initializer
from ..stats.summary import TimesSummary, describe_times, wilson_interval
from ..trace import FullTrace

__all__ = [
    "TrialStats",
    "execute_run",
    "make_batched_engine",
    "make_count_engine",
    "prepare_batch",
    "prepare_counts",
    "run_trials",
]


@dataclass
class TrialStats:
    """Aggregated outcome of a batch of trials."""

    protocol_name: str
    initializer_name: str
    n: int
    trials: int
    max_rounds: int
    successes: int
    times: np.ndarray  # convergence rounds of the successful trials
    results: list[RunResult] = field(default_factory=list, repr=False)
    engine: str = "sequential"  # which execution engine produced the stats

    @property
    def success_rate(self) -> float:
        return self.successes / self.trials if self.trials else float("nan")

    @property
    def success_interval(self) -> tuple[float, float]:
        if self.trials == 0:
            return (float("nan"), float("nan"))
        return wilson_interval(self.successes, self.trials)

    def time_summary(self) -> TimesSummary:
        return describe_times(self.times)

    def row(self) -> dict:
        """Flat dict for table rendering."""
        summary = self.time_summary()
        lo, hi = self.success_interval
        return {
            "protocol": self.protocol_name,
            "init": self.initializer_name,
            "n": self.n,
            "trials": self.trials,
            "success": f"{self.successes}/{self.trials}",
            "rate_ci": f"[{lo:.2f},{hi:.2f}]",
            "median": summary.median,
            "mean": summary.mean,
            "p95": summary.p95,
            "max": summary.maximum,
        }


def run_trials(
    protocol_factory: Callable[[], Protocol],
    n: int,
    initializer: Initializer,
    *,
    trials: int,
    max_rounds: int,
    seed: int,
    correct_opinion: int = 1,
    sampler_factory: Callable[[], Sampler] | None = None,
    population_factory: Callable[[], PopulationState] | None = None,
    stability_rounds: int = 2,
    keep_results: bool = False,
    engine: str = "auto",
    batched_sampler: BatchedSampler | None = None,
) -> TrialStats:
    """Run ``trials`` independent runs and aggregate their outcomes.

    Legacy factory-kwargs front door, kept stable: it adapts its arguments
    onto a :class:`~repro.config.RunSpec` and calls
    :meth:`~repro.config.RunSpec.execute` with the factories as live-object
    overrides. New code should construct the ``RunSpec`` directly — the
    declarative components cover the common cases (including paired noisy
    observation models via ``noise``/``sampler``) without any factory
    plumbing.

    Each trial builds a fresh population (factories keep trials independent
    even for stateful protocols), applies ``initializer`` under its own RNG
    stream, and runs to convergence or ``max_rounds``. ``trials=0`` is
    allowed and yields an empty aggregate (no successes, empty ``times``,
    NaN summaries) without touching either engine. ``batched_sampler``
    supplies the batched observation model when ``sampler_factory``
    customizes the sequential one (e.g.
    :class:`~repro.core.noise.BatchedNoisyCountSampler` to pair with
    :class:`~repro.core.noise.NoisyCountSampler`) — declaratively-built
    specs never need the pair, the sampler registry pairs them.
    """
    if trials < 0:
        raise ValueError(f"trials must be >= 0, got {trials}")
    if max_rounds < 1:
        raise ValueError(f"max_rounds must be >= 1, got {max_rounds}")
    spec = RunSpec(
        protocol=None,
        n=n,
        trials=trials,
        max_rounds=max_rounds,
        seed=seed,
        correct_opinion=correct_opinion,
        stability_rounds=stability_rounds,
        engine=engine,
    )
    return spec.execute(
        keep_results=keep_results,
        protocol_factory=protocol_factory,
        initializer=initializer,
        sampler_factory=sampler_factory,
        batched_sampler=batched_sampler,
        population_factory=population_factory,
    )


def execute_run(
    spec: RunSpec,
    *,
    keep_results: bool = False,
    protocol_factory: Callable[[], Protocol] | None = None,
    initializer: Initializer | None = None,
    sampler_factory: Callable[[], Sampler] | None = None,
    batched_sampler: BatchedSampler | None = None,
    population_factory: Callable[[], PopulationState] | None = None,
) -> TrialStats:
    """Execution core of :meth:`RunSpec.execute` (see the module docstring).

    Keyword overrides replace the spec's declarative components with live
    objects — the adapter path of :func:`run_trials` and the escape hatch
    for components with no declarative form. When ``sampler_factory`` is
    overridden without a ``batched_sampler``, an explicit ``"batched"``
    engine request is an error and ``"auto"`` falls back to sequential
    (exactly the legacy contract); declarative samplers are always paired
    by the registry.
    """
    if spec.engine in ("batched", "counts") and sampler_factory is not None and batched_sampler is None:
        raise ValueError(
            "a custom sampler_factory needs a matching batched_sampler "
            f"for the {spec.engine} engine"
        )
    if spec.engine == "counts" and population_factory is not None:
        raise ValueError(
            "population_factory builds a per-agent layout; the counts engine "
            "tracks state counts only — use engine='batched' or 'sequential'"
        )
    if protocol_factory is None:
        protocol_factory = spec.protocol_factory()
    if initializer is None:
        initializer = spec.build_initializer()
    if population_factory is None and spec.population is not None:
        population_factory = spec.population_factory()
        if spec.engine == "counts" and population_factory is not None:
            raise ValueError(
                f"population {spec.population['name']!r} is a crafted "
                "per-agent layout; the counts engine only models the "
                "standard source-pinned population"
            )
    if sampler_factory is None and batched_sampler is None:
        sampler_factory, batched_sampler = spec.samplers()
        if spec.engine == "batched" and batched_sampler is None:
            raise ValueError(
                f"sampler {spec.sampler!r} has no batched observation model; "
                "this condition can only run on the sequential engine"
            )
        if spec.engine == "counts" and batched_sampler is None:
            raise ValueError(
                f"sampler {spec.sampler!r} has no fraction-keyed batched "
                "observation model; this condition cannot run on the counts "
                "engine"
            )
    # The declared population shape (n, num_sources, correct_opinion) is
    # built natively by both per-agent engine paths; a declarative
    # ``population`` component resolves to a factory above (``standard``
    # resolves to None, i.e. the native path), and the keyword stays the
    # escape hatch for layouts with no declarative form.
    max_rounds = spec.resolved_max_rounds()

    probe: Protocol | None = None
    use_batched = spec.engine == "batched"
    if spec.engine == "auto" and (sampler_factory is None or batched_sampler is not None):
        probe = protocol_factory()
        use_batched = probe.batch_vectorized
    if spec.trials == 0:
        # Degrade gracefully: an empty aggregate with no division warnings
        # (success_rate and the time summary report NaN, times stays empty)
        # rather than an error — sweep grids may legitimately zip in empty
        # cells, and downstream table code handles the NaNs already.
        probe = probe if probe is not None else protocol_factory()
        if spec.engine == "counts":
            idle_engine = "counts"
        else:
            idle_engine = "batched" if use_batched else "sequential"
        return TrialStats(
            protocol_name=probe.name,
            initializer_name=initializer.name,
            n=spec.n,
            trials=0,
            max_rounds=max_rounds,
            successes=0,
            times=np.empty(0, dtype=float),
            engine=idle_engine,
        )
    if spec.engine == "counts":
        return _run_trials_counts(
            probe if probe is not None else protocol_factory(),
            spec,
            initializer,
            batched_sampler=batched_sampler,
            max_rounds=max_rounds,
            keep_results=keep_results,
        )
    if use_batched:
        return _run_trials_batched(
            probe if probe is not None else protocol_factory(),
            spec.n,
            initializer,
            trials=spec.trials,
            max_rounds=max_rounds,
            seed=spec.seed,
            correct_opinion=spec.correct_opinion,
            num_sources=spec.num_sources,
            batched_sampler=batched_sampler,
            population_factory=population_factory,
            stability_rounds=spec.stability_rounds,
            linger_rounds=spec.linger_rounds,
            keep_results=keep_results,
        )
    rngs = spawn_rngs(spec.seed, spec.trials)
    times: list[int] = []
    successes = 0
    results: list[RunResult] = []
    protocol_name = ""
    init_name = initializer.name
    for rng in rngs:
        protocol = protocol_factory()
        protocol_name = protocol.name
        population = (
            population_factory()
            if population_factory is not None
            else make_population(spec.n, spec.correct_opinion, num_sources=spec.num_sources)
        )
        state = protocol.init_state(population.n, rng)
        initializer(population, protocol, state, rng)
        trial_engine = SynchronousEngine(
            protocol,
            population,
            sampler=sampler_factory() if sampler_factory is not None else None,
            rng=rng,
            state=state,
        )
        result = trial_engine.run(max_rounds, stability_rounds=spec.stability_rounds)
        if result.converged:
            successes += 1
            times.append(result.rounds)
        if keep_results:
            results.append(result)
    return TrialStats(
        protocol_name=protocol_name,
        initializer_name=init_name,
        n=spec.n,
        trials=spec.trials,
        max_rounds=max_rounds,
        successes=successes,
        times=np.asarray(times, dtype=float),
        results=results,
        engine="sequential",
    )


def prepare_batch(
    protocol: Protocol,
    n: int,
    initializer: Initializer,
    *,
    trials: int,
    seed: int,
    correct_opinion: int = 1,
    num_sources: int = 1,
    population_factory: Callable[[], PopulationState] | None = None,
) -> tuple[BatchedPopulation, ProtocolState, np.random.Generator]:
    """Build the initialized ``(R, n)`` batch for ``trials`` trials of a run.

    The shared front half of every batched workload (``execute_run``, the
    trace-based θ sweep measure, the batched transition experiment): returns
    the initialized batch, its stacked protocol states, and the generator for
    the lock-step dynamics stream.

    With a batch-capable initializer and a declarative population layout
    (``num_sources`` sources at the canonical indices), the whole initial
    batch is built with vectorized draws (one stream for initialization,
    one for the lock-step dynamics). Otherwise initial configurations are
    built per trial on the same spawned streams the sequential path uses,
    so the initial-condition distribution matches it bitwise. One protocol
    instance serves the whole batch — valid because protocol instances hold
    round configuration only, with all per-agent state in the state dict
    (the :class:`~repro.core.protocol.Protocol` contract).
    """
    if initializer.supports_batch and population_factory is None:
        init_rng, batch_rng = spawn_rngs(seed, 2)
        template = make_population(n, correct_opinion, num_sources=num_sources)
        batch = BatchedPopulation.from_population(template, trials)
        batch_states = protocol.init_state_batch(trials, n, init_rng)
        initializer.apply_batch(batch, protocol, batch_states, init_rng)
    else:
        rngs = spawn_rngs(seed, trials + 1)
        batch_rng = rngs[-1]
        template = None
        populations: list[PopulationState] = []
        states = []
        for rng in rngs[:trials]:
            if population_factory is not None:
                population = population_factory()
            else:
                if template is None:
                    template = make_population(n, correct_opinion, num_sources=num_sources)
                population = template.copy()
            state = protocol.init_state(population.n, rng)
            initializer(population, protocol, state, rng)
            populations.append(population)
            states.append(state)
        batch = BatchedPopulation.from_populations(populations)
        batch_states = stack_states(states)
    return batch, batch_states, batch_rng


def make_batched_engine(
    spec: RunSpec,
    *,
    protocol: Protocol | None = None,
    initializer: Initializer | None = None,
    batched_sampler: BatchedSampler | None = None,
    population_factory: Callable[[], PopulationState] | None = None,
) -> BatchedEngine:
    """A fully prepared lock-step engine for ``spec`` — the core behind
    :meth:`RunSpec.batched_engine`.

    Resolves the protocol, initializer, batched observation model, and
    population layout from the spec (live-object keywords override), builds
    the initialized batch on the spec's seed, and returns the engine ready
    to ``run``. Raises when the spec's observation component has no batched
    side (e.g. the literal index sampler).
    """
    if protocol is None:
        protocol = spec.build_protocol()
    if initializer is None:
        initializer = spec.build_initializer()
    if batched_sampler is None:
        batched_sampler = spec.samplers()[1]
        if batched_sampler is None:
            raise ValueError(
                f"sampler {spec.sampler!r} has no batched observation model; "
                "this condition can only run on the sequential engine"
            )
    if population_factory is None and spec.population is not None:
        population_factory = spec.population_factory()
    batch, states, rng = prepare_batch(
        protocol,
        spec.n,
        initializer,
        trials=spec.trials,
        seed=spec.seed,
        correct_opinion=spec.correct_opinion,
        num_sources=spec.num_sources,
        population_factory=population_factory,
    )
    return BatchedEngine(protocol, batch, sampler=batched_sampler, rng=rng, states=states)


def _run_trials_batched(
    protocol: Protocol,
    n: int,
    initializer: Initializer,
    *,
    trials: int,
    max_rounds: int,
    seed: int,
    correct_opinion: int,
    num_sources: int,
    batched_sampler: BatchedSampler | None,
    population_factory: Callable[[], PopulationState] | None,
    stability_rounds: int,
    linger_rounds: int,
    keep_results: bool,
) -> TrialStats:
    """All trials as one ``(R, n)`` system on the batched engine.

    ``keep_results`` attaches a :class:`~repro.trace.FullTrace` recorder to
    the run and converts the recorded trajectory matrix back into per-trial
    :class:`RunResult` objects, so trajectory consumers get the batched
    speedup too.
    """
    batch, batch_states, batch_rng = prepare_batch(
        protocol,
        n,
        initializer,
        trials=trials,
        seed=seed,
        correct_opinion=correct_opinion,
        num_sources=num_sources,
        population_factory=population_factory,
    )
    engine = BatchedEngine(
        protocol,
        batch,
        sampler=batched_sampler if batched_sampler is not None else BatchedBinomialSampler(),
        rng=batch_rng,
        states=batch_states,
    )
    recorder = FullTrace() if keep_results else None
    result = engine.run(
        max_rounds,
        stability_rounds=stability_rounds,
        recorder=recorder,
        linger_rounds=linger_rounds,
    )
    results = recorder.trace().to_run_results(result) if recorder is not None else []
    return TrialStats(
        protocol_name=protocol.name,
        initializer_name=initializer.name,
        n=n,
        trials=trials,
        max_rounds=max_rounds,
        successes=result.successes,
        times=result.times(),
        results=results,
        engine="batched",
    )


def prepare_counts(
    protocol: Protocol,
    n: int,
    initializer: Initializer,
    *,
    trials: int,
    seed: int,
    correct_opinion: int = 1,
    num_sources: int = 1,
) -> tuple[CountPopulation, np.random.Generator]:
    """Build the initialized ``(R, S)`` count population for ``trials`` trials.

    The counts analogue of :func:`prepare_batch`: one stream initializes
    every replica's state-count vector via the initializer's count-level
    application, the second drives the lock-step dynamics. There is no
    per-agent fallback — initializers without ``supports_counts`` are a
    hard error, because a crafted per-agent layout has no faithful
    sufficient-statistic representation.
    """
    if not initializer.supports_counts:
        raise ValueError(
            f"initializer {initializer.name!r} builds per-agent configurations "
            "(supports_counts=False); the counts engine needs an exchangeable "
            "count-level initializer — use engine='batched' or 'sequential'"
        )
    init_rng, dyn_rng = spawn_rngs(seed, 2)
    population = make_count_population(
        protocol, trials, n, num_sources=num_sources, correct_opinion=correct_opinion
    )
    initializer.apply_counts(population, protocol, init_rng)
    return population, dyn_rng


def make_count_engine(
    spec: RunSpec,
    *,
    protocol: Protocol | None = None,
    initializer: Initializer | None = None,
    sampler: BatchedSampler | None = None,
) -> CountEngine:
    """A fully prepared sufficient-statistic engine for ``spec`` — the core
    behind :meth:`RunSpec.count_engine`.

    Resolves the protocol, initializer, and fraction-keyed observation model
    from the spec (live-object keywords override), draws the initial count
    matrix on the spec's seed, and returns the engine ready to ``run``.
    Raises when any component has no count-level form: a protocol without a
    count model, a per-agent initializer, or an observation model that is
    not keyed on one-fractions.
    """
    if protocol is None:
        protocol = spec.build_protocol()
    if initializer is None:
        initializer = spec.build_initializer()
    if sampler is None:
        sampler = spec.samplers()[1]
        if sampler is None:
            raise ValueError(
                f"sampler {spec.sampler!r} has no fraction-keyed batched "
                "observation model; this condition cannot run on the counts "
                "engine"
            )
    population, rng = prepare_counts(
        protocol,
        spec.n,
        initializer,
        trials=spec.trials,
        seed=spec.seed,
        correct_opinion=spec.correct_opinion,
        num_sources=spec.num_sources,
    )
    return CountEngine(protocol, population, sampler=sampler, rng=rng)


def _run_trials_counts(
    protocol: Protocol,
    spec: RunSpec,
    initializer: Initializer,
    *,
    batched_sampler: BatchedSampler | None,
    max_rounds: int,
    keep_results: bool,
) -> TrialStats:
    """All trials as one ``(R, S)`` count matrix on the sufficient-statistic
    engine.

    ``keep_results`` works the same way as on the batched path: a
    :class:`~repro.trace.FullTrace` recorder captures the per-round
    one-fraction matrix and is converted back into per-trial
    :class:`RunResult` objects.
    """
    engine = make_count_engine(
        spec, protocol=protocol, initializer=initializer, sampler=batched_sampler
    )
    recorder = FullTrace() if keep_results else None
    result = engine.run(
        max_rounds,
        stability_rounds=spec.stability_rounds,
        recorder=recorder,
        linger_rounds=spec.linger_rounds,
    )
    results = recorder.trace().to_run_results(result) if recorder is not None else []
    return TrialStats(
        protocol_name=protocol.name,
        initializer_name=initializer.name,
        n=spec.n,
        trials=spec.trials,
        max_rounds=max_rounds,
        successes=result.successes,
        times=result.times(),
        results=results,
        engine="counts",
    )
