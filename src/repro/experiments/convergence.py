"""Convergence-time sweeps (Theorem 1 headline and the ℓ ablation).

``sweep_population_sizes`` measures FET's convergence time as ``n`` grows
with ``ℓ = ⌈c·ln n⌉`` — the setting of Theorem 1 — and
``sweep_sample_sizes`` fixes ``n`` and varies ℓ to probe the open question
from the discussion section (can constant ℓ work?).

Both drivers run on the sweep orchestrator (:mod:`repro.sweep`): each grid
point becomes an independent cell with its own derived seed, so the sweeps
parallelize across ``jobs`` worker processes and can persist/resume through
a results ``store`` — while returning the same :class:`ScalingRow` shape
they always did.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

# default_round_budget is defined in repro.config (the run-spec layer
# resolves max_rounds=None with it) and re-exported here for the drivers
# and CLI that have always imported it from this module.
from ..config import default_round_budget
from ..initializers.standard import AllWrong, Initializer
from ..protocols.fet import DEFAULT_SAMPLE_CONSTANT, ell_for
from ..stats.fitting import LogPowerFit, fit_log_power
from ..sweep.dispatch import FaultPolicy
from ..sweep.orchestrator import run_sweep
from ..sweep.spec import SweepSpec
from ..sweep.store import ResultsStore
from .harness import TrialStats

__all__ = [
    "ScalingRow",
    "default_round_budget",
    "fit_scaling",
    "population_scaling_spec",
    "sample_size_spec",
    "scaling_rows",
    "sweep_population_sizes",
    "sweep_sample_sizes",
]




@dataclass(frozen=True)
class ScalingRow:
    """One sweep point: population size, sample size, and its trial stats."""

    n: int
    ell: int
    stats: TrialStats


def population_scaling_spec(
    ns: list[int],
    *,
    trials: int,
    seed: int,
    sample_constant: float = DEFAULT_SAMPLE_CONSTANT,
    initializer: Initializer | None = None,
    max_rounds_factor: float = 40.0,
) -> SweepSpec:
    """The Theorem-1 scaling grid as a declarative :class:`SweepSpec`.

    One cell per population size with ``ℓ = ⌈c·ln n⌉`` and the poly-log
    round budget. The benchmark suite and the driver below both run this
    exact spec, so their cells (and derived seeds) coincide — a store
    filled by one serves the other.
    """
    initializer = initializer if initializer is not None else AllWrong()
    return SweepSpec(
        name="population-scaling",
        seed=seed,
        trials=trials,
        axes={
            "protocol": [{"name": "fet", "sample_constant": sample_constant}],
            "n": list(ns),
            "initializer": [initializer.spec()],
        },
        max_rounds=None,
        max_rounds_factor=max_rounds_factor,
        min_rounds=50,
    )


def sample_size_spec(
    n: int,
    ells: list[int],
    *,
    trials: int,
    seed: int,
    initializer: Initializer | None = None,
    max_rounds: int | None = None,
) -> SweepSpec:
    """The ℓ-ablation grid as a declarative :class:`SweepSpec`.

    Declared through the dotted ``protocol.ell`` parameter axis — one grid
    instead of one protocol entry per ℓ. The dotted merge produces exactly
    the ``{"name": "fet", "ell": ...}`` component the per-entry form did,
    so cells, seeds, and stored results are unchanged.
    """
    initializer = initializer if initializer is not None else AllWrong()
    if max_rounds is None:
        max_rounds = default_round_budget(n)
    return SweepSpec(
        name="sample-size-ablation",
        seed=seed,
        trials=trials,
        axes={
            "protocol": ["fet"],
            "protocol.ell": [int(ell) for ell in ells],
            "n": [n],
            "initializer": [initializer.spec()],
        },
        max_rounds=max_rounds,
    )


def scaling_rows(outcome, sample_constant: float = DEFAULT_SAMPLE_CONSTANT) -> list[ScalingRow]:
    """Map a convergence-sweep outcome onto :class:`ScalingRow` entries.

    Reads ℓ from each cell's protocol component when pinned there, falling
    back to the paper rule ``ℓ = ⌈c·ln n⌉`` the registry applies.
    """
    return [
        ScalingRow(
            n=cell.n,
            ell=int(cell.protocol.get("ell", ell_for(cell.n, sample_constant))),
            stats=result.stats(),
        )
        for cell, result in zip(outcome.cells, outcome.results)
    ]


def sweep_population_sizes(
    ns: list[int],
    *,
    trials: int,
    seed: int,
    sample_constant: float = DEFAULT_SAMPLE_CONSTANT,
    initializer: Initializer | None = None,
    max_rounds_factor: float = 40.0,
    jobs: int = 1,
    store: ResultsStore | str | Path | None = None,
    policy: FaultPolicy | None = None,
) -> list[ScalingRow]:
    """Measure FET convergence for each ``n`` with ``ℓ = ⌈c·ln n⌉``.

    ``max_rounds_factor`` scales the per-run budget as a multiple of
    ``(ln n)^{5/2}`` so that non-convergence is meaningful relative to the
    theorem's bound rather than to an arbitrary constant. ``jobs`` fans the
    per-``n`` cells out over worker processes; ``store`` makes the sweep
    resumable (see :func:`repro.sweep.run_sweep`).
    """
    spec = population_scaling_spec(
        ns,
        trials=trials,
        seed=seed,
        sample_constant=sample_constant,
        initializer=initializer,
        max_rounds_factor=max_rounds_factor,
    )
    return scaling_rows(run_sweep(spec, jobs=jobs, store=store, policy=policy), sample_constant)


def sweep_sample_sizes(
    n: int,
    ells: list[int],
    *,
    trials: int,
    seed: int,
    initializer: Initializer | None = None,
    max_rounds: int | None = None,
    jobs: int = 1,
    store: ResultsStore | str | Path | None = None,
    policy: FaultPolicy | None = None,
) -> list[ScalingRow]:
    """Measure FET convergence at fixed ``n`` for each sample size ℓ."""
    spec = sample_size_spec(
        n, ells, trials=trials, seed=seed, initializer=initializer, max_rounds=max_rounds
    )
    return scaling_rows(run_sweep(spec, jobs=jobs, store=store, policy=policy))


def fit_scaling(rows: list[ScalingRow], statistic: str = "median") -> LogPowerFit:
    """Fit ``T(n) = a·(ln n)^b`` to a population-size sweep.

    ``statistic`` selects which summary of the per-``n`` time distribution is
    fitted (``median``, ``mean``, or ``p95``). Rows without any successful
    trial are excluded (and should be rare under a sane budget).
    """
    ns: list[int] = []
    ts: list[float] = []
    for row in rows:
        summary = row.stats.time_summary()
        value = getattr(summary, "maximum" if statistic == "max" else statistic)
        if summary.count > 0 and value > 0:
            ns.append(row.n)
            ts.append(value)
    return fit_log_power(np.asarray(ns), np.asarray(ts))
