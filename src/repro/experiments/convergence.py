"""Convergence-time sweeps (Theorem 1 headline and the ℓ ablation).

``sweep_population_sizes`` measures FET's convergence time as ``n`` grows
with ``ℓ = ⌈c·ln n⌉`` — the setting of Theorem 1 — and
``sweep_sample_sizes`` fixes ``n`` and varies ℓ to probe the open question
from the discussion section (can constant ℓ work?).

Both drivers run on the sweep orchestrator (:mod:`repro.sweep`): each grid
point becomes an independent cell with its own derived seed, so the sweeps
parallelize across ``jobs`` worker processes and can persist/resume through
a results ``store`` — while returning the same :class:`ScalingRow` shape
they always did.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..initializers.standard import AllWrong, Initializer
from ..protocols.fet import DEFAULT_SAMPLE_CONSTANT, ell_for
from ..stats.fitting import LogPowerFit, fit_log_power
from ..sweep.orchestrator import run_sweep
from ..sweep.spec import SweepSpec
from ..sweep.store import ResultsStore
from .harness import TrialStats

__all__ = [
    "ScalingRow",
    "default_round_budget",
    "fit_scaling",
    "sweep_population_sizes",
    "sweep_sample_sizes",
]


def default_round_budget(n: int) -> int:
    """The Theorem-1 poly-log round budget: ``max(200, 40·(ln n)^2.5)``.

    The one definition of the convention shared by the single-run drivers
    (``repro trace``, the sample-size ablation); ``SweepSpec`` keeps its own
    *parameterized* resolver (``max_rounds_factor``/``min_rounds``) because
    those knobs are part of every cell's seed-deriving content hash.
    """
    return max(200, int(40 * np.log(n) ** 2.5))


@dataclass(frozen=True)
class ScalingRow:
    """One sweep point: population size, sample size, and its trial stats."""

    n: int
    ell: int
    stats: TrialStats


def sweep_population_sizes(
    ns: list[int],
    *,
    trials: int,
    seed: int,
    sample_constant: float = DEFAULT_SAMPLE_CONSTANT,
    initializer: Initializer | None = None,
    max_rounds_factor: float = 40.0,
    jobs: int = 1,
    store: ResultsStore | str | Path | None = None,
) -> list[ScalingRow]:
    """Measure FET convergence for each ``n`` with ``ℓ = ⌈c·ln n⌉``.

    ``max_rounds_factor`` scales the per-run budget as a multiple of
    ``(ln n)^{5/2}`` so that non-convergence is meaningful relative to the
    theorem's bound rather than to an arbitrary constant. ``jobs`` fans the
    per-``n`` cells out over worker processes; ``store`` makes the sweep
    resumable (see :func:`repro.sweep.run_sweep`).
    """
    initializer = initializer if initializer is not None else AllWrong()
    spec = SweepSpec(
        name="population-scaling",
        seed=seed,
        trials=trials,
        axes={
            "protocol": [{"name": "fet", "sample_constant": sample_constant}],
            "n": list(ns),
            "initializer": [initializer.spec()],
        },
        max_rounds=None,
        max_rounds_factor=max_rounds_factor,
        min_rounds=50,
    )
    outcome = run_sweep(spec, jobs=jobs, store=store)
    return [
        ScalingRow(n=cell.n, ell=ell_for(cell.n, sample_constant), stats=result.stats())
        for cell, result in zip(outcome.cells, outcome.results)
    ]


def sweep_sample_sizes(
    n: int,
    ells: list[int],
    *,
    trials: int,
    seed: int,
    initializer: Initializer | None = None,
    max_rounds: int | None = None,
    jobs: int = 1,
    store: ResultsStore | str | Path | None = None,
) -> list[ScalingRow]:
    """Measure FET convergence at fixed ``n`` for each sample size ℓ."""
    initializer = initializer if initializer is not None else AllWrong()
    if max_rounds is None:
        max_rounds = default_round_budget(n)
    spec = SweepSpec(
        name="sample-size-ablation",
        seed=seed,
        trials=trials,
        axes={
            "protocol": [{"name": "fet", "ell": int(ell)} for ell in ells],
            "n": [n],
            "initializer": [initializer.spec()],
        },
        max_rounds=max_rounds,
    )
    outcome = run_sweep(spec, jobs=jobs, store=store)
    return [
        ScalingRow(n=n, ell=int(cell.protocol["ell"]), stats=result.stats())
        for cell, result in zip(outcome.cells, outcome.results)
    ]


def fit_scaling(rows: list[ScalingRow], statistic: str = "median") -> LogPowerFit:
    """Fit ``T(n) = a·(ln n)^b`` to a population-size sweep.

    ``statistic`` selects which summary of the per-``n`` time distribution is
    fitted (``median``, ``mean``, or ``p95``). Rows without any successful
    trial are excluded (and should be rare under a sane budget).
    """
    ns: list[int] = []
    ts: list[float] = []
    for row in rows:
        summary = row.stats.time_summary()
        value = getattr(summary, "maximum" if statistic == "max" else statistic)
        if summary.count > 0 and value > 0:
            ns.append(row.n)
            ts.append(value)
    return fit_log_power(np.asarray(ns), np.asarray(ts))
