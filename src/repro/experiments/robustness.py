"""Noise-robustness experiment (extension E-noise).

Under per-bit observation noise ε (see :mod:`repro.core.noise`), exact
consensus stops being absorbing: from all-correct, an agent's two counters
are i.i.d. ``Binomial(ℓ, 1−ε)`` draws, ties stop being guaranteed, and
defections appear. Worse, FET is a *trend follower*: it amplifies the
spurious trend a defection creates, so for ANY ε > 0 (measured down to
1e-5) the population eventually falls off the consensus knife-edge into
sustained oscillations — it keeps *reaching* near-consensus quickly but
cannot *retain* it. (Measured in the E-noise benchmark; an honest negative
robustness result for the plain protocol, suggesting hysteresis or averaging
would be needed in noisy environments.)

The meaningful criteria are therefore split: *θ-convergence* (first time the
fraction of correct non-sources reaches ``θ``) and the *settle level* (mean
correct fraction over a window after θ was reached).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.engine import SynchronousEngine
from ..core.noise import NoisyCountSampler
from ..core.population import make_population
from ..core.rng import spawn_rngs
from ..initializers.standard import AllWrong, Initializer
from ..protocols.fet import FETProtocol

__all__ = ["NoiseRow", "sweep_noise"]


@dataclass(frozen=True)
class NoiseRow:
    """Outcome of one noise level: θ-convergence stats and settle level."""

    epsilon: float
    trials: int
    reached_theta: int
    median_rounds: float
    mean_settle_level: float


def sweep_noise(
    n: int,
    ell: int,
    epsilons: list[float],
    *,
    trials: int,
    max_rounds: int,
    seed: int,
    theta: float = 0.95,
    settle_window: int = 20,
    initializer: Initializer | None = None,
) -> list[NoiseRow]:
    """Measure FET's θ-convergence time and settle level per noise level."""
    initializer = initializer if initializer is not None else AllWrong()
    rows: list[NoiseRow] = []
    for eps_index, epsilon in enumerate(epsilons):
        times: list[int] = []
        settle_levels: list[float] = []
        reached = 0
        for rng in spawn_rngs(seed + eps_index, trials):
            protocol = FETProtocol(ell)
            population = make_population(n, 1)
            state = protocol.init_state(n, rng)
            initializer(population, protocol, state, rng)
            engine = SynchronousEngine(
                population=population,
                protocol=protocol,
                sampler=NoisyCountSampler(epsilon),
                rng=rng,
                state=state,
            )
            result = engine.run(
                max_rounds,
                stability_rounds=1,
                stop_condition=lambda pop: pop.nonsource_correct_fraction() >= theta,
            )
            if result.converged:
                reached += 1
                times.append(result.rounds)
                # Let the system settle and record its noise-floor level.
                levels = []
                for _ in range(settle_window):
                    engine.step()
                    levels.append(population.nonsource_correct_fraction())
                settle_levels.append(float(np.mean(levels)))
        rows.append(
            NoiseRow(
                epsilon=epsilon,
                trials=trials,
                reached_theta=reached,
                median_rounds=float(np.median(times)) if times else float("nan"),
                mean_settle_level=float(np.mean(settle_levels)) if settle_levels else float("nan"),
            )
        )
    return rows
