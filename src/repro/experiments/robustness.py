"""Noise-robustness experiment (extension E-noise).

Under per-bit observation noise ε (see :mod:`repro.core.noise`), exact
consensus stops being absorbing: from all-correct, an agent's two counters
are i.i.d. ``Binomial(ℓ, 1−ε)`` draws, ties stop being guaranteed, and
defections appear. Worse, FET is a *trend follower*: it amplifies the
spurious trend a defection creates, so for ANY ε > 0 (measured down to
1e-5) the population eventually falls off the consensus knife-edge into
sustained oscillations — it keeps *reaching* near-consensus quickly but
cannot *retain* it. (Measured in the E-noise benchmark; an honest negative
robustness result for the plain protocol, suggesting hysteresis or averaging
would be needed in noisy environments.)

The meaningful criteria are therefore split: *θ-convergence* (first time the
fraction of correct non-sources reaches ``θ``) and the *settle level* (mean
correct fraction over a window after θ was reached).

The driver runs on the sweep orchestrator (:mod:`repro.sweep`): each noise
level becomes one cell of a grid with the ``theta`` measure, so the levels
run in parallel across ``jobs`` worker processes and can persist/resume
through a results ``store``. Since the trace subsystem landed, the ``theta``
measure runs each cell's trials on the *batched* engine (trace-recorded, with
per-replica settle windows served by linger-retirement); pass
``engine="sequential"`` to force the original per-trial loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..initializers.standard import AllWrong, Initializer
from ..sweep.dispatch import FaultPolicy
from ..sweep.orchestrator import run_sweep
from ..sweep.spec import SweepSpec
from ..sweep.store import ResultsStore

__all__ = ["NoiseRow", "sweep_noise"]


@dataclass(frozen=True)
class NoiseRow:
    """Outcome of one (protocol, noise level) cell: θ-convergence stats and
    settle level. ``protocol`` distinguishes baseline rows when the sweep
    compares more than one protocol."""

    epsilon: float
    trials: int
    reached_theta: int
    median_rounds: float
    mean_settle_level: float
    protocol: str = ""


def sweep_noise(
    n: int,
    ell: int,
    epsilons: list[float],
    *,
    trials: int,
    max_rounds: int,
    seed: int,
    theta: float = 0.95,
    settle_window: int = 20,
    initializer: Initializer | None = None,
    jobs: int = 1,
    store: ResultsStore | str | Path | None = None,
    policy: FaultPolicy | None = None,
    engine: str = "auto",
    protocols: list[dict | str] | None = None,
) -> list[NoiseRow]:
    """Measure θ-convergence time and settle level per (protocol, noise) cell.

    By default the sweep measures FET alone (the paper's E-noise extension).
    ``protocols`` adds comparison rows — e.g. ``[{"name": "fet", "ell": 40},
    "clock-sync"]`` puts the decoupled-message baseline next to FET at every
    noise level: count-sampling protocols consume ε through the noisy count
    samplers, and clock-sync applies the same per-bit flip model to the
    opinion bits it reads directly (its clock message stays clean — the
    noise model covers opinion observations). Since the clock-sync
    vectorization, every registered protocol rides the batched engine under
    ``engine="auto"``, so baseline rows cost the same per trial as FET rows
    instead of falling back to the per-replica path.
    """
    initializer = initializer if initializer is not None else AllWrong()
    protocol_axis: list[dict | str] = (
        list(protocols) if protocols is not None else [{"name": "fet", "ell": int(ell)}]
    )
    spec = SweepSpec(
        name="noise-robustness",
        seed=seed,
        trials=trials,
        axes={
            "protocol": protocol_axis,
            "n": [n],
            "noise": [float(eps) for eps in epsilons],
            "initializer": [initializer.spec()],
        },
        max_rounds=max_rounds,
        stability_rounds=1,
        engine=engine,
        measure={"kind": "theta", "theta": theta, "settle_window": settle_window},
    )
    outcome = run_sweep(spec, jobs=jobs, store=store, policy=policy)
    rows: list[NoiseRow] = []
    for cell, result in zip(outcome.cells, outcome.results):
        payload = result.payload
        times = payload["times"]
        levels = payload["settle_levels"]
        rows.append(
            NoiseRow(
                epsilon=cell.noise,
                trials=cell.trials,
                reached_theta=payload["reached"],
                median_rounds=float(np.median(times)) if times else float("nan"),
                mean_settle_level=float(np.mean(levels)) if levels else float("nan"),
                protocol=payload["protocol"],
            )
        )
    return rows
