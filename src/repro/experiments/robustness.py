"""Noise-robustness experiment (extension E-noise).

Under per-bit observation noise ε (see :mod:`repro.core.noise`), exact
consensus stops being absorbing: from all-correct, an agent's two counters
are i.i.d. ``Binomial(ℓ, 1−ε)`` draws, ties stop being guaranteed, and
defections appear. Worse, FET is a *trend follower*: it amplifies the
spurious trend a defection creates, so for ANY ε > 0 (measured down to
1e-5) the population eventually falls off the consensus knife-edge into
sustained oscillations — it keeps *reaching* near-consensus quickly but
cannot *retain* it. (Measured in the E-noise benchmark; an honest negative
robustness result for the plain protocol, suggesting hysteresis or averaging
would be needed in noisy environments.)

The meaningful criteria are therefore split: *θ-convergence* (first time the
fraction of correct non-sources reaches ``θ``) and the *settle level* (mean
correct fraction over a window after θ was reached).

The driver runs on the sweep orchestrator (:mod:`repro.sweep`): each noise
level becomes one cell of a grid with the ``theta`` measure, so the levels
run in parallel across ``jobs`` worker processes and can persist/resume
through a results ``store``. Since the trace subsystem landed, the ``theta``
measure runs each cell's trials on the *batched* engine (trace-recorded, with
per-replica settle windows served by linger-retirement); pass
``engine="sequential"`` to force the original per-trial loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..initializers.standard import AllWrong, Initializer
from ..sweep.orchestrator import run_sweep
from ..sweep.spec import SweepSpec
from ..sweep.store import ResultsStore

__all__ = ["NoiseRow", "sweep_noise"]


@dataclass(frozen=True)
class NoiseRow:
    """Outcome of one noise level: θ-convergence stats and settle level."""

    epsilon: float
    trials: int
    reached_theta: int
    median_rounds: float
    mean_settle_level: float


def sweep_noise(
    n: int,
    ell: int,
    epsilons: list[float],
    *,
    trials: int,
    max_rounds: int,
    seed: int,
    theta: float = 0.95,
    settle_window: int = 20,
    initializer: Initializer | None = None,
    jobs: int = 1,
    store: ResultsStore | str | Path | None = None,
    engine: str = "auto",
) -> list[NoiseRow]:
    """Measure FET's θ-convergence time and settle level per noise level."""
    initializer = initializer if initializer is not None else AllWrong()
    spec = SweepSpec(
        name="noise-robustness",
        seed=seed,
        trials=trials,
        axes={
            "protocol": [{"name": "fet", "ell": int(ell)}],
            "n": [n],
            "noise": [float(eps) for eps in epsilons],
            "initializer": [initializer.spec()],
        },
        max_rounds=max_rounds,
        stability_rounds=1,
        engine=engine,
        measure={"kind": "theta", "theta": theta, "settle_window": settle_window},
    )
    outcome = run_sweep(spec, jobs=jobs, store=store)
    rows: list[NoiseRow] = []
    for cell, result in zip(outcome.cells, outcome.results):
        payload = result.payload
        times = payload["times"]
        levels = payload["settle_levels"]
        rows.append(
            NoiseRow(
                epsilon=cell.noise,
                trials=cell.trials,
                reached_theta=payload["reached"],
                median_rounds=float(np.median(times)) if times else float("nan"),
                mean_settle_level=float(np.mean(levels)) if levels else float("nan"),
            )
        )
    return rows
