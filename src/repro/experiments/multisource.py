"""Multi-source experiment (extension E-multi).

The paper's framework "can be extended to allow for a constant number of
sources" as long as they agree on the correct opinion, and the discussion
conjectures larger source regimes are "also manageable". This experiment
sweeps the number of agreeing sources from 1 to a constant fraction of n
and measures FET's convergence — more sources can only help (each pins more
probability mass on the correct side), and the sweep quantifies by how much.

The driver runs on the sweep orchestrator (:mod:`repro.sweep`) through the
first-class ``num_sources`` axis: one declarative grid replaces the old
hand-rolled loop, so the source counts fan out over ``jobs`` worker
processes, persist/resume through a results ``store``, and draw properly
independent per-cell seeds (derived from the cell's content hash, retiring
the ad-hoc ``seed + index`` scheme). The whole ``source_counts`` list is
validated *before* any cell runs — an invalid count can no longer surface
mid-sweep after earlier cells burned compute.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from ..initializers.standard import AllWrong, Initializer
from ..sweep.dispatch import FaultPolicy
from ..sweep.orchestrator import run_sweep
from ..sweep.spec import SweepSpec
from ..sweep.store import ResultsStore
from .harness import TrialStats

__all__ = ["SourceRow", "sweep_sources"]


@dataclass(frozen=True)
class SourceRow:
    num_sources: int
    stats: TrialStats


def sweep_sources(
    n: int,
    ell: int,
    source_counts: list[int],
    *,
    trials: int,
    max_rounds: int,
    seed: int,
    initializer: Initializer | None = None,
    jobs: int = 1,
    store: ResultsStore | str | Path | None = None,
    policy: FaultPolicy | None = None,
) -> list[SourceRow]:
    """Measure FET convergence for each number of agreeing sources.

    Each source count is one cell of a ``num_sources``-axis grid; ``jobs``
    fans the cells out over worker processes and ``store`` makes the sweep
    resumable (see :func:`repro.sweep.run_sweep`).
    """
    counts = [int(k) for k in source_counts]
    for k in counts:
        if not 1 <= k < n:
            raise ValueError(f"source count must be in [1, n), got {k}")
    initializer = initializer if initializer is not None else AllWrong()
    spec = SweepSpec(
        name="multisource",
        seed=seed,
        trials=trials,
        axes={
            "protocol": [{"name": "fet", "ell": int(ell)}],
            "n": [n],
            "initializer": [initializer.spec()],
            "num_sources": counts,
        },
        max_rounds=max_rounds,
    )
    outcome = run_sweep(spec, jobs=jobs, store=store, policy=policy)
    return [
        SourceRow(num_sources=cell.num_sources, stats=result.stats())
        for cell, result in zip(outcome.cells, outcome.results)
    ]
