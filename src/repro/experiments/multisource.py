"""Multi-source experiment (extension E-multi).

The paper's framework "can be extended to allow for a constant number of
sources" as long as they agree on the correct opinion, and the discussion
conjectures larger source regimes are "also manageable". This experiment
sweeps the number of agreeing sources from 1 to a constant fraction of n
and measures FET's convergence — more sources can only help (each pins more
probability mass on the correct side), and the sweep quantifies by how much.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.population import make_population
from ..initializers.standard import AllWrong, Initializer
from ..protocols.fet import FETProtocol
from .harness import TrialStats, run_trials

__all__ = ["SourceRow", "sweep_sources"]


@dataclass(frozen=True)
class SourceRow:
    num_sources: int
    stats: TrialStats


def sweep_sources(
    n: int,
    ell: int,
    source_counts: list[int],
    *,
    trials: int,
    max_rounds: int,
    seed: int,
    initializer: Initializer | None = None,
) -> list[SourceRow]:
    """Measure FET convergence for each number of agreeing sources."""
    initializer = initializer if initializer is not None else AllWrong()
    rows: list[SourceRow] = []
    for index, k in enumerate(source_counts):
        if not 1 <= k < n:
            raise ValueError(f"source count must be in [1, n), got {k}")
        stats = run_trials(
            lambda: FETProtocol(ell),
            n,
            initializer,
            trials=trials,
            max_rounds=max_rounds,
            seed=seed + index,
            population_factory=lambda k=k: make_population(n, 1, num_sources=k),
        )
        rows.append(SourceRow(num_sources=k, stats=stats))
    return rows
