"""Experiment harnesses: trial batches, scaling sweeps, domain transitions."""

from .adaptivity import AdaptivityResult, run_changing_environment
from .convergence import (
    ScalingRow,
    default_round_budget,
    fit_scaling,
    sweep_population_sizes,
    sweep_sample_sizes,
)
from .harness import (
    TrialStats,
    execute_run,
    make_batched_engine,
    prepare_batch,
    run_trials,
)
from .multisource import SourceRow, sweep_sources
from .robustness import NoiseRow, sweep_noise
from .trajectories import AnnotatedRun, run_annotated, run_annotated_batch
from .transitions import TransitionSummary, collect_transitions
from .worst_case import WorstCaseResult, search_worst_start

__all__ = [
    "AdaptivityResult",
    "AnnotatedRun",
    "NoiseRow",
    "ScalingRow",
    "SourceRow",
    "TransitionSummary",
    "TrialStats",
    "WorstCaseResult",
    "collect_transitions",
    "default_round_budget",
    "execute_run",
    "fit_scaling",
    "make_batched_engine",
    "prepare_batch",
    "run_annotated",
    "run_annotated_batch",
    "run_changing_environment",
    "run_trials",
    "search_worst_start",
    "sweep_noise",
    "sweep_population_sizes",
    "sweep_sample_sizes",
    "sweep_sources",
]
