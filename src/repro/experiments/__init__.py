"""Experiment harnesses: trial batches, scaling sweeps, domain transitions."""

from .adaptivity import AdaptivityResult, run_changing_environment
from .convergence import ScalingRow, fit_scaling, sweep_population_sizes, sweep_sample_sizes
from .harness import TrialStats, run_trials
from .multisource import SourceRow, sweep_sources
from .robustness import NoiseRow, sweep_noise
from .trajectories import AnnotatedRun, run_annotated
from .transitions import TransitionSummary, collect_transitions
from .worst_case import WorstCaseResult, search_worst_start

__all__ = [
    "AdaptivityResult",
    "AnnotatedRun",
    "NoiseRow",
    "ScalingRow",
    "SourceRow",
    "TransitionSummary",
    "TrialStats",
    "WorstCaseResult",
    "collect_transitions",
    "fit_scaling",
    "run_annotated",
    "run_changing_environment",
    "run_trials",
    "search_worst_start",
    "sweep_noise",
    "sweep_population_sizes",
    "sweep_sample_sizes",
    "sweep_sources",
]
