"""Randomized worst-case search over initial configurations (E-worst).

The paper warns (footnote 3) that "simulation results may be deceiving in
self-stabilizing contexts, since the worst initial conditions for a given
protocol are not always evident". This experiment takes that warning
seriously: instead of trusting hand-picked starts, it searches for bad ones.

The search space is the chain's effective initial state — the pair
``(x_prev, x_now)`` plus a counter-bias knob — explored with a coarse grid
followed by local refinement around the worst cell found (each candidate
scored by mean convergence time over a few seeded runs). The result is an
empirical lower bound on the worst-case convergence time, comparable against
Theorem 1's upper-bound scale.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.engine import run_protocol
from ..core.population import make_population
from ..core.rng import derive_rng
from ..initializers.adversarial import TwoRoundTarget
from ..protocols.fet import FETProtocol

__all__ = ["WorstCaseResult", "search_worst_start"]


@dataclass(frozen=True)
class WorstCaseResult:
    """Worst starting pair found and its measured convergence times."""

    x_prev: float
    x_now: float
    mean_rounds: float
    max_rounds_seen: int
    evaluations: int
    all_converged: bool


def _score(
    n: int,
    ell: int,
    x_prev: float,
    x_now: float,
    *,
    runs: int,
    budget: int,
    seed: int,
) -> tuple[float, int, bool]:
    """Mean/max convergence time of FET from the given pair (seeded)."""
    times = []
    converged_all = True
    for r in range(runs):
        rng = derive_rng(seed, int(x_prev * 1000), int(x_now * 1000), r)
        protocol = FETProtocol(ell)
        population = make_population(n, 1)
        state = protocol.init_state(n, rng)
        TwoRoundTarget(x_prev, x_now)(population, protocol, state, rng)
        result = run_protocol(protocol, population, budget, rng=rng, state=state)
        converged_all &= result.converged
        times.append(result.rounds)
    return float(np.mean(times)), int(max(times)), converged_all


def search_worst_start(
    n: int,
    ell: int,
    *,
    coarse: int = 7,
    refine_steps: int = 2,
    runs_per_candidate: int = 3,
    budget: int = 20_000,
    seed: int = 0,
) -> WorstCaseResult:
    """Grid-then-refine search for the worst (x_prev, x_now) start.

    ``coarse`` points per axis on the first pass; each refinement zooms by 3x
    around the current worst cell. Scores are deterministic given ``seed``.
    """
    if coarse < 2:
        raise ValueError(f"coarse grid needs >= 2 points per axis, got {coarse}")
    lo_p, hi_p = 0.0, 1.0
    lo_n, hi_n = 0.0, 1.0
    best = (-1.0, 0, True, 0.5, 0.5)  # (mean, max, converged, x_prev, x_now)
    evaluations = 0
    for _ in range(refine_steps + 1):
        xs_prev = np.linspace(lo_p, hi_p, coarse)
        xs_now = np.linspace(lo_n, hi_n, coarse)
        for xp in xs_prev:
            for xn in xs_now:
                mean, worst, ok = _score(
                    n, ell, float(xp), float(xn),
                    runs=runs_per_candidate, budget=budget, seed=seed,
                )
                evaluations += 1
                if mean > best[0]:
                    best = (mean, worst, ok, float(xp), float(xn))
        # Zoom in around the worst cell found so far.
        span_p = (hi_p - lo_p) / 3
        span_n = (hi_n - lo_n) / 3
        lo_p = max(0.0, best[3] - span_p / 2)
        hi_p = min(1.0, best[3] + span_p / 2)
        lo_n = max(0.0, best[4] - span_n / 2)
        hi_n = min(1.0, best[4] + span_n / 2)
    mean, worst, ok, xp, xn = best
    return WorstCaseResult(
        x_prev=xp,
        x_now=xn,
        mean_rounds=mean,
        max_rounds_seen=worst,
        evaluations=evaluations,
        all_converged=ok,
    )
