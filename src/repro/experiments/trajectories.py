"""Trajectory recording with domain annotation.

Connects the simulator to the analysis layer: runs a protocol and labels
every consecutive-fraction pair ``(x_t, x_{t+1})`` with its Figure 1a domain.
Used by the Figure 1b experiment and by the trajectory examples.

Two entry points:

* :func:`run_annotated` — one trial on the sequential engine (the original
  single-run tour, and the cross-check reference for the batched path);
* :func:`run_annotated_batch` — R independent trials as one batched run with
  a :class:`~repro.trace.FullTrace` recorder; the recorded ``(R, T)`` matrix
  is split back into per-trial trajectories and annotated identically.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis.domains import Domain, DomainPartition
from ..config import RunSpec
from ..core.engine import SynchronousEngine
from ..core.population import make_population
from ..core.protocol import Protocol
from ..core.records import RunResult
from ..core.rng import as_rng
from ..initializers.standard import Initializer
from ..trace import FullTrace
from .harness import make_batched_engine

__all__ = ["AnnotatedRun", "run_annotated", "run_annotated_batch"]


@dataclass
class AnnotatedRun:
    """A run result plus the domain label of every trajectory pair."""

    result: RunResult
    domains: list[Domain]

    def domain_families(self) -> list[str]:
        return [d.family for d in self.domains]

    def dwell_segments(self) -> list[tuple[Domain, int]]:
        """Run-length encode the domain sequence: [(domain, rounds), …]."""
        segments: list[tuple[Domain, int]] = []
        for label in self.domains:
            if segments and segments[-1][0] is label:
                segments[-1] = (label, segments[-1][1] + 1)
            else:
                segments.append((label, 1))
        return segments


def run_annotated(
    protocol: Protocol,
    n: int,
    initializer: Initializer,
    *,
    max_rounds: int,
    seed: int | np.random.Generator,
    correct_opinion: int = 1,
    delta: float = 0.05,
    stability_rounds: int = 2,
) -> AnnotatedRun:
    """Run once and classify every trajectory pair into Figure 1a domains."""
    rng = as_rng(seed)
    population = make_population(n, correct_opinion)
    state = protocol.init_state(n, rng)
    initializer(population, protocol, state, rng)
    engine = SynchronousEngine(protocol, population, rng=rng, state=state)
    result = engine.run(max_rounds, stability_rounds=stability_rounds)
    partition = DomainPartition(n=n, delta=delta)
    domains = partition.classify_pairs(result.pairs())
    return AnnotatedRun(result=result, domains=domains)


def run_annotated_batch(
    protocol: Protocol,
    n: int,
    initializer: Initializer,
    replicas: int,
    *,
    max_rounds: int,
    seed: int,
    correct_opinion: int = 1,
    delta: float = 0.05,
    stability_rounds: int = 2,
) -> list[AnnotatedRun]:
    """Run ``replicas`` trials batched and annotate each trajectory.

    One lock-step :class:`~repro.core.batch.BatchedEngine` run with a
    full-trace recorder replaces ``replicas`` sequential runs; each recorded
    per-replica trajectory is trimmed to the rounds that replica executed and
    classified exactly as :func:`run_annotated` classifies a sequential one.
    """
    spec = RunSpec(
        protocol=None,  # live instance supplied below
        n=n,
        trials=replicas,
        max_rounds=max_rounds,
        seed=seed,
        correct_opinion=correct_opinion,
        stability_rounds=stability_rounds,
    )
    recorder = FullTrace()
    engine = make_batched_engine(spec, protocol=protocol, initializer=initializer)
    outcome = engine.run(max_rounds, stability_rounds=stability_rounds, recorder=recorder)
    partition = DomainPartition(n=n, delta=delta)
    return [
        AnnotatedRun(result=result, domains=partition.classify_pairs(result.pairs()))
        for result in recorder.trace().to_run_results(outcome)
    ]
