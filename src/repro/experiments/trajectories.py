"""Single-run trajectory recording with domain annotation.

Connects the simulator to the analysis layer: runs a protocol once, then
labels every consecutive-fraction pair ``(x_t, x_{t+1})`` with its Figure 1a
domain. Used by the Figure 1b experiment and by the trajectory examples.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis.domains import Domain, DomainPartition
from ..core.engine import SynchronousEngine
from ..core.population import make_population
from ..core.protocol import Protocol
from ..core.records import RunResult
from ..core.rng import as_rng
from ..initializers.standard import Initializer

__all__ = ["AnnotatedRun", "run_annotated"]


@dataclass
class AnnotatedRun:
    """A run result plus the domain label of every trajectory pair."""

    result: RunResult
    domains: list[Domain]

    def domain_families(self) -> list[str]:
        return [d.family for d in self.domains]

    def dwell_segments(self) -> list[tuple[Domain, int]]:
        """Run-length encode the domain sequence: [(domain, rounds), …]."""
        segments: list[tuple[Domain, int]] = []
        for label in self.domains:
            if segments and segments[-1][0] is label:
                segments[-1] = (label, segments[-1][1] + 1)
            else:
                segments.append((label, 1))
        return segments


def run_annotated(
    protocol: Protocol,
    n: int,
    initializer: Initializer,
    *,
    max_rounds: int,
    seed: int | np.random.Generator,
    correct_opinion: int = 1,
    delta: float = 0.05,
    stability_rounds: int = 2,
) -> AnnotatedRun:
    """Run once and classify every trajectory pair into Figure 1a domains."""
    rng = as_rng(seed)
    population = make_population(n, correct_opinion)
    state = protocol.init_state(n, rng)
    initializer(population, protocol, state, rng)
    engine = SynchronousEngine(protocol, population, rng=rng, state=state)
    result = engine.run(max_rounds, stability_rounds=stability_rounds)
    partition = DomainPartition(n=n, delta=delta)
    domains = partition.classify_pairs(result.pairs())
    return AnnotatedRun(result=result, domains=domains)
