"""Structured event log: bounded, ordered, JSONL-serializable.

Counters answer "how many retries happened"; the event log answers "what
happened, in order" — each retry, backoff sleep, worker crash, watchdog
expiry, cache hit, and store append becomes a small dict with a wall-clock
timestamp and a per-log sequence number.

Same contract as the metrics registry and span tracer:

* **Ambient, off by default.**  Probe sites call :func:`emit_event`,
  which is a no-op until a log is installed with :func:`use_event_log`.
* **Bounded.**  The log is a ring buffer (``capacity`` events); once full,
  the oldest events fall off and ``dropped`` counts what was lost — a
  pathological sweep cannot exhaust memory.
* **By-value across processes.**  Workers ship ``log.events()`` (plain
  dicts) on ``CellResult.events``; the parent :meth:`EventLog.absorb`\\ s
  them in canonical cell order, re-sequencing but preserving original
  timestamps, so merged logs are deterministic modulo wall clocks.

:func:`write_events_jsonl` renders any event list as one JSON object per
line — the ``--events-out`` format.
"""

from __future__ import annotations

import json
import time
from collections import deque
from contextlib import contextmanager
from contextvars import ContextVar
from pathlib import Path
from typing import Any, Iterable, Iterator

__all__ = [
    "DEFAULT_CAPACITY",
    "EventLog",
    "current_event_log",
    "emit_event",
    "use_event_log",
    "write_events_jsonl",
]

#: Default ring-buffer capacity; generous for any realistic sweep (a few
#: events per cell) while bounding a runaway retry storm.
DEFAULT_CAPACITY = 10_000

#: Keys stamped by the log itself; emit() rejects them as field names.
_RESERVED = ("seq", "ts", "kind")


class EventLog:
    """Append-only ring buffer of structured events."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._events: deque[dict[str, Any]] = deque(maxlen=self.capacity)
        self.dropped = 0
        self._seq = 0

    def __len__(self) -> int:
        return len(self._events)

    def emit(self, kind: str, **fields: Any) -> None:
        """Record one event of ``kind`` with arbitrary JSON-able fields."""
        for key in _RESERVED:
            if key in fields:
                raise ValueError(f"event field name {key!r} is reserved")
        if len(self._events) == self.capacity:
            self.dropped += 1
        event: dict[str, Any] = {"seq": self._seq, "ts": round(time.time(), 6), "kind": str(kind)}
        event.update(fields)
        self._seq += 1
        self._events.append(event)

    def absorb(self, events: Iterable[dict[str, Any]]) -> None:
        """Fold foreign events (e.g. a worker cell's) into this log.

        Original timestamps and fields are preserved; sequence numbers are
        reassigned from this log's counter so the merged order is exactly
        the absorption order.  Absorb in canonical cell order for
        deterministic merged logs.
        """
        for event in events:
            if len(self._events) == self.capacity:
                self.dropped += 1
            folded = dict(event)
            folded["seq"] = self._seq
            self._seq += 1
            self._events.append(folded)

    def events(self) -> list[dict[str, Any]]:
        """A by-value copy of the buffered events, oldest first."""
        return [dict(event) for event in self._events]

    def kinds(self) -> list[str]:
        """The ``kind`` of each buffered event, oldest first."""
        return [event["kind"] for event in self._events]


def write_events_jsonl(path: str | Path, events: Iterable[dict[str, Any]]) -> Path:
    """Write events as JSON Lines (one compact object per line)."""
    target = Path(path)
    if target.parent != Path(""):
        target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w", encoding="utf-8") as handle:
        for event in events:
            handle.write(json.dumps(event, sort_keys=True, separators=(",", ":")))
            handle.write("\n")
    return target


# -- ambient seam ---------------------------------------------------------

_ACTIVE: ContextVar[EventLog | None] = ContextVar("repro_event_log", default=None)


def current_event_log() -> EventLog | None:
    """The ambient event log, or ``None`` when logging is off (the default)."""
    return _ACTIVE.get()


@contextmanager
def use_event_log(log: EventLog) -> Iterator[EventLog]:
    """Install ``log`` as the ambient event log for the ``with`` scope."""
    token = _ACTIVE.set(log)
    try:
        yield log
    finally:
        _ACTIVE.reset(token)


def emit_event(kind: str, **fields: Any) -> None:
    """Emit onto the ambient log; a no-op when event logging is off."""
    log = _ACTIVE.get()
    if log is not None:
        log.emit(kind, **fields)
