"""Telemetry subsystem: metrics, spans, events, exposition, HTTP endpoint.

Dependency-free observability for the whole stack, built as three pillars
that share one contract — **ambient ContextVar seams, off by default, with
JSON-able by-value snapshots** that ship across process boundaries through
the sweep's ordered ``on_result`` merge for deterministic aggregation at
any ``--jobs``:

* **Metrics** — :class:`MetricsRegistry` (counters, gauges, histograms
  with labels and a ``timer()`` context manager; no locks, owned by one
  thread) behind :func:`current_registry` / :func:`use_registry`;
  :class:`MetricsSnapshot` with an associative ``merge()``;
  :func:`render_prometheus` / :func:`validate_exposition` for the
  Prometheus text format.
* **Spans** — :class:`SpanTracer` behind :func:`current_tracer` /
  :func:`use_tracer`, with the module-level :func:`span` probe helper;
  :class:`SpanLog` snapshots graft into one deterministic cross-process
  timeline; :func:`chrome_trace` / :func:`write_chrome_trace` export
  Perfetto-loadable trace JSON and :func:`render_timeline` /
  :func:`timeline_lanes` back the ``repro timeline`` CLI.
* **Events** — :class:`EventLog` (bounded ring buffer) behind
  :func:`current_event_log` / :func:`use_event_log` with the
  :func:`emit_event` probe helper; retries, backoff, crashes, watchdog
  expiries, cache hits, and store appends become ordered structured
  records, written as JSONL by :func:`write_events_jsonl`.

:class:`ObservabilityServer` serves the live HTTP surface — ``/metrics``
(validated exposition), ``/healthz``, and ``/progress`` (the JSON mirror
of :class:`ProgressLine`) — for ``repro serve-metrics`` and
``repro sweep --metrics-port``.

Quickstart::

    from repro.telemetry import (
        EventLog, MetricsRegistry, SpanTracer,
        render_prometheus, use_event_log, use_registry, use_tracer,
    )

    registry, tracer, log = MetricsRegistry(), SpanTracer(), EventLog()
    with use_registry(registry), use_tracer(tracer), use_event_log(log):
        ...  # run instrumented code: engines, sweeps, stores
    print(render_prometheus(registry))
    print(tracer.snapshot().tree())
    print(log.kinds())
"""

from .registry import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    current_registry,
    use_registry,
)
from .snapshot import HistogramData, MetricsSnapshot
from .exposition import render_prometheus, validate_exposition
from .progress import ProgressLine
from .spans import Span, SpanLog, SpanTracer, current_tracer, span, use_tracer
from .events import (
    EventLog,
    current_event_log,
    emit_event,
    use_event_log,
    write_events_jsonl,
)
from .chrome_trace import chrome_trace, render_timeline, timeline_lanes, write_chrome_trace
from .server import ObservabilityServer

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "EventLog",
    "Gauge",
    "Histogram",
    "HistogramData",
    "MetricsRegistry",
    "MetricsSnapshot",
    "ObservabilityServer",
    "ProgressLine",
    "Span",
    "SpanLog",
    "SpanTracer",
    "chrome_trace",
    "current_event_log",
    "current_registry",
    "current_tracer",
    "emit_event",
    "render_prometheus",
    "render_timeline",
    "span",
    "timeline_lanes",
    "use_event_log",
    "use_registry",
    "use_tracer",
    "validate_exposition",
    "write_chrome_trace",
    "write_events_jsonl",
]
