"""Telemetry subsystem: metrics registry, Prometheus exposition, progress.

Dependency-free observability for the whole stack. The pieces:

* :class:`MetricsRegistry` — counters, gauges, histograms with labels and
  a ``timer()`` span context manager; no locks, owned by one thread.
* :func:`current_registry` / :func:`use_registry` — the ambient-registry
  seam instrumented code reads. Telemetry is **off by default**:
  ``current_registry()`` returns ``None`` and every probe site skips all
  metric work, keeping hot paths at their uninstrumented speed.
* :class:`MetricsSnapshot` — JSON-able by-value copy with an associative
  ``merge()``; how worker processes ship metrics back through the sweep's
  ordered ``on_result`` seam for deterministic parent-side aggregation.
* :func:`render_prometheus` / :func:`validate_exposition` — Prometheus
  text-format output (the substrate for ROADMAP item 2's ``/metrics``
  endpoint) and the line-format checker the CI smoke test runs.
* :class:`ProgressLine` — the ``repro sweep --progress`` live stderr line,
  fed from the same registry.

Quickstart::

    from repro.telemetry import MetricsRegistry, render_prometheus, use_registry

    registry = MetricsRegistry()
    with use_registry(registry):
        ...  # run instrumented code: engines, sweeps, stores
    print(render_prometheus(registry))
"""

from .registry import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    current_registry,
    use_registry,
)
from .snapshot import HistogramData, MetricsSnapshot
from .exposition import render_prometheus, validate_exposition
from .progress import ProgressLine

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "HistogramData",
    "MetricsRegistry",
    "MetricsSnapshot",
    "ProgressLine",
    "current_registry",
    "render_prometheus",
    "use_registry",
    "validate_exposition",
]
