"""Live one-line sweep progress, fed from a :class:`MetricsRegistry`.

The progress line is a *reader* of the same registry the orchestrator and
dispatchers write into — it owns no state of its own beyond pacing, so it
can never disagree with ``--metrics-out``. On a TTY it redraws in place
with carriage returns; under a pipe (CI logs) it emits plain newline-
terminated lines, rate-limited so a long sweep does not flood the log.

Rate/ETA accounting: store-cached cells are served near-instantly before
dispatch begins, so they are excluded from the per-cell rate and the rate
clock starts at :meth:`ProgressLine.begin_execution` (called by the
orchestrator once cache serving is done) — a mostly-cached resume no
longer reports a fantasy cells/s or a skewed ETA.  :meth:`stats` exposes
the same numbers as JSON for the ``/progress`` HTTP route.
"""

from __future__ import annotations

import sys
import time
from typing import Any, TextIO

from .registry import MetricsRegistry

__all__ = ["ProgressLine"]


def _format_eta(seconds: float) -> str:
    seconds = int(seconds + 0.5)
    hours, rem = divmod(seconds, 3600)
    minutes, secs = divmod(rem, 60)
    return f"{hours}:{minutes:02d}:{secs:02d}"


class ProgressLine:
    """Renders sweep progress (done/total, failures, retries, rate, ETA)."""

    def __init__(
        self,
        total: int,
        registry: MetricsRegistry,
        stream: TextIO | None = None,
        min_interval: float = 0.25,
        job_id: str | None = None,
    ) -> None:
        self._total = total
        self._registry = registry
        self._job_id = job_id
        self._stream = sys.stderr if stream is None else stream
        try:
            self._tty = bool(self._stream.isatty())
        except (AttributeError, ValueError):
            self._tty = False
        self._min_interval = min_interval
        self._start = time.monotonic()
        self._exec_start: float | None = None
        self._last_emit = 0.0
        self._last_width = 0

    def begin_execution(self) -> None:
        """Mark the start of actual cell execution (after cache serving).

        Until this is called the rate clock runs from construction; after,
        executed-cells/s is measured against the execution epoch only, so
        store-loading and cache-serving time cannot dilute the estimate.
        """
        if self._exec_start is None:
            self._exec_start = time.monotonic()

    def stats(self, now: float | None = None) -> dict[str, Any]:
        """Current progress as plain data (the ``/progress`` JSON body)."""
        if now is None:
            now = time.monotonic()
        reg = self._registry
        completed = int(reg.total("repro_cells_completed_total"))
        failed = int(reg.total("repro_cells_failed_total"))
        cached = int(reg.total("repro_cells_cached_total"))
        retries = int(reg.total("repro_sweep_retries_total"))
        done = completed + failed + cached
        executed = completed + failed
        elapsed = max(now - self._start, 0.0)
        exec_epoch = self._exec_start if self._exec_start is not None else self._start
        rate = executed / max(now - exec_epoch, 1e-9)
        remaining = self._total - done
        eta_s: float | None
        if remaining <= 0:
            eta_s = 0.0
        elif rate > 0:
            eta_s = remaining / rate
        else:
            eta_s = None
        stats: dict[str, Any] = {}
        if self._job_id is not None:
            # Under the run service several sweeps share one /progress
            # surface; the job id keys each line to its submission.
            stats["job_id"] = self._job_id
        stats.update(
            {
                "total": self._total,
                "done": done,
                "completed": completed,
                "failed": failed,
                "cached": cached,
                "retries": retries,
                "executed": executed,
                "elapsed_s": round(elapsed, 3),
                "rate_cells_per_s": round(rate, 3),
                "eta_s": None if eta_s is None else round(eta_s, 3),
            }
        )
        return stats

    def render(self, now: float | None = None) -> str:
        """The current progress text (no trailing newline)."""
        stats = self.stats(now)
        parts = [f"sweep {stats['done']}/{stats['total']} cells"]
        if stats["cached"]:
            parts.append(f"{stats['cached']} cached")
        if stats["failed"]:
            parts.append(f"{stats['failed']} failed")
        if stats["retries"]:
            parts.append(f"{stats['retries']} retries")
        parts.append(f"{stats['rate_cells_per_s']:.1f} cells/s")
        if stats["done"] >= stats["total"]:
            parts.append(f"done in {_format_eta(stats['elapsed_s'])}")
        elif stats["eta_s"] is not None:
            parts.append(f"eta {_format_eta(stats['eta_s'])}")
        else:
            parts.append("eta --")
        return " | ".join(parts)

    def update(self, force: bool = False) -> None:
        """Emit the line if the rate limit allows (or ``force`` is set)."""
        now = time.monotonic()
        if not force and now - self._last_emit < self._min_interval:
            return
        self._last_emit = now
        line = self.render(now)
        if self._tty:
            padded = line.ljust(self._last_width)
            self._last_width = len(line)
            self._stream.write("\r" + padded)
        else:
            self._stream.write(line + "\n")
        self._stream.flush()

    def close(self) -> None:
        """Final forced emit; terminates the in-place line on a TTY."""
        self.update(force=True)
        if self._tty:
            self._stream.write("\n")
            self._stream.flush()
