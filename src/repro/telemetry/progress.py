"""Live one-line sweep progress, fed from a :class:`MetricsRegistry`.

The progress line is a *reader* of the same registry the orchestrator and
dispatchers write into — it owns no state of its own beyond pacing, so it
can never disagree with ``--metrics-out``. On a TTY it redraws in place
with carriage returns; under a pipe (CI logs) it emits plain newline-
terminated lines, rate-limited so a long sweep does not flood the log.
"""

from __future__ import annotations

import sys
import time
from typing import TextIO

from .registry import MetricsRegistry

__all__ = ["ProgressLine"]


def _format_eta(seconds: float) -> str:
    seconds = int(seconds + 0.5)
    hours, rem = divmod(seconds, 3600)
    minutes, secs = divmod(rem, 60)
    return f"{hours}:{minutes:02d}:{secs:02d}"


class ProgressLine:
    """Renders sweep progress (done/total, failures, retries, rate, ETA)."""

    def __init__(
        self,
        total: int,
        registry: MetricsRegistry,
        stream: TextIO | None = None,
        min_interval: float = 0.25,
    ) -> None:
        self._total = total
        self._registry = registry
        self._stream = sys.stderr if stream is None else stream
        try:
            self._tty = bool(self._stream.isatty())
        except (AttributeError, ValueError):
            self._tty = False
        self._min_interval = min_interval
        self._start = time.monotonic()
        self._last_emit = 0.0
        self._last_width = 0

    def render(self, now: float | None = None) -> str:
        """The current progress text (no trailing newline)."""
        if now is None:
            now = time.monotonic()
        reg = self._registry
        completed = reg.total("repro_cells_completed_total")
        failed = reg.total("repro_cells_failed_total")
        cached = reg.total("repro_cells_cached_total")
        retries = reg.total("repro_sweep_retries_total")
        done = int(completed + failed + cached)
        executed = completed + failed
        elapsed = max(now - self._start, 1e-9)
        parts = [f"sweep {done}/{self._total} cells"]
        if cached:
            parts.append(f"{int(cached)} cached")
        parts.append(f"{int(failed)} failed")
        if retries:
            parts.append(f"{int(retries)} retries")
        rate = executed / elapsed
        parts.append(f"{rate:.1f} cells/s")
        remaining = self._total - done
        if remaining <= 0:
            parts.append(f"done in {_format_eta(elapsed)}")
        elif rate > 0:
            parts.append(f"eta {_format_eta(remaining / rate)}")
        else:
            parts.append("eta --")
        return " | ".join(parts)

    def update(self, force: bool = False) -> None:
        """Emit the line if the rate limit allows (or ``force`` is set)."""
        now = time.monotonic()
        if not force and now - self._last_emit < self._min_interval:
            return
        self._last_emit = now
        line = self.render(now)
        if self._tty:
            padded = line.ljust(self._last_width)
            self._last_width = len(line)
            self._stream.write("\r" + padded)
        else:
            self._stream.write(line + "\n")
        self._stream.flush()

    def close(self) -> None:
        """Final forced emit; terminates the in-place line on a TTY."""
        self.update(force=True)
        if self._tty:
            self._stream.write("\n")
            self._stream.flush()
