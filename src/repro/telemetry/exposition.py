"""Prometheus text exposition (version 0.0.4) rendering and checking.

:func:`render_prometheus` turns a registry or snapshot into the plain-text
format every Prometheus scraper understands — the same bytes a future
``/metrics`` endpoint (ROADMAP item 2) will serve. The inverse direction,
:func:`validate_exposition`, is a deliberately small line-format checker
used by the CI smoke test to fail fast on format regressions; it is not a
full PromQL-side parser.

Output is deterministic: families sorted by name, series sorted by label
set, labels sorted by key. Two registries holding equal values render to
identical bytes regardless of insertion order.
"""

from __future__ import annotations

import math
import re
from typing import Union

from .registry import MetricsRegistry
from .snapshot import HistogramData, MetricsSnapshot

__all__ = ["render_prometheus", "validate_exposition"]

_LABEL_ESCAPES = {"\\": r"\\", '"': r"\"", "\n": r"\n"}
_HELP_ESCAPES = {"\\": r"\\", "\n": r"\n"}


def _escape(text: str, table: dict[str, str]) -> str:
    return "".join(table.get(ch, ch) for ch in text)


def _format_value(value: float) -> str:
    if isinstance(value, float):
        if math.isnan(value):
            return "NaN"
        if math.isinf(value):
            return "+Inf" if value > 0 else "-Inf"
        if value.is_integer() and abs(value) < 1e15:
            return str(int(value))
        return repr(value)
    return str(value)


def _format_labels(pairs: tuple[tuple[str, str], ...]) -> str:
    if not pairs:
        return ""
    body = ",".join(
        f'{name}="{_escape(str(value), _LABEL_ESCAPES)}"' for name, value in pairs
    )
    return "{" + body + "}"


def render_prometheus(source: Union[MetricsRegistry, MetricsSnapshot]) -> str:
    """Render a registry or snapshot as Prometheus text format."""
    snapshot = source.snapshot() if isinstance(source, MetricsRegistry) else source
    lines: list[str] = []
    for name in sorted(snapshot.metrics):
        metric = snapshot.metrics[name]
        if metric.get("help"):
            lines.append(f"# HELP {name} {_escape(metric['help'], _HELP_ESCAPES)}")
        lines.append(f"# TYPE {name} {metric['kind']}")
        for key in sorted(metric["series"]):
            data = metric["series"][key]
            if isinstance(data, HistogramData):
                bounds = metric.get("buckets") or []
                cumulative = 0
                for bound, bucket in zip(bounds, data.counts):
                    cumulative += bucket
                    le = key + (("le", _format_value(float(bound))),)
                    lines.append(
                        f"{name}_bucket{_format_labels(le)} {cumulative}"
                    )
                cumulative += data.counts[-1]
                inf_key = key + (("le", "+Inf"),)
                lines.append(f"{name}_bucket{_format_labels(inf_key)} {cumulative}")
                lines.append(f"{name}_sum{_format_labels(key)} {_format_value(data.sum)}")
                lines.append(f"{name}_count{_format_labels(key)} {data.count}")
            else:
                lines.append(f"{name}{_format_labels(key)} {_format_value(data)}")
    return "\n".join(lines) + "\n" if lines else ""


# -- line-format checker (CI smoke) --------------------------------------

_HELP_LINE = re.compile(r"^# HELP ([a-zA-Z_:][a-zA-Z0-9_:]*) .*$")
_TYPE_LINE = re.compile(
    r"^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram|summary|untyped)$"
)
_SAMPLE_LINE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(\{[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\\n]|\\.)*\""
    r"(,[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\\n]|\\.)*\")*\})?"
    r" (NaN|[+-]Inf|[+-]?[0-9]*\.?[0-9]+([eE][+-]?[0-9]+)?)$"
)
_HISTOGRAM_SUFFIXES = ("_bucket", "_sum", "_count")


def validate_exposition(text: str) -> int:
    """Check Prometheus text-format line structure; return the sample count.

    Raises :class:`ValueError` (with the offending line number) on a
    malformed line, an unparseable value, or a sample whose family has no
    preceding ``# TYPE`` declaration.
    """
    types: dict[str, str] = {}
    samples = 0
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            if _HELP_LINE.match(line):
                continue
            match = _TYPE_LINE.match(line)
            if match:
                name, kind = match.group(1), match.group(2)
                if name in types:
                    raise ValueError(f"line {lineno}: duplicate TYPE for {name!r}")
                types[name] = kind
                continue
            raise ValueError(f"line {lineno}: malformed comment line: {line!r}")
        match = _SAMPLE_LINE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: malformed sample line: {line!r}")
        name = match.group(1)
        if name not in types:
            base = next(
                (
                    name[: -len(suffix)]
                    for suffix in _HISTOGRAM_SUFFIXES
                    if name.endswith(suffix)
                    and types.get(name[: -len(suffix)]) in ("histogram", "summary")
                ),
                None,
            )
            if base is None:
                raise ValueError(
                    f"line {lineno}: sample {name!r} has no preceding # TYPE"
                )
        samples += 1
    return samples
