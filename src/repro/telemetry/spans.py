"""Hierarchical span tracing with an ambient, off-by-default seam.

This module is the "where did the time go" pillar of :mod:`repro.telemetry`.
It mirrors the metrics registry contract exactly:

* **Ambient and off by default.**  Probe sites call the module-level
  :func:`span` helper, which consults a :class:`~contextvars.ContextVar`.
  With no tracer installed the helper returns a shared no-op span — the
  instrumented hot paths pay one ContextVar read and a ``None`` check.
  Install a tracer for a scope with :func:`use_tracer`.

* **Monotonic timing, wall-clock anchoring.**  Span starts/durations come
  from :func:`time.perf_counter` relative to the tracer's epoch; the epoch
  itself is stamped once with :func:`time.time` (``epoch_wall``) so logs
  recorded in different processes can be re-based onto a common timeline.

* **By-value snapshots.**  :meth:`SpanTracer.snapshot` produces a
  :class:`SpanLog` — plain dicts and floats, JSON-serializable via
  :meth:`SpanLog.to_dict` — which ships across process boundaries on
  ``CellResult.spans`` exactly like ``MetricsSnapshot`` ships on
  ``CellResult.metrics``.  The parent grafts worker logs under its own
  ``sweep`` span **in canonical cell order**, so the merged timeline is
  deterministic at any ``--jobs``.

Span records are stored flat (index-addressed, ``parent`` pointing at the
enclosing span's index or ``-1`` for roots).  The tracer is bounded:
after ``max_spans`` records further spans are counted in ``dropped``
rather than recorded, so a runaway loop cannot exhaust memory.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Any, Iterator

__all__ = [
    "DEFAULT_MAX_SPANS",
    "Span",
    "SpanLog",
    "SpanTracer",
    "current_tracer",
    "span",
    "use_tracer",
]

#: Per-tracer cap on recorded spans; one sweep cell records a handful of
#: spans per engine round, so this covers ~tens of thousands of rounds.
DEFAULT_MAX_SPANS = 100_000


class Span:
    """A single timed region; use as a context manager.

    Created via :meth:`SpanTracer.span` (or the module-level :func:`span`
    helper).  Entering records the span with its parent resolved from the
    tracer's open-span stack; exiting stamps the duration.
    """

    __slots__ = ("_tracer", "_name", "_labels", "index")

    def __init__(self, tracer: "SpanTracer", name: str, labels: dict[str, Any]):
        self._tracer = tracer
        self._name = name
        self._labels = labels
        self.index: int | None = None

    def __enter__(self) -> "Span":
        self.index = self._tracer._open(self._name, self._labels)
        return self

    def __exit__(self, *exc: object) -> bool:
        self._tracer._close(self.index)
        return False


class _NullSpan:
    """Shared no-op span returned when no tracer is installed."""

    __slots__ = ()
    index = None

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class SpanTracer:
    """Records a bounded, hierarchical log of timed spans."""

    def __init__(self, max_spans: int = DEFAULT_MAX_SPANS):
        if max_spans < 1:
            raise ValueError(f"max_spans must be >= 1, got {max_spans}")
        self.max_spans = int(max_spans)
        self.epoch_wall = time.time()
        self._epoch = time.perf_counter()
        self.records: list[dict[str, Any]] = []
        self.dropped = 0
        self._stack: list[int] = []

    def span(self, name: str, **labels: Any) -> Span:
        """Create a span; enter it (``with tracer.span("x"):``) to record."""
        return Span(self, name, labels)

    def elapsed(self) -> float:
        """Seconds since this tracer's epoch (monotonic)."""
        return time.perf_counter() - self._epoch

    def __len__(self) -> int:
        return len(self.records)

    # -- internal: called by Span.__enter__/__exit__ ----------------------

    def _open(self, name: str, labels: dict[str, Any]) -> int | None:
        if len(self.records) >= self.max_spans:
            self.dropped += 1
            self._stack.append(-1)
            return None
        parent = -1
        for open_index in reversed(self._stack):
            if open_index >= 0:
                parent = open_index
                break
        index = len(self.records)
        self.records.append(
            {
                "name": str(name),
                "labels": {key: str(value) for key, value in sorted(labels.items())},
                "start": time.perf_counter() - self._epoch,
                "duration": None,
                "parent": parent,
            }
        )
        self._stack.append(index)
        return index

    def _close(self, index: int | None) -> None:
        if self._stack:
            self._stack.pop()
        if index is not None:
            record = self.records[index]
            record["duration"] = time.perf_counter() - self._epoch - record["start"]

    def snapshot(self) -> "SpanLog":
        """A by-value copy of everything recorded so far."""
        return SpanLog(
            pid=os.getpid(),
            epoch_wall=self.epoch_wall,
            records=[dict(record, labels=dict(record["labels"])) for record in self.records],
            dropped=self.dropped,
        )


@dataclass
class SpanLog:
    """Plain-data span log: JSON-serializable, mergeable across processes.

    ``records`` is a flat list; each record has ``name``, ``labels``
    (str→str), ``start`` (seconds from this log's epoch), ``duration``
    (seconds, or ``None`` if the span never closed), ``parent`` (index
    into ``records``, ``-1`` for roots), and — on records grafted in from
    another process — ``pid``.
    """

    SCHEMA = 1

    pid: int = 0
    epoch_wall: float = 0.0
    records: list[dict[str, Any]] = field(default_factory=list)
    dropped: int = 0

    def __len__(self) -> int:
        return len(self.records)

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": self.SCHEMA,
            "pid": self.pid,
            "epoch_wall": self.epoch_wall,
            "dropped": self.dropped,
            "records": [dict(record, labels=dict(record["labels"])) for record in self.records],
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "SpanLog":
        schema = payload.get("schema")
        if schema != cls.SCHEMA:
            raise ValueError(f"unsupported span log schema: {schema!r}")
        return cls(
            pid=int(payload.get("pid", 0)),
            epoch_wall=float(payload.get("epoch_wall", 0.0)),
            records=[dict(record, labels=dict(record["labels"])) for record in payload["records"]],
            dropped=int(payload.get("dropped", 0)),
        )

    def graft(self, other: "SpanLog", parent: int = -1) -> None:
        """Append ``other``'s records under ``parent`` (an index here, or -1).

        Start times are re-based onto this log's wall epoch so spans from
        different processes land on one timeline; each grafted record is
        tagged with the originating ``pid``.  Call in canonical cell order
        to keep merged logs deterministic across ``--jobs``.
        """
        offset = len(self.records)
        shift = other.epoch_wall - self.epoch_wall
        for record in other.records:
            grafted = dict(record, labels=dict(record["labels"]))
            grafted["start"] = record["start"] + shift
            grafted["parent"] = record["parent"] + offset if record["parent"] >= 0 else parent
            grafted["pid"] = record.get("pid", other.pid)
            self.records.append(grafted)
        self.dropped += other.dropped

    def roots(self) -> list[int]:
        return [index for index, record in enumerate(self.records) if record["parent"] < 0]

    def children(self, index: int) -> list[int]:
        return [child for child, record in enumerate(self.records) if record["parent"] == index]

    def tree(self) -> list[tuple]:
        """Timing-free structural view: nested ``(name, labels, children)``.

        Two sweeps of the same spec produce equal trees regardless of
        ``--jobs`` or wall-clock jitter — the determinism contract the
        tests assert.
        """
        child_map: dict[int, list[int]] = {}
        roots: list[int] = []
        for index, record in enumerate(self.records):
            parent = record["parent"]
            if parent < 0:
                roots.append(index)
            else:
                child_map.setdefault(parent, []).append(index)

        def build(index: int) -> tuple:
            record = self.records[index]
            return (
                record["name"],
                tuple(sorted(record["labels"].items())),
                tuple(build(child) for child in child_map.get(index, [])),
            )

        return [build(index) for index in roots]


# -- ambient seam ---------------------------------------------------------

_ACTIVE: ContextVar[SpanTracer | None] = ContextVar("repro_span_tracer", default=None)


def current_tracer() -> SpanTracer | None:
    """The ambient tracer, or ``None`` when tracing is off (the default)."""
    return _ACTIVE.get()


@contextmanager
def use_tracer(tracer: SpanTracer) -> Iterator[SpanTracer]:
    """Install ``tracer`` as the ambient tracer for the ``with`` scope."""
    token = _ACTIVE.set(tracer)
    try:
        yield tracer
    finally:
        _ACTIVE.reset(token)


def span(name: str, **labels: Any) -> Span | _NullSpan:
    """Open a span on the ambient tracer; a shared no-op when tracing is off."""
    tracer = _ACTIVE.get()
    if tracer is None:
        return _NULL_SPAN
    return Span(tracer, name, labels)
