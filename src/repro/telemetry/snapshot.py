"""Snapshot value-object for metrics: JSON round-trip and deterministic merge.

A :class:`MetricsSnapshot` is the wire format of telemetry: worker
processes attach ``registry.snapshot().to_dict()`` to each
:class:`~repro.sweep.runner.CellResult`, the parent rebuilds them with
:meth:`MetricsSnapshot.from_dict` and folds them together in canonical
cell order. Merging is plain addition per series (bucket-wise for
histograms), so it is associative and commutative up to float rounding;
ordering the merges makes the aggregate byte-identical at any worker
count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = ["HistogramData", "MetricsSnapshot", "SeriesKey", "series_key"]

#: Canonical hashable identity of one labeled series: sorted (name, value) pairs.
SeriesKey = tuple[tuple[str, str], ...]


def series_key(labels: dict[str, str]) -> SeriesKey:
    return tuple(sorted(labels.items()))


@dataclass
class HistogramData:
    """Value of one histogram series: per-bucket counts (last slot is +Inf)."""

    counts: list[int]
    sum: float
    count: int


@dataclass
class MetricsSnapshot:
    """Point-in-time copy of a registry's series, detached from it.

    ``metrics`` maps family name to ``{"kind", "help", "buckets", "series"}``
    where ``series`` maps a :data:`SeriesKey` to a number (counter/gauge)
    or :class:`HistogramData`.
    """

    metrics: dict[str, dict[str, Any]] = field(default_factory=dict)

    SCHEMA = 1

    # -- JSON round-trip -------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """Canonical JSON-able form: families and series in sorted order."""
        out = []
        for name in sorted(self.metrics):
            metric = self.metrics[name]
            series = []
            for key in sorted(metric["series"]):
                data = metric["series"][key]
                entry: dict[str, Any] = {"labels": dict(key)}
                if isinstance(data, HistogramData):
                    entry["counts"] = list(data.counts)
                    entry["sum"] = data.sum
                    entry["count"] = data.count
                else:
                    entry["value"] = data
                series.append(entry)
            family: dict[str, Any] = {
                "name": name,
                "kind": metric["kind"],
                "help": metric.get("help", ""),
                "series": series,
            }
            if metric.get("buckets"):
                family["buckets"] = list(metric["buckets"])
            out.append(family)
        return {"schema": self.SCHEMA, "metrics": out}

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "MetricsSnapshot":
        schema = payload.get("schema")
        if schema != cls.SCHEMA:
            raise ValueError(f"unsupported metrics snapshot schema: {schema!r}")
        snap = cls()
        for family in payload.get("metrics", []):
            series: dict[SeriesKey, float | HistogramData] = {}
            for entry in family.get("series", []):
                key = series_key(entry.get("labels", {}))
                if "counts" in entry:
                    series[key] = HistogramData(
                        counts=list(entry["counts"]),
                        sum=entry["sum"],
                        count=entry["count"],
                    )
                else:
                    series[key] = entry["value"]
            snap.metrics[family["name"]] = {
                "kind": family["kind"],
                "help": family.get("help", ""),
                "buckets": list(family["buckets"]) if family.get("buckets") else None,
                "series": series,
            }
        return snap

    # -- merge -----------------------------------------------------------

    def merge(self, other: "MetricsSnapshot") -> "MetricsSnapshot":
        """Return a new snapshot: per-series sums of ``self`` and ``other``."""
        merged = MetricsSnapshot()
        for source in (self, other):
            for name, metric in source.metrics.items():
                target = merged.metrics.get(name)
                if target is None:
                    target = {
                        "kind": metric["kind"],
                        "help": metric.get("help", ""),
                        "buckets": list(metric["buckets"]) if metric.get("buckets") else None,
                        "series": {},
                    }
                    merged.metrics[name] = target
                elif target["kind"] != metric["kind"]:
                    raise ValueError(
                        f"cannot merge metric {name!r}: "
                        f"{target['kind']} vs {metric['kind']}"
                    )
                for key, data in metric["series"].items():
                    existing = target["series"].get(key)
                    if existing is None:
                        if isinstance(data, HistogramData):
                            target["series"][key] = HistogramData(
                                counts=list(data.counts), sum=data.sum, count=data.count
                            )
                        else:
                            target["series"][key] = data
                    elif isinstance(data, HistogramData):
                        if len(existing.counts) != len(data.counts):
                            raise ValueError(
                                f"histogram {name!r} merge with mismatched bucket count"
                            )
                        existing.counts = [
                            a + b for a, b in zip(existing.counts, data.counts)
                        ]
                        existing.sum += data.sum
                        existing.count += data.count
                    else:
                        target["series"][key] = existing + data
        return merged

    # -- reading / filtering ---------------------------------------------

    def value(self, name: str, **labels: str) -> float:
        """Value of one counter/gauge series (0 if absent)."""
        metric = self.metrics.get(name)
        if metric is None:
            return 0
        data = metric["series"].get(series_key({k: str(v) for k, v in labels.items()}))
        if data is None or isinstance(data, HistogramData):
            return 0
        return data

    def total(self, name: str) -> float:
        """Sum of a counter/gauge family across all label sets (0 if absent)."""
        metric = self.metrics.get(name)
        if metric is None or metric["kind"] == "histogram":
            return 0
        return sum(metric["series"].values())

    def select(
        self, predicate: Callable[[str, str], bool]
    ) -> "MetricsSnapshot":
        """Sub-snapshot of families where ``predicate(name, kind)`` holds."""
        out = MetricsSnapshot()
        for name, metric in self.metrics.items():
            if predicate(name, metric["kind"]):
                out.metrics[name] = metric
        return out
