"""Chrome trace-event export and per-worker timeline rendering.

:func:`chrome_trace` converts a merged :class:`~repro.telemetry.spans.SpanLog`
(plus optional structured events) into the Chrome trace-event JSON format —
the ``{"traceEvents": [...]}`` shape that ``chrome://tracing`` and Perfetto
(https://ui.perfetto.dev) load directly:

* every closed span becomes a ``"ph": "X"`` complete event (microsecond
  ``ts``/``dur``, ``pid`` = originating worker process, one track per
  process — the viewers nest overlapping X events by containment);
* every structured event becomes a ``"ph": "i"`` instant event;
* ``"ph": "M"`` metadata names each process track (``sweep`` for the
  parent, ``worker-<pid>`` for workers).

:func:`timeline_lanes` / :func:`render_timeline` consume that same trace
dict to produce the ``repro timeline`` CLI views: a JSON lane structure
and a fixed-width ASCII chart with one lane per process, top-level spans
drawn as bars.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable

from .spans import SpanLog

__all__ = [
    "chrome_trace",
    "render_timeline",
    "timeline_lanes",
    "write_chrome_trace",
]


def chrome_trace(
    spans: SpanLog | None,
    events: Iterable[dict[str, Any]] = (),
    *,
    base: float | None = None,
) -> dict[str, Any]:
    """Build a Chrome trace-event dict from a span log and/or event list.

    ``base`` is the wall-clock origin for ``ts`` values; it defaults to the
    span log's epoch (or the earliest event timestamp when there are no
    spans), so traces start near t=0.
    """
    events = list(events)
    if base is None:
        if spans is not None:
            base = spans.epoch_wall
        elif events:
            base = min(float(event.get("ts", 0.0)) for event in events)
        else:
            base = 0.0

    trace_events: list[dict[str, Any]] = []
    seen_pids: dict[int, str] = {}
    root_pid = spans.pid if spans is not None else 0

    if spans is not None:
        for record in spans.records:
            if record["duration"] is None:
                continue  # never closed (crash/timeout) — no extent to draw
            pid = int(record.get("pid", spans.pid))
            if pid not in seen_pids:
                seen_pids[pid] = "sweep" if pid == root_pid else f"worker-{pid}"
            start_wall = spans.epoch_wall + record["start"]
            trace_events.append(
                {
                    "name": record["name"],
                    "cat": "repro",
                    "ph": "X",
                    "ts": round((start_wall - base) * 1e6, 3),
                    "dur": round(record["duration"] * 1e6, 3),
                    "pid": pid,
                    "tid": 0,
                    "args": dict(record["labels"]),
                }
            )

    for event in events:
        args = {key: value for key, value in event.items() if key not in ("seq", "ts", "kind")}
        pid = root_pid
        if pid not in seen_pids:
            seen_pids[pid] = "sweep"
        trace_events.append(
            {
                "name": str(event.get("kind", "event")),
                "cat": "repro.event",
                "ph": "i",
                "s": "g",
                "ts": round((float(event.get("ts", base)) - base) * 1e6, 3),
                "pid": pid,
                "tid": 0,
                "args": args,
            }
        )

    metadata = [
        {"name": "process_name", "ph": "M", "pid": pid, "tid": 0, "args": {"name": label}}
        for pid, label in sorted(seen_pids.items())
    ]
    return {
        "traceEvents": metadata + trace_events,
        "displayTimeUnit": "ms",
        "otherData": {"generator": "repro.telemetry", "span_schema": SpanLog.SCHEMA},
    }


def write_chrome_trace(
    path: str | Path,
    spans: SpanLog | None,
    events: Iterable[dict[str, Any]] = (),
) -> Path:
    """Write :func:`chrome_trace` output as JSON; returns the path."""
    target = Path(path)
    if target.parent != Path(""):
        target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(chrome_trace(spans, events), indent=2) + "\n", encoding="utf-8")
    return target


def timeline_lanes(trace: dict[str, Any]) -> list[dict[str, Any]]:
    """Group a trace dict into per-process lanes with nesting depths.

    Returns one dict per process (``sweep`` lane first, then workers by
    pid): ``{"pid", "label", "spans": [...], "instants": [...]}`` where
    each span carries ``ts_s``/``dur_s`` (seconds from trace origin) and
    ``depth`` (0 for top-level spans, +1 per enclosing span).
    """
    labels: dict[int, str] = {}
    spans_by_pid: dict[int, list[dict[str, Any]]] = {}
    instants_by_pid: dict[int, list[dict[str, Any]]] = {}
    for entry in trace.get("traceEvents", []):
        pid = int(entry.get("pid", 0))
        phase = entry.get("ph")
        if phase == "M" and entry.get("name") == "process_name":
            labels[pid] = entry.get("args", {}).get("name", str(pid))
        elif phase == "X":
            spans_by_pid.setdefault(pid, []).append(entry)
        elif phase == "i":
            instants_by_pid.setdefault(pid, []).append(entry)

    lanes: list[dict[str, Any]] = []
    all_pids = sorted(set(spans_by_pid) | set(instants_by_pid))
    ordered = sorted(all_pids, key=lambda pid: (labels.get(pid, "") != "sweep", pid))
    for pid in ordered:
        spans = sorted(spans_by_pid.get(pid, []), key=lambda e: (e["ts"], -e["dur"]))
        lane_spans: list[dict[str, Any]] = []
        open_ends: list[float] = []  # end times of enclosing spans
        for entry in spans:
            start, end = entry["ts"], entry["ts"] + entry["dur"]
            while open_ends and open_ends[-1] <= start:
                open_ends.pop()
            depth = len(open_ends)
            open_ends.append(end)
            lane_spans.append(
                {
                    "name": entry["name"],
                    "ts_s": round(start / 1e6, 6),
                    "dur_s": round(entry["dur"] / 1e6, 6),
                    "depth": depth,
                    "args": dict(entry.get("args", {})),
                }
            )
        lane_instants = [
            {
                "name": entry["name"],
                "ts_s": round(entry["ts"] / 1e6, 6),
                "args": dict(entry.get("args", {})),
            }
            for entry in sorted(instants_by_pid.get(pid, []), key=lambda e: e["ts"])
        ]
        lanes.append(
            {
                "pid": pid,
                "label": labels.get(pid, str(pid)),
                "spans": lane_spans,
                "instants": lane_instants,
            }
        )
    return lanes


#: Bar glyphs alternate so adjacent spans in a lane stay distinguishable.
_BAR_CHARS = ("#", "=")


def render_timeline(trace: dict[str, Any], width: int = 100) -> str:
    """Render a trace dict as a fixed-width ASCII per-process timeline."""
    width = max(int(width), 20)
    lanes = timeline_lanes(trace)
    extent = 0.0
    for lane in lanes:
        for item in lane["spans"]:
            extent = max(extent, item["ts_s"] + item["dur_s"])
        for item in lane["instants"]:
            extent = max(extent, item["ts_s"])
    if extent <= 0.0 or not lanes:
        return "timeline: no spans recorded\n"

    label_width = max(len(lane["label"]) for lane in lanes)
    chart_width = max(width - label_width - 3, 10)
    scale = chart_width / extent

    def column(ts: float) -> int:
        return min(int(ts * scale), chart_width - 1)

    lines = [f"timeline: {extent:.3f}s total, {chart_width} cols ({extent / chart_width:.4f}s/col)"]
    for lane in lanes:
        row = [" "] * chart_width
        top_level = [item for item in lane["spans"] if item["depth"] == 0]
        for slot, item in enumerate(top_level):
            begin = column(item["ts_s"])
            end = max(column(item["ts_s"] + item["dur_s"]), begin)
            glyph = _BAR_CHARS[slot % len(_BAR_CHARS)]
            for col in range(begin, end + 1):
                row[col] = glyph
        for item in lane["instants"]:
            row[column(item["ts_s"])] = "!"
        busy = sum(item["dur_s"] for item in top_level)
        summary = f"{len(lane['spans'])} spans, busy {min(busy / extent, 1.0):6.1%}"
        lines.append(f"{lane['label']:>{label_width}} |{''.join(row)}| {summary}")
    lines.append(f"{'':>{label_width}} |{'-' * chart_width}|")
    lines.append(f"{'':>{label_width}}  0{'s':<{max(chart_width - 10, 1)}}{extent:8.3f}s")
    return "\n".join(lines) + "\n"
