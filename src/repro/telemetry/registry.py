"""Dependency-free metrics registry: counters, gauges, histograms, timers.

Design constraints (shared with the sweep orchestrator):

* **No locks on the hot path.** A registry is owned by one thread of one
  process. Cross-process aggregation happens by value: workers snapshot
  their registry (:meth:`MetricsRegistry.snapshot`) and the parent merges
  the snapshots deterministically (:meth:`MetricsRegistry.merge_snapshot`)
  — the same ship-results-not-state pattern the sweep layer already uses
  for payloads.
* **Null overhead when off.** Instrumented code asks
  :func:`current_registry` once and skips all metric work when it returns
  ``None``; no registry is ever installed unless a caller opts in with
  :func:`use_registry`.
* **Ambient, not global.** The active registry lives in a
  :class:`contextvars.ContextVar`, so worker processes and helper threads
  start clean instead of inheriting (or corrupting) the parent's registry.

Metric and label names follow Prometheus conventions so
:func:`repro.telemetry.exposition.render_prometheus` can emit the text
format verbatim.
"""

from __future__ import annotations

import bisect
import contextlib
import contextvars
import re
import time
from typing import Iterator

from .snapshot import HistogramData, MetricsSnapshot, SeriesKey, series_key

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "current_registry",
    "use_registry",
]

_METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default histogram buckets (seconds), tuned for cell/run wall-clock:
#: sub-millisecond engine runs through multi-minute sweep cells.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    30.0,
    60.0,
    120.0,
    300.0,
)


class Counter:
    """Monotonically non-decreasing numeric total."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter increments must be >= 0, got {amount}")
        self.value += amount


class Gauge:
    """Instantaneous numeric value that can go up and down."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def dec(self, amount: float = 1) -> None:
        self.value -= amount


class Histogram:
    """Cumulative histogram with fixed upper bounds (plus implicit +Inf)."""

    __slots__ = ("bounds", "counts", "sum", "count")

    def __init__(self, bounds: tuple[float, ...]) -> None:
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # last slot is the +Inf bucket
        self.sum: float = 0.0
        self.count: int = 0

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1


class _Timer:
    """Context manager observing elapsed seconds into a histogram."""

    __slots__ = ("_histogram", "_start")

    def __init__(self, histogram: Histogram) -> None:
        self._histogram = histogram

    def __enter__(self) -> "_Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._histogram.observe(time.perf_counter() - self._start)


class _Family:
    """One named metric family: kind, help text, labeled children."""

    __slots__ = ("kind", "help", "bounds", "children")

    def __init__(self, kind: str, help: str, bounds: tuple[float, ...] | None) -> None:
        self.kind = kind
        self.help = help
        self.bounds = bounds
        self.children: dict[SeriesKey, Counter | Gauge | Histogram] = {}


def _validate_names(name: str, labels: dict[str, str]) -> None:
    if not _METRIC_NAME.match(name):
        raise ValueError(f"invalid metric name: {name!r}")
    for label in labels:
        if not _LABEL_NAME.match(label) or label.startswith("__"):
            raise ValueError(f"invalid label name: {label!r}")


class MetricsRegistry:
    """Holds metric families and hands out labeled children.

    Children are plain attribute-bearing objects; call sites on hot paths
    should fetch them once (``counter = registry.counter(...)``) and then
    call ``inc``/``observe`` directly.
    """

    def __init__(self) -> None:
        self._families: dict[str, _Family] = {}

    def _child(
        self,
        name: str,
        kind: str,
        help: str,
        labels: dict[str, str],
        bounds: tuple[float, ...] | None = None,
    ) -> Counter | Gauge | Histogram:
        family = self._families.get(name)
        if family is None:
            _validate_names(name, labels)
            family = _Family(kind, help, bounds)
            self._families[name] = family
        else:
            if family.kind != kind:
                raise ValueError(
                    f"metric {name!r} already registered as {family.kind}, not {kind}"
                )
            if kind == "histogram" and bounds is not None and family.bounds != bounds:
                raise ValueError(f"metric {name!r} re-registered with different buckets")
            if help and not family.help:
                family.help = help
        key = series_key(labels)
        child = family.children.get(key)
        if child is None:
            if kind == "counter":
                child = Counter()
            elif kind == "gauge":
                child = Gauge()
            else:
                child = Histogram(family.bounds or DEFAULT_BUCKETS)
            family.children[key] = child
        return child

    def counter(self, name: str, help: str = "", **labels: str) -> Counter:
        return self._child(name, "counter", help, _str_labels(labels))  # type: ignore[return-value]

    def gauge(self, name: str, help: str = "", **labels: str) -> Gauge:
        return self._child(name, "gauge", help, _str_labels(labels))  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: tuple[float, ...] | None = None,
        **labels: str,
    ) -> Histogram:
        bounds = _check_bounds(buckets) if buckets is not None else DEFAULT_BUCKETS
        return self._child(name, "histogram", help, _str_labels(labels), bounds)  # type: ignore[return-value]

    def timer(
        self,
        name: str,
        help: str = "",
        buckets: tuple[float, ...] | None = None,
        **labels: str,
    ) -> _Timer:
        """Span context manager: observes elapsed seconds into ``name``."""
        return _Timer(self.histogram(name, help, buckets, **labels))

    # -- reading ---------------------------------------------------------

    def value(self, name: str, **labels: str) -> float:
        """Current value of one counter/gauge series (0 if absent)."""
        family = self._families.get(name)
        if family is None:
            return 0
        child = family.children.get(series_key(_str_labels(labels)))
        if child is None or isinstance(child, Histogram):
            return 0
        return child.value

    def total(self, name: str) -> float:
        """Sum of a counter/gauge family across all label sets (0 if absent)."""
        family = self._families.get(name)
        if family is None or family.kind == "histogram":
            return 0
        return sum(child.value for child in family.children.values())  # type: ignore[union-attr]

    # -- snapshot / merge ------------------------------------------------

    def snapshot(self) -> MetricsSnapshot:
        """Immutable-by-copy view of every series, for shipping or rendering."""
        snap = MetricsSnapshot()
        for name, family in self._families.items():
            series: dict[SeriesKey, float | HistogramData] = {}
            for key, child in family.children.items():
                if isinstance(child, Histogram):
                    series[key] = HistogramData(
                        counts=list(child.counts), sum=child.sum, count=child.count
                    )
                else:
                    series[key] = child.value
            snap.metrics[name] = {
                "kind": family.kind,
                "help": family.help,
                "buckets": list(family.bounds) if family.bounds else None,
                "series": series,
            }
        return snap

    def merge_snapshot(self, snapshot: MetricsSnapshot) -> None:
        """Fold a snapshot into this registry.

        Counters and gauges add; histograms add bucket-wise (bounds must
        match). Addition makes the operation associative and commutative
        up to float rounding — callers that need byte-identical aggregates
        must merge in a canonical order (the sweep orchestrator merges in
        cell order, never completion order).
        """
        for name, metric in snapshot.metrics.items():
            kind = metric["kind"]
            bounds = tuple(metric["buckets"]) if metric.get("buckets") else None
            for key, data in metric["series"].items():
                labels = dict(key)
                child = self._child(name, kind, metric.get("help", ""), labels, bounds)
                if kind == "histogram":
                    assert isinstance(child, Histogram) and isinstance(data, HistogramData)
                    if len(child.counts) != len(data.counts):
                        raise ValueError(
                            f"histogram {name!r} merge with mismatched bucket count"
                        )
                    for i, c in enumerate(data.counts):
                        child.counts[i] += c
                    child.sum += data.sum
                    child.count += data.count
                else:
                    child.value += data  # type: ignore[union-attr, operator]


def _str_labels(labels: dict[str, object]) -> dict[str, str]:
    return {key: str(value) for key, value in labels.items()}


def _check_bounds(buckets: tuple[float, ...]) -> tuple[float, ...]:
    bounds = tuple(float(b) for b in buckets)
    if not bounds or any(b >= c for b, c in zip(bounds, bounds[1:])):
        raise ValueError("histogram buckets must be strictly increasing and non-empty")
    return bounds


# -- ambient registry ----------------------------------------------------

_ACTIVE: contextvars.ContextVar[MetricsRegistry | None] = contextvars.ContextVar(
    "repro_metrics_registry", default=None
)


def current_registry() -> MetricsRegistry | None:
    """The ambient registry, or ``None`` when telemetry is off (the default)."""
    return _ACTIVE.get()


@contextlib.contextmanager
def use_registry(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Install ``registry`` as the ambient registry for the enclosed block.

    Context-local: helper threads and worker processes spawned inside the
    block do *not* inherit it (each starts with telemetry off), which is
    exactly what the sweep layer wants — workers build their own registry
    and ship snapshots back by value.
    """
    token = _ACTIVE.set(registry)
    try:
        yield registry
    finally:
        _ACTIVE.reset(token)
