"""Dependency-free HTTP observability endpoint (stdlib ``http.server``).

:class:`ObservabilityServer` runs a :class:`~http.server.ThreadingHTTPServer`
on a daemon thread and serves three routes:

* ``/metrics``  — Prometheus text exposition 0.0.4 of the attached
  registry's current snapshot (the same bytes as ``--metrics-out``);
* ``/healthz``  — liveness probe, always ``ok``;
* ``/progress`` — JSON mirror of the sweep :class:`ProgressLine` stats
  (done/total, cached/failed/retries, rate, ETA) when one is attached.

Used two ways: ``repro serve-metrics`` runs it as a foreground exporter
(optionally seeded from a recorded snapshot), and ``repro sweep
--metrics-port`` attaches it to a *live* sweep so the run can be scraped
while it executes.

Thread-safety note: the metrics registry is deliberately lock-free (the
owning thread mutates it; the hot path must stay cheap).  A scrape that
races a family registration can hit a transient ``RuntimeError`` from
dict iteration — the handler retries a few times and falls back to the
last good snapshot rather than poisoning the scrape.  Sample *values* are
plain float reads, so a scrape is always a coherent text page even while
counters move.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable

from .exposition import render_prometheus
from .registry import MetricsRegistry
from .snapshot import MetricsSnapshot

__all__ = ["ObservabilityServer", "RouteError", "STREAMED"]

#: Sentinel a route handler returns after writing its own response bytes
#: directly to the connection (e.g. a chunked SSE stream) — tells the
#: request handler that nothing more should be sent.
STREAMED = object()

#: Snapshot attempts before falling back to the last good snapshot.
_SNAPSHOT_RETRIES = 8

_INDEX_BODY = "\n".join(
    [
        "repro observability endpoint",
        "  /metrics   Prometheus text exposition (0.0.4)",
        "  /healthz   liveness probe",
        "  /progress  sweep progress (JSON)",
        "",
    ]
)


class ObservabilityServer:
    """Serves ``/metrics``, ``/healthz``, and ``/progress`` over HTTP."""

    def __init__(
        self,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        registry: MetricsRegistry | None = None,
        progress: Callable[[], dict[str, Any]] | None = None,
        refresh: Callable[[], None] | None = None,
    ):
        self._host = host
        self._requested_port = int(port)
        self._registry = registry
        self._progress = progress
        self._refresh = refresh
        self._httpd: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None
        self._last_snapshot: MetricsSnapshot | None = None

    def attach(
        self,
        registry: MetricsRegistry | None = None,
        progress: Callable[[], dict[str, Any]] | None = None,
    ) -> None:
        """Point the server at a (new) registry and/or progress source."""
        if registry is not None:
            self._registry = registry
        if progress is not None:
            self._progress = progress

    @property
    def running(self) -> bool:
        return self._httpd is not None

    @property
    def port(self) -> int:
        """The bound port once started (resolves ``port=0`` to the real one)."""
        if self._httpd is not None:
            return self._httpd.server_address[1]
        return self._requested_port

    def url(self, path: str = "/metrics") -> str:
        return f"http://{self._host}:{self.port}{path}"

    def start(self) -> int:
        """Bind and serve on a daemon thread; idempotent. Returns the port."""
        if self._httpd is not None:
            return self.port
        handler = _make_handler(self)
        self._httpd = ThreadingHTTPServer((self._host, self._requested_port), handler)
        self._httpd.daemon_threads = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-observability",
            daemon=True,
        )
        self._thread.start()
        return self.port

    def stop(self) -> None:
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._httpd = None
        self._thread = None

    def __enter__(self) -> "ObservabilityServer":
        self.start()
        return self

    def __exit__(self, *exc: object) -> None:
        self.stop()

    # -- routing (called from handler threads) ----------------------------

    def handle_route(
        self,
        method: str,
        path: str,
        query: str,
        body: bytes,
        handler: BaseHTTPRequestHandler,
    ) -> tuple[int, str, str] | object | None:
        """Resolve one request to ``(status, content_type, body)``.

        The overridable seam subclasses (the run service) extend with their
        own routes, falling back to ``super()`` for these. Return ``None``
        for "no such route" (the handler sends 404), or :data:`STREAMED`
        after writing a response directly to ``handler`` (long-lived
        streams that outlive this call's framing, e.g. SSE).
        """
        if method != "GET":
            return None
        if path == "/metrics":
            return 200, "text/plain; version=0.0.4; charset=utf-8", self.metrics_text()
        if path in ("/healthz", "/health"):
            return 200, "text/plain; charset=utf-8", "ok\n"
        if path == "/progress":
            body_text = json.dumps(self.progress_json(), sort_keys=True) + "\n"
            return 200, "application/json", body_text
        if path in ("/", "/index.html"):
            return 200, "text/plain; charset=utf-8", self.index_text()
        return None

    def index_text(self) -> str:
        """The ``/`` route-listing body; subclasses append their routes."""
        return _INDEX_BODY

    # -- route bodies (called from handler threads) -----------------------

    def metrics_text(self) -> str:
        if self._refresh is not None:
            self._refresh()
        registry = self._registry
        if registry is None:
            return ""
        for _ in range(_SNAPSHOT_RETRIES):
            try:
                snapshot = registry.snapshot()
            except RuntimeError:
                continue  # raced a family registration on the owning thread
            self._last_snapshot = snapshot
            return render_prometheus(snapshot)
        if self._last_snapshot is not None:
            return render_prometheus(self._last_snapshot)
        return ""

    def progress_json(self) -> dict[str, Any]:
        source = self._progress
        if source is None:
            return {"active": False}
        for _ in range(_SNAPSHOT_RETRIES):
            try:
                stats = source()
            except RuntimeError:
                continue
            return {"active": True, **stats}
        return {"active": False}


def _make_handler(server: ObservabilityServer) -> type[BaseHTTPRequestHandler]:
    class Handler(BaseHTTPRequestHandler):
        server_version = "repro-observability/1"

        def _dispatch(self, method: str) -> None:
            path, _, query = self.path.partition("?")
            body = b""
            length = self.headers.get("Content-Length")
            if length:
                try:
                    body = self.rfile.read(int(length))
                except (ValueError, OSError):
                    body = b""
            try:
                route_method = "GET" if method == "HEAD" else method
                outcome = server.handle_route(route_method, path, query, body, self)
            except RouteError as exc:
                outcome = exc.response()
            if outcome is STREAMED:
                return
            if outcome is None:
                outcome = (404, "text/plain; charset=utf-8", "not found\n")
            status, content_type, text = outcome  # type: ignore[misc]
            payload = text.encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(payload)))
            self.end_headers()
            if method != "HEAD":
                self.wfile.write(payload)

        def do_GET(self) -> None:  # noqa: N802 - http.server API
            self._dispatch("GET")

        def do_POST(self) -> None:  # noqa: N802 - http.server API
            self._dispatch("POST")

        def do_HEAD(self) -> None:  # noqa: N802 - http.server API
            self._dispatch("HEAD")

        def log_message(self, *args: object) -> None:
            pass  # scrapes must not pollute the sweep's stderr progress line

    return Handler


class RouteError(Exception):
    """Raise from inside a route body to short-circuit to an error reply."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status
        self.message = message

    def response(self) -> tuple[int, str, str]:
        body = json.dumps({"error": self.message}, sort_keys=True) + "\n"
        return self.status, "application/json", body
