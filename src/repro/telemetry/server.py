"""Dependency-free HTTP observability endpoint (stdlib ``http.server``).

:class:`ObservabilityServer` runs a :class:`~http.server.ThreadingHTTPServer`
on a daemon thread and serves three routes:

* ``/metrics``  — Prometheus text exposition 0.0.4 of the attached
  registry's current snapshot (the same bytes as ``--metrics-out``);
* ``/healthz``  — liveness probe, always ``ok``;
* ``/progress`` — JSON mirror of the sweep :class:`ProgressLine` stats
  (done/total, cached/failed/retries, rate, ETA) when one is attached.

Used two ways: ``repro serve-metrics`` runs it as a foreground exporter
(optionally seeded from a recorded snapshot), and ``repro sweep
--metrics-port`` attaches it to a *live* sweep so the run can be scraped
while it executes.

Thread-safety note: the metrics registry is deliberately lock-free (the
owning thread mutates it; the hot path must stay cheap).  A scrape that
races a family registration can hit a transient ``RuntimeError`` from
dict iteration — the handler retries a few times and falls back to the
last good snapshot rather than poisoning the scrape.  Sample *values* are
plain float reads, so a scrape is always a coherent text page even while
counters move.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable

from .exposition import render_prometheus
from .registry import MetricsRegistry
from .snapshot import MetricsSnapshot

__all__ = ["ObservabilityServer"]

#: Snapshot attempts before falling back to the last good snapshot.
_SNAPSHOT_RETRIES = 8

_INDEX_BODY = "\n".join(
    [
        "repro observability endpoint",
        "  /metrics   Prometheus text exposition (0.0.4)",
        "  /healthz   liveness probe",
        "  /progress  sweep progress (JSON)",
        "",
    ]
)


class ObservabilityServer:
    """Serves ``/metrics``, ``/healthz``, and ``/progress`` over HTTP."""

    def __init__(
        self,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        registry: MetricsRegistry | None = None,
        progress: Callable[[], dict[str, Any]] | None = None,
        refresh: Callable[[], None] | None = None,
    ):
        self._host = host
        self._requested_port = int(port)
        self._registry = registry
        self._progress = progress
        self._refresh = refresh
        self._httpd: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None
        self._last_snapshot: MetricsSnapshot | None = None

    def attach(
        self,
        registry: MetricsRegistry | None = None,
        progress: Callable[[], dict[str, Any]] | None = None,
    ) -> None:
        """Point the server at a (new) registry and/or progress source."""
        if registry is not None:
            self._registry = registry
        if progress is not None:
            self._progress = progress

    @property
    def running(self) -> bool:
        return self._httpd is not None

    @property
    def port(self) -> int:
        """The bound port once started (resolves ``port=0`` to the real one)."""
        if self._httpd is not None:
            return self._httpd.server_address[1]
        return self._requested_port

    def url(self, path: str = "/metrics") -> str:
        return f"http://{self._host}:{self.port}{path}"

    def start(self) -> int:
        """Bind and serve on a daemon thread; idempotent. Returns the port."""
        if self._httpd is not None:
            return self.port
        handler = _make_handler(self)
        self._httpd = ThreadingHTTPServer((self._host, self._requested_port), handler)
        self._httpd.daemon_threads = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-observability",
            daemon=True,
        )
        self._thread.start()
        return self.port

    def stop(self) -> None:
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._httpd = None
        self._thread = None

    def __enter__(self) -> "ObservabilityServer":
        self.start()
        return self

    def __exit__(self, *exc: object) -> None:
        self.stop()

    # -- route bodies (called from handler threads) -----------------------

    def metrics_text(self) -> str:
        if self._refresh is not None:
            self._refresh()
        registry = self._registry
        if registry is None:
            return ""
        for _ in range(_SNAPSHOT_RETRIES):
            try:
                snapshot = registry.snapshot()
            except RuntimeError:
                continue  # raced a family registration on the owning thread
            self._last_snapshot = snapshot
            return render_prometheus(snapshot)
        if self._last_snapshot is not None:
            return render_prometheus(self._last_snapshot)
        return ""

    def progress_json(self) -> dict[str, Any]:
        source = self._progress
        if source is None:
            return {"active": False}
        for _ in range(_SNAPSHOT_RETRIES):
            try:
                stats = source()
            except RuntimeError:
                continue
            return {"active": True, **stats}
        return {"active": False}


def _make_handler(server: ObservabilityServer) -> type[BaseHTTPRequestHandler]:
    class Handler(BaseHTTPRequestHandler):
        server_version = "repro-observability/1"

        def do_GET(self) -> None:  # noqa: N802 - http.server API
            path = self.path.split("?", 1)[0]
            if path == "/metrics":
                body = server.metrics_text()
                content_type = "text/plain; version=0.0.4; charset=utf-8"
                status = 200
            elif path in ("/healthz", "/health"):
                body = "ok\n"
                content_type = "text/plain; charset=utf-8"
                status = 200
            elif path == "/progress":
                body = json.dumps(server.progress_json(), sort_keys=True) + "\n"
                content_type = "application/json"
                status = 200
            elif path in ("/", "/index.html"):
                body = _INDEX_BODY
                content_type = "text/plain; charset=utf-8"
                status = 200
            else:
                body = "not found\n"
                content_type = "text/plain; charset=utf-8"
                status = 404
            payload = body.encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(payload)))
            self.end_headers()
            self.wfile.write(payload)

        def log_message(self, *args: object) -> None:
            pass  # scrapes must not pollute the sweep's stderr progress line

    return Handler
