"""Text rendering and CSV emission for figures and tables."""

from .ascii_grid import (
    DOMAIN_GLYPHS,
    YELLOW_GLYPHS,
    render_batch_trace,
    render_domain_map,
    render_trajectory,
    render_yellow_map,
)
from .csv_out import write_domain_grid, write_rows, write_trace_csv
from .tables import format_rows, format_table

__all__ = [
    "DOMAIN_GLYPHS",
    "YELLOW_GLYPHS",
    "format_rows",
    "format_table",
    "render_batch_trace",
    "render_domain_map",
    "render_trajectory",
    "render_yellow_map",
    "write_domain_grid",
    "write_rows",
    "write_trace_csv",
]
