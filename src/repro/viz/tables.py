"""Aligned text tables for benchmark output."""

from __future__ import annotations

from typing import Any, Iterable, Sequence

__all__ = ["format_table", "format_rows"]


def _cell(value: Any) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        return f"{value:.3g}" if abs(value) < 1e5 else f"{value:.3e}"
    return str(value)


def format_table(headers: Sequence[str], rows: Iterable[Sequence[Any]]) -> str:
    """Render a simple aligned table with a header separator."""
    str_rows = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for idx, cell in enumerate(row):
            widths[idx] = max(widths[idx], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_rows(rows: Iterable[dict]) -> str:
    """Render a list of uniform dicts (e.g. ``TrialStats.row()``) as a table."""
    rows = list(rows)
    if not rows:
        return "(no rows)"
    headers = list(rows[0].keys())
    return format_table(headers, [[row.get(h) for h in headers] for row in rows])
