"""CSV emission for figure-regeneration artifacts.

Benchmarks can persist the regenerated figure data (domain grids, sweep
tables) so downstream plotting tools can draw the paper's figures exactly.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Any, Iterable, Sequence

from ..analysis.domains import DomainPartition

__all__ = ["write_rows", "write_domain_grid"]


def write_rows(
    path: str | Path,
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
) -> Path:
    """Write a header + rows CSV file, creating parent directories."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(headers)
        for row in rows:
            writer.writerow(list(row))
    return path


def write_domain_grid(
    path: str | Path,
    partition: DomainPartition,
    resolution: int = 101,
) -> Path:
    """Persist the Figure 1a classification grid as ``x, y, domain`` rows."""
    xs, ys, labels = partition.grid_labels(resolution)
    rows = (
        (float(xs[col]), float(ys[row]), labels[row][col].value)
        for row in range(resolution)
        for col in range(resolution)
    )
    return write_rows(path, ("x_t", "x_t1", "domain"), rows)
