"""CSV emission for figure-regeneration artifacts.

Benchmarks can persist the regenerated figure data (domain grids, sweep
tables) so downstream plotting tools can draw the paper's figures exactly.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterable, Sequence

from ..analysis.domains import DomainPartition

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..trace.recorder import BatchTrace

__all__ = ["write_rows", "write_domain_grid", "write_trace_csv"]


def write_rows(
    path: str | Path,
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
) -> Path:
    """Write a header + rows CSV file, creating parent directories."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(headers)
        for row in rows:
            writer.writerow(list(row))
    return path


def write_trace_csv(path: str | Path, trace: "BatchTrace") -> Path:
    """Persist a recorded batch trace in long form.

    One row per (replica, recorded round): ``replica, round, x`` plus a
    ``flips`` column when the trace carries the flip channel. Long form keeps
    the file self-describing under strides and ring-buffer windows (the round
    column is explicit) and loads directly into any dataframe/plot tool.
    """
    headers = ("replica", "round", "x") + (("flips",) if trace.flips is not None else ())
    rows = (
        (r, int(trace.rounds[k]), float(trace.x[r, k]))
        + ((int(trace.flips[r, k]),) if trace.flips is not None else ())
        for r in range(trace.replicas)
        for k in range(trace.columns)
    )
    return write_rows(path, headers, rows)


def write_domain_grid(
    path: str | Path,
    partition: DomainPartition,
    resolution: int = 101,
) -> Path:
    """Persist the Figure 1a classification grid as ``x, y, domain`` rows."""
    xs, ys, labels = partition.grid_labels(resolution)
    rows = (
        (float(xs[col]), float(ys[row]), labels[row][col].value)
        for row in range(resolution)
        for col in range(resolution)
    )
    return write_rows(path, ("x_t", "x_t1", "domain"), rows)
