"""ASCII rendering of the grid figures.

matplotlib is unavailable in the reproduction environment, so Figures 1a
and 2 are regenerated as character maps: each cell of a regular grid over the
unit square is classified and drawn as one letter. The y-axis (``x_{t+1}``)
increases upward, matching the paper's figures.
"""

from __future__ import annotations

import numpy as np

from ..analysis.domains import Domain, DomainPartition, YellowArea

__all__ = [
    "DOMAIN_GLYPHS",
    "YELLOW_GLYPHS",
    "render_batch_trace",
    "render_domain_map",
    "render_yellow_map",
    "render_trajectory",
]

DOMAIN_GLYPHS: dict[Domain, str] = {
    Domain.GREEN1: "G",
    Domain.GREEN0: "g",
    Domain.PURPLE1: "P",
    Domain.PURPLE0: "p",
    Domain.RED1: "R",
    Domain.RED0: "r",
    Domain.CYAN1: "C",
    Domain.CYAN0: "c",
    Domain.YELLOW: "Y",
    Domain.NONE: ".",
}

YELLOW_GLYPHS: dict[YellowArea, str] = {
    YellowArea.A1: "A",
    YellowArea.B1: "B",
    YellowArea.C1: "C",
    YellowArea.A0: "a",
    YellowArea.B0: "b",
    YellowArea.C0: "c",
    YellowArea.OUTSIDE: ".",
}


def _legend(glyphs: dict) -> str:
    return "legend: " + "  ".join(f"{glyph}={key.value}" for key, glyph in glyphs.items())


def render_domain_map(partition: DomainPartition, resolution: int = 61) -> str:
    """Character map of Figure 1a for the given partition.

    Rows from top (``x_{t+1} = 1``) to bottom (0); columns left
    (``x_t = 0``) to right (1).
    """
    xs, ys, labels = partition.grid_labels(resolution)
    lines = []
    for row_index in range(resolution - 1, -1, -1):
        row = "".join(DOMAIN_GLYPHS[labels[row_index][col]] for col in range(resolution))
        prefix = f"{ys[row_index]:4.2f} " if row_index % 10 == 0 else "     "
        lines.append(prefix + row)
    lines.append("     " + "^".ljust(resolution))
    lines.append(f"     x_t: 0.0 .. 1.0 over {resolution} columns (n={partition.n}, delta={partition.delta})")
    lines.append(_legend(DOMAIN_GLYPHS))
    return "\n".join(lines)


def render_yellow_map(partition: DomainPartition, resolution: int = 41) -> str:
    """Character map of Figure 2: the A/B/C split of the Yellow′ square."""
    lo = partition.yellow_prime_lo
    hi = partition.yellow_prime_hi
    xs = np.linspace(lo, hi, resolution)
    ys = np.linspace(lo, hi, resolution)
    lines = []
    for row_index in range(resolution - 1, -1, -1):
        y = float(ys[row_index])
        row = "".join(
            YELLOW_GLYPHS[partition.classify_yellow_area(float(x), y)] for x in xs
        )
        prefix = f"{y:5.3f} " if row_index % 8 == 0 else "      "
        lines.append(prefix + row)
    lines.append(f"      x_t: {lo:.3f} .. {hi:.3f} over {resolution} columns")
    lines.append(_legend(YELLOW_GLYPHS))
    return "\n".join(lines)


def render_trajectory(
    trajectory: np.ndarray,
    *,
    width: int = 72,
    height: int = 18,
) -> str:
    """Sparkline-style chart of ``x_t`` against round number.

    Downsamples long trajectories to ``width`` columns; the vertical axis is
    the one-fraction in [0, 1].
    """
    xs = np.asarray(trajectory, dtype=float)
    if xs.size == 0:
        return "(empty trajectory)"
    if xs.size > width:
        idx = np.linspace(0, xs.size - 1, width).round().astype(int)
        xs = xs[idx]
    columns = np.clip((xs * (height - 1)).round().astype(int), 0, height - 1)
    rows = []
    for level in range(height - 1, -1, -1):
        marks = "".join("*" if col == level else " " for col in columns)
        label = f"{level / (height - 1):4.2f} |"
        rows.append(label + marks)
    rows.append("     +" + "-" * len(columns))
    rows.append(f"      rounds 0 .. {trajectory.size - 1} (downsampled to {len(columns)} cols)")
    return "\n".join(rows)


def render_batch_trace(trace, *, reducer: str = "mean", width: int = 72, height: int = 18) -> str:
    """Sparkline chart of a recorded batch trace, reduced over replicas.

    ``trace`` is a :class:`~repro.trace.recorder.BatchTrace` (duck-typed:
    ``x``, ``rounds``, ``replicas``, ``stride``). ``reducer`` picks the
    per-round cross-replica statistic: ``mean``, ``median``, ``min``, or
    ``max``. Retired replicas contribute their frozen final values, so the
    reduced curve stays meaningful after partial retirement.
    """
    reducers = {"mean": np.mean, "median": np.median, "min": np.min, "max": np.max}
    if reducer not in reducers:
        raise ValueError(f"reducer must be one of {sorted(reducers)}, got {reducer!r}")
    if trace.x.shape[1] == 0:
        return "(empty trace)"
    series = reducers[reducer](trace.x, axis=0)
    chart = render_trajectory(series, width=width, height=height)
    header = (
        f"{reducer} one-fraction over {trace.replicas} replica(s), "
        f"rounds {int(trace.rounds[0])} .. {int(trace.rounds[-1])}"
        + (f" (stride {trace.stride})" if trace.stride != 1 else "")
    )
    return header + "\n" + chart
