"""Parallel sweep orchestrator: declarative grids, process pools, resume.

Every table in the paper reproduction is a grid over (protocol, n, noise,
initializer) cells, and every cell is an independent batch of trials — the
PR-1 batched engine made one cell fast, this package makes a *grid* of
cells fast and repeatable:

* :mod:`~repro.sweep.spec` — declarative :class:`SweepSpec`/:class:`Cell`
  grids (cross-product and zipped axes; spec v2 grids any
  :class:`~repro.config.RunSpec` field plus dotted component parameters
  like ``protocol.ell``) with deterministically derived per-cell seeds — a
  cell *is* a :class:`~repro.config.RunSpec` carrying its derived seed;
* :mod:`~repro.sweep.registry` — name → protocol/initializer/sampler
  builders (samplers as paired scalar+batched observation models), so
  cells are JSON-able and picklable;
* :mod:`~repro.sweep.runner` — :func:`execute_cell`, the pure worker
  function, plus the measure registry (consensus, trace-backed
  θ-convergence/settle, and trajectory-trace measures;
  :func:`register_measure` plugs in new kinds);
* :mod:`~repro.sweep.dispatch` — serial and process-pool dispatchers with
  ordered collection and fault tolerance (:class:`FaultPolicy`: retries
  with exponential backoff, a per-cell timeout watchdog, and crash
  isolation — a worker segfault/OOM rebuilds the pool instead of aborting
  the sweep);
* :mod:`~repro.sweep.faults` — deterministic fault injection
  (:class:`FaultPlan`/:class:`FaultInjector`: planned raises, hangs, and
  worker kills per cell and attempt) proving the recovery paths end to end;
* :mod:`~repro.sweep.store` — the append-only JSON-lines
  :class:`ResultsStore` behind resume-after-interrupt and skip-if-cached,
  with per-record checksums and an fsync durability knob;
* :mod:`~repro.sweep.orchestrator` — :func:`run_sweep` tying it together,
  with CSV/table export through :mod:`repro.viz`.

The front door is ``repro sweep`` (see :mod:`repro.cli`); the experiment
drivers in :mod:`repro.experiments.convergence` and
:mod:`repro.experiments.robustness` run on this orchestrator.

Quickstart::

    from repro.sweep import SweepSpec, run_sweep

    spec = SweepSpec(
        name="fet-vs-voter",
        seed=0,
        trials=50,
        axes={
            "protocol": ["fet", "voter"],
            "n": [100, 1000],
            "initializer": ["all-wrong", {"name": "bernoulli", "p": 0.5}],
        },
    )
    result = run_sweep(spec, jobs=4, store="results/sweep_store.jsonl")
    print(result.table())
"""

from .dispatch import (
    BrokenWorkerError,
    CellTimeoutError,
    FailedItem,
    FaultPolicy,
    ProcessPoolDispatcher,
    SerialDispatcher,
    make_dispatcher,
)
from .faults import FAULT_KINDS, FaultInjector, FaultPlan, InjectedFault
from .orchestrator import SweepResult, run_sweep
from .registry import (
    build_initializer,
    build_protocol,
    build_samplers,
    component_catalog,
    initializer_names,
    protocol_factory,
    protocol_names,
    sampler_names,
    validate_cell,
)
from .runner import (
    ERROR_COLUMN,
    RESULT_COLUMNS,
    CellResult,
    MeteredCell,
    execute_cell,
    measure_kinds,
    register_measure,
)
from .spec import (
    AXES,
    EXTENDED_AXES,
    SPEC_VERSION,
    Cell,
    SweepSpec,
    derive_cell_seed,
    fet_demo_spec,
    load_spec,
)
from .store import ResultsStore

__all__ = [
    "AXES",
    "BrokenWorkerError",
    "Cell",
    "CellResult",
    "CellTimeoutError",
    "ERROR_COLUMN",
    "EXTENDED_AXES",
    "FAULT_KINDS",
    "FailedItem",
    "FaultInjector",
    "FaultPlan",
    "FaultPolicy",
    "InjectedFault",
    "MeteredCell",
    "ProcessPoolDispatcher",
    "RESULT_COLUMNS",
    "ResultsStore",
    "SPEC_VERSION",
    "SerialDispatcher",
    "SweepResult",
    "SweepSpec",
    "build_initializer",
    "build_protocol",
    "build_samplers",
    "component_catalog",
    "derive_cell_seed",
    "execute_cell",
    "fet_demo_spec",
    "initializer_names",
    "load_spec",
    "make_dispatcher",
    "measure_kinds",
    "protocol_factory",
    "protocol_names",
    "register_measure",
    "run_sweep",
    "sampler_names",
    "validate_cell",
]
