"""Declarative sweep grids: axes, cells, and deterministic per-cell seeds.

A :class:`SweepSpec` names the axes of an experiment grid by *value lists*
rather than by Python objects, so a whole sweep round-trips through JSON:
it can live in a file, be handed to ``repro sweep``, be hashed into a
results-store key, and be shipped to a worker process.
:meth:`SweepSpec.expand` turns the spec into a flat list of independent
cells — and since the unified run-config API, a cell *is* a
:class:`~repro.config.RunSpec` carrying its derived seed (``Cell`` is an
alias), so every grid point is a complete, executable run description.

Three families of axes exist (spec **version 2**; version-1 files, which
predate the extended families, load unchanged through :func:`load_spec`):

* the **core four** — ``protocol``, ``n``, ``noise``, ``initializer`` —
  crossed in that canonical order exactly as in version 1;
* **extended field axes** (:data:`EXTENDED_AXES`) — any remaining
  :class:`~repro.config.RunSpec` field: ``sampler``, ``population``,
  ``num_sources``, ``correct_opinion``, ``stability_rounds``,
  ``linger_rounds``, ``trials``, ``max_rounds``, ``engine`` — crossed after the core four in
  sorted-name order, so grids that only use the core four keep their exact
  version-1 cell order, seeds, and keys;
* **dotted parameter axes** — ``"protocol.ell"``, ``"protocol.band"``,
  ``"initializer.p"``, ``"sampler.epsilon"``, ``"measure.theta"`` … —
  each value is merged into the named component dict of the cell, so
  one-spec-per-parameter-value sweeps collapse into a single grid.

Axes are **crossed** by default (full Cartesian product in the canonical
order); axes listed together in ``zipped`` advance **in lock-step**
instead (their value lists must have equal length), e.g. zipping ``n``
with ``initializer`` pairs the i-th population size with the i-th start.

Every cell receives its own integer seed derived from the spec's base seed
and a content hash of the cell's configuration (:func:`derive_cell_seed`).
The derivation is a :class:`numpy.random.SeedSequence` over distinct
entropy tuples, so cell streams are independent by construction, and —
because the hash covers only the cell's own configuration — a cell keeps
its seed (and therefore its exact results) when the surrounding grid is
reordered, grown, or split across resumed runs. Cells whose extended
fields sit at their defaults hash exactly as their version-1 form did.
"""

from __future__ import annotations

import itertools
import json
import math
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any

from ..config import RUN_SCHEMA, RunSpec, canonical_json, derive_seed

__all__ = [
    "AXES",
    "EXTENDED_AXES",
    "SPEC_VERSION",
    "Cell",
    "SweepSpec",
    "canonical_json",
    "derive_cell_seed",
    "fet_demo_spec",
    "load_spec",
]

#: Canonical core axis order; cross-product expansion and cell ordering put
#: these first, exactly as version-1 specs did.
AXES = ("protocol", "n", "noise", "initializer")

#: The remaining grid-able RunSpec fields (spec version 2); crossed after
#: the core four, in sorted-name order.
EXTENDED_AXES = (
    "correct_opinion",
    "engine",
    "linger_rounds",
    "max_rounds",
    "num_sources",
    "population",
    "sampler",
    "stability_rounds",
    "trials",
)

#: Component dicts a dotted axis ("root.param") may merge parameters into.
DOTTED_ROOTS = ("protocol", "initializer", "sampler", "measure")

#: Current sweep-spec file version. Files without a ``version`` key are
#: version 1 (core axes only) and load unchanged.
SPEC_VERSION = 2

#: Back-compat alias: the cell schema is the run-spec schema.
CELL_SCHEMA = RUN_SCHEMA

#: A sweep cell is a complete run description plus its derived seed.
Cell = RunSpec

#: Back-compat alias for the seed derivation (now in :mod:`repro.config`).
derive_cell_seed = derive_seed


def _normalize_component(value: Any, axis: str) -> dict:
    """Coerce a protocol/initializer/sampler axis entry to ``{"name": ...}``."""
    if isinstance(value, str):
        return {"name": value}
    if isinstance(value, dict):
        if "name" not in value:
            raise ValueError(f"{axis} axis entries need a 'name' key, got {value!r}")
        return {key: value[key] for key in value}
    raise ValueError(f"{axis} axis entries must be names or dicts, got {value!r}")


def _int_values(values: list, axis: str, minimum: int) -> list[int]:
    out = [int(v) for v in values]
    for v in out:
        if v < minimum:
            raise ValueError(f"{axis} axis values must be >= {minimum}, got {v}")
    return out


@dataclass
class SweepSpec:
    """Declarative experiment grid over any :class:`RunSpec` field.

    Parameters
    ----------
    axes:
        Axis name → value list. ``protocol`` and ``n`` are required;
        ``noise`` defaults to ``[0.0]`` and ``initializer`` to all-wrong.
        Scalars are auto-wrapped into single-value lists; component entries
        (protocol, initializer, sampler) may be bare names or ``{"name":
        ..., params}`` dicts (see ``sweep.registry`` for the known names
        and parameters). Beyond the core four, any name in
        :data:`EXTENDED_AXES` grids the matching :class:`RunSpec` field,
        and dotted names (``"protocol.ell"``) grid a single component
        parameter — see the module docstring.
    zipped:
        Groups of axis names that advance in lock-step instead of being
        crossed; the lists of every axis in a group must have equal length.
    trials:
        Trials per cell (0 allowed: cells degrade to empty aggregates);
        a ``trials`` axis overrides it per cell.
    max_rounds:
        Per-run round budget. ``None`` applies the poly-log rule
        ``max(min_rounds, int(max_rounds_factor · (ln n)^2.5))`` per cell —
        the Theorem-1 scaling convention of the convergence sweeps. A
        ``max_rounds`` axis overrides both per cell.
    measure:
        ``{"kind": "consensus"}`` (default; full convergence aggregates via
        the run-spec executor), ``{"kind": "theta", "theta": ..,
        "settle_window": ..}`` (θ-convergence + settle level, the
        robustness-sweep measurement — batched via trace recording unless
        the spec forces ``engine="sequential"``), or ``{"kind": "trace",
        "stride": .., "ring": .., "flips": ..}`` (convergence aggregates
        plus trace-derived trajectory statistics). Kinds live in the
        runner's measure registry (``repro.sweep.register_measure``);
        ``measure.<param>`` axes grid a measure parameter.
    """

    axes: dict[str, list]
    trials: int
    seed: int = 0
    name: str = "sweep"
    zipped: list[list[str]] = field(default_factory=list)
    max_rounds: int | None = None
    max_rounds_factor: float = 40.0
    min_rounds: int = 50
    stability_rounds: int = 2
    engine: str = "auto"
    measure: dict = field(default_factory=lambda: {"kind": "consensus"})

    def __post_init__(self) -> None:
        if self.trials < 0:
            raise ValueError(f"trials must be >= 0, got {self.trials}")
        if self.max_rounds is not None and self.max_rounds < 1:
            raise ValueError(f"max_rounds must be >= 1, got {self.max_rounds}")
        if self.stability_rounds < 1:
            raise ValueError(f"stability_rounds must be >= 1, got {self.stability_rounds}")
        if self.engine not in ("auto", "batched", "sequential", "counts"):
            raise ValueError(
                f"engine must be 'auto', 'batched', 'sequential' or 'counts', "
                f"got {self.engine!r}"
            )

        axes = dict(self.axes)
        dotted = [axis for axis in axes if "." in axis]
        for axis in dotted:
            root, _, param = axis.partition(".")
            if root not in DOTTED_ROOTS:
                raise ValueError(
                    f"dotted axis {axis!r} must target one of {DOTTED_ROOTS}, got root {root!r}"
                )
            if not param or "." in param:
                raise ValueError(f"dotted axis {axis!r} must name exactly one parameter")
            if root == "sampler" and "sampler" not in axes:
                raise ValueError(
                    f"dotted axis {axis!r} needs a 'sampler' axis to merge into"
                )
        unknown = set(axes) - set(AXES) - set(EXTENDED_AXES) - set(dotted)
        if unknown:
            raise ValueError(
                f"unknown axes {sorted(unknown)}; known axes: {AXES + EXTENDED_AXES} "
                f"plus dotted parameters of {DOTTED_ROOTS}"
            )
        for required in ("protocol", "n"):
            if required not in axes:
                raise ValueError(f"axes must include {required!r}")
        axes.setdefault("noise", [0.0])
        axes.setdefault("initializer", [{"name": "all-wrong"}])
        for axis, values in axes.items():
            if not isinstance(values, (list, tuple)):
                values = [values]
            values = list(values)
            if not values:
                raise ValueError(f"axis {axis!r} must have at least one value")
            axes[axis] = values
        axes["protocol"] = [_normalize_component(v, "protocol") for v in axes["protocol"]]
        axes["initializer"] = [_normalize_component(v, "initializer") for v in axes["initializer"]]
        axes["n"] = [int(v) for v in axes["n"]]
        axes["noise"] = [float(v) for v in axes["noise"]]
        for n in axes["n"]:
            if n < 2:
                raise ValueError(f"population sizes must be >= 2, got {n}")
        for eps in axes["noise"]:
            if not 0.0 <= eps <= 0.5:
                raise ValueError(f"noise levels must be in [0, 1/2], got {eps}")
        if "sampler" in axes:
            axes["sampler"] = [_normalize_component(v, "sampler") for v in axes["sampler"]]
        if "population" in axes:
            axes["population"] = [
                _normalize_component(v, "population") for v in axes["population"]
            ]
        if "engine" in axes:
            for value in axes["engine"]:
                if value not in ("auto", "batched", "sequential", "counts"):
                    raise ValueError(
                        f"engine axis values must be 'auto', 'batched', "
                        f"'sequential' or 'counts', got {value!r}"
                    )
        if "correct_opinion" in axes:
            for value in axes["correct_opinion"]:
                if value not in (0, 1):
                    raise ValueError(f"correct_opinion axis values must be 0 or 1, got {value!r}")
        for axis, minimum in (
            ("num_sources", 1),
            ("stability_rounds", 1),
            ("linger_rounds", 0),
            ("trials", 0),
            ("max_rounds", 1),
        ):
            if axis in axes:
                axes[axis] = _int_values(axes[axis], axis, minimum)
        self.axes = axes
        self._dotted = sorted(dotted)

        # Measure validation happens in the runner's registry; the import is
        # deferred to keep spec importable first (runner imports spec at
        # module load). When measure parameters are gridded, each cell's
        # merged measure dict is validated during expansion instead.
        if not any(axis.startswith("measure.") for axis in self._dotted):
            from .runner import validate_measure

            validate_measure(self.measure)

        zipped = [list(group) for group in self.zipped]
        seen: set[str] = set()
        for group in zipped:
            if len(group) < 2:
                raise ValueError(f"zipped groups need at least two axes, got {group}")
            for axis in group:
                if axis not in self.axes:
                    raise ValueError(f"zipped axis {axis!r} is not a spec axis")
                if axis in seen:
                    raise ValueError(f"axis {axis!r} appears in more than one zipped group")
                seen.add(axis)
            lengths = {axis: len(self.axes[axis]) for axis in group}
            if len(set(lengths.values())) != 1:
                raise ValueError(f"zipped axes must have equal lengths, got {lengths}")
        self.zipped = zipped

    # ------------------------------------------------------------- expansion

    def _axis_order(self) -> list[str]:
        """All axes in canonical order: the core four, then extended fields
        and dotted parameters in sorted-name order (grids using only the
        core four therefore keep their version-1 cell order)."""
        extras = sorted(axis for axis in self.axes if axis not in AXES)
        return [axis for axis in AXES if axis in self.axes] + extras

    def _groups(self) -> list[list[str]]:
        """Iteration groups in canonical order: zipped axes travel together."""
        groups: list[list[str]] = []
        emitted: set[str] = set()
        order = self._axis_order()
        for axis in order:
            if axis in emitted:
                continue
            group = next((g for g in self.zipped if axis in g), None)
            if group is not None:
                ordered = [a for a in order if a in group]
                groups.append(ordered)
                emitted.update(ordered)
            else:
                groups.append([axis])
                emitted.add(axis)
        return groups

    def resolve_max_rounds(self, n: int) -> int:
        if self.max_rounds is not None:
            return self.max_rounds
        return max(self.min_rounds, int(self.max_rounds_factor * math.log(n) ** 2.5))

    def expand(self) -> list[Cell]:
        """Expand the grid into independent cells, in canonical order.

        The order is the Cartesian product of the iteration groups in the
        canonical axis order — deterministic and independent of how the
        cells later get scheduled, which is what makes aggregate output
        reproducible across job counts.
        """
        validate_merged_measure = any(axis.startswith("measure.") for axis in self._dotted)
        if validate_merged_measure:
            from .runner import validate_measure

        groups = self._groups()
        lengths = [len(self.axes[group[0]]) for group in groups]
        cells: list[Cell] = []
        for combo in itertools.product(*(range(length) for length in lengths)):
            coords: dict[str, Any] = {}
            for group, index in zip(groups, combo):
                for axis in group:
                    coords[axis] = self.axes[axis][index]
            components: dict[str, Any] = {
                "protocol": coords["protocol"],
                "initializer": coords["initializer"],
                "sampler": coords.get("sampler"),
                "measure": self.measure,
            }
            for axis in self._dotted:
                root, _, param = axis.partition(".")
                components[root] = {**components[root], param: coords[axis]}
            if validate_merged_measure:
                validate_measure(components["measure"])
            n = coords["n"]
            draft = RunSpec(
                protocol=components["protocol"],
                n=n,
                noise=coords["noise"],
                initializer=components["initializer"],
                trials=coords.get("trials", self.trials),
                max_rounds=coords.get("max_rounds", self.resolve_max_rounds(n)),
                stability_rounds=coords.get("stability_rounds", self.stability_rounds),
                engine=coords.get("engine", self.engine),
                measure=components["measure"],
                sampler=components["sampler"],
                num_sources=coords.get("num_sources", 1),
                correct_opinion=coords.get("correct_opinion", 1),
                linger_rounds=coords.get("linger_rounds", 0),
                population=coords.get("population"),
            )
            seed = derive_cell_seed(self.seed, draft.spec_dict())
            cells.append(replace(draft, seed=seed))
        return cells

    # --------------------------------------------------------- serialization

    def to_dict(self) -> dict:
        return {
            "version": SPEC_VERSION,
            "name": self.name,
            "seed": self.seed,
            "trials": self.trials,
            "axes": self.axes,
            "zipped": self.zipped,
            "max_rounds": self.max_rounds,
            "max_rounds_factor": self.max_rounds_factor,
            "min_rounds": self.min_rounds,
            "stability_rounds": self.stability_rounds,
            "engine": self.engine,
            "measure": self.measure,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SweepSpec":
        """Build a spec from its dict form — versioned.

        Files without a ``version`` key are version 1 and are held to the
        version-1 contract (core axes only, same validation and expansion
        as before the extended axes existed — their cells, seeds, and
        aggregate output are byte-identical). ``version: 2`` enables the
        extended and dotted axis families.
        """
        data = dict(data)
        version = data.pop("version", 1)
        if version not in (1, SPEC_VERSION):
            raise ValueError(
                f"unknown sweep spec version {version!r}; supported: 1, {SPEC_VERSION}"
            )
        known = {
            "name",
            "seed",
            "trials",
            "axes",
            "zipped",
            "max_rounds",
            "max_rounds_factor",
            "min_rounds",
            "stability_rounds",
            "engine",
            "measure",
        }
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown sweep spec keys {sorted(unknown)}; known keys: {sorted(known)}")
        for required in ("axes", "trials"):
            if required not in data:
                raise ValueError(f"sweep spec needs a {required!r} key")
        if version == 1:
            beyond_v1 = set(data["axes"]) - set(AXES)
            if beyond_v1:
                raise ValueError(
                    f"unknown axes {sorted(beyond_v1)} for a version-1 sweep spec; "
                    f"known axes: {AXES} (declare \"version\": {SPEC_VERSION} to use "
                    "extended or dotted axes)"
                )
        return cls(**data)


def load_spec(path: str | Path) -> SweepSpec:
    """Load a :class:`SweepSpec` from a JSON file (versioned — see
    :meth:`SweepSpec.from_dict`)."""
    with Path(path).open() as handle:
        return SweepSpec.from_dict(json.load(handle))


def fet_demo_spec(seed: int = 0) -> SweepSpec:
    """The built-in FET demo grid behind ``repro sweep`` with no ``--spec``.

    Six cells — FET with the paper's ℓ = ⌈8·ln n⌉ over three population
    sizes from the two canonical starts — small enough to finish in seconds
    while exercising grid expansion, parallel dispatch, and the store.
    """
    return SweepSpec(
        name="fet-demo",
        seed=seed,
        trials=20,
        axes={
            "protocol": ["fet"],
            "n": [100, 200, 400],
            "initializer": ["all-wrong", {"name": "bernoulli", "p": 0.5}],
        },
    )
