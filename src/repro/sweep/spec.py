"""Declarative sweep grids: axes, cells, and deterministic per-cell seeds.

A :class:`SweepSpec` names the axes of an experiment grid — ``protocol``,
``n``, ``noise``, ``initializer`` — by *value lists* rather than by Python
objects, so a whole sweep round-trips through JSON: it can live in a file,
be handed to ``repro sweep``, be hashed into a results-store key, and be
shipped to a worker process. :meth:`SweepSpec.expand` turns the spec into a
flat list of independent :class:`Cell` configurations:

* axes are **crossed** by default (full Cartesian product, in the canonical
  axis order ``protocol × n × noise × initializer``);
* axes listed together in ``zipped`` advance **in lock-step** instead
  (their value lists must have equal length), e.g. zipping ``n`` with
  ``initializer`` pairs the i-th population size with the i-th start.

Every cell receives its own integer seed derived from the spec's base seed
and a content hash of the cell's configuration (:func:`derive_cell_seed`).
The derivation is a :class:`numpy.random.SeedSequence` over distinct entropy
tuples, so cell streams are independent by construction, and — because the
hash covers only the cell's own configuration — a cell keeps its seed (and
therefore its exact results) when the surrounding grid is reordered, grown,
or split across resumed runs.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

import numpy as np

__all__ = [
    "AXES",
    "Cell",
    "SweepSpec",
    "canonical_json",
    "derive_cell_seed",
    "fet_demo_spec",
    "load_spec",
]

#: Canonical axis order; cross-product expansion and cell ordering follow it.
AXES = ("protocol", "n", "noise", "initializer")

#: Bumped when the cell schema changes incompatibly, so stale store entries
#: miss instead of deserializing into the wrong shape.
CELL_SCHEMA = 1


def canonical_json(obj: Any) -> str:
    """Serialize to the canonical form used for hashing (sorted keys, no
    whitespace) — byte-stable across processes and sessions."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def derive_cell_seed(base_seed: int, spec_dict: dict) -> int:
    """Deterministic integer seed for one cell of a sweep.

    The cell's canonical JSON is hashed and the digest words are spawned
    through a :class:`~numpy.random.SeedSequence` together with the base
    seed: distinct cell configurations (or distinct base seeds) give
    independent streams, while the same cell under the same base seed gets
    the same seed in every process, job count, and resumed run.
    """
    digest = hashlib.sha256(canonical_json(spec_dict).encode()).digest()
    words = tuple(int.from_bytes(digest[i : i + 4], "big") for i in range(0, 16, 4))
    sequence = np.random.SeedSequence((int(base_seed), *words))
    return int(sequence.generate_state(1, dtype=np.uint64)[0])


def _normalize_component(value: Any, axis: str) -> dict:
    """Coerce a protocol/initializer axis entry to ``{"name": ..., params}``."""
    if isinstance(value, str):
        return {"name": value}
    if isinstance(value, dict):
        if "name" not in value:
            raise ValueError(f"{axis} axis entries need a 'name' key, got {value!r}")
        return {key: value[key] for key in value}
    raise ValueError(f"{axis} axis entries must be names or dicts, got {value!r}")


@dataclass(frozen=True)
class Cell:
    """One fully-resolved grid point: an independent unit of sweep work.

    Cells are plain data (JSON-able fields only) so they pickle cleanly to
    worker processes and hash stably into results-store keys. ``seed`` is
    derived, not user-chosen — see :func:`derive_cell_seed`.
    """

    protocol: dict
    n: int
    noise: float
    initializer: dict
    trials: int
    max_rounds: int
    stability_rounds: int
    engine: str
    measure: dict
    seed: int

    def spec_dict(self) -> dict:
        """The cell's configuration without the derived seed (hash input)."""
        return {
            "protocol": self.protocol,
            "n": self.n,
            "noise": self.noise,
            "initializer": self.initializer,
            "trials": self.trials,
            "max_rounds": self.max_rounds,
            "stability_rounds": self.stability_rounds,
            "engine": self.engine,
            "measure": self.measure,
        }

    def to_dict(self) -> dict:
        out = self.spec_dict()
        out["seed"] = self.seed
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "Cell":
        return cls(**data)

    def key(self) -> str:
        """Content hash of the cell spec + seed: the results-store key."""
        payload = {"schema": CELL_SCHEMA, **self.to_dict()}
        return hashlib.sha256(canonical_json(payload).encode()).hexdigest()

    def label(self) -> str:
        """Short human-readable cell tag for logs and errors."""
        parts = [self.protocol["name"], f"n={self.n}"]
        if self.noise:
            parts.append(f"eps={self.noise}")
        parts.append(self.initializer["name"])
        return " ".join(parts)


@dataclass
class SweepSpec:
    """Declarative experiment grid over protocol × n × noise × initializer.

    Parameters
    ----------
    axes:
        Axis name → value list. ``protocol`` and ``n`` are required;
        ``noise`` defaults to ``[0.0]`` and ``initializer`` to all-wrong.
        Scalars are auto-wrapped into single-value lists; protocol and
        initializer entries may be bare names or ``{"name": ..., params}``
        dicts (see ``sweep.registry`` for the known names and parameters).
    zipped:
        Groups of axis names that advance in lock-step instead of being
        crossed; the lists of every axis in a group must have equal length.
    trials:
        Trials per cell (0 allowed: cells degrade to empty aggregates).
    max_rounds:
        Per-run round budget. ``None`` applies the poly-log rule
        ``max(min_rounds, int(max_rounds_factor · (ln n)^2.5))`` per cell —
        the Theorem-1 scaling convention of the convergence sweeps.
    measure:
        ``{"kind": "consensus"}`` (default; full convergence aggregates via
        ``run_trials``), ``{"kind": "theta", "theta": ..,
        "settle_window": ..}`` (θ-convergence + settle level, the
        robustness-sweep measurement — batched via trace recording unless
        the spec forces ``engine="sequential"``), or ``{"kind": "trace",
        "stride": .., "ring": .., "flips": ..}`` (convergence aggregates
        plus trace-derived trajectory statistics). Kinds live in the
        runner's measure registry (``repro.sweep.register_measure``).
    """

    axes: dict[str, list]
    trials: int
    seed: int = 0
    name: str = "sweep"
    zipped: list[list[str]] = field(default_factory=list)
    max_rounds: int | None = None
    max_rounds_factor: float = 40.0
    min_rounds: int = 50
    stability_rounds: int = 2
    engine: str = "auto"
    measure: dict = field(default_factory=lambda: {"kind": "consensus"})

    def __post_init__(self) -> None:
        if self.trials < 0:
            raise ValueError(f"trials must be >= 0, got {self.trials}")
        if self.max_rounds is not None and self.max_rounds < 1:
            raise ValueError(f"max_rounds must be >= 1, got {self.max_rounds}")
        if self.stability_rounds < 1:
            raise ValueError(f"stability_rounds must be >= 1, got {self.stability_rounds}")
        if self.engine not in ("auto", "batched", "sequential"):
            raise ValueError(f"engine must be 'auto', 'batched' or 'sequential', got {self.engine!r}")
        # Measure kinds and their parameter rules live in the runner's
        # registry; the import is deferred to keep spec importable first
        # (runner imports spec at module load).
        from .runner import validate_measure

        validate_measure(self.measure)

        axes = dict(self.axes)
        unknown = set(axes) - set(AXES)
        if unknown:
            raise ValueError(f"unknown axes {sorted(unknown)}; known axes: {AXES}")
        for required in ("protocol", "n"):
            if required not in axes:
                raise ValueError(f"axes must include {required!r}")
        axes.setdefault("noise", [0.0])
        axes.setdefault("initializer", [{"name": "all-wrong"}])
        for axis, values in axes.items():
            if not isinstance(values, (list, tuple)):
                values = [values]
            values = list(values)
            if not values:
                raise ValueError(f"axis {axis!r} must have at least one value")
            axes[axis] = values
        axes["protocol"] = [_normalize_component(v, "protocol") for v in axes["protocol"]]
        axes["initializer"] = [_normalize_component(v, "initializer") for v in axes["initializer"]]
        axes["n"] = [int(v) for v in axes["n"]]
        axes["noise"] = [float(v) for v in axes["noise"]]
        for n in axes["n"]:
            if n < 2:
                raise ValueError(f"population sizes must be >= 2, got {n}")
        for eps in axes["noise"]:
            if not 0.0 <= eps <= 0.5:
                raise ValueError(f"noise levels must be in [0, 1/2], got {eps}")
        self.axes = axes

        zipped = [list(group) for group in self.zipped]
        seen: set[str] = set()
        for group in zipped:
            if len(group) < 2:
                raise ValueError(f"zipped groups need at least two axes, got {group}")
            for axis in group:
                if axis not in self.axes:
                    raise ValueError(f"zipped axis {axis!r} is not a spec axis")
                if axis in seen:
                    raise ValueError(f"axis {axis!r} appears in more than one zipped group")
                seen.add(axis)
            lengths = {axis: len(self.axes[axis]) for axis in group}
            if len(set(lengths.values())) != 1:
                raise ValueError(f"zipped axes must have equal lengths, got {lengths}")
        self.zipped = zipped

    # ------------------------------------------------------------- expansion

    def _groups(self) -> list[list[str]]:
        """Iteration groups in canonical order: zipped axes travel together."""
        groups: list[list[str]] = []
        emitted: set[str] = set()
        for axis in AXES:
            if axis in emitted:
                continue
            group = next((g for g in self.zipped if axis in g), None)
            if group is not None:
                ordered = [a for a in AXES if a in group]
                groups.append(ordered)
                emitted.update(ordered)
            else:
                groups.append([axis])
                emitted.add(axis)
        return groups

    def resolve_max_rounds(self, n: int) -> int:
        if self.max_rounds is not None:
            return self.max_rounds
        return max(self.min_rounds, int(self.max_rounds_factor * math.log(n) ** 2.5))

    def expand(self) -> list[Cell]:
        """Expand the grid into independent cells, in canonical order.

        The order is the Cartesian product of the iteration groups in the
        canonical axis order — deterministic and independent of how the
        cells later get scheduled, which is what makes aggregate output
        reproducible across job counts.
        """
        groups = self._groups()
        lengths = [len(self.axes[group[0]]) for group in groups]
        cells: list[Cell] = []
        for combo in itertools.product(*(range(length) for length in lengths)):
            coords: dict[str, Any] = {}
            for group, index in zip(groups, combo):
                for axis in group:
                    coords[axis] = self.axes[axis][index]
            n = coords["n"]
            spec_dict = {
                "protocol": coords["protocol"],
                "n": n,
                "noise": coords["noise"],
                "initializer": coords["initializer"],
                "trials": self.trials,
                "max_rounds": self.resolve_max_rounds(n),
                "stability_rounds": self.stability_rounds,
                "engine": self.engine,
                "measure": self.measure,
            }
            seed = derive_cell_seed(self.seed, spec_dict)
            cells.append(Cell(seed=seed, **spec_dict))
        return cells

    # --------------------------------------------------------- serialization

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "seed": self.seed,
            "trials": self.trials,
            "axes": self.axes,
            "zipped": self.zipped,
            "max_rounds": self.max_rounds,
            "max_rounds_factor": self.max_rounds_factor,
            "min_rounds": self.min_rounds,
            "stability_rounds": self.stability_rounds,
            "engine": self.engine,
            "measure": self.measure,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SweepSpec":
        known = {
            "name",
            "seed",
            "trials",
            "axes",
            "zipped",
            "max_rounds",
            "max_rounds_factor",
            "min_rounds",
            "stability_rounds",
            "engine",
            "measure",
        }
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown sweep spec keys {sorted(unknown)}; known keys: {sorted(known)}")
        for required in ("axes", "trials"):
            if required not in data:
                raise ValueError(f"sweep spec needs a {required!r} key")
        return cls(**data)


def load_spec(path: str | Path) -> SweepSpec:
    """Load a :class:`SweepSpec` from a JSON file."""
    with Path(path).open() as handle:
        return SweepSpec.from_dict(json.load(handle))


def fet_demo_spec(seed: int = 0) -> SweepSpec:
    """The built-in FET demo grid behind ``repro sweep`` with no ``--spec``.

    Six cells — FET with the paper's ℓ = ⌈8·ln n⌉ over three population
    sizes from the two canonical starts — small enough to finish in seconds
    while exercising grid expansion, parallel dispatch, and the store.
    """
    return SweepSpec(
        name="fet-demo",
        seed=seed,
        trials=20,
        axes={
            "protocol": ["fet"],
            "n": [100, 200, 400],
            "initializer": ["all-wrong", {"name": "bernoulli", "p": 0.5}],
        },
    )
