"""Name → object registries for declarative sweep cells.

Sweep cells describe protocols and initializers as ``{"name": ..., params}``
dicts (JSON-able, picklable, hashable into store keys); this module turns
those descriptions back into live objects inside whichever process runs the
cell. The registries cover every protocol and initializer shipped by the
library except :class:`~repro.initializers.adversarial.FrozenUnanimity`,
which requires the majority-variant population that sweep cells (built on
``make_population``) do not model.

Sample-size parameters: protocols taking ℓ accept an explicit ``ell`` or
derive the paper's ``ℓ = ⌈c·ln n⌉`` from the cell's population size, with
``sample_constant`` overriding ``c``.
"""

from __future__ import annotations

from typing import Callable

from ..core.protocol import Protocol
from ..initializers.adversarial import PoisonedCounters, TwoRoundTarget, ZeroSpeedCenter
from ..initializers.standard import (
    AllCorrect,
    AllWrong,
    BernoulliRandom,
    ExactFraction,
    Initializer,
    RandomizeProtocolState,
)
from ..protocols import (
    ClockSyncProtocol,
    DEFAULT_SAMPLE_CONSTANT,
    FETProtocol,
    HysteresisFETProtocol,
    MajorityProtocol,
    MajoritySamplingProtocol,
    OracleClockProtocol,
    SimpleTrendProtocol,
    UndecidedStateProtocol,
    VoterProtocol,
    ell_for,
)

__all__ = [
    "build_initializer",
    "build_protocol",
    "initializer_names",
    "protocol_factory",
    "protocol_names",
    "validate_cell",
]


def _params(spec: dict, kind: str, allowed: set[str]) -> dict:
    params = {key: value for key, value in spec.items() if key != "name"}
    unknown = set(params) - allowed
    if unknown:
        raise ValueError(
            f"unknown parameters {sorted(unknown)} for {kind} {spec['name']!r}; "
            f"allowed: {sorted(allowed) or 'none'}"
        )
    return params


def _resolve_ell(params: dict, n: int) -> int:
    if "ell" in params:
        return int(params["ell"])
    return ell_for(n, float(params.get("sample_constant", DEFAULT_SAMPLE_CONSTANT)))


_ELL_PARAMS = {"ell", "sample_constant"}

#: name -> (builder(params, n) -> Protocol, allowed parameter names)
_PROTOCOLS: dict[str, tuple[Callable[[dict, int], Protocol], set[str]]] = {
    "fet": (lambda p, n: FETProtocol(_resolve_ell(p, n)), _ELL_PARAMS),
    "simple-trend": (lambda p, n: SimpleTrendProtocol(_resolve_ell(p, n)), _ELL_PARAMS),
    "sample-majority": (lambda p, n: MajoritySamplingProtocol(_resolve_ell(p, n)), _ELL_PARAMS),
    "hysteresis-fet": (
        lambda p, n: HysteresisFETProtocol(_resolve_ell(p, n), band=int(p.get("band", 1))),
        _ELL_PARAMS | {"band"},
    ),
    "voter": (lambda p, n: VoterProtocol(), set()),
    "k-majority": (lambda p, n: MajorityProtocol(k=int(p.get("k", 3))), {"k"}),
    "undecided-state": (lambda p, n: UndecidedStateProtocol(), set()),
    "oracle-clock": (lambda p, n: OracleClockProtocol(n, ell=int(p.get("ell", 1))), {"ell"}),
    "clock-sync": (lambda p, n: ClockSyncProtocol(n, ell=int(p.get("ell", 1))), {"ell"}),
}

#: name -> (builder(params) -> Initializer, allowed parameter names)
_INITIALIZERS: dict[str, tuple[Callable[[dict], Initializer], set[str]]] = {
    "all-wrong": (lambda p: AllWrong(), set()),
    "all-correct": (lambda p: AllCorrect(), set()),
    "bernoulli": (lambda p: BernoulliRandom(float(p.get("p", 0.5))), {"p"}),
    "fraction": (lambda p: ExactFraction(float(p["x"])), {"x"}),
    "randomize-state": (lambda p: RandomizeProtocolState(), set()),
    "two-round": (
        lambda p: TwoRoundTarget(float(p["x_prev"]), float(p["x_now"])),
        {"x_prev", "x_now"},
    ),
    "zero-speed-center": (lambda p: ZeroSpeedCenter(), set()),
    "poisoned-counters": (lambda p: PoisonedCounters(), set()),
}


def protocol_names() -> list[str]:
    return sorted(_PROTOCOLS)


def initializer_names() -> list[str]:
    return sorted(_INITIALIZERS)


def build_protocol(spec: dict, n: int) -> Protocol:
    """Instantiate the protocol described by ``spec`` for population size ``n``."""
    name = spec.get("name")
    if name not in _PROTOCOLS:
        raise ValueError(f"unknown protocol {name!r}; known protocols: {protocol_names()}")
    builder, allowed = _PROTOCOLS[name]
    return builder(_params(spec, "protocol", allowed), n)


def protocol_factory(spec: dict, n: int) -> Callable[[], Protocol]:
    """Zero-argument factory building a fresh protocol instance per call.

    The first instantiation (inside the factory's creator) surfaces spec
    errors immediately; the orchestrator additionally validates every cell
    *before* dispatching (:func:`validate_cell`), so bad specs fail fast in
    the orchestrating process rather than inside a pool worker.
    """
    build_protocol(spec, n)
    return lambda: build_protocol(spec, n)


def build_initializer(spec: dict) -> Initializer:
    """Instantiate the initializer described by ``spec``."""
    name = spec.get("name")
    if name not in _INITIALIZERS:
        raise ValueError(f"unknown initializer {name!r}; known initializers: {initializer_names()}")
    builder, allowed = _INITIALIZERS[name]
    return builder(_params(spec, "initializer", allowed))


def validate_cell(cell) -> None:
    """Fail fast on a cell whose components cannot be built.

    Called by the orchestrator on every cell before any worker is spawned,
    so a typo'd protocol or initializer name raises one clear ValueError in
    the orchestrating process instead of an opaque exception from inside a
    pool worker after part of the grid has already run.
    """
    try:
        build_protocol(cell.protocol, cell.n)
        build_initializer(cell.initializer)
    except (ValueError, KeyError, TypeError) as error:
        raise ValueError(f"invalid sweep cell [{cell.label()}]: {error}") from error
