"""Name → object registries for declarative run/sweep components.

Run specs and sweep cells describe their components as ``{"name": ...,
params}`` dicts (JSON-able, picklable, hashable into store keys); this
module turns those descriptions back into live objects inside whichever
process runs the cell. Three component kinds are registered:

* **protocols** — every protocol shipped by the library;
* **initializers** — every initializer except
  :class:`~repro.initializers.adversarial.FrozenUnanimity`, which requires
  the majority-variant population that run specs (built on
  ``make_population``) do not model;
* **samplers** — observation models, registered as *paired* scalar and
  batched builders (:func:`build_samplers`), so declaring a sampler always
  yields the matching batched observation model alongside the scalar one
  (entries without a batched counterpart, like the literal index sampler,
  pair with ``None`` and force the sequential engine).

Sample-size parameters: protocols taking ℓ accept an explicit ``ell`` or
derive the paper's ``ℓ = ⌈c·ln n⌉`` from the cell's population size, with
``sample_constant`` overriding ``c``.
"""

from __future__ import annotations

from typing import Callable

from ..core.noise import BatchedNoisyCountSampler, NoisyCountSampler
from ..core.protocol import Protocol
from ..core.sampling import (
    BatchedBinomialSampler,
    BatchedSampler,
    BinomialCountSampler,
    IndexSampler,
    Sampler,
)
from ..initializers.adversarial import PoisonedCounters, TwoRoundTarget, ZeroSpeedCenter
from ..initializers.standard import (
    AllCorrect,
    AllWrong,
    BernoulliRandom,
    ExactFraction,
    Initializer,
    RandomizeProtocolState,
)
from ..protocols import (
    ClockSyncProtocol,
    DEFAULT_SAMPLE_CONSTANT,
    FETProtocol,
    HysteresisFETProtocol,
    MajorityProtocol,
    MajoritySamplingProtocol,
    OracleClockProtocol,
    SimpleTrendProtocol,
    UndecidedStateProtocol,
    VoterProtocol,
    ell_for,
)

__all__ = [
    "build_initializer",
    "build_protocol",
    "build_samplers",
    "component_catalog",
    "initializer_names",
    "protocol_factory",
    "protocol_names",
    "sampler_names",
    "validate_cell",
]


def _params(spec: dict, kind: str, allowed: set[str]) -> dict:
    params = {key: value for key, value in spec.items() if key != "name"}
    unknown = set(params) - allowed
    if unknown:
        raise ValueError(
            f"unknown parameters {sorted(unknown)} for {kind} {spec['name']!r}; "
            f"allowed: {sorted(allowed) or 'none'}"
        )
    return params


def _resolve_ell(params: dict, n: int) -> int:
    if "ell" in params:
        return int(params["ell"])
    return ell_for(n, float(params.get("sample_constant", DEFAULT_SAMPLE_CONSTANT)))


_ELL_PARAMS = {"ell", "sample_constant"}

#: name -> (builder(params, n) -> Protocol, allowed parameter names)
_PROTOCOLS: dict[str, tuple[Callable[[dict, int], Protocol], set[str]]] = {
    "fet": (lambda p, n: FETProtocol(_resolve_ell(p, n)), _ELL_PARAMS),
    "simple-trend": (lambda p, n: SimpleTrendProtocol(_resolve_ell(p, n)), _ELL_PARAMS),
    "sample-majority": (lambda p, n: MajoritySamplingProtocol(_resolve_ell(p, n)), _ELL_PARAMS),
    "hysteresis-fet": (
        lambda p, n: HysteresisFETProtocol(_resolve_ell(p, n), band=int(p.get("band", 1))),
        _ELL_PARAMS | {"band"},
    ),
    "voter": (lambda p, n: VoterProtocol(), set()),
    "k-majority": (lambda p, n: MajorityProtocol(k=int(p.get("k", 3))), {"k"}),
    "undecided-state": (lambda p, n: UndecidedStateProtocol(), set()),
    "oracle-clock": (lambda p, n: OracleClockProtocol(n, ell=int(p.get("ell", 1))), {"ell"}),
    "clock-sync": (lambda p, n: ClockSyncProtocol(n, ell=int(p.get("ell", 1))), {"ell"}),
}

#: name -> (builder(params) -> Initializer, allowed parameter names)
_INITIALIZERS: dict[str, tuple[Callable[[dict], Initializer], set[str]]] = {
    "all-wrong": (lambda p: AllWrong(), set()),
    "all-correct": (lambda p: AllCorrect(), set()),
    "bernoulli": (lambda p: BernoulliRandom(float(p.get("p", 0.5))), {"p"}),
    "fraction": (lambda p: ExactFraction(float(p["x"])), {"x"}),
    "randomize-state": (lambda p: RandomizeProtocolState(), set()),
    "two-round": (
        lambda p: TwoRoundTarget(float(p["x_prev"]), float(p["x_now"])),
        {"x_prev", "x_now"},
    ),
    "zero-speed-center": (lambda p: ZeroSpeedCenter(), set()),
    "poisoned-counters": (lambda p: PoisonedCounters(), set()),
}


def _method_param(params: dict) -> str:
    return str(params.get("method", "auto"))


def _epsilon_param(params: dict) -> float:
    if "epsilon" not in params:
        raise ValueError("the 'noisy' sampler needs an 'epsilon' parameter")
    return float(params["epsilon"])


#: name -> (scalar builder(params) -> Sampler,
#:          batched builder(params) -> BatchedSampler | None when the model
#:          has no batched counterpart (forces the sequential engine),
#:          allowed parameter names)
_SAMPLERS: dict[
    str,
    tuple[
        Callable[[dict], Sampler],
        Callable[[dict], BatchedSampler] | None,
        set[str],
    ],
] = {
    "binomial": (
        lambda p: BinomialCountSampler(),
        lambda p: BatchedBinomialSampler(_method_param(p)),
        {"method"},
    ),
    "noisy": (
        lambda p: NoisyCountSampler(_epsilon_param(p)),
        lambda p: BatchedNoisyCountSampler(_epsilon_param(p), _method_param(p)),
        {"epsilon", "method"},
    ),
    "index": (
        lambda p: IndexSampler(exclude_self=bool(p.get("exclude_self", False))),
        None,
        {"exclude_self"},
    ),
}


def protocol_names() -> list[str]:
    return sorted(_PROTOCOLS)


def initializer_names() -> list[str]:
    return sorted(_INITIALIZERS)


def sampler_names() -> list[str]:
    return sorted(_SAMPLERS)


def component_catalog() -> dict[str, dict[str, list[str]]]:
    """Kind → name → accepted parameter names, straight from the registries.

    The single source the documentation surfaces (``repro sweep --list``)
    render from — so the printed catalog can never drift from what the
    builders actually accept.
    """
    return {
        "protocol": {name: sorted(entry[1]) for name, entry in sorted(_PROTOCOLS.items())},
        "initializer": {name: sorted(entry[1]) for name, entry in sorted(_INITIALIZERS.items())},
        "sampler": {name: sorted(entry[2]) for name, entry in sorted(_SAMPLERS.items())},
    }


def build_protocol(spec: dict, n: int) -> Protocol:
    """Instantiate the protocol described by ``spec`` for population size ``n``."""
    name = spec.get("name")
    if name not in _PROTOCOLS:
        raise ValueError(f"unknown protocol {name!r}; known protocols: {protocol_names()}")
    builder, allowed = _PROTOCOLS[name]
    return builder(_params(spec, "protocol", allowed), n)


def protocol_factory(spec: dict, n: int) -> Callable[[], Protocol]:
    """Zero-argument factory building a fresh protocol instance per call.

    The first instantiation (inside the factory's creator) surfaces spec
    errors immediately; the orchestrator additionally validates every cell
    *before* dispatching (:func:`validate_cell`), so bad specs fail fast in
    the orchestrating process rather than inside a pool worker.
    """
    build_protocol(spec, n)
    return lambda: build_protocol(spec, n)


def build_initializer(spec: dict) -> Initializer:
    """Instantiate the initializer described by ``spec``."""
    name = spec.get("name")
    if name not in _INITIALIZERS:
        raise ValueError(f"unknown initializer {name!r}; known initializers: {initializer_names()}")
    builder, allowed = _INITIALIZERS[name]
    return builder(_params(spec, "initializer", allowed))


def build_samplers(
    spec: dict,
) -> tuple[Callable[[], Sampler], BatchedSampler | None]:
    """The paired (scalar factory, batched sampler) for an observation spec.

    One registry entry produces *both* sides of the observation model, so a
    declared sampler can never reach the batched engine unpaired — the old
    ``sampler_factory``-without-``batched_sampler`` footgun has no
    declarative equivalent. Entries without a batched counterpart return
    ``None`` on the batched side; engine resolution treats that as
    "sequential only".
    """
    name = spec.get("name")
    if name not in _SAMPLERS:
        raise ValueError(f"unknown sampler {name!r}; known samplers: {sampler_names()}")
    scalar_builder, batched_builder, allowed = _SAMPLERS[name]
    params = _params(spec, "sampler", allowed)
    scalar_builder(params)  # surface parameter errors immediately
    batched = batched_builder(params) if batched_builder is not None else None
    return (lambda: scalar_builder(params)), batched


def validate_cell(cell) -> None:
    """Fail fast on a cell whose components cannot be built.

    Called by the orchestrator on every cell before any worker is spawned,
    so a typo'd protocol, initializer, or sampler name raises one clear
    ValueError in the orchestrating process instead of an opaque exception
    from inside a pool worker after part of the grid has already run.
    """
    try:
        build_protocol(cell.protocol, cell.n)
        build_initializer(cell.initializer)
        if cell.sampler is not None:
            _, batched = build_samplers(cell.sampler)
            if batched is None:
                # A sequential-only observation model is fine per se, but
                # not with anything that requires the batched engine —
                # surface the conflict here, not from inside a worker.
                if cell.engine == "batched":
                    raise ValueError(
                        f"sampler {cell.sampler['name']!r} has no batched "
                        "observation model; use engine='auto' or 'sequential'"
                    )
                if cell.measure.get("kind") == "trace":
                    raise ValueError(
                        "the trace measure runs on the batched engine, but "
                        f"sampler {cell.sampler['name']!r} has no batched "
                        "observation model"
                    )
    except (ValueError, KeyError, TypeError) as error:
        raise ValueError(f"invalid sweep cell [{cell.label()}]: {error}") from error
