"""Name → object registries for declarative run/sweep components.

Run specs and sweep cells describe their components as ``{"name": ...,
params}`` dicts (JSON-able, picklable, hashable into store keys); this
module turns those descriptions back into live objects inside whichever
process runs the cell. Three component kinds are registered:

* **protocols** — every protocol shipped by the library;
* **initializers** — every initializer, including the crafted adversarial
  constructions (:class:`~repro.initializers.adversarial.FrozenUnanimity`
  additionally needs the ``majority`` population component — the pairing
  is cross-checked by :func:`validate_cell`);
* **samplers** — observation models, registered as *paired* scalar and
  batched builders (:func:`build_samplers`), so declaring a sampler always
  yields the matching batched observation model alongside the scalar one
  (entries without a batched counterpart, like the literal index sampler,
  pair with ``None`` and force the sequential engine);
* **populations** — population layouts (:func:`build_population`):
  ``standard`` is the default source-pinned layout every run spec builds
  natively (declaring it changes nothing), ``majority`` the
  Section-1.2 majority variant (``k0``/``k1`` sources with opposing
  preferences, sources unpinned), previously reachable only by
  hand-building populations in benchmark code.

Sample-size parameters: protocols taking ℓ accept an explicit ``ell`` or
derive the paper's ``ℓ = ⌈c·ln n⌉`` from the cell's population size, with
``sample_constant`` overriding ``c``.
"""

from __future__ import annotations

from typing import Callable

from ..core.noise import BatchedNoisyCountSampler, NoisyCountSampler
from ..core.protocol import Protocol
from ..core.sampling import (
    BatchedBinomialSampler,
    BatchedSampler,
    BinomialCountSampler,
    IndexSampler,
    Sampler,
)
from ..core.population import PopulationState, make_majority_population, make_population
from ..initializers.adversarial import (
    FrozenUnanimity,
    PoisonedCounters,
    TwoRoundTarget,
    ZeroSpeedCenter,
)
from ..initializers.standard import (
    AllCorrect,
    AllWrong,
    BernoulliRandom,
    ExactFraction,
    Initializer,
    RandomizeProtocolState,
)
from ..protocols import (
    ClockSyncProtocol,
    DEFAULT_SAMPLE_CONSTANT,
    FETProtocol,
    HysteresisFETProtocol,
    MajorityProtocol,
    MajoritySamplingProtocol,
    OracleClockProtocol,
    SimpleTrendProtocol,
    UndecidedStateProtocol,
    VoterProtocol,
    ell_for,
)

__all__ = [
    "build_initializer",
    "build_population",
    "build_protocol",
    "build_samplers",
    "component_catalog",
    "initializer_names",
    "population_factory",
    "population_names",
    "protocol_factory",
    "protocol_names",
    "sampler_names",
    "validate_cell",
]


def _params(spec: dict, kind: str, allowed: set[str]) -> dict:
    params = {key: value for key, value in spec.items() if key != "name"}
    unknown = set(params) - allowed
    if unknown:
        raise ValueError(
            f"unknown parameters {sorted(unknown)} for {kind} {spec['name']!r}; "
            f"allowed: {sorted(allowed) or 'none'}"
        )
    return params


def _resolve_ell(params: dict, n: int) -> int:
    if "ell" in params:
        return int(params["ell"])
    return ell_for(n, float(params.get("sample_constant", DEFAULT_SAMPLE_CONSTANT)))


_ELL_PARAMS = {"ell", "sample_constant"}

#: name -> (builder(params, n) -> Protocol, allowed parameter names)
_PROTOCOLS: dict[str, tuple[Callable[[dict, int], Protocol], set[str]]] = {
    "fet": (lambda p, n: FETProtocol(_resolve_ell(p, n)), _ELL_PARAMS),
    "simple-trend": (lambda p, n: SimpleTrendProtocol(_resolve_ell(p, n)), _ELL_PARAMS),
    "sample-majority": (lambda p, n: MajoritySamplingProtocol(_resolve_ell(p, n)), _ELL_PARAMS),
    "hysteresis-fet": (
        lambda p, n: HysteresisFETProtocol(_resolve_ell(p, n), band=int(p.get("band", 1))),
        _ELL_PARAMS | {"band"},
    ),
    "voter": (lambda p, n: VoterProtocol(), set()),
    "k-majority": (lambda p, n: MajorityProtocol(k=int(p.get("k", 3))), {"k"}),
    "undecided-state": (lambda p, n: UndecidedStateProtocol(), set()),
    "oracle-clock": (lambda p, n: OracleClockProtocol(n, ell=int(p.get("ell", 1))), {"ell"}),
    "clock-sync": (lambda p, n: ClockSyncProtocol(n, ell=int(p.get("ell", 1))), {"ell"}),
}

#: name -> (builder(params) -> Initializer, allowed parameter names)
_INITIALIZERS: dict[str, tuple[Callable[[dict], Initializer], set[str]]] = {
    "all-wrong": (lambda p: AllWrong(), set()),
    "all-correct": (lambda p: AllCorrect(), set()),
    "bernoulli": (lambda p: BernoulliRandom(float(p.get("p", 0.5))), {"p"}),
    "fraction": (lambda p: ExactFraction(float(p["x"])), {"x"}),
    "randomize-state": (lambda p: RandomizeProtocolState(), set()),
    "two-round": (
        lambda p: TwoRoundTarget(float(p["x_prev"]), float(p["x_now"])),
        {"x_prev", "x_now"},
    ),
    "zero-speed-center": (lambda p: ZeroSpeedCenter(), set()),
    "poisoned-counters": (lambda p: PoisonedCounters(), set()),
    "frozen-unanimity": (
        lambda p: FrozenUnanimity(int(p.get("opinion", 1))),
        {"opinion"},
    ),
}

#: name -> (builder(params, n, num_sources, correct_opinion) -> PopulationState,
#:          allowed parameter names). ``standard`` is what every run spec
#:          builds natively when no population component is declared — it is
#:          registered so specs can say so explicitly, and resolution treats
#:          it as "no override" to keep the vectorized batch-init fast path.
_POPULATIONS: dict[
    str,
    tuple[Callable[[dict, int, int, int], PopulationState], set[str]],
] = {
    "standard": (
        lambda p, n, num_sources, correct: make_population(
            n, correct, num_sources=num_sources
        ),
        set(),
    ),
    "majority": (
        lambda p, n, num_sources, correct: _build_majority(p, n, correct),
        {"k0", "k1"},
    ),
}


def _build_majority(params: dict, n: int, correct_opinion: int) -> PopulationState:
    if "k0" not in params or "k1" not in params:
        raise ValueError("the 'majority' population needs 'k0' and 'k1' source counts")
    k0, k1 = int(params["k0"]), int(params["k1"])
    population = make_majority_population(n, k0, k1)
    if population.correct_opinion != correct_opinion:
        raise ValueError(
            f"the majority of sources prefers {population.correct_opinion} "
            f"(k0={k0}, k1={k1}), but the spec declares "
            f"correct_opinion={correct_opinion}"
        )
    return population


def _method_param(params: dict) -> str:
    return str(params.get("method", "auto"))


def _epsilon_param(params: dict) -> float:
    if "epsilon" not in params:
        raise ValueError("the 'noisy' sampler needs an 'epsilon' parameter")
    return float(params["epsilon"])


#: name -> (scalar builder(params) -> Sampler,
#:          batched builder(params) -> BatchedSampler | None when the model
#:          has no batched counterpart (forces the sequential engine),
#:          allowed parameter names)
_SAMPLERS: dict[
    str,
    tuple[
        Callable[[dict], Sampler],
        Callable[[dict], BatchedSampler] | None,
        set[str],
    ],
] = {
    "binomial": (
        lambda p: BinomialCountSampler(),
        lambda p: BatchedBinomialSampler(_method_param(p)),
        {"method"},
    ),
    "noisy": (
        lambda p: NoisyCountSampler(_epsilon_param(p)),
        lambda p: BatchedNoisyCountSampler(_epsilon_param(p), _method_param(p)),
        {"epsilon", "method"},
    ),
    "index": (
        lambda p: IndexSampler(exclude_self=bool(p.get("exclude_self", False))),
        None,
        {"exclude_self"},
    ),
}


def protocol_names() -> list[str]:
    return sorted(_PROTOCOLS)


def initializer_names() -> list[str]:
    return sorted(_INITIALIZERS)


def sampler_names() -> list[str]:
    return sorted(_SAMPLERS)


def population_names() -> list[str]:
    return sorted(_POPULATIONS)


def component_catalog() -> dict[str, dict[str, list[str]]]:
    """Kind → name → accepted parameter names, straight from the registries.

    The single source the documentation surfaces (``repro sweep --list``)
    render from — so the printed catalog can never drift from what the
    builders actually accept.
    """
    return {
        "protocol": {name: sorted(entry[1]) for name, entry in sorted(_PROTOCOLS.items())},
        "initializer": {name: sorted(entry[1]) for name, entry in sorted(_INITIALIZERS.items())},
        "sampler": {name: sorted(entry[2]) for name, entry in sorted(_SAMPLERS.items())},
        "population": {name: sorted(entry[1]) for name, entry in sorted(_POPULATIONS.items())},
    }


def build_protocol(spec: dict, n: int) -> Protocol:
    """Instantiate the protocol described by ``spec`` for population size ``n``."""
    name = spec.get("name")
    if name not in _PROTOCOLS:
        raise ValueError(f"unknown protocol {name!r}; known protocols: {protocol_names()}")
    builder, allowed = _PROTOCOLS[name]
    return builder(_params(spec, "protocol", allowed), n)


def protocol_factory(spec: dict, n: int) -> Callable[[], Protocol]:
    """Zero-argument factory building a fresh protocol instance per call.

    The first instantiation (inside the factory's creator) surfaces spec
    errors immediately; the orchestrator additionally validates every cell
    *before* dispatching (:func:`validate_cell`), so bad specs fail fast in
    the orchestrating process rather than inside a pool worker.
    """
    build_protocol(spec, n)
    return lambda: build_protocol(spec, n)


def build_initializer(spec: dict) -> Initializer:
    """Instantiate the initializer described by ``spec``."""
    name = spec.get("name")
    if name not in _INITIALIZERS:
        raise ValueError(f"unknown initializer {name!r}; known initializers: {initializer_names()}")
    builder, allowed = _INITIALIZERS[name]
    return builder(_params(spec, "initializer", allowed))


def build_population(
    spec: dict, n: int, *, num_sources: int = 1, correct_opinion: int = 1
) -> PopulationState:
    """Instantiate the population layout described by ``spec``.

    ``standard`` reproduces exactly what ``make_population`` builds from the
    run spec's shape fields; ``majority`` builds the Section-1.2 variant
    (its ``k0``/``k1`` parameters define the source structure, so the run
    spec's ``num_sources`` is not consulted, and ``correct_opinion`` must
    agree with the declared source majority).
    """
    name = spec.get("name")
    if name not in _POPULATIONS:
        raise ValueError(
            f"unknown population {name!r}; known populations: {population_names()}"
        )
    builder, allowed = _POPULATIONS[name]
    return builder(_params(spec, "population", allowed), n, num_sources, correct_opinion)


def population_factory(
    spec: dict, n: int, *, num_sources: int = 1, correct_opinion: int = 1
) -> Callable[[], PopulationState] | None:
    """Zero-argument factory building a fresh population per call.

    Returns ``None`` for the ``standard`` layout — it is precisely what the
    engines build natively from the shape fields, and resolving it to "no
    override" keeps the vectorized batch-initialization and counts fast
    paths available. Parameter errors surface immediately (the first
    instantiation happens in the creator), before any worker is spawned.
    """
    name = spec.get("name")
    if name not in _POPULATIONS:
        raise ValueError(
            f"unknown population {name!r}; known populations: {population_names()}"
        )
    _params(spec, "population", _POPULATIONS[name][1])
    if name == "standard":
        return None
    build_population(spec, n, num_sources=num_sources, correct_opinion=correct_opinion)
    return lambda: build_population(
        spec, n, num_sources=num_sources, correct_opinion=correct_opinion
    )


def build_samplers(
    spec: dict,
) -> tuple[Callable[[], Sampler], BatchedSampler | None]:
    """The paired (scalar factory, batched sampler) for an observation spec.

    One registry entry produces *both* sides of the observation model, so a
    declared sampler can never reach the batched engine unpaired — the old
    ``sampler_factory``-without-``batched_sampler`` footgun has no
    declarative equivalent. Entries without a batched counterpart return
    ``None`` on the batched side; engine resolution treats that as
    "sequential only".
    """
    name = spec.get("name")
    if name not in _SAMPLERS:
        raise ValueError(f"unknown sampler {name!r}; known samplers: {sampler_names()}")
    scalar_builder, batched_builder, allowed = _SAMPLERS[name]
    params = _params(spec, "sampler", allowed)
    scalar_builder(params)  # surface parameter errors immediately
    batched = batched_builder(params) if batched_builder is not None else None
    return (lambda: scalar_builder(params)), batched


def validate_cell(cell) -> None:
    """Fail fast on a cell whose components cannot be built.

    Called by the orchestrator on every cell before any worker is spawned,
    so a typo'd protocol, initializer, or sampler name raises one clear
    ValueError in the orchestrating process instead of an opaque exception
    from inside a pool worker after part of the grid has already run.
    """
    try:
        protocol = build_protocol(cell.protocol, cell.n)
        initializer = build_initializer(cell.initializer)
        population = getattr(cell, "population", None)
        if population is not None:
            build_population(
                population,
                cell.n,
                num_sources=cell.num_sources,
                correct_opinion=cell.correct_opinion,
            )
        if cell.initializer.get("name") == "frozen-unanimity" and (
            population is None or population.get("name") != "majority"
        ):
            raise ValueError(
                "the frozen-unanimity initializer models the majority variant; "
                "declare population={'name': 'majority', 'k0': ..., 'k1': ...}"
            )
        if cell.engine == "counts":
            # The counts engine models exchangeable source-pinned populations
            # through their state-count sufficient statistic; every component
            # that needs per-agent structure is rejected here, before any
            # worker is spawned.
            if not protocol.counts_supported:
                raise ValueError(
                    f"protocol {cell.protocol['name']!r} has no count model "
                    "(counts_supported=False); the counts engine cannot run "
                    "it — use engine='auto', 'batched' or 'sequential'"
                )
            if not initializer.supports_counts:
                raise ValueError(
                    f"initializer {cell.initializer['name']!r} builds "
                    "per-agent configurations (supports_counts=False); the "
                    "counts engine needs an exchangeable count-level "
                    "initializer"
                )
            if population is not None and population.get("name") != "standard":
                raise ValueError(
                    f"population {population.get('name')!r} is a crafted "
                    "per-agent layout; the counts engine only models the "
                    "standard source-pinned population"
                )
            if cell.measure.get("kind") == "trace" and cell.measure.get("flips"):
                raise ValueError(
                    "per-agent flip counts are not a function of the "
                    "state-count sufficient statistic; the counts engine "
                    "cannot record them — use engine='batched'"
                )
        if cell.sampler is not None:
            _, batched = build_samplers(cell.sampler)
            if batched is None:
                # A sequential-only observation model is fine per se, but
                # not with anything that requires the batched engine —
                # surface the conflict here, not from inside a worker.
                if cell.engine == "batched":
                    raise ValueError(
                        f"sampler {cell.sampler['name']!r} has no batched "
                        "observation model; use engine='auto' or 'sequential'"
                    )
                if cell.engine == "counts":
                    raise ValueError(
                        f"sampler {cell.sampler['name']!r} has no "
                        "fraction-keyed batched observation model; the "
                        "counts engine cannot run it"
                    )
                if cell.measure.get("kind") == "trace":
                    raise ValueError(
                        "the trace measure runs on the batched engine, but "
                        f"sampler {cell.sampler['name']!r} has no batched "
                        "observation model"
                    )
            elif cell.engine == "counts" and not hasattr(batched, "effective_fractions"):
                raise ValueError(
                    f"sampler {cell.sampler['name']!r} is not keyed on "
                    "one-fractions; the counts engine draws its own "
                    "multinomial transitions and only supports the "
                    "BatchedBinomialSampler family"
                )
    except (ValueError, KeyError, TypeError) as error:
        raise ValueError(f"invalid sweep cell [{cell.label()}]: {error}") from error
