"""Persistent results store: resumable JSON-lines cache of cell results.

One line per completed cell, appended (and flushed) the moment the cell
finishes, keyed by the content hash of the cell's spec + derived seed
(:meth:`~repro.sweep.spec.Cell.key`). Because the key covers everything
that determines a cell's result, a store hit is interchangeable with a
fresh computation — which gives the two behaviors the orchestrator builds
on:

* **resume after interrupt** — a killed sweep leaves a valid line per
  finished cell (at worst one truncated tail line, which loading skips);
  re-running the same sweep recomputes only the missing cells;
* **skip-if-cached** — re-running a fully-stored sweep executes nothing,
  and editing any knob of a cell (seed, trials, budget, protocol
  parameters) changes its key, so stale entries can never be served.

The file format is self-describing (each line carries the full cell spec
alongside its payload), so a store doubles as a flat archive of everything
a machine has ever computed for a grid — later lines win when a key was
recomputed (``--force``). Every appended record additionally carries a
**provenance stamp** (host, Python version, package version, UTC timestamp)
so long-lived stores stay auditable: a surprising cached number can be
traced to the machine and software that produced it. Records written before
the stamp existed load unchanged.
"""

from __future__ import annotations

import json
import platform
from datetime import datetime, timezone
from pathlib import Path

__all__ = ["ResultsStore", "provenance_stamp"]


def provenance_stamp() -> dict:
    """Where/when/what produced a record: host, Python, package, UTC time."""
    # Deferred import: the package root imports repro.sweep, so importing it
    # back at module load would be circular.
    from .. import __version__

    return {
        "host": platform.node(),
        "python": platform.python_version(),
        "version": __version__,
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
    }


class ResultsStore:
    """Append-only JSON-lines store mapping cell keys to result records."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._records: dict[str, dict] = {}
        self.corrupt_lines = 0
        self._needs_newline = False
        self._load()

    def _load(self) -> None:
        if not self.path.exists():
            return
        with self.path.open() as handle:
            raw = ""
            for raw in handle:
                line = raw.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                    key = record["key"]
                except (json.JSONDecodeError, KeyError, TypeError):
                    # Interrupted mid-append: the tail line is torn. Keep the
                    # valid prefix; the lost cell simply gets recomputed.
                    self.corrupt_lines += 1
                    continue
                self._records[key] = record
            # A file killed mid-append can end without a newline; the next
            # append must open a fresh line or it would corrupt a record by
            # concatenating onto the torn tail.
            self._needs_newline = bool(raw) and not raw.endswith("\n")

    # ---------------------------------------------------------------- access

    def get(self, key: str) -> dict | None:
        """The stored record for ``key``, or ``None`` on a miss."""
        return self._records.get(key)

    def put(self, key: str, record: dict) -> None:
        """Persist ``record`` under ``key``: append one line and flush.

        Flushing per cell keeps the on-disk file a valid resume point
        throughout a run, not only after a clean exit. The appended line is
        stamped with :func:`provenance_stamp` (callers may pass their own
        ``provenance`` to override, e.g. when copying records verbatim).
        """
        record = dict(record)
        record["key"] = key
        record.setdefault("provenance", provenance_stamp())
        self._records[key] = record
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a") as handle:
            if self._needs_newline:
                handle.write("\n")
                self._needs_newline = False
            handle.write(json.dumps(record, sort_keys=True) + "\n")
            handle.flush()

    def keys(self) -> list[str]:
        return list(self._records)

    def __contains__(self, key: str) -> bool:
        return key in self._records

    def __len__(self) -> int:
        return len(self._records)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ResultsStore(path={str(self.path)!r}, entries={len(self)})"
