"""Persistent results store: resumable JSON-lines cache of cell results.

One line per completed cell, appended (and flushed) the moment the cell
finishes, keyed by the content hash of the cell's spec + derived seed
(:meth:`~repro.sweep.spec.Cell.key`). Because the key covers everything
that determines a cell's result, a store hit is interchangeable with a
fresh computation — which gives the two behaviors the orchestrator builds
on:

* **resume after interrupt** — a killed sweep leaves a valid line per
  finished cell (at worst one truncated tail line, which loading skips);
  re-running the same sweep recomputes only the missing cells;
* **skip-if-cached** — re-running a fully-stored sweep executes nothing,
  and editing any knob of a cell (seed, trials, budget, protocol
  parameters) changes its key, so stale entries can never be served.

The file format is self-describing (each line carries the full cell spec
alongside its payload), so a store doubles as a flat archive of everything
a machine has ever computed for a grid — later lines win when a key was
recomputed (``--force``). Every appended record additionally carries a
**provenance stamp** (host, Python version, package version, UTC timestamp)
so long-lived stores stay auditable: a surprising cached number can be
traced to the machine and software that produced it. Records written before
the stamp existed load unchanged.

Indexed lookup: loading builds an in-memory **key → (byte offset, length)
index** over the file rather than materializing every record — ``get`` is
one seek + one line parse and ``has`` one dict probe, so a long-lived
store (the run service keeps one open for its whole lifetime) costs memory
proportional to the number of *keys*, not to the accumulated payload
bytes. The run-service dedup path (:mod:`repro.service.queue`) and the
orchestrator's skip-if-cached resume path both resolve through this index.

Integrity and durability: every appended record carries a ``checksum``
(:func:`record_checksum`, SHA-256 over its canonical JSON) verified at load
— a line whose content was silently altered (bit rot, hand edits) parses as
valid JSON but is refused and counted in ``checksum_failures`` instead of
being served as a cached result; legacy records without the field load
unchanged. Opening the store with ``durable=True`` adds an ``fsync`` per
append so records survive machine crashes, not just process kills.

Thread safety: a single :class:`threading.RLock` guards the index and the
append path, so the run service's worker threads can share one store
(concurrent ``get``/``put``/``has`` interleave safely). Distinct *store
objects* over one file remain append-compatible but see each other's new
records only on reload — same contract as before.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import threading
from datetime import datetime, timezone
from pathlib import Path

from ..telemetry.events import emit_event
from ..telemetry.registry import current_registry

__all__ = ["ResultsStore", "provenance_stamp", "record_checksum"]


def record_checksum(record: dict) -> str:
    """SHA-256 over the record's canonical JSON, minus the checksum itself.

    Covers everything the line persists — key, cell spec, payload (or
    failure record), provenance — serialized exactly as :meth:`ResultsStore.put`
    writes it (``sort_keys=True``), so a loaded record re-hashes to the same
    digest iff no byte of its content was silently altered.
    """
    body = {key: value for key, value in record.items() if key != "checksum"}
    return hashlib.sha256(json.dumps(body, sort_keys=True).encode()).hexdigest()


def provenance_stamp() -> dict:
    """Where/when/what produced a record: host, Python, package, UTC time."""
    # Deferred import: the package root imports repro.sweep, so importing it
    # back at module load would be circular.
    from .. import __version__

    return {
        "host": platform.node(),
        "python": platform.python_version(),
        "version": __version__,
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
    }


class ResultsStore:
    """Append-only JSON-lines store mapping cell keys to result records.

    Lookups go through an in-memory key → (offset, length) index built at
    load: ``has(key)`` is O(1), ``get(key)`` is O(1) plus one seek-and-parse
    of the single matching line. Records are *not* kept in memory, so a
    store holding years of sweep history costs bytes per key, not per
    payload.

    ``durable=True`` adds an ``fsync`` after every appended line, so a
    record survives a *machine* crash (power loss, kernel panic), not just
    a process kill — ``flush()`` alone only moves bytes into the page
    cache. The cost is one disk barrier per cell (typically 1–10 ms, well
    under any real cell's compute time); leave it off for throwaway stores
    in tight test loops.
    """

    def __init__(self, path: str | Path, *, durable: bool = False) -> None:
        self.path = Path(path)
        self.durable = durable
        #: key -> (byte offset of the line, byte length incl. newline)
        self._index: dict[str, tuple[int, int]] = {}
        self.corrupt_lines = 0
        self.checksum_failures = 0
        self._loaded_lines = 0
        self._needs_newline = False
        self._end_offset = 0
        self._lock = threading.RLock()
        self._load()

    def _load(self) -> None:
        if not self.path.exists():
            return
        with self._lock, self.path.open("rb") as handle:
            offset = 0
            tail = b""
            while True:
                raw = handle.readline()
                if not raw:
                    break
                tail = raw
                start, offset = offset, offset + len(raw)
                line = raw.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line.decode("utf-8"))
                    key = record["key"]
                except (json.JSONDecodeError, UnicodeDecodeError, KeyError, TypeError):
                    # Interrupted mid-append: the tail line is torn. Keep the
                    # valid prefix; the lost cell simply gets recomputed.
                    self.corrupt_lines += 1
                    continue
                checksum = record.get("checksum")
                if checksum is not None and checksum != record_checksum(record):
                    # Valid JSON whose content no longer matches its stamp —
                    # bit rot or a hand edit. Refuse to serve it; the cell
                    # recomputes like any miss. (Legacy records without the
                    # field predate checksums and load unchanged.)
                    self.checksum_failures += 1
                    metrics = current_registry()
                    if metrics is not None:
                        metrics.counter(
                            "repro_store_checksum_failures_total",
                            "Records refused at load because their checksum "
                            "no longer matched their content.",
                        ).inc()
                    continue
                self._loaded_lines += 1
                self._index[key] = (start, len(raw))
            # A file killed mid-append can end without a newline; the next
            # append must open a fresh line or it would corrupt a record by
            # concatenating onto the torn tail.
            self._needs_newline = bool(tail) and not tail.endswith(b"\n")
            self._end_offset = offset

    # ---------------------------------------------------------------- access

    def has(self, key: str) -> bool:
        """Whether a record for ``key`` is present — one index probe, no IO."""
        with self._lock:
            return key in self._index

    def get(self, key: str) -> dict | None:
        """The stored record for ``key``, or ``None`` on a miss.

        Served through the offset index: a hit seeks to the record's line
        and parses just that line (the line was validated — JSON and
        checksum — when the index was built, at load or append time).
        """
        with self._lock:
            entry = self._index.get(key)
            if entry is None:
                return None
            offset, length = entry
            try:
                with self.path.open("rb") as handle:
                    handle.seek(offset)
                    line = handle.read(length)
                return json.loads(line.decode("utf-8"))
            except (OSError, json.JSONDecodeError, UnicodeDecodeError):
                # The file changed under the index (truncated or rewritten
                # externally). Treat as a miss — the cell recomputes — rather
                # than serving garbage.
                return None

    def put(self, key: str, record: dict) -> None:
        """Persist ``record`` under ``key``: append one line and flush.

        Flushing per cell keeps the on-disk file a valid resume point
        throughout a run, not only after a clean exit (a ``durable`` store
        additionally fsyncs, surviving machine crashes). The appended line
        is stamped with :func:`provenance_stamp` (callers may pass their
        own ``provenance`` to override, e.g. when copying records verbatim)
        and carries a ``checksum`` over its content so silent corruption is
        caught at load time instead of being served as a cached result.
        """
        record = dict(record)
        record["key"] = key
        record.setdefault("provenance", provenance_stamp())
        record["checksum"] = record_checksum(record)
        payload = (json.dumps(record, sort_keys=True) + "\n").encode("utf-8")
        with self._lock:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with self.path.open("ab") as handle:
                if self._needs_newline:
                    handle.write(b"\n")
                    self._end_offset += 1
                    self._needs_newline = False
                start = self._end_offset
                handle.write(payload)
                handle.flush()
                if self.durable:
                    os.fsync(handle.fileno())
            self._index[key] = (start, len(payload))
            self._end_offset = start + len(payload)
            self._loaded_lines += 1
        metrics = current_registry()
        if metrics is not None:
            metrics.counter(
                "repro_store_appends_total",
                "Result/failure records appended to the results store.",
            ).inc()
        emit_event("store.append", key=key, failed="error" in record)

    def compact(self) -> dict:
        """Rewrite the file keeping only the latest record per key.

        Long-lived stores accumulate superseded lines (``--force`` reruns)
        and the occasional torn tail from an interrupted append; compaction
        rewrites the surviving indexed view — exactly what :meth:`get`
        already serves, last write winning — in insertion order, copying
        each surviving line's bytes verbatim (provenance stamps included).

        The replace is atomic and torn-tail-safe: records stream to a
        ``<name>.compact.tmp`` sibling first (same filesystem, so the final
        ``os.replace`` is a single atomic rename), the temporary file is
        flushed and fsynced before the swap, and a failure midway leaves
        the original store untouched. A reader therefore sees either the
        old file or the complete compacted one, never a partial rewrite.
        The file is re-read immediately before the rewrite so appends made
        since this store object loaded are kept — but compaction is not
        synchronized against a *concurrently appending* sweep (a line
        landing between the re-read and the rename is lost from the file
        and simply recomputed on the next resume); compact between runs,
        not during one.

        Returns a summary dict: ``lines_before`` (valid lines read,
        i.e. including superseded duplicates), ``corrupt_lines`` and
        ``checksum_failures`` dropped, and ``records`` kept.
        """
        with self._lock:
            if self.path.exists():
                # Pick up records other store handles appended after our load.
                self._index = {}
                self.corrupt_lines = 0
                self.checksum_failures = 0
                self._loaded_lines = 0
                self._needs_newline = False
                self._end_offset = 0
                self._load()
            summary = {
                "lines_before": self._loaded_lines,
                "corrupt_lines": self.corrupt_lines,
                "checksum_failures": self.checksum_failures,
                "records": len(self._index),
            }
            if not self.path.exists():
                return summary
            tmp = self.path.with_name(self.path.name + ".compact.tmp")
            new_index: dict[str, tuple[int, int]] = {}
            with self.path.open("rb") as source, tmp.open("wb") as handle:
                position = 0
                for key, (offset, length) in self._index.items():
                    source.seek(offset)
                    line = source.read(length)
                    if not line.endswith(b"\n"):
                        line += b"\n"
                    handle.write(line)
                    new_index[key] = (position, len(line))
                    position += len(line)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, self.path)
            self._index = new_index
            self._loaded_lines = len(self._index)
            self.corrupt_lines = 0
            self.checksum_failures = 0
            self._needs_newline = False
            self._end_offset = position
        metrics = current_registry()
        if metrics is not None:
            help_text = "Store lines dropped by compaction, by reason."
            for reason, dropped in (
                ("superseded", summary["lines_before"] - summary["records"]),
                ("corrupt", summary["corrupt_lines"]),
                ("checksum", summary["checksum_failures"]),
            ):
                if dropped:
                    metrics.counter(
                        "repro_store_compact_dropped_total", help_text, reason=reason
                    ).inc(dropped)
        return summary

    def keys(self) -> list[str]:
        with self._lock:
            return list(self._index)

    def __contains__(self, key: str) -> bool:
        return self.has(key)

    def __len__(self) -> int:
        with self._lock:
            return len(self._index)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ResultsStore(path={str(self.path)!r}, entries={len(self)})"
