"""Cell execution: the worker-side function of the sweep orchestrator.

:func:`execute_cell` is a pure function of a :class:`~repro.sweep.spec.Cell`
— it builds the protocol and initializer from the cell's declarative specs,
runs the measurement under the cell's derived seed, and returns a
JSON-able :class:`CellResult`. Purity is what buys the orchestrator its
guarantees: results are identical whether a cell runs inline, in any of N
pool workers, or in a later resumed process, so aggregate output is
reproducible regardless of scheduling, and cached store entries are
interchangeable with fresh computations.

Two measurement kinds are supported (``cell.measure["kind"]``):

``consensus``
    Full convergence aggregates via
    :func:`~repro.experiments.harness.run_trials` — the measurement behind
    the scaling/comparison tables. Noise cells pair
    :class:`~repro.core.noise.NoisyCountSampler` with its batched
    counterpart so the fast path is preserved.
``theta``
    θ-convergence plus settle level — the robustness measurement of
    :mod:`repro.experiments.robustness`: per-trial sequential runs stop when
    the correct non-source fraction first reaches θ, then step on for a
    settle window and record the mean level held.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from ..core.engine import SynchronousEngine
from ..core.noise import BatchedNoisyCountSampler, NoisyCountSampler
from ..core.population import make_population
from ..core.rng import spawn_rngs
from ..stats.summary import TimesSummary, describe_times
from .registry import build_initializer, protocol_factory
from .spec import Cell

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..experiments.harness import TrialStats

# The experiment drivers in repro.experiments build on this package, so the
# harness import must happen at call time to keep the package import DAG
# acyclic (repro.sweep must be importable before repro.experiments).

__all__ = ["CellResult", "execute_cell", "RESULT_COLUMNS"]

#: Flat export columns shared by the CSV and table renderings, in order.
RESULT_COLUMNS = (
    "protocol",
    "init",
    "n",
    "noise",
    "trials",
    "successes",
    "rate",
    "median",
    "mean",
    "p95",
    "max",
    "settle",
    "engine",
)


@dataclass
class CellResult:
    """Outcome of one sweep cell, in store/transport form.

    ``cell`` is the cell's ``to_dict()`` form and ``payload`` the
    measurement outcome — both JSON-able, so a result pickles to/from worker
    processes and round-trips through the JSON-lines store unchanged.
    ``cached`` marks results served from a store instead of computed.
    """

    key: str
    cell: dict
    payload: dict
    cached: bool = field(default=False, compare=False)

    @property
    def measure(self) -> str:
        return self.payload["measure"]

    def times(self) -> np.ndarray:
        return np.asarray(self.payload["times"], dtype=float)

    def time_summary(self) -> TimesSummary:
        return describe_times(self.times())

    def stats(self) -> "TrialStats":
        """Rebuild the :class:`TrialStats` of a consensus cell."""
        from ..experiments.harness import TrialStats

        if self.measure != "consensus":
            raise ValueError(f"cell measured {self.measure!r}, not consensus")
        return TrialStats(
            protocol_name=self.payload["protocol"],
            initializer_name=self.payload["initializer"],
            n=self.cell["n"],
            trials=self.cell["trials"],
            max_rounds=self.cell["max_rounds"],
            successes=self.payload["successes"],
            times=self.times(),
            engine=self.payload["engine"],
        )

    def row(self) -> dict:
        """Flat dict over :data:`RESULT_COLUMNS` for CSV/table export.

        Columns that do not apply to the cell's measure (``settle`` for
        consensus cells) are NaN; exporters render NaN as blank.
        """
        trials = self.cell["trials"]
        summary = self.time_summary()
        if self.measure == "theta":
            successes = self.payload["reached"]
            levels = self.payload["settle_levels"]
            settle = float(np.mean(levels)) if levels else float("nan")
        else:
            successes = self.payload["successes"]
            settle = float("nan")
        return {
            "protocol": self.payload["protocol"],
            "init": self.payload["initializer"],
            "n": self.cell["n"],
            "noise": self.cell["noise"],
            "trials": trials,
            "successes": successes,
            "rate": successes / trials if trials else float("nan"),
            "median": summary.median,
            "mean": summary.mean,
            "p95": summary.p95,
            "max": summary.maximum,
            "settle": settle,
            "engine": self.payload["engine"],
        }


def execute_cell(cell: Cell) -> CellResult:
    """Run one cell to completion and package its result.

    Deterministic given the cell alone (the cell carries its derived seed),
    with no dependence on global state — safe to call from pool workers.
    """
    factory = protocol_factory(cell.protocol, cell.n)
    initializer = build_initializer(cell.initializer)
    kind = cell.measure["kind"]
    if kind == "consensus":
        payload = _measure_consensus(cell, factory, initializer)
    elif kind == "theta":
        payload = _measure_theta(cell, factory, initializer)
    else:
        raise ValueError(f"unknown measure kind {cell.measure!r}")
    return CellResult(key=cell.key(), cell=cell.to_dict(), payload=payload)


def _measure_consensus(cell: Cell, factory, initializer) -> dict:
    from ..experiments.harness import run_trials

    noisy = cell.noise > 0.0
    stats = run_trials(
        factory,
        cell.n,
        initializer,
        trials=cell.trials,
        max_rounds=cell.max_rounds,
        seed=cell.seed,
        sampler_factory=(lambda: NoisyCountSampler(cell.noise)) if noisy else None,
        batched_sampler=BatchedNoisyCountSampler(cell.noise) if noisy else None,
        stability_rounds=cell.stability_rounds,
        engine=cell.engine,
    )
    return {
        "measure": "consensus",
        "protocol": stats.protocol_name,
        "initializer": stats.initializer_name,
        "successes": stats.successes,
        "times": [float(t) for t in stats.times],
        "engine": stats.engine,
    }


def _measure_theta(cell: Cell, factory, initializer) -> dict:
    """θ-convergence + settle level, per trial on the sequential engine.

    The settle window keeps stepping an engine after its stop condition
    fired, which the batched engine's retirement model does not support —
    so this measure always runs sequentially, whatever ``cell.engine`` says.
    """
    theta = float(cell.measure["theta"])
    settle_window = int(cell.measure.get("settle_window", 20))
    protocol_name = ""
    times: list[int] = []
    settle_levels: list[float] = []
    reached = 0
    for rng in spawn_rngs(cell.seed, cell.trials):
        protocol = factory()
        protocol_name = protocol.name
        population = make_population(cell.n, 1)
        state = protocol.init_state(cell.n, rng)
        initializer(population, protocol, state, rng)
        engine = SynchronousEngine(
            protocol,
            population,
            sampler=NoisyCountSampler(cell.noise),
            rng=rng,
            state=state,
        )
        result = engine.run(
            cell.max_rounds,
            stability_rounds=cell.stability_rounds,
            stop_condition=lambda pop: pop.nonsource_correct_fraction() >= theta,
        )
        if result.converged:
            reached += 1
            times.append(result.rounds)
            levels = []
            for _ in range(settle_window):
                engine.step()
                levels.append(population.nonsource_correct_fraction())
            settle_levels.append(float(np.mean(levels)))
    if cell.trials == 0:
        protocol_name = factory().name
    return {
        "measure": "theta",
        "protocol": protocol_name,
        "initializer": initializer.name,
        "reached": reached,
        "times": [float(t) for t in times],
        "settle_levels": settle_levels,
        "theta": theta,
        "settle_window": settle_window,
        "engine": "sequential",
    }
