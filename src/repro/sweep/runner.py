"""Cell execution: the worker-side function of the sweep orchestrator.

:func:`execute_cell` is a pure function of a :class:`~repro.sweep.spec.Cell`
— it builds the protocol and initializer from the cell's declarative specs,
runs the measurement under the cell's derived seed, and returns a
JSON-able :class:`CellResult`. Purity is what buys the orchestrator its
guarantees: results are identical whether a cell runs inline, in any of N
pool workers, or in a later resumed process, so aggregate output is
reproducible regardless of scheduling, and cached store entries are
interchangeable with fresh computations.

Measurement kinds live in a **registry** (:func:`register_measure`), so new
trace-derived measures plug in without touching the spec or orchestrator.
Three kinds ship built in (``cell.measure["kind"]``):

``consensus``
    Full convergence aggregates via :meth:`~repro.config.RunSpec.execute`
    (a sweep cell *is* a run spec) — the measurement behind the
    scaling/comparison tables. Observation models are resolved by the
    spec itself: noise cells get the paired noisy samplers, declarative
    ``sampler`` components their registry pair, so the fast path is
    preserved without any hand pairing.
``theta``
    θ-convergence plus settle level — the robustness measurement of
    :mod:`repro.experiments.robustness`. On the batched engines the settle
    window is served by trace recording plus ``linger_rounds`` retirement
    (replicas keep stepping through their window before retiring), and the
    per-trial settle levels are reduced vectorized from the trace; the
    sequential per-trial loop remains behind ``engine="sequential"`` as the
    cross-check path.
``trace``
    Convergence aggregates plus trace-derived trajectory statistics (settle
    round per replica, optional post-settle flip rate) recorded through a
    configurable recorder (``stride``, ``ring`` capacity, ``flips``) —
    also the workload of the trace-overhead benchmark.
"""

from __future__ import annotations

import time
from contextlib import ExitStack
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

import numpy as np

from ..core.engine import SynchronousEngine
from ..telemetry.events import EventLog, use_event_log
from ..telemetry.registry import MetricsRegistry, use_registry
from ..telemetry.spans import SpanTracer, use_tracer
from ..core.rng import spawn_rngs
from ..stats.summary import TimesSummary, describe_times
from ..trace import (
    FullTrace,
    make_recorder,
    nonsource_correct_fractions,
    post_settle_flip_rate,
    settle_rounds,
    window_mean_after,
)
from .registry import build_initializer, protocol_factory
from .spec import Cell

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..experiments.harness import TrialStats

# The experiment drivers in repro.experiments build on this package, so the
# harness import must happen at call time to keep the package import DAG
# acyclic (repro.sweep must be importable before repro.experiments).

__all__ = [
    "CellResult",
    "MeteredCell",
    "execute_cell",
    "measure_kinds",
    "register_measure",
    "validate_measure",
    "RESULT_COLUMNS",
    "ERROR_COLUMN",
]

#: Extra export column appended after :data:`RESULT_COLUMNS` when (and only
#: when) a sweep carries recorded failures — fault-free exports keep their
#: exact historical bytes.
ERROR_COLUMN = "error"

#: Flat export columns shared by the CSV and table renderings, in order.
RESULT_COLUMNS = (
    "protocol",
    "init",
    "n",
    "noise",
    "trials",
    "successes",
    "rate",
    "median",
    "mean",
    "p95",
    "max",
    "settle",
    "engine",
)


@dataclass
class CellResult:
    """Outcome of one sweep cell, in store/transport form.

    ``cell`` is the cell's ``to_dict()`` form and ``payload`` the
    measurement outcome — both JSON-able, so a result pickles to/from worker
    processes and round-trips through the JSON-lines store unchanged.
    ``cached`` marks results served from a store instead of computed.

    A cell that exhausted its retries under a ``FaultPolicy`` with
    ``on_failure="record"`` carries an ``error`` dict (the
    :meth:`~repro.sweep.dispatch.FailedItem.to_record` form — error type,
    message, traceback tail, per-attempt log) and an empty payload; its
    :meth:`row` renders NaN in every payload-derived column plus the
    ``error`` column, and the payload accessors raise.
    """

    key: str
    cell: dict
    payload: dict
    cached: bool = field(default=False, compare=False)
    error: dict | None = None
    #: Worker-side metrics snapshot (``MetricsSnapshot.to_dict()`` form),
    #: attached by :class:`MeteredCell` when the sweep runs with telemetry;
    #: ``None`` otherwise. Excluded from equality: two runs of one cell are
    #: the same result regardless of how they were observed.
    metrics: dict | None = field(default=None, compare=False)
    #: Wall-clock seconds of the computing attempt; ``None`` on legacy
    #: records and on failure records (their duration is censored).
    elapsed_s: float | None = field(default=None, compare=False)
    #: Worker-side span log (``SpanLog.to_dict()`` form), attached by
    #: :class:`MeteredCell` when the sweep runs with tracing; ``None``
    #: otherwise. Like ``metrics``, excluded from equality and not
    #: persisted to the store (a cached cell was not executed, so it has
    #: no timeline).
    spans: dict | None = field(default=None, compare=False)
    #: Worker-side structured events (plain dict list), attached by
    #: :class:`MeteredCell` when the sweep runs with event logging.
    events: list | None = field(default=None, compare=False)

    @property
    def failed(self) -> bool:
        """Whether this cell is a recorded failure instead of a result."""
        return self.error is not None

    def _require_payload(self) -> None:
        if self.failed:
            raise ValueError(
                f"cell failed after {self.error.get('attempts', '?')} attempt(s) "
                f"({self.error.get('type')}: {self.error.get('message')}); "
                "it has no payload"
            )

    @property
    def measure(self) -> str:
        self._require_payload()
        return self.payload["measure"]

    def times(self) -> np.ndarray:
        self._require_payload()
        return np.asarray(self.payload["times"], dtype=float)

    def time_summary(self) -> TimesSummary:
        return describe_times(self.times())

    def stats(self) -> "TrialStats":
        """Rebuild the :class:`TrialStats` of a consensus cell."""
        from ..experiments.harness import TrialStats

        if self.measure != "consensus":
            raise ValueError(f"cell measured {self.measure!r}, not consensus")
        return TrialStats(
            protocol_name=self.payload["protocol"],
            initializer_name=self.payload["initializer"],
            n=self.cell["n"],
            trials=self.cell["trials"],
            max_rounds=self.cell["max_rounds"],
            successes=self.payload["successes"],
            times=self.times(),
            engine=self.payload["engine"],
        )

    def row(self) -> dict:
        """Flat dict over :data:`RESULT_COLUMNS` (+ ``error``) for export.

        Columns that do not apply to the cell's measure (``settle`` for
        consensus cells, ``successes``/``rate`` for a registered custom
        measure whose payload carries neither ``successes`` nor ``reached``)
        are NaN; exporters render NaN as blank. Failure records render NaN
        in every payload-derived column with the deterministic
        ``"ErrorType: message"`` rendering in ``error`` — succeeding rows
        carry an empty ``error`` so the column only surfaces in exports
        when a sweep actually recorded failures.
        """
        if self.failed:
            row = dict.fromkeys(RESULT_COLUMNS, float("nan"))
            row.update(
                {
                    "protocol": self.cell["protocol"]["name"],
                    "init": self.cell["initializer"]["name"],
                    "n": self.cell["n"],
                    "noise": self.cell["noise"],
                    "trials": self.cell["trials"],
                    "engine": "",
                    "error": f"{self.error.get('type')}: {self.error.get('message')}",
                }
            )
            if self.elapsed_s is not None:
                row["elapsed_s"] = self.elapsed_s
            return row
        trials = self.cell["trials"]
        summary = self.time_summary()
        settle = float("nan")
        if self.measure == "theta":
            successes = self.payload["reached"]
            levels = self.payload["settle_levels"]
            if levels:
                settle = float(np.mean(levels))
        else:
            successes = self.payload.get("successes", self.payload.get("reached", float("nan")))
        row = {
            "protocol": self.payload["protocol"],
            "init": self.payload["initializer"],
            "n": self.cell["n"],
            "noise": self.cell["noise"],
            "trials": trials,
            "successes": successes,
            "rate": successes / trials if trials else float("nan"),
            "median": summary.median,
            "mean": summary.mean,
            "p95": summary.p95,
            "max": summary.maximum,
            "settle": settle,
            "engine": self.payload["engine"],
            "error": "",
        }
        # Present only when recorded (new runs / new-format store records):
        # not a RESULT_COLUMN, so exported CSVs keep their exact legacy bytes.
        if self.elapsed_s is not None:
            row["elapsed_s"] = self.elapsed_s
        return row


# --------------------------------------------------------- measure registry

#: kind -> (executor(cell, factory, initializer) -> payload, validator(measure))
_MEASURES: dict[str, tuple[Callable, Callable[[dict], None] | None]] = {}


def register_measure(
    kind: str,
    executor: Callable[[Cell, Callable, object], dict],
    validator: Callable[[dict], None] | None = None,
) -> None:
    """Register a measurement kind for sweep cells.

    ``executor(cell, protocol_factory, initializer)`` must return a JSON-able
    payload dict carrying at least ``measure``, ``protocol``,
    ``initializer``, ``times`` and ``engine`` (the contract
    :meth:`CellResult.row` renders); include ``successes`` (or ``reached``)
    for the success-rate columns — without it they export as NaN/blank.
    ``validator(measure_dict)`` runs at spec construction so bad parameters
    fail before any cell is dispatched.
    """
    if kind in _MEASURES:
        raise ValueError(f"measure kind {kind!r} is already registered")
    _MEASURES[kind] = (executor, validator)


def measure_kinds() -> tuple[str, ...]:
    """The registered measurement kinds, in registration order."""
    return tuple(_MEASURES)


def validate_measure(measure: dict) -> None:
    """Fail fast on an unknown kind or invalid measure parameters."""
    kind = measure.get("kind")
    if kind not in _MEASURES:
        raise ValueError(f"measure kind must be one of {measure_kinds()}, got {measure!r}")
    validator = _MEASURES[kind][1]
    if validator is not None:
        validator(measure)


def execute_cell(cell: Cell) -> CellResult:
    """Run one cell to completion and package its result.

    Deterministic given the cell alone (the cell carries its derived seed),
    with no dependence on global state — safe to call from pool workers.
    The measured wall-clock rides along as :attr:`CellResult.elapsed_s`
    (persisted through the store's provenance stamp).
    """
    factory = protocol_factory(cell.protocol, cell.n)
    initializer = build_initializer(cell.initializer)
    kind = cell.measure["kind"]
    if kind not in _MEASURES:
        raise ValueError(f"unknown measure kind {cell.measure!r}")
    start = time.perf_counter()
    payload = _MEASURES[kind][0](cell, factory, initializer)
    return CellResult(
        key=cell.key(),
        cell=cell.to_dict(),
        payload=payload,
        elapsed_s=time.perf_counter() - start,
    )


class MeteredCell:
    """Picklable work-function wrapper that collects per-cell telemetry.

    Runs the wrapped function under *fresh local* observability state — in
    a pool worker or inline — and attaches by-value snapshots to the
    returned :class:`CellResult`: ``registry.snapshot().to_dict()`` on
    ``metrics`` (when ``metrics=True``, the default), a
    ``SpanLog.to_dict()`` on ``spans`` (when ``spans=True``; the cell's
    work runs under a root ``cell`` span labelled with protocol/n/key),
    and the event list on ``events`` (when ``events=True``). Snapshots
    ride back through the dispatcher's ordered ``on_result`` seam like any
    other result field, so the orchestrator can aggregate worker telemetry
    deterministically without shared memory. Attempts that raise (faults,
    timeouts) contribute no snapshot: their partial counts die with the
    attempt, keeping aggregated counters exactly reproducible across retry
    schedules.

    The flags are plain constructor state (not ambient reads) because
    ContextVars do not cross process boundaries — the wrapper pickles into
    pool workers carrying its configuration with it.

    Composes with other wrappers (e.g. the fault injector): whatever
    ``fn(item)`` returns, only :class:`CellResult` values get annotated.
    """

    def __init__(
        self,
        fn: Callable[[Cell], CellResult] = execute_cell,
        *,
        metrics: bool = True,
        spans: bool = False,
        events: bool = False,
    ) -> None:
        self.fn = fn
        self.metrics = metrics
        self.spans = spans
        self.events = events

    @staticmethod
    def _cell_labels(cell) -> dict:
        try:
            return {
                "protocol": cell.protocol["name"],
                "n": cell.n,
                "key": cell.key()[:12],
            }
        except Exception:
            return {}  # arbitrary work items (tests map over ints) get a bare span

    def __call__(self, cell: Cell) -> CellResult:
        registry = MetricsRegistry() if self.metrics else None
        tracer = SpanTracer() if self.spans else None
        log = EventLog() if self.events else None
        with ExitStack() as stack:
            if registry is not None:
                stack.enter_context(use_registry(registry))
            if log is not None:
                stack.enter_context(use_event_log(log))
            if tracer is not None:
                stack.enter_context(use_tracer(tracer))
                stack.enter_context(tracer.span("cell", **self._cell_labels(cell)))
            result = self.fn(cell)
        if isinstance(result, CellResult):
            if registry is not None:
                snapshot = registry.snapshot()
                if snapshot.metrics:
                    result.metrics = snapshot.to_dict()
            if tracer is not None:
                result.spans = tracer.snapshot().to_dict()
            if log is not None:
                result.events = log.events()
        return result


def _use_batched(cell: Cell, protocol) -> bool:
    """Engine resolution shared by the trace-backed measures (the cell's
    own policy: auto requires both a vectorized protocol step and a batched
    observation model)."""
    return cell.use_batched(protocol)


def _base_payload(kind: str, protocol_name: str, initializer, engine: str) -> dict:
    return {
        "measure": kind,
        "protocol": protocol_name,
        "initializer": initializer.name,
        "times": [],
        "engine": engine,
    }


# ------------------------------------------------------------- consensus


def _measure_consensus(cell: Cell, factory, initializer) -> dict:
    # The cell IS a RunSpec: its executor resolves the paired observation
    # model (noise/sampler), population shape, and engine policy itself.
    stats = cell.execute(protocol_factory=factory, initializer=initializer)
    return {
        "measure": "consensus",
        "protocol": stats.protocol_name,
        "initializer": stats.initializer_name,
        "successes": stats.successes,
        "times": [float(t) for t in stats.times],
        "engine": stats.engine,
    }


# ----------------------------------------------------------------- theta


def _validate_theta(measure: dict) -> None:
    if "theta" not in measure:
        raise ValueError(f"theta measure needs a 'theta' threshold, got {measure!r}")
    theta = float(measure["theta"])
    if not 0.0 < theta <= 1.0:
        raise ValueError(f"theta must be in (0, 1], got {theta}")
    if int(measure.get("settle_window", 20)) < 0:
        raise ValueError(f"settle_window must be >= 0, got {measure['settle_window']}")


def _measure_theta(cell: Cell, factory, initializer) -> dict:
    """θ-convergence + settle level, batched by default.

    The batched path runs all trials lock-step with a full-trace recorder:
    ``linger_rounds`` keeps each replica stepping through its settle window
    after it first held θ for the stability window (exactly the sequential
    semantics of stopping at θ and then stepping on), and the per-trial
    settle levels come vectorized from the recorded non-source correct
    fractions. ``engine="sequential"`` keeps the original per-trial loop.
    """
    theta = float(cell.measure["theta"])
    settle_window = int(cell.measure.get("settle_window", 20))
    protocol = factory()
    counts = cell.engine == "counts"
    if not counts and not _use_batched(cell, protocol):
        return _measure_theta_sequential(cell, factory, initializer, theta, settle_window)
    base = _base_payload("theta", protocol.name, initializer, "counts" if counts else "batched")
    base.update({"reached": 0, "settle_levels": [], "theta": theta, "settle_window": settle_window})
    if cell.trials == 0:
        return base
    recorder = FullTrace()
    # The counts engine implements the same run contract (stop condition on
    # the population, recorder, linger retirement), so the whole measurement
    # below is engine-agnostic once the right engine is built.
    engine = (
        cell.count_engine(protocol=protocol, initializer=initializer)
        if counts
        else cell.batched_engine(protocol=protocol, initializer=initializer)
    )
    result = engine.run(
        cell.max_rounds,
        stability_rounds=cell.stability_rounds,
        stop_condition=lambda b: b.nonsource_correct_fraction() >= theta,
        recorder=recorder,
        linger_rounds=settle_window,
    )
    trace = recorder.trace()
    levels = nonsource_correct_fractions(trace)
    # The settle window opens where the sequential run stops stepping: the
    # round the stability window closed (t_con + stability - 1).
    window_start = np.where(
        result.converged, result.rounds + (cell.stability_rounds - 1), -1
    )
    settle = window_mean_after(levels, trace.rounds, window_start, settle_window)
    base.update(
        {
            "reached": int(result.successes),
            "times": [float(t) for t in result.times()],
            "settle_levels": [float(level) for level in settle[result.converged]],
        }
    )
    return base


def _measure_theta_sequential(
    cell: Cell, factory, initializer, theta: float, settle_window: int
) -> dict:
    """Per-trial θ measurement on the sequential engine (cross-check path).

    The settle window keeps stepping an engine after its stop condition
    fired — the original semantics the batched linger path reproduces.
    """
    from ..core.population import make_population

    protocol_name = ""
    times: list[int] = []
    settle_levels: list[float] = []
    reached = 0
    scalar_factory = cell.samplers()[0]
    for rng in spawn_rngs(cell.seed, cell.trials):
        protocol = factory()
        protocol_name = protocol.name
        population = make_population(cell.n, cell.correct_opinion, num_sources=cell.num_sources)
        state = protocol.init_state(cell.n, rng)
        initializer(population, protocol, state, rng)
        engine = SynchronousEngine(
            protocol,
            population,
            sampler=scalar_factory() if scalar_factory is not None else None,
            rng=rng,
            state=state,
        )
        result = engine.run(
            cell.max_rounds,
            stability_rounds=cell.stability_rounds,
            stop_condition=lambda pop: pop.nonsource_correct_fraction() >= theta,
        )
        if result.converged:
            reached += 1
            times.append(result.rounds)
            levels = []
            for _ in range(settle_window):
                engine.step()
                levels.append(population.nonsource_correct_fraction())
            settle_levels.append(float(np.mean(levels)) if levels else float("nan"))
    if cell.trials == 0:
        protocol_name = factory().name
    return {
        "measure": "theta",
        "protocol": protocol_name,
        "initializer": initializer.name,
        "reached": reached,
        "times": [float(t) for t in times],
        "settle_levels": settle_levels,
        "theta": theta,
        "settle_window": settle_window,
        "engine": "sequential",
    }


# ----------------------------------------------------------------- trace


def _validate_trace(measure: dict) -> None:
    if int(measure.get("stride", 1)) < 1:
        raise ValueError(f"stride must be >= 1, got {measure['stride']}")
    ring = measure.get("ring")
    if ring is not None and int(ring) < 1:
        raise ValueError(f"ring capacity must be >= 1, got {ring}")
    if float(measure.get("tolerance", 0.0)) < 0:
        raise ValueError(f"tolerance must be >= 0, got {measure['tolerance']}")


def _measure_trace(cell: Cell, factory, initializer) -> dict:
    """Convergence aggregates plus trace-derived trajectory statistics.

    Runs the cell's trials on the batched engine with a recorder configured
    by the measure parameters (``stride``, ``ring`` capacity, ``flips``) and
    reduces the trace vectorized: per-replica settle round (the round the
    trajectory freezes, within ``tolerance``) and, when the flip channel is
    on, the post-settle flip rate. Also the workload of the trace-overhead
    benchmark: it is the consensus measurement plus recording.
    """
    if cell.engine == "sequential":
        # No silent engine override: unlike theta, this measure has no
        # per-trial sequential implementation (merging per-trial ring/stride
        # windows is not well-defined), so an explicit sequential request is
        # an error rather than a different dynamics stream than asked for.
        raise ValueError(
            "the trace measure runs on the batched engine; "
            "engine='sequential' is not supported for kind='trace'"
        )
    stride = int(cell.measure.get("stride", 1))
    ring = cell.measure.get("ring")
    flips = bool(cell.measure.get("flips", False))
    tolerance = float(cell.measure.get("tolerance", 0.0))
    counts = cell.engine == "counts"
    if counts and flips:
        raise ValueError(
            "per-agent flip counts are not a function of the state-count "
            "sufficient statistic; the counts engine cannot record them — "
            "use engine='batched'"
        )
    protocol = factory()
    base = _base_payload("trace", protocol.name, initializer, "counts" if counts else "batched")
    base.update({"successes": 0, "settle_rounds": [], "recorded_columns": 0})
    if cell.trials == 0:
        return base
    recorder = make_recorder(ring=ring, stride=stride, record_flips=flips)
    engine = (
        cell.count_engine(protocol=protocol, initializer=initializer)
        if counts
        else cell.batched_engine(protocol=protocol, initializer=initializer)
    )
    result = engine.run(
        cell.max_rounds,
        stability_rounds=cell.stability_rounds,
        recorder=recorder,
        linger_rounds=cell.linger_rounds,
    )
    trace = recorder.trace()
    settle = settle_rounds(trace.x, trace.rounds, tolerance=tolerance)
    base.update(
        {
            "successes": int(result.successes),
            "times": [float(t) for t in result.times()],
            "final_x_mean": float(result.final_fractions.mean()),
            "settle_rounds": [int(t) for t in settle],
            "recorded_columns": trace.columns,
        }
    )
    if flips:
        rates = post_settle_flip_rate(trace, settle)
        finite = rates[np.isfinite(rates)]
        base["post_settle_flip_rate"] = float(finite.mean()) if finite.size else float("nan")
    return base


register_measure("consensus", _measure_consensus)
register_measure("theta", _measure_theta, _validate_theta)
register_measure("trace", _measure_trace, _validate_trace)
