"""Sweep orchestration: expand → cache-check → dispatch → collect → export.

:func:`run_sweep` is the one entry point tying the sweep layers together: it
expands a :class:`~repro.sweep.spec.SweepSpec` into cells, serves whatever a
:class:`~repro.sweep.store.ResultsStore` already holds, fans the missing
cells out over a dispatcher, and persists each cell the moment it completes.
The returned :class:`SweepResult` keeps cells and results aligned in the
spec's canonical expansion order, so every export — rows, table, CSV — is
**bitwise identical regardless of job count or how many runs (interrupted
or cached) it took to fill the grid**.

Fault tolerance is threaded through via a
:class:`~repro.sweep.dispatch.FaultPolicy`: cell exceptions, worker crashes
and hung cells are retried by the dispatcher, and cells that exhaust their
retries under ``on_failure="record"`` persist as **failure records** — the
store keeps the error type, message, traceback tail and per-attempt log, so
a resumed sweep knows what crashed and why (and serves the failure instead
of re-crashing blindly; pass ``retry_failed=True`` or ``force=True`` to try
again). Failure rows export as NaN payload columns plus an ``error`` column
that only appears when a sweep actually recorded failures, keeping
fault-free aggregate CSVs byte-identical to their historical form.
"""

from __future__ import annotations

import math
from contextlib import ExitStack
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Callable

from ..telemetry.events import EventLog, current_event_log, use_event_log
from ..telemetry.progress import ProgressLine
from ..telemetry.registry import MetricsRegistry, current_registry, use_registry
from ..telemetry.snapshot import MetricsSnapshot
from ..telemetry.spans import SpanLog, SpanTracer, current_tracer, use_tracer
from ..viz.csv_out import write_rows
from ..viz.tables import format_table
from .dispatch import FailedItem, FaultPolicy, make_dispatcher
from .registry import validate_cell
from .runner import ERROR_COLUMN, RESULT_COLUMNS, CellResult, MeteredCell, execute_cell
from .spec import Cell, SweepSpec
from .store import ResultsStore, provenance_stamp

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..telemetry.server import ObservabilityServer

__all__ = ["SweepResult", "run_sweep"]


@dataclass
class SweepResult:
    """All cell results of one sweep, in canonical cell order."""

    spec: SweepSpec
    cells: list[Cell]
    results: list[CellResult]
    #: Final aggregated telemetry of the run (parent-side counters plus the
    #: worker snapshots merged in cell order), when the sweep ran with a
    #: metrics registry; ``None`` otherwise.
    metrics: MetricsSnapshot | None = field(default=None, compare=False)
    #: Merged span log (the parent's ``sweep`` span with every executed
    #: cell's worker spans grafted under it in canonical cell order), when
    #: the sweep ran with a tracer; ``None`` otherwise.
    spans: SpanLog | None = field(default=None, compare=False)
    #: Merged structured events (parent-side dispatch/store events followed
    #: by worker cell events absorbed in canonical cell order), when the
    #: sweep ran with an event log; ``None`` otherwise.
    events: list[dict] | None = field(default=None, compare=False)

    @property
    def executed(self) -> int:
        """Cells computed by this run (as opposed to served from the store)."""
        return sum(1 for result in self.results if not result.cached)

    @property
    def cached(self) -> int:
        """Cells served from the store without recomputation."""
        return sum(1 for result in self.results if result.cached)

    @property
    def failed(self) -> int:
        """Cells that are recorded failures (fresh or served from store)."""
        return sum(1 for result in self.results if result.failed)

    def failures(self) -> list[tuple[Cell, CellResult]]:
        """The failed cells with their failure records, in cell order."""
        return [
            (cell, result)
            for cell, result in zip(self.cells, self.results)
            if result.failed
        ]

    def _columns(self) -> list[str]:
        """Export columns: the ``error`` column rides along only when some
        cell failed, so fault-free exports keep their exact bytes."""
        columns = list(RESULT_COLUMNS)
        if self.failed:
            columns.append(ERROR_COLUMN)
        return columns

    def rows(self) -> list[dict]:
        """Flat per-cell dicts over ``RESULT_COLUMNS`` + ``error``, in cell
        order (failure rows are NaN everywhere a payload would be read)."""
        return [result.row() for result in self.results]

    def table(self) -> str:
        """Aligned text table of all cells (NaN renders as ``-``)."""
        columns = self._columns()
        return format_table(
            columns,
            [[row[column] for column in columns] for row in self.rows()],
        )

    def write_csv(self, path: str | Path) -> Path:
        """Write the aggregate CSV (NaN cells blank), creating parents.

        Cell order and float formatting are deterministic, so two sweeps of
        the same spec produce byte-identical files whatever their job
        counts or cache states were — including sweeps with recorded
        failures, whose ``error`` renderings are deterministic too.
        """
        columns = self._columns()
        table = []
        for row in self.rows():
            table.append(
                [
                    "" if isinstance(value, float) and math.isnan(value) else value
                    for value in (row[column] for column in columns)
                ]
            )
        return write_rows(path, columns, table)


def run_sweep(
    spec: SweepSpec,
    *,
    jobs: int = 1,
    store: ResultsStore | str | Path | None = None,
    force: bool = False,
    policy: FaultPolicy | None = None,
    retry_failed: bool = False,
    work_fn: Callable[[Cell], CellResult] | None = None,
    durable: bool = True,
    metrics: MetricsRegistry | None = None,
    progress: bool = False,
    tracer: SpanTracer | None = None,
    events: EventLog | None = None,
    serve: "ObservabilityServer | None" = None,
    job_id: str | None = None,
) -> SweepResult:
    """Run every cell of ``spec``, in parallel and against the store.

    Parameters
    ----------
    jobs:
        Worker processes; 1 runs inline. Results are independent of this
        knob — it only trades wall-clock for cores.
    store:
        A :class:`ResultsStore` (or a path to create one at). Cells whose
        key is present are served from it; cells computed by this run are
        appended to it as they finish, making any interrupted run resumable.
    force:
        Recompute every cell even on a store hit (fresh results overwrite
        the stored entries, failure records included).
    policy:
        A :class:`~repro.sweep.dispatch.FaultPolicy` governing retries,
        backoff, the per-cell timeout watchdog, and whether a cell that
        exhausts its retries aborts the sweep (``on_failure="raise"``, the
        default) or completes as a persisted failure record
        (``on_failure="record"``).
    retry_failed:
        Treat stored *failure* records as cache misses (successful records
        are still served) — the resume knob after fixing whatever crashed.
    work_fn:
        The per-cell work function; defaults to
        :func:`~repro.sweep.runner.execute_cell`. The seam the
        fault-injection harness (:mod:`repro.sweep.faults`) wraps to prove
        the recovery paths end to end; any replacement must be picklable
        and deterministic per cell.
    durable:
        Whether a store created here *from a path* opens with fsync-per-
        append (machine-crash-safe persistence; on by default). Ignored
        when ``store`` is already a :class:`ResultsStore` — that object's
        own setting wins.
    metrics:
        A :class:`~repro.telemetry.MetricsRegistry` to aggregate the run's
        telemetry into. Defaults to the ambient registry
        (:func:`~repro.telemetry.current_registry`), i.e. telemetry stays
        off unless a caller opts in. When active, workers collect per-cell
        snapshots (:class:`~repro.sweep.runner.MeteredCell`) that merge
        parent-side **in cell order**, so aggregated counters are
        byte-identical at any ``jobs``; the final snapshot is returned as
        :attr:`SweepResult.metrics`.
    progress:
        Emit a live progress line on stderr (cells done/total, failures,
        retries, throughput, ETA), fed from the metrics registry — forced
        on if no registry was supplied.
    tracer:
        A :class:`~repro.telemetry.SpanTracer` to record the sweep's span
        timeline into. Defaults to the ambient tracer
        (:func:`~repro.telemetry.current_tracer`), i.e. tracing stays off
        unless a caller opts in. When active, workers record per-cell span
        logs (``cell > engine.run > draw_tier``) that graft under the
        parent's ``sweep`` span **in cell order** — the merged timeline on
        :attr:`SweepResult.spans` has the same span tree at any ``jobs``.
    events:
        An :class:`~repro.telemetry.EventLog` to record structured events
        into (retries, backoff, crashes, watchdog expiries, cache hits,
        store appends). Defaults to the ambient log
        (:func:`~repro.telemetry.current_event_log`). Worker cell events
        are absorbed in cell order; the merged list is returned as
        :attr:`SweepResult.events`.
    serve:
        An :class:`~repro.telemetry.ObservabilityServer` to expose the
        *live* run on: the orchestrator attaches its registry and progress
        stats and starts the server (if not already running) before any
        cell executes, so ``/metrics`` and ``/progress`` can be scraped
        mid-sweep. The caller owns the server's lifetime; the orchestrator
        never stops it. Forces a registry on like ``progress`` does.
    job_id:
        Run-service job identifier. When set, the progress tracker stamps
        it into :meth:`~repro.telemetry.ProgressLine.stats`, so a shared
        ``/progress`` surface can attribute each line to its submission.
    """
    registry = metrics if metrics is not None else current_registry()
    if (progress or serve is not None) and registry is None:
        registry = MetricsRegistry()
    if tracer is None:
        tracer = current_tracer()
    if events is None:
        events = current_event_log()
    with ExitStack() as ambient:
        if registry is not None:
            ambient.enter_context(use_registry(registry))
        if tracer is not None:
            ambient.enter_context(use_tracer(tracer))
        if events is not None:
            ambient.enter_context(use_event_log(events))
        return _run_sweep(
            spec,
            jobs=jobs,
            store=store,
            force=force,
            policy=policy,
            retry_failed=retry_failed,
            work_fn=work_fn,
            durable=durable,
            registry=registry,
            progress=progress,
            tracer=tracer,
            events=events,
            serve=serve,
            job_id=job_id,
        )


def _run_sweep(
    spec: SweepSpec,
    *,
    jobs: int,
    store: ResultsStore | str | Path | None,
    force: bool,
    policy: FaultPolicy | None,
    retry_failed: bool,
    work_fn: Callable[[Cell], CellResult] | None,
    durable: bool,
    registry: MetricsRegistry | None,
    progress: bool,
    tracer: SpanTracer | None,
    events: EventLog | None,
    serve: "ObservabilityServer | None",
    job_id: str | None,
) -> SweepResult:
    """The body of :func:`run_sweep`, with the observability state ambient."""
    sweep_span = tracer.span("sweep", spec=spec.name) if tracer is not None else None
    if sweep_span is not None:
        sweep_span.__enter__()
    try:
        result = _run_sweep_traced(
            spec,
            jobs=jobs,
            store=store,
            force=force,
            policy=policy,
            retry_failed=retry_failed,
            work_fn=work_fn,
            durable=durable,
            registry=registry,
            progress=progress,
            tracer=tracer,
            events=events,
            serve=serve,
            job_id=job_id,
        )
    finally:
        if sweep_span is not None:
            sweep_span.__exit__(None, None, None)
    # Merge worker observability AFTER the sweep span closes (so its
    # duration is final), grafting/absorbing in CANONICAL CELL ORDER — the
    # same fixed-order discipline as the metrics merge below, which is what
    # makes the merged timeline structurally identical at any `jobs`.
    if tracer is not None:
        span_log = tracer.snapshot()
        root = sweep_span.index if sweep_span is not None and sweep_span.index is not None else -1
        for cell_result in result.results:
            if cell_result is not None and cell_result.spans:
                span_log.graft(SpanLog.from_dict(cell_result.spans), parent=root)
        result.spans = span_log
    if events is not None:
        for cell_result in result.results:
            if cell_result is not None and cell_result.events:
                events.absorb(cell_result.events)
        result.events = events.events()
    return result


def _run_sweep_traced(
    spec: SweepSpec,
    *,
    jobs: int,
    store: ResultsStore | str | Path | None,
    force: bool,
    policy: FaultPolicy | None,
    retry_failed: bool,
    work_fn: Callable[[Cell], CellResult] | None,
    durable: bool,
    registry: MetricsRegistry | None,
    progress: bool,
    tracer: SpanTracer | None,
    events: EventLog | None,
    serve: "ObservabilityServer | None",
    job_id: str | None,
) -> SweepResult:
    cells = spec.expand()
    for cell in cells:
        validate_cell(cell)
    if store is not None and not isinstance(store, ResultsStore):
        store = ResultsStore(store, durable=durable)

    if registry is not None:
        completed_count = registry.counter(
            "repro_cells_completed_total", "Cells computed successfully by this run."
        )
        failed_count = registry.counter(
            "repro_cells_failed_total",
            "Cells that exhausted their retries in this run (fresh failure records).",
        )
        cached_count = registry.counter(
            "repro_cells_cached_total",
            "Cells served from the results store without recomputation.",
        )
        hit_count = registry.counter(
            "repro_store_cache_hits_total",
            "Store lookups served on resume (successes and failure records).",
        )
        miss_count = registry.counter(
            "repro_store_cache_misses_total",
            "Store lookups that missed on resume (cell had to be computed).",
        )
    if registry is not None:
        registry.gauge(
            "repro_sweep_cells_total", "Cells in the sweep grid being run."
        ).set(float(len(cells)))
    tracker = (
        ProgressLine(len(cells), registry, job_id=job_id)
        if registry is not None and (progress or serve is not None)
        else None
    )
    # The tracker doubles as the /progress JSON source when serving; it only
    # paints stderr when --progress asked for it.
    progress_line = tracker if progress else None
    if serve is not None:
        serve.attach(
            registry=registry,
            progress=tracker.stats if tracker is not None else None,
        )
        serve.start()

    results: list[CellResult | None] = [None] * len(cells)
    pending: list[int] = []
    for index, cell in enumerate(cells):
        key = cell.key()
        consulted = store is not None and not force
        record = store.get(key) if consulted else None
        if record is not None and "error" in record and retry_failed:
            record = None
        if record is None:
            pending.append(index)
            if registry is not None and consulted:
                miss_count.inc()
            continue
        if registry is not None:
            hit_count.inc()
            cached_count.inc()
        if events is not None:
            events.emit("store.cache_hit", key=key, failed="error" in record)
        provenance = record.get("provenance") or {}
        if "error" in record:
            results[index] = CellResult(
                key=key, cell=record["cell"], payload={}, cached=True,
                error=record["error"],
            )
        else:
            results[index] = CellResult(
                key=key, cell=record["cell"], payload=record["payload"], cached=True,
                metrics=record.get("metrics"),
                elapsed_s=provenance.get("elapsed_s"),
            )
    if progress_line is not None:
        progress_line.update(force=True)

    if pending:
        pending_cells = [cells[index] for index in pending]

        def collect(pending_index: int, outcome: CellResult | FailedItem) -> None:
            """Completion-order hook: count, persist, repaint progress.

            Persistence happens here (the moment a cell finishes) so an
            interrupted run leaves every completed cell on disk; the
            metric counts are parent-side and scheduling-independent
            (one increment per finished cell, whatever order they land in).
            """
            failed = isinstance(outcome, FailedItem)
            if registry is not None:
                (failed_count if failed else completed_count).inc()
            if store is not None:
                if failed:
                    cell = pending_cells[pending_index]
                    store.put(
                        cell.key(), {"cell": cell.to_dict(), "error": outcome.to_record()}
                    )
                else:
                    record = {"cell": outcome.cell, "payload": outcome.payload}
                    if outcome.metrics is not None:
                        record["metrics"] = outcome.metrics
                    if outcome.elapsed_s is not None:
                        # Ride the provenance stamp: additive, so legacy
                        # records (and readers) are untouched.
                        stamp = provenance_stamp()
                        stamp["elapsed_s"] = round(outcome.elapsed_s, 6)
                        record["provenance"] = stamp
                    store.put(outcome.key, record)
            if progress_line is not None:
                progress_line.update()

        fn = work_fn if work_fn is not None else execute_cell
        if registry is not None or tracer is not None or events is not None:
            fn = MeteredCell(
                fn,
                metrics=registry is not None,
                spans=tracer is not None,
                events=events is not None,
            )
        if tracker is not None:
            # Rate/ETA measure executed cells only: start the rate clock
            # here, after cache serving, so a mostly-cached resume does not
            # report instantly-served hits as throughput.
            tracker.begin_execution()
        dispatch_span = tracer.span("dispatch") if tracer is not None else None
        if dispatch_span is not None:
            dispatch_span.__enter__()
        try:
            computed = make_dispatcher(jobs).map(
                fn,
                pending_cells,
                on_result=collect,
                policy=policy,
            )
        finally:
            if dispatch_span is not None:
                dispatch_span.__exit__(None, None, None)
        for index, outcome in zip(pending, computed):
            if isinstance(outcome, FailedItem):
                cell = cells[index]
                results[index] = CellResult(
                    key=cell.key(), cell=cell.to_dict(), payload={},
                    error=outcome.to_record(),
                )
            else:
                results[index] = outcome

        if registry is not None:
            # Fold the worker-side snapshots in CANONICAL CELL ORDER — not
            # the completion order they arrived in. Float sums are not
            # associative, so a fixed merge order is what makes aggregated
            # counters byte-identical between jobs=1 and jobs=N.
            for index in pending:
                outcome = results[index]
                if outcome is not None and outcome.metrics:
                    registry.merge_snapshot(MetricsSnapshot.from_dict(outcome.metrics))

    if progress_line is not None:
        progress_line.close()
    snapshot = registry.snapshot() if registry is not None else None
    return SweepResult(spec=spec, cells=cells, results=results, metrics=snapshot)  # type: ignore[arg-type]
