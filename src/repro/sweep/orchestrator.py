"""Sweep orchestration: expand → cache-check → dispatch → collect → export.

:func:`run_sweep` is the one entry point tying the sweep layers together: it
expands a :class:`~repro.sweep.spec.SweepSpec` into cells, serves whatever a
:class:`~repro.sweep.store.ResultsStore` already holds, fans the missing
cells out over a dispatcher, and persists each cell the moment it completes.
The returned :class:`SweepResult` keeps cells and results aligned in the
spec's canonical expansion order, so every export — rows, table, CSV — is
**bitwise identical regardless of job count or how many runs (interrupted
or cached) it took to fill the grid**.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from pathlib import Path

from ..viz.csv_out import write_rows
from ..viz.tables import format_table
from .dispatch import make_dispatcher
from .registry import validate_cell
from .runner import RESULT_COLUMNS, CellResult, execute_cell
from .spec import Cell, SweepSpec
from .store import ResultsStore

__all__ = ["SweepResult", "run_sweep"]


@dataclass
class SweepResult:
    """All cell results of one sweep, in canonical cell order."""

    spec: SweepSpec
    cells: list[Cell]
    results: list[CellResult]

    @property
    def executed(self) -> int:
        """Cells computed by this run (as opposed to served from the store)."""
        return sum(1 for result in self.results if not result.cached)

    @property
    def cached(self) -> int:
        """Cells served from the store without recomputation."""
        return sum(1 for result in self.results if result.cached)

    def rows(self) -> list[dict]:
        """Flat per-cell dicts over ``RESULT_COLUMNS``, in cell order."""
        return [result.row() for result in self.results]

    def table(self) -> str:
        """Aligned text table of all cells (NaN renders as ``-``)."""
        return format_table(
            list(RESULT_COLUMNS),
            [[row[column] for column in RESULT_COLUMNS] for row in self.rows()],
        )

    def write_csv(self, path: str | Path) -> Path:
        """Write the aggregate CSV (NaN cells blank), creating parents.

        Cell order and float formatting are deterministic, so two sweeps of
        the same spec produce byte-identical files whatever their job
        counts or cache states were.
        """
        table = []
        for row in self.rows():
            table.append(
                [
                    "" if isinstance(value, float) and math.isnan(value) else value
                    for value in (row[column] for column in RESULT_COLUMNS)
                ]
            )
        return write_rows(path, RESULT_COLUMNS, table)


def run_sweep(
    spec: SweepSpec,
    *,
    jobs: int = 1,
    store: ResultsStore | str | Path | None = None,
    force: bool = False,
) -> SweepResult:
    """Run every cell of ``spec``, in parallel and against the store.

    Parameters
    ----------
    jobs:
        Worker processes; 1 runs inline. Results are independent of this
        knob — it only trades wall-clock for cores.
    store:
        A :class:`ResultsStore` (or a path to create one at). Cells whose
        key is present are served from it; cells computed by this run are
        appended to it as they finish, making any interrupted run resumable.
    force:
        Recompute every cell even on a store hit (fresh results overwrite
        the stored entries).
    """
    cells = spec.expand()
    for cell in cells:
        validate_cell(cell)
    if store is not None and not isinstance(store, ResultsStore):
        store = ResultsStore(store)

    results: list[CellResult | None] = [None] * len(cells)
    pending: list[int] = []
    for index, cell in enumerate(cells):
        key = cell.key()
        record = store.get(key) if store is not None and not force else None
        if record is not None:
            results[index] = CellResult(
                key=key, cell=record["cell"], payload=record["payload"], cached=True
            )
        else:
            pending.append(index)

    if pending:
        def persist(_pending_index: int, result: CellResult) -> None:
            if store is not None:
                store.put(result.key, {"cell": result.cell, "payload": result.payload})

        computed = make_dispatcher(jobs).map(
            execute_cell, [cells[index] for index in pending], on_result=persist
        )
        for index, result in zip(pending, computed):
            results[index] = result

    return SweepResult(spec=spec, cells=cells, results=results)  # type: ignore[arg-type]
