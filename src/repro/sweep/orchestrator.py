"""Sweep orchestration: expand → cache-check → dispatch → collect → export.

:func:`run_sweep` is the one entry point tying the sweep layers together: it
expands a :class:`~repro.sweep.spec.SweepSpec` into cells, serves whatever a
:class:`~repro.sweep.store.ResultsStore` already holds, fans the missing
cells out over a dispatcher, and persists each cell the moment it completes.
The returned :class:`SweepResult` keeps cells and results aligned in the
spec's canonical expansion order, so every export — rows, table, CSV — is
**bitwise identical regardless of job count or how many runs (interrupted
or cached) it took to fill the grid**.

Fault tolerance is threaded through via a
:class:`~repro.sweep.dispatch.FaultPolicy`: cell exceptions, worker crashes
and hung cells are retried by the dispatcher, and cells that exhaust their
retries under ``on_failure="record"`` persist as **failure records** — the
store keeps the error type, message, traceback tail and per-attempt log, so
a resumed sweep knows what crashed and why (and serves the failure instead
of re-crashing blindly; pass ``retry_failed=True`` or ``force=True`` to try
again). Failure rows export as NaN payload columns plus an ``error`` column
that only appears when a sweep actually recorded failures, keeping
fault-free aggregate CSVs byte-identical to their historical form.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

from ..viz.csv_out import write_rows
from ..viz.tables import format_table
from .dispatch import FailedItem, FaultPolicy, make_dispatcher
from .registry import validate_cell
from .runner import ERROR_COLUMN, RESULT_COLUMNS, CellResult, execute_cell
from .spec import Cell, SweepSpec
from .store import ResultsStore

__all__ = ["SweepResult", "run_sweep"]


@dataclass
class SweepResult:
    """All cell results of one sweep, in canonical cell order."""

    spec: SweepSpec
    cells: list[Cell]
    results: list[CellResult]

    @property
    def executed(self) -> int:
        """Cells computed by this run (as opposed to served from the store)."""
        return sum(1 for result in self.results if not result.cached)

    @property
    def cached(self) -> int:
        """Cells served from the store without recomputation."""
        return sum(1 for result in self.results if result.cached)

    @property
    def failed(self) -> int:
        """Cells that are recorded failures (fresh or served from store)."""
        return sum(1 for result in self.results if result.failed)

    def failures(self) -> list[tuple[Cell, CellResult]]:
        """The failed cells with their failure records, in cell order."""
        return [
            (cell, result)
            for cell, result in zip(self.cells, self.results)
            if result.failed
        ]

    def _columns(self) -> list[str]:
        """Export columns: the ``error`` column rides along only when some
        cell failed, so fault-free exports keep their exact bytes."""
        columns = list(RESULT_COLUMNS)
        if self.failed:
            columns.append(ERROR_COLUMN)
        return columns

    def rows(self) -> list[dict]:
        """Flat per-cell dicts over ``RESULT_COLUMNS`` + ``error``, in cell
        order (failure rows are NaN everywhere a payload would be read)."""
        return [result.row() for result in self.results]

    def table(self) -> str:
        """Aligned text table of all cells (NaN renders as ``-``)."""
        columns = self._columns()
        return format_table(
            columns,
            [[row[column] for column in columns] for row in self.rows()],
        )

    def write_csv(self, path: str | Path) -> Path:
        """Write the aggregate CSV (NaN cells blank), creating parents.

        Cell order and float formatting are deterministic, so two sweeps of
        the same spec produce byte-identical files whatever their job
        counts or cache states were — including sweeps with recorded
        failures, whose ``error`` renderings are deterministic too.
        """
        columns = self._columns()
        table = []
        for row in self.rows():
            table.append(
                [
                    "" if isinstance(value, float) and math.isnan(value) else value
                    for value in (row[column] for column in columns)
                ]
            )
        return write_rows(path, columns, table)


def run_sweep(
    spec: SweepSpec,
    *,
    jobs: int = 1,
    store: ResultsStore | str | Path | None = None,
    force: bool = False,
    policy: FaultPolicy | None = None,
    retry_failed: bool = False,
    work_fn: Callable[[Cell], CellResult] | None = None,
) -> SweepResult:
    """Run every cell of ``spec``, in parallel and against the store.

    Parameters
    ----------
    jobs:
        Worker processes; 1 runs inline. Results are independent of this
        knob — it only trades wall-clock for cores.
    store:
        A :class:`ResultsStore` (or a path to create one at). Cells whose
        key is present are served from it; cells computed by this run are
        appended to it as they finish, making any interrupted run resumable.
        A store created here from a path is opened ``durable`` (fsync per
        appended cell — machine-crash-safe persistence; pass your own
        :class:`ResultsStore` to opt out).
    force:
        Recompute every cell even on a store hit (fresh results overwrite
        the stored entries, failure records included).
    policy:
        A :class:`~repro.sweep.dispatch.FaultPolicy` governing retries,
        backoff, the per-cell timeout watchdog, and whether a cell that
        exhausts its retries aborts the sweep (``on_failure="raise"``, the
        default) or completes as a persisted failure record
        (``on_failure="record"``).
    retry_failed:
        Treat stored *failure* records as cache misses (successful records
        are still served) — the resume knob after fixing whatever crashed.
    work_fn:
        The per-cell work function; defaults to
        :func:`~repro.sweep.runner.execute_cell`. The seam the
        fault-injection harness (:mod:`repro.sweep.faults`) wraps to prove
        the recovery paths end to end; any replacement must be picklable
        and deterministic per cell.
    """
    cells = spec.expand()
    for cell in cells:
        validate_cell(cell)
    if store is not None and not isinstance(store, ResultsStore):
        store = ResultsStore(store, durable=True)

    results: list[CellResult | None] = [None] * len(cells)
    pending: list[int] = []
    for index, cell in enumerate(cells):
        key = cell.key()
        record = store.get(key) if store is not None and not force else None
        if record is not None and "error" in record and retry_failed:
            record = None
        if record is None:
            pending.append(index)
        elif "error" in record:
            results[index] = CellResult(
                key=key, cell=record["cell"], payload={}, cached=True,
                error=record["error"],
            )
        else:
            results[index] = CellResult(
                key=key, cell=record["cell"], payload=record["payload"], cached=True
            )

    if pending:
        pending_cells = [cells[index] for index in pending]

        def persist(pending_index: int, outcome: CellResult | FailedItem) -> None:
            if store is None:
                return
            if isinstance(outcome, FailedItem):
                cell = pending_cells[pending_index]
                store.put(cell.key(), {"cell": cell.to_dict(), "error": outcome.to_record()})
            else:
                store.put(outcome.key, {"cell": outcome.cell, "payload": outcome.payload})

        computed = make_dispatcher(jobs).map(
            work_fn if work_fn is not None else execute_cell,
            pending_cells,
            on_result=persist,
            policy=policy,
        )
        for index, outcome in zip(pending, computed):
            if isinstance(outcome, FailedItem):
                cell = cells[index]
                results[index] = CellResult(
                    key=cell.key(), cell=cell.to_dict(), payload={},
                    error=outcome.to_record(),
                )
            else:
                results[index] = outcome

    return SweepResult(spec=spec, cells=cells, results=results)  # type: ignore[arg-type]
